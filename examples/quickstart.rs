//! Quickstart: online QoS prediction with AMF in five minutes.
//!
//! Builds an AMF model, streams QoS observations into it (as the paper's
//! QoS prediction service would), and predicts the response time of
//! *candidate* services a user has never invoked.
//!
//! Run with: `cargo run --release --example quickstart`

use amf_core::{AmfConfig, AmfTrainer};
use qos_dataset::sampling::split_matrix;
use qos_dataset::{Attribute, DatasetConfig, QosDataset};
use qos_metrics::AccuracySummary;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A synthetic WS-DREAM-like QoS world: users invoking Web services.
    let dataset = QosDataset::generate(&DatasetConfig {
        users: 60,
        services: 200,
        ..DatasetConfig::small()
    });
    println!(
        "dataset: {} users x {} services",
        dataset.users(),
        dataset.services()
    );

    // 2. Only 15% of user-service pairs are ever observed (sparse reality).
    let matrix = dataset.slice_matrix(Attribute::ResponseTime, 0);
    let mut rng = StdRng::seed_from_u64(1);
    let split = split_matrix(&matrix, 0.15, &mut rng);
    println!(
        "observed {} of {} cells ({:.0}% density)",
        split.train.nnz(),
        dataset.users() * dataset.services(),
        split.train.density() * 100.0
    );

    // 3. Stream the observations into an online AMF model (paper defaults:
    //    d=10, lambda=0.001, beta=0.3, eta=0.8, alpha=-0.007 for RT).
    let mut trainer =
        AmfTrainer::new(AmfConfig::response_time()).expect("paper configuration is valid");
    for (k, entry) in split.train.iter().enumerate() {
        trainer.feed(entry.row, entry.col, k as u64 % 900, entry.value);
    }
    // Idle-time refinement: replay live samples until converged.
    let report = trainer.replay_until_converged(Default::default());
    println!(
        "trained online: {} replay iterations in {:.2?} (converged: {})",
        report.iterations, report.elapsed, report.converged
    );

    // 4. Predict QoS for candidate services user 0 never invoked.
    let model = trainer.model();
    println!("\ncandidate predictions for user 0 (actual vs predicted):");
    let mut shown = 0;
    for entry in split.test.iter().filter(|e| e.row == 0).take(8) {
        let predicted = model.predict(entry.row, entry.col).unwrap_or(f64::NAN);
        println!(
            "  service {:>4}: actual {:.3}s  predicted {:.3}s",
            entry.col, entry.value, predicted
        );
        shown += 1;
    }
    assert!(shown > 0, "user 0 should have held-out services");

    // 5. Overall accuracy on everything held out.
    let actual = split.test_actuals();
    let fallback = split.train.mean().unwrap_or(1.0);
    let predicted: Vec<f64> = split
        .test
        .iter()
        .map(|e| model.predict_or(e.row, e.col, fallback))
        .collect();
    let accuracy = AccuracySummary::evaluate(&actual, &predicted).expect("non-empty test set");
    println!("\nheld-out accuracy: {accuracy}");
}
