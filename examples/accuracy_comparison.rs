//! Reproduces the paper's Table I: UPCC / IPCC / UIPCC / PMF / AMF accuracy
//! at matrix densities 10%–50% over MAE, MRE and NPRE.
//!
//! Run with: `cargo run --release --example accuracy_comparison`
//! Scale with: `AMF_SCALE=medium cargo run --release --example accuracy_comparison`
//! (`full` reproduces the paper's 142 x 4500 protocol; budget an hour.)

use qos_eval::experiments::table1;
use qos_eval::Scale;

fn main() {
    let scale = Scale::from_env();
    println!(
        "running Table I protocol at {} users x {} services, {} repetition(s) per density",
        scale.users, scale.services, scale.repetitions
    );
    println!("(set AMF_SCALE=medium or AMF_SCALE=full for larger runs)\n");

    let result = table1::run(&scale);
    print!("{}", result.render());

    // Narrate the headline comparison the paper draws from this table.
    for table in &result.tables {
        let last = result.densities.len() - 1;
        if let (Some(amf), Some(pmf)) = (
            table.summary(qos_eval::Approach::Amf, last),
            table.summary(qos_eval::Approach::Pmf, last),
        ) {
            println!(
                "{}: at {:.0}% density AMF reaches MRE {:.3} / NPRE {:.3} vs PMF {:.3} / {:.3}",
                table.attribute,
                result.densities[last] * 100.0,
                amf.mre,
                amf.npre,
                pmf.mre,
                pmf.npre
            );
        }
    }
}
