//! Explore the synthetic WS-DREAM-like dataset: the statistics table
//! (Fig. 6), the motivating observations (Fig. 2), the skewed-vs-transformed
//! distributions (Figs. 7/8), and the low-rank evidence (Fig. 9).
//!
//! Also demonstrates exporting a slice in the WS-DREAM text format.
//!
//! Run with: `cargo run --release --example dataset_explorer`

use qos_dataset::{io, Attribute, QosDataset};
use qos_eval::experiments::{fig2, fig6, fig7_8, fig9};
use qos_eval::Scale;

fn main() {
    let scale = Scale {
        users: 60,
        services: 200,
        time_slices: 16,
        repetitions: 1,
        seed: 2014,
    };

    println!("== Fig 6: dataset statistics ==");
    println!("{}", fig6::run(&scale));

    println!("== Fig 2: why prediction is needed ==");
    let f2 = fig2::run(&scale);
    let series = &f2.pair_series;
    println!(
        "pair (user {}, service {}): RT fluctuates {:.2}s..{:.2}s across {} slices",
        f2.pair.0,
        f2.pair.1,
        series.iter().cloned().fold(f64::INFINITY, f64::min),
        series.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        series.len()
    );
    let profile = &f2.sorted_user_profile;
    println!(
        "service {}: users see {:.2}s (fastest) to {:.2}s (slowest) — QoS is user-specific\n",
        f2.profiled_service,
        profile.first().unwrap(),
        profile.last().unwrap()
    );

    println!("== Figs 7/8: the Box-Cox transform de-skews QoS data ==");
    let f78 = fig7_8::run(&scale);
    println!(
        "RT skewness: raw {:.2} -> transformed {:.2}",
        f78.rt.raw_skewness, f78.rt.transformed_skewness
    );
    println!(
        "TP skewness: raw {:.2} -> transformed {:.2}\n",
        f78.tp.raw_skewness, f78.tp.transformed_skewness
    );

    println!("== Fig 9: the QoS matrix is approximately low-rank ==");
    let f9 = fig9::run(&scale);
    println!(
        "top-10 singular values hold {:.1}% of the RT matrix's energy",
        100.0 * f9.rt_energy_top(10)
    );
    let shown: Vec<String> = f9
        .response_time
        .iter()
        .take(12)
        .map(|v| format!("{v:.3}"))
        .collect();
    println!("first 12 normalized singular values: {}\n", shown.join(" "));

    // WS-DREAM-format export of the first slice.
    let dataset = QosDataset::generate(&scale.dataset_config());
    let matrix = dataset.slice_matrix(Attribute::ResponseTime, 0);
    let path = std::env::temp_dir().join("amf_example_rtmatrix.txt");
    io::write_dense_file(&matrix, &path).expect("temp dir is writable");
    println!(
        "exported slice 0 ({} x {}) in WS-DREAM dense format to {}",
        matrix.rows(),
        matrix.cols(),
        path.display()
    );
}
