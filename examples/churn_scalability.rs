//! Scalability under churn (paper Fig. 14): 80% of users and services train
//! first; the remaining 20% join mid-run.
//!
//! Watch two series: the new entities' MRE collapsing after they join, and
//! the existing entities' MRE staying flat through the disturbance — the
//! adaptive-weights mechanism at work. The second half runs the same churn
//! without adaptive weights for contrast.
//!
//! Run with: `cargo run --release --example churn_scalability`

use qos_eval::experiments::{ablation, fig14};
use qos_eval::Scale;

fn main() {
    let scale = Scale {
        users: 60,
        services: 200,
        time_slices: 4,
        repetitions: 1,
        seed: 2014,
    };

    println!("== churn run with adaptive weights (paper AMF) ==");
    let result = fig14::run(&scale);
    print!("{}", result.render());
    let (first, last) = result.new_first_and_last();
    println!("\nnew-entity MRE: {first:.3} right after joining -> {last:.3} at the end");
    println!(
        "existing-entity MRE: {:.3} before join, worst {:.3} after",
        result.existing_before_join(),
        result.existing_worst_after_join()
    );

    println!("\n== ablation: adaptive vs fixed weights ==");
    let ab = ablation::run_weights(&scale);
    let (adaptive, fixed) = ab.disturbance();
    println!("churn disturbance ratio (worst-after / before, lower is better):");
    println!("  adaptive weights: {adaptive:.3}");
    println!("  fixed weights:    {fixed:.3}");
    let (a_first, a_last) = ab.adaptive.new_first_and_last();
    let (f_first, f_last) = ab.fixed.new_first_and_last();
    println!("new-entity convergence (first -> last MRE after join):");
    println!("  adaptive weights: {a_first:.3} -> {a_last:.3}");
    println!("  fixed weights:    {f_first:.3} -> {f_last:.3}");
}
