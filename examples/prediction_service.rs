//! The QoS prediction service as a long-running component (paper Fig. 3):
//! channel-based input handling, online updating, prediction serving,
//! user/service churn, and model checkpointing.
//!
//! Run with: `cargo run --release --example prediction_service`

use amf_core::persistence;
use qos_dataset::{Attribute, DatasetConfig, QosDataset};
use qos_service::{QosPredictionService, QosRecord, ServiceConfig};

fn main() {
    let dataset = QosDataset::generate(&DatasetConfig {
        users: 30,
        services: 80,
        ..DatasetConfig::small()
    });
    let service = QosPredictionService::new(ServiceConfig::default());

    // Input handling: users' QoS managers push observations through a
    // channel (cloneable across threads).
    let tx = service.input_channel();
    let mut pushed = 0;
    for user in 0..dataset.users() {
        for svc in (user % 7..dataset.services()).step_by(7) {
            tx.send(QosRecord {
                user: format!("planetlab-node-{user}"),
                service: format!("ws://provider/{svc}"),
                timestamp: 0,
                value: dataset.value(Attribute::ResponseTime, user, svc, 0),
            })
            .expect("receiver alive");
            pushed += 1;
        }
    }
    let processed = service.drain_inputs();
    println!("ingested {processed} of {pushed} queued observations");

    // Online updating during idle time.
    let report = service.idle();
    println!(
        "idle refinement: {} replays in {:.2?} (converged: {})",
        report.iterations, report.elapsed, report.converged
    );

    // Prediction interface: candidate services this user never invoked.
    let user = "planetlab-node-3";
    println!("\ncandidate ranking for {user}:");
    let mut ranked: Vec<(String, f64)> = (0..10)
        .map(|svc| {
            let name = format!("ws://provider/{svc}");
            let rt = service.predict(user, &name).unwrap_or(f64::INFINITY);
            (name, rt)
        })
        .collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    for (name, rt) in ranked.iter().take(5) {
        println!("  {rt:.3}s  {name}");
    }

    // Churn: a provider discontinues a service; a new user joins.
    service.leave_service("ws://provider/0");
    let new_user = service.join_user("planetlab-node-new");
    println!("\nnew user joined with dense id {new_user}");
    let stats = service.stats();
    println!(
        "registry: {} users, {} services, {} model updates ({} accepted, {} quarantined)",
        stats.users, stats.services, stats.updates, stats.accepted, stats.rejected
    );

    // Checkpoint the model; a restarted service restores it losslessly.
    let path = std::env::temp_dir().join("amf_service_checkpoint.amf");
    // NOTE: in a real deployment you would checkpoint on a schedule; here we
    // snapshot once via a fresh trainer round-trip.
    let mut buffer = Vec::new();
    {
        // The service API intentionally hides the model; rebuild an
        // equivalent snapshot from the public prediction surface is not
        // possible, so we demonstrate persistence on a standalone model.
        let mut model =
            amf_core::AmfModel::new(amf_core::AmfConfig::response_time()).expect("valid config");
        for user in 0..5 {
            for svc in 0..5 {
                model.observe(
                    user,
                    svc,
                    dataset.value(Attribute::ResponseTime, user, svc, 0),
                );
            }
        }
        persistence::save(&model, &mut buffer).expect("in-memory save succeeds");
        std::fs::write(&path, &buffer).expect("temp dir writable");
    }
    let restored = persistence::load_file(&path).expect("checkpoint is valid");
    println!(
        "\ncheckpoint round-trip: {} bytes, restored model has {} users / {} services",
        buffer.len(),
        restored.num_users(),
        restored.num_services()
    );
}
