//! Runtime service adaptation end to end (paper Section III + Fig. 1).
//!
//! Simulates service-based applications — workflows of abstract tasks bound
//! to candidate services — running on an execution middleware that monitors
//! QoS, reports it to an AMF-backed prediction service, and rebinds tasks
//! per an adaptation policy. Compares: no adaptation, threshold-triggered
//! adaptation, and greedy best-predicted adaptation.
//!
//! Run with: `cargo run --release --example adaptation_simulation`

use qos_dataset::{DatasetConfig, QosDataset};
use qos_service::policy::StaticPolicy;
use qos_service::{AdaptationSimulation, BestPredictedPolicy, SimulationConfig, ThresholdPolicy};

fn main() {
    let dataset = QosDataset::generate(&DatasetConfig {
        users: 40,
        services: 120,
        time_slices: 12,
        ..DatasetConfig::small()
    });
    let config = SimulationConfig {
        applications: 8,
        tasks_per_workflow: 3,
        candidates_per_task: 5,
        sla_threshold: 2.0,
        slices: 12,
        background_density: 0.12,
        seed: 42,
    };
    let simulation = AdaptationSimulation::new(&dataset, config).expect("config fits the dataset");

    println!(
        "simulating {} applications x {} tasks x {} candidates over {} slices\n",
        config.applications, config.tasks_per_workflow, config.candidates_per_task, config.slices
    );

    let static_run = simulation.run(&StaticPolicy);
    let threshold_run = simulation.run(&ThresholdPolicy::new(config.sla_threshold));
    let greedy_run = simulation.run(&BestPredictedPolicy);

    println!("policy           mean e2e RT   steady RT   adaptations   SLA violations");
    println!("----------------------------------------------------------------------");
    for report in [&static_run, &threshold_run, &greedy_run] {
        println!(
            "{:<16} {:>10.3}s {:>10.3}s {:>12} {:>15}",
            report.policy,
            report.mean_rt(),
            report.steady_state_rt(),
            report.total_adaptations(),
            report.total_violations()
        );
    }

    println!("\nper-slice mean end-to-end response time:");
    println!("slice   static   threshold   best-predicted");
    for i in 0..static_run.slices.len() {
        println!(
            "{:>5} {:>8.3} {:>11.3} {:>16.3}",
            i,
            static_run.slices[i].mean_end_to_end_rt,
            threshold_run.slices[i].mean_end_to_end_rt,
            greedy_run.slices[i].mean_end_to_end_rt
        );
    }

    let improvement = 100.0 * (static_run.steady_state_rt() - greedy_run.steady_state_rt())
        / static_run.steady_state_rt();
    println!(
        "\nadaptation with AMF predictions improves steady-state RT by {improvement:.1}% over never adapting"
    );
}
