//! Integration: the paper's qualitative claims, checked end to end through
//! the experiment harness at reduced scale. These are the "shape" assertions
//! the full benches reproduce quantitatively.

use qos_dataset::Attribute;
use qos_eval::experiments::{ablation, fig10, fig11, fig12, fig14, fig7_8, fig9};
use qos_eval::Scale;

fn scale() -> Scale {
    Scale {
        users: 60,
        services: 150,
        time_slices: 2,
        repetitions: 1,
        seed: 2014,
    }
}

#[test]
fn claim_transform_normalizes_distributions() {
    // Figs. 7 -> 8: Box-Cox collapses the skew.
    let r = fig7_8::run(&scale());
    assert!(r.rt.raw_skewness > 1.0);
    assert!(r.rt.transformed_skewness.abs() < r.rt.raw_skewness / 2.0);
    assert!(r.tp.raw_skewness > 1.0);
    assert!(r.tp.transformed_skewness.abs() < r.tp.raw_skewness / 2.0);
}

#[test]
fn claim_qos_matrices_are_low_rank() {
    // Fig. 9: a handful of singular values carry the matrix.
    let r = fig9::run(&scale());
    assert!(r.rt_energy_top(10) > 0.85);
    let tail = r.response_time.len() - 1;
    assert!(r.response_time[tail] < 0.15);
}

#[test]
fn claim_amf_concentrates_errors_near_zero() {
    // Fig. 10: AMF's signed-error mass near zero is at least the baselines'.
    let r = fig10::run_with(&scale(), Attribute::ResponseTime, 0.15);
    let masses = r.central_masses();
    let amf = masses[2].1;
    assert!(
        amf >= masses[0].1 * 0.95,
        "AMF {} vs UIPCC {}",
        amf,
        masses[0].1
    );
    assert!(
        amf >= masses[1].1 * 0.95,
        "AMF {} vs PMF {}",
        amf,
        masses[1].1
    );
}

#[test]
fn claim_transformation_and_loss_both_matter() {
    // Fig. 11 at two densities: AMF <= PMF on MRE; E-ABL2: relative loss
    // beats squared loss on MRE.
    let r = fig11::run_with(&scale(), &[0.15, 0.35]);
    for (attr, mres) in &r.curves {
        for (pmf, amf) in mres[0].iter().zip(&mres[2]) {
            assert!(amf <= &(pmf * 1.05), "{attr}: AMF {amf} vs PMF {pmf}");
        }
    }
    let loss = ablation::run_loss(&scale());
    for attr in ["RT", "TP"] {
        let rel = loss.cell(attr, "relative", "boxcox").unwrap().summary;
        let sq = loss.cell(attr, "squared", "boxcox").unwrap().summary;
        assert!(
            rel.mre <= sq.mre * 1.15,
            "{attr}: relative {} vs squared {}",
            rel.mre,
            sq.mre
        );
    }
}

#[test]
fn claim_density_controls_overfitting() {
    // Fig. 12 shape at three densities.
    let r = fig12::run_with(&scale(), &[0.05, 0.25, 0.50], &[Attribute::ResponseTime]);
    let summaries = &r.curves[0].1;
    assert!(summaries[0].mre > summaries[2].mre);
}

#[test]
fn claim_scalability_under_churn() {
    // Fig. 14: new entities converge, existing ones stay stable.
    let r = fig14::run(&scale());
    let (first, last) = r.new_first_and_last();
    assert!(
        last < first,
        "new-entity MRE should fall: {first} -> {last}"
    );
    assert!(r.existing_worst_after_join() < r.existing_before_join() * 2.0);
}
