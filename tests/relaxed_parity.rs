//! Statistical-equivalence regression harness for the relaxed-consistency
//! engine lane (`Consistency::Relaxed`).
//!
//! The parity engine is the conformance oracle: its results are bitwise
//! identical to sequential feeding (pinned by `tests/engine_parity.rs`), so
//! the sequential model *is* the parity reference here. The relaxed lane
//! deliberately abandons bitwise equality — Hogwild-style claim scheduling
//! reorders commuting SGD updates across shards — and this suite pins down
//! what it promises instead, on the same seeded golden stream the parity
//! suites use:
//!
//! 1. **Statistical parity** — windowed MRE and NMAE (the paper's two
//!    accuracy metrics, via `AccuracyWindow`) within ε of the parity
//!    engine's at K ∈ {2, 4, 8}, and model-level prediction divergence
//!    bounded across the full user × service grid.
//! 2. **No lost updates** — every accepted sample is applied and counted
//!    exactly once, under steady state, churn, and fault injection.
//! 3. **Finiteness** — every factor and every servable prediction stays
//!    finite under churn and scripted worker kills.
//!
//! ε rationale (documented in DESIGN.md §13): on the golden stream the
//! observed windowed-MRE gap between relaxed (any K ≤ 8) and parity is
//! ≈0.012 absolute at worst (parity MRE ≈0.095) and the mean relative
//! prediction divergence stays below 2.5%; the assertions allow ≈3×
//! headroom (`EPS_ABS`/`EPS_REL`/`PREDICTION_EPS`) so they catch a
//! consistency regression — a lost update or a torn read shifts these
//! metrics by far more — without flaking on scheduler-dependent jitter.

mod support;

use amf_core::{
    AmfConfig, AmfModel, Consistency, EngineOptions, FaultPlan, KillPhase, ShardedEngine,
};
use std::sync::Arc;
use support::{qos_stream, sequential_reference, StreamSpec};

/// Absolute tolerance on the windowed MRE / NMAE gap vs the parity oracle.
const EPS_ABS: f64 = 0.04;
/// Relative tolerance: the gap may alternatively be within this fraction of
/// the parity value (covers regimes where the metric itself is large).
const EPS_REL: f64 = 0.25;
/// Bound on mean relative prediction divergence across the full grid.
const PREDICTION_EPS: f64 = 0.08;

/// Shard counts the statistical contract is pinned at.
const SHARD_COUNTS: [usize; 3] = [2, 4, 8];

fn relaxed_options(shards: usize) -> EngineOptions {
    EngineOptions {
        // Small enough that the 8k golden stream crosses many micro-batch
        // flush boundaries (the interesting interleavings happen there).
        relaxed_batch: 1_024,
        ..EngineOptions::with_consistency(shards, Consistency::Relaxed)
    }
}

fn relaxed_model(
    stream: &[(usize, usize, f64)],
    shards: usize,
    plan: Option<Arc<FaultPlan>>,
) -> (AmfModel, ShardedEngine) {
    let mut engine = ShardedEngine::from_model_with_plan(
        AmfModel::new(AmfConfig::response_time()).expect("valid config"),
        relaxed_options(shards),
        plan,
    )
    .expect("valid options");
    engine.feed_batch(stream.iter().copied());
    engine.drain();
    let model = engine.snapshot();
    (model, engine)
}

fn assert_within_eps(metric: &str, shards: usize, relaxed: f64, parity: f64) {
    let gap = (relaxed - parity).abs();
    let allowed = EPS_ABS.max(EPS_REL * parity);
    assert!(
        gap <= allowed,
        "{metric} gap at K={shards}: relaxed {relaxed:.5} vs parity {parity:.5} \
         (gap {gap:.5} > allowed {allowed:.5})"
    );
}

fn assert_all_finite(model: &AmfModel) {
    for u in 0..model.num_users() {
        let factors = model.user_factors(u).expect("user exists");
        assert!(
            factors.iter().all(|f| f.is_finite()),
            "user {u} factors not finite"
        );
    }
    for s in 0..model.num_services() {
        let factors = model.service_factors(s).expect("service exists");
        assert!(
            factors.iter().all(|f| f.is_finite()),
            "service {s} factors not finite"
        );
    }
}

/// Mean relative divergence between two models' predictions over the grid.
fn prediction_divergence(a: &AmfModel, b: &AmfModel, users: usize, services: usize) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for u in 0..users {
        for s in 0..services {
            if let (Some(pa), Some(pb)) = (a.predict(u, s), b.predict(u, s)) {
                assert!(pa.is_finite() && pb.is_finite(), "({u},{s}): {pa} vs {pb}");
                total += (pa - pb).abs() / pa.abs().max(1e-9);
                n += 1;
            }
        }
    }
    assert!(n > 0, "no comparable pairs");
    total / n as f64
}

#[test]
fn windowed_accuracy_matches_parity_within_epsilon() {
    let spec = StreamSpec::default_parity();
    let stream = qos_stream(spec);
    let parity = sequential_reference(AmfConfig::response_time(), &stream);
    let parity_acc = parity.windowed_accuracy();
    let parity_mre = parity_acc.mre.expect("window is populated");
    let parity_nmae = parity_acc.nmae.expect("window is populated");

    for shards in SHARD_COUNTS {
        let (relaxed, engine) = relaxed_model(&stream, shards, None);
        assert_eq!(
            relaxed.update_count(),
            stream.len() as u64,
            "lost updates at K={shards}"
        );
        assert!(!engine.is_degraded());
        assert_all_finite(&relaxed);

        let acc = relaxed.windowed_accuracy();
        let mre = acc.mre.expect("window is populated");
        let nmae = acc.nmae.expect("window is populated");
        eprintln!(
            "K={shards}: relaxed mre {mre:.5} nmae {nmae:.5} | parity mre {parity_mre:.5} \
             nmae {parity_nmae:.5}"
        );
        assert_within_eps("MRE", shards, mre, parity_mre);
        assert_within_eps("NMAE", shards, nmae, parity_nmae);

        let divergence = prediction_divergence(&parity, &relaxed, spec.users, spec.services);
        eprintln!("K={shards}: prediction divergence {divergence:.5}");
        assert!(
            divergence <= PREDICTION_EPS,
            "prediction divergence at K={shards}: {divergence:.5} > {PREDICTION_EPS}"
        );
    }
}

#[test]
fn no_lost_updates_under_churn() {
    // Churn stream: the id universe grows as the stream progresses, so the
    // relaxed lane keeps materializing entities between micro-batches.
    let spec = StreamSpec {
        users: 40,
        services: 120,
        samples: 6_000,
        seed: 0x00C4_0FFE,
    };
    let base = qos_stream(spec);
    let stream: Vec<(usize, usize, f64)> = base
        .iter()
        .enumerate()
        .map(|(i, &(u, s, v))| {
            // Cap ids by stream position: early samples only touch a small
            // universe, later ones the full one.
            let horizon = 1 + (i * spec.users) / spec.samples;
            let service_horizon = 1 + (i * spec.services) / spec.samples;
            (u % horizon, s % service_horizon, v)
        })
        .collect();

    for shards in SHARD_COUNTS {
        let (model, engine) = relaxed_model(&stream, shards, None);
        assert_eq!(
            model.update_count(),
            stream.len() as u64,
            "lost updates under churn at K={shards}"
        );
        assert_eq!(engine.processed(), stream.len() as u64);
        assert!(!engine.is_degraded());
        assert_all_finite(&model);
    }
}

#[test]
fn faulted_relaxed_run_stays_finite_and_statistically_close() {
    let spec = StreamSpec::default_parity();
    let stream = qos_stream(spec);
    let parity = sequential_reference(AmfConfig::response_time(), &stream);
    let parity_mre = parity.windowed_accuracy().mre.expect("window is populated");

    for shards in SHARD_COUNTS {
        // Kill two different workers, one before an update and one
        // mid-update (after the user-side store, before the service-side
        // store). Fresh plan per run: each scripted kill fires exactly once.
        let plan = Arc::new(
            FaultPlan::new(0xFA01)
                .kill_worker(0, 57, KillPhase::Before)
                .kill_worker(1, 211, KillPhase::Mid),
        );
        let (model, engine) = relaxed_model(&stream, shards, Some(plan));
        let stats = engine.fault_stats();
        assert_eq!(stats.worker_panics, 2, "K={shards}");
        assert_eq!(stats.injected_panics, 2, "K={shards}");
        assert_eq!(stats.samples_lost, 0, "K={shards}");
        assert!(!engine.is_degraded());
        // Relaxed recovery is at-least-once (no journal replay): the sample
        // in flight at each death is re-applied, never dropped, and the
        // update count still counts each accepted sample exactly once.
        assert_eq!(model.update_count(), stream.len() as u64);
        assert_all_finite(&model);

        let mre = model.windowed_accuracy().mre.expect("window is populated");
        eprintln!("faulted K={shards}: relaxed mre {mre:.5} vs parity {parity_mre:.5}");
        assert_within_eps("faulted MRE", shards, mre, parity_mre);
        let divergence = prediction_divergence(&parity, &model, spec.users, spec.services);
        assert!(
            divergence <= PREDICTION_EPS,
            "faulted prediction divergence at K={shards}: {divergence:.5}"
        );
    }
}

#[test]
fn relaxed_snapshot_mid_stream_is_consistent() {
    // Snapshots taken while ingestion is in flight must themselves satisfy
    // the contract: counted, finite, and servable.
    let spec = StreamSpec::default_parity();
    let stream = qos_stream(spec);
    let mut engine =
        ShardedEngine::new(AmfConfig::response_time(), relaxed_options(4)).expect("valid options");
    engine.feed_batch(stream[..3_000].iter().copied());
    let mid = engine.snapshot();
    assert_eq!(mid.update_count(), 3_000);
    assert_all_finite(&mid);
    engine.feed_batch(stream[3_000..].iter().copied());
    let done = engine.into_model();
    assert_eq!(done.update_count(), stream.len() as u64);
    assert_all_finite(&done);
}
