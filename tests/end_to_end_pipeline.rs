//! Integration: the full accuracy pipeline across crates — synthetic dataset
//! (qos-dataset) → sparsification → baselines (qos-baselines) and AMF
//! (amf-core) via the harness (qos-eval) → metrics (qos-metrics).

use qos_dataset::sampling::split_matrix;
use qos_dataset::{Attribute, QosDataset};
use qos_eval::methods::Approach;
use qos_eval::Scale;
use qos_metrics::AccuracySummary;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scale() -> Scale {
    Scale {
        users: 60,
        services: 160,
        time_slices: 2,
        repetitions: 1,
        seed: 99,
    }
}

fn evaluate(approach: Approach, density: f64) -> AccuracySummary {
    let dataset = QosDataset::generate(&scale().dataset_config());
    let matrix = dataset.slice_matrix(Attribute::ResponseTime, 0);
    let mut rng = StdRng::seed_from_u64(scale().seed);
    let split = split_matrix(&matrix, density, &mut rng);
    let trained = approach.train(&split, Attribute::ResponseTime, scale().seed, 0, 900);
    let predicted = trained.predict_split(&split);
    AccuracySummary::evaluate(&split.test_actuals(), &predicted).expect("non-empty test set")
}

#[test]
fn every_approach_beats_random_noise() {
    // Sanity floor: the global mean of RT data has MRE around 1-2; any real
    // model should be under it at moderate density.
    for approach in Approach::PAPER_SET {
        let s = evaluate(approach, 0.20);
        assert!(
            s.mre < 1.5,
            "{} MRE {} unreasonably high",
            approach.name(),
            s.mre
        );
        assert!(s.mae.is_finite() && s.npre.is_finite());
    }
}

#[test]
fn amf_has_best_relative_accuracy_end_to_end() {
    // The paper's headline, via the complete cross-crate pipeline.
    let amf = evaluate(Approach::Amf, 0.20);
    for other in [
        Approach::Upcc,
        Approach::Ipcc,
        Approach::Uipcc,
        Approach::Pmf,
    ] {
        let o = evaluate(other, 0.20);
        assert!(
            amf.mre <= o.mre * 1.05,
            "AMF MRE {} vs {} {}",
            amf.mre,
            other.name(),
            o.mre
        );
        assert!(
            amf.npre <= o.npre * 1.05,
            "AMF NPRE {} vs {} {}",
            amf.npre,
            other.name(),
            o.npre
        );
    }
}

#[test]
fn throughput_pipeline_works_end_to_end() {
    let dataset = QosDataset::generate(&scale().dataset_config());
    let matrix = dataset.slice_matrix(Attribute::Throughput, 0);
    let mut rng = StdRng::seed_from_u64(5);
    let split = split_matrix(&matrix, 0.25, &mut rng);
    let trained = Approach::Amf.train(&split, Attribute::Throughput, 5, 0, 900);
    let predicted = trained.predict_split(&split);
    let s = AccuracySummary::evaluate(&split.test_actuals(), &predicted).unwrap();
    assert!(s.mre < 1.5, "TP MRE {}", s.mre);
    // Predictions respect the TP range.
    assert!(predicted.iter().all(|&p| (0.0..=7000.0).contains(&p)));
}

#[test]
fn higher_density_does_not_hurt_amf() {
    let sparse = evaluate(Approach::Amf, 0.10);
    let dense = evaluate(Approach::Amf, 0.40);
    assert!(
        dense.mre <= sparse.mre * 1.1,
        "MRE should improve with data: {} -> {}",
        sparse.mre,
        dense.mre
    );
}
