//! Closed-loop adaptation scenario suite (workspace-level).
//!
//! Exercises the phase-regime worlds and the MAPE-K loop end to end:
//!
//! * the `predict_degraded` fallback ladder under a regional outage — every
//!   rung reachable, every answer tagged and finite, never an error mid-outage;
//! * `rank_candidates` stability under a churn storm — the batch ranking
//!   kernel must agree with a naive argsort over `predict` at every probe
//!   point, including after services leave, return, and new ones join;
//! * byte-identical `amf-scenario/v1` reports for identical seeds (the
//!   reproducibility contract behind the committed SCENARIO_REPORT.json);
//! * the headline adaptation-gain property on a quick multi-phase run.

use qos_dataset::{RegimePhase, RegimeTimeline, RegimeWorld, RegimeWorldConfig};
use qos_service::{
    find_scenario, report_json, PredictionSource, QosPredictionService, QosRecord, ScenarioConfig,
    ScenarioEngine, ServiceConfig,
};

fn world(seed: u64, users: usize, services: usize, spans: Vec<(RegimePhase, u32)>) -> RegimeWorld {
    RegimeWorld::new(
        RegimeWorldConfig {
            users,
            services,
            regions: 4,
            seed,
            ..Default::default()
        },
        RegimeTimeline::new(spans).expect("valid timeline"),
    )
    .expect("valid world")
}

/// Registers the full population and streams `ticks_before` ticks of
/// deterministic background observations into the service.
fn feed_background(service: &QosPredictionService, w: &RegimeWorld, from_tick: u32, to_tick: u32) {
    for tick in from_tick..to_tick {
        service.advance_clock(u64::from(tick));
        let mut batch = Vec::new();
        for u in 0..w.users() {
            // Each user observes every third service, rotating by tick, so
            // coverage is dense but each tick stays cheap.
            let offset = (tick as usize + u) % 3;
            for s in (offset..w.services()).step_by(3) {
                batch.push(QosRecord {
                    user: format!("u{u}"),
                    service: format!("s{s}"),
                    timestamp: u64::from(tick),
                    value: w.observe(u, s, tick).reported,
                });
            }
        }
        service.submit_batch(batch);
        service.idle();
    }
}

#[test]
fn predict_degraded_ladder_under_regional_outage() {
    let w = world(
        11,
        8,
        24,
        vec![
            (RegimePhase::Good, 10),
            (RegimePhase::RegionalOutage, 12),
            (RegimePhase::Good, 4),
        ],
    );
    let service = QosPredictionService::new(ServiceConfig::default());
    for u in 0..w.users() {
        service.join_user(&format!("u{u}"));
    }
    for s in 0..w.services() {
        service.join_service(&format!("s{s}"));
    }

    // Warm up through the good phase.
    feed_background(&service, &w, 0, 10);

    // Mid-outage: keep observing (dark services report timeouts) and assert
    // the degraded path never errors and never emits a non-finite value for
    // ANY pair, known or not.
    let mut model_answers = 0usize;
    for tick in 10..22 {
        feed_background(&service, &w, tick, tick + 1);
        for u in 0..w.users() {
            for s in 0..w.services() {
                let p = service.predict_degraded(&format!("u{u}"), &format!("s{s}"));
                assert!(
                    p.value.is_finite() && (0.0..=20.0).contains(&p.value),
                    "tick {tick} pair (u{u}, s{s}): bad value {} from {:?}",
                    p.value,
                    p.source
                );
                if p.source.is_model() {
                    model_answers += 1;
                }
            }
        }
    }
    assert!(
        model_answers > 0,
        "warm pairs must still be served by the model mid-outage"
    );

    // Every rung of the ladder, in order, tag asserted:
    // 1. Model — a pair that stayed warm through training.
    let sources: Vec<PredictionSource> = (0..w.services())
        .map(|s| service.predict_degraded("u0", &format!("s{s}")).source)
        .collect();
    assert!(
        sources.contains(&PredictionSource::Model),
        "no warm model answer: {sources:?}"
    );
    // 2. UserMean — known user, service the registry has never heard of.
    assert_eq!(
        service.predict_degraded("u0", "s-nowhere").source,
        PredictionSource::UserMean
    );
    // ... and a *joined but never observed* (cold) service takes the same
    // rung: the model cannot price it, the user's history can.
    service.join_service("s-cold");
    assert_eq!(
        service.predict_degraded("u0", "s-cold").source,
        PredictionSource::UserMean
    );
    // 3. ServiceMean — unknown user, known service.
    assert_eq!(
        service.predict_degraded("u-nowhere", "s0").source,
        PredictionSource::ServiceMean
    );
    // 4. GlobalMean — both unknown, but the database has data.
    assert_eq!(
        service.predict_degraded("u-nowhere", "s-nowhere").source,
        PredictionSource::GlobalMean
    );
    // 5. Default — a fresh service with no data at all.
    let empty = QosPredictionService::new(ServiceConfig::default());
    let p = empty.predict_degraded("anyone", "anything");
    assert_eq!(p.source, PredictionSource::Default);
    assert!(p.value.is_finite());
}

#[test]
fn rank_candidates_matches_argsort_under_churn_storm() {
    let w = world(
        23,
        6,
        30,
        vec![
            (RegimePhase::Good, 8),
            (RegimePhase::ChurnStorm, 16),
            (RegimePhase::Good, 8),
        ],
    );
    let service = QosPredictionService::new(ServiceConfig::default());
    for u in 0..w.users() {
        service.join_user(&format!("u{u}"));
    }
    for s in 0..w.services() {
        service.join_service(&format!("s{s}"));
    }
    let mut registered = w.services();
    let k = 8;

    for tick in 0..32u32 {
        // Churn bookkeeping: services that go dark leave the registry,
        // returners rejoin.
        for s in 0..w.services() {
            let name = format!("s{s}");
            let up = w.available(s, tick);
            let was_up = tick == 0 || w.available(s, tick - 1);
            if was_up && !up {
                service.leave_service(&name);
            } else if !was_up && up {
                service.join_service(&name);
            }
        }
        // Mid-storm, genuinely new services join (the slab grows).
        if tick == 12 {
            for extra in 0..2 {
                service.join_service(&format!("s{}", w.services() + extra));
                registered += 1;
            }
        }
        feed_background(&service, &w, tick, tick + 1);

        // Probe: the ranking kernel must agree with a naive argsort over
        // per-pair predictions at every point of the storm.
        for u in 0..3 {
            let ranked = service.rank_candidates_ids(u, k);
            assert!(ranked.len() <= k);
            assert!(
                ranked.windows(2).all(|p| p[0].1 <= p[1].1),
                "tick {tick}: ranking not ascending: {ranked:?}"
            );
            let mut naive: Vec<(usize, f64)> = (0..registered)
                .filter_map(|s| service.predict_ids(u, s).map(|v| (s, v)))
                .filter(|(_, v)| v.is_finite())
                .collect();
            naive.sort_by(|a, b| a.1.total_cmp(&b.1));
            naive.truncate(k);
            // The ranking kernel and the scalar predict path accumulate dot
            // products in different orders, so values agree only to float
            // round-off: compare the *service sets*, and allow a boundary
            // swap only between candidates whose predictions are within
            // round-off of the k-th value.
            let ranked_ids: std::collections::BTreeSet<usize> =
                ranked.iter().map(|&(s, _)| s).collect();
            let naive_ids: std::collections::BTreeSet<usize> =
                naive.iter().map(|&(s, _)| s).collect();
            if ranked_ids != naive_ids {
                let boundary = naive.last().map_or(0.0, |&(_, v)| v);
                let tol = 1e-9 * boundary.abs().max(1.0);
                for &s in ranked_ids.symmetric_difference(&naive_ids) {
                    let v = service
                        .predict_ids(u, s)
                        .unwrap_or_else(|| panic!("tick {tick}: no prediction for s{s}"));
                    assert!(
                        (v - boundary).abs() <= tol,
                        "tick {tick} user {u}: top-{k} disagrees with argsort \
                         beyond round-off: s{s} ({v}) vs boundary {boundary}\n\
                         ranked: {ranked:?}\nnaive: {naive:?}"
                    );
                }
            }
            // Values themselves must agree to round-off, position by position.
            for (&(_, rv), &(_, nv)) in ranked.iter().zip(&naive) {
                assert!(
                    (rv - nv).abs() <= 1e-9 * nv.abs().max(1.0),
                    "tick {tick} user {u}: kernel value {rv} vs argsort {nv}"
                );
            }
        }
    }
}

#[test]
fn scenario_reports_are_byte_identical_for_same_seed() {
    let render = || {
        let engine = ScenarioEngine::new(ScenarioConfig {
            seed: 5,
            ..Default::default()
        })
        .expect("valid config");
        let specs = vec![
            find_scenario("multi-phase", true).expect("known"),
            find_scenario("regional-outage", true).expect("known"),
        ];
        let outcomes = engine.run_all(&specs).expect("runs succeed");
        report_json(engine.config(), true, &outcomes).to_string_pretty()
    };
    let a = render();
    let b = render();
    assert_eq!(a, b, "same seed must reproduce the report byte for byte");
    // And a different seed must actually change something.
    let engine = ScenarioEngine::new(ScenarioConfig {
        seed: 6,
        ..Default::default()
    })
    .expect("valid config");
    let outcomes = engine
        .run_all(&[find_scenario("multi-phase", true).expect("known")])
        .expect("runs succeed");
    let c = report_json(engine.config(), true, &outcomes).to_string_pretty();
    assert_ne!(a, c);
}

#[test]
fn multi_phase_adaptation_gain_is_nonnegative_quick() {
    let engine = ScenarioEngine::new(ScenarioConfig::default()).expect("valid config");
    let out = engine
        .run_scenario(&find_scenario("multi-phase", true).expect("known"))
        .expect("run succeeds");
    assert!(
        out.baseline.slo_violation_rate > 0.0,
        "the multi-phase gauntlet must hurt the static fleet"
    );
    assert!(
        out.adaptive.slo_violation_rate <= out.baseline.slo_violation_rate,
        "adaptive {} vs static {}",
        out.adaptive.slo_violation_rate,
        out.baseline.slo_violation_rate
    );
    assert!(out.adaptive.rebinds > 0, "the planner must have acted");
}
