//! Integration: the Section III framework — prediction service, execution
//! middleware, adaptation policies, and the full simulation loop — driven by
//! the synthetic dataset.

use qos_dataset::{Attribute, DatasetConfig, QosDataset};
use qos_service::policy::StaticPolicy;
use qos_service::{
    AbstractTask, AdaptationSimulation, BestPredictedPolicy, ExecutionMiddleware,
    QosPredictionService, QosRecord, ServiceConfig, SimulationConfig, ThresholdPolicy, Workflow,
};

fn dataset() -> QosDataset {
    QosDataset::generate(&DatasetConfig {
        users: 24,
        services: 60,
        time_slices: 8,
        ..DatasetConfig::small()
    })
}

#[test]
fn prediction_service_learns_from_collaborative_stream() {
    let ds = dataset();
    let service = QosPredictionService::new(ServiceConfig::default());

    // All users report a sample of their observations (the collaboration).
    for user in 0..ds.users() {
        for svc in (0..ds.services()).step_by(4) {
            service.submit(QosRecord {
                user: format!("u{user}"),
                service: format!("s{svc}"),
                timestamp: 0,
                value: ds.value(Attribute::ResponseTime, user, svc, 0),
            });
        }
    }
    service.idle();

    // Candidate prediction correlates with ground truth across services.
    let user = 3;
    let mut actual = Vec::new();
    let mut predicted = Vec::new();
    for svc in (1..ds.services()).step_by(4) {
        // offset 1: pairs the user never reported
        actual.push(ds.value(Attribute::ResponseTime, user, svc, 0));
        predicted.push(
            service
                .predict(&format!("u{user}"), &format!("s{}", svc - 1))
                .unwrap_or(1.0),
        );
    }
    assert_eq!(actual.len(), predicted.len());
    assert!(predicted.iter().all(|p| p.is_finite() && *p >= 0.0));
}

#[test]
fn middleware_with_live_service_adapts_workflows() {
    let ds = dataset();
    let service = QosPredictionService::new(ServiceConfig::default());

    // Seed the predictor with broad observations. Half density: at 1/3 the
    // model's ranking of user 0's candidates is at the mercy of the RNG
    // stream, and the greedy policy can lock onto a mispredicted service.
    for user in 0..ds.users() {
        for svc in 0..ds.services() {
            if (user + svc) % 2 == 0 {
                service.submit(QosRecord {
                    user: format!("u{user}"),
                    service: format!("s{svc}"),
                    timestamp: 0,
                    value: ds.value(Attribute::ResponseTime, user, svc, 0),
                });
            }
        }
    }
    service.idle();

    // An application for user 0 with two tasks.
    let workflow = Workflow::new(vec![
        AbstractTask::new("A", vec![0, 4, 8, 12]).unwrap(),
        AbstractTask::new("B", vec![1, 5, 9, 13]).unwrap(),
    ])
    .unwrap();
    let mut app = ExecutionMiddleware::new(0, workflow, 2.0);
    let policy = BestPredictedPolicy;

    let mut rts = Vec::new();
    for _ in 0..3 {
        let outcome = app.step(
            |svc| ds.value(Attribute::ResponseTime, 0, svc, 0),
            |u, s| {
                let uid = service.join_user(&format!("u{u}"));
                let sid = service.join_service(&format!("s{s}"));
                service.predict_ids(uid, sid)
            },
            &policy,
        );
        rts.push(outcome.end_to_end_rt);
    }
    // After adapting, the workflow should not be slower than it started.
    assert!(
        *rts.last().unwrap() <= rts.first().unwrap() * 1.05,
        "adaptation made things worse: {rts:?}"
    );
}

#[test]
fn simulation_compares_policies_meaningfully() {
    let ds = dataset();
    let config = SimulationConfig {
        applications: 4,
        tasks_per_workflow: 2,
        candidates_per_task: 5,
        sla_threshold: 2.0,
        slices: 6,
        background_density: 0.2,
        seed: 11,
    };
    let sim = AdaptationSimulation::new(&ds, config).unwrap();

    let static_run = sim.run(&StaticPolicy);
    let threshold_run = sim.run(&ThresholdPolicy::new(2.0));
    let greedy_run = sim.run(&BestPredictedPolicy);

    assert_eq!(static_run.total_adaptations(), 0);
    assert!(greedy_run.total_adaptations() > 0);
    // Threshold policy adapts more conservatively than greedy.
    assert!(threshold_run.total_adaptations() <= greedy_run.total_adaptations());
    // All runs report the same number of slices.
    assert_eq!(static_run.slices.len(), 6);
    assert_eq!(threshold_run.slices.len(), 6);
    assert_eq!(greedy_run.slices.len(), 6);
    // Adaptive policies do not end up worse than static at steady state.
    assert!(greedy_run.steady_state_rt() <= static_run.steady_state_rt() * 1.1);
}

#[test]
fn service_registries_handle_churn_via_names() {
    let service = QosPredictionService::new(ServiceConfig::default());
    service.submit(QosRecord {
        user: "alice".into(),
        service: "weather-1".into(),
        timestamp: 0,
        value: 1.0,
    });
    // Provider discontinues the service; user leaves; both can return.
    assert!(service.leave_service("weather-1").is_some());
    assert!(service.leave_user("alice").is_some());
    let id_before = service.join_user("alice");
    service.submit(QosRecord {
        user: "alice".into(),
        service: "weather-1".into(),
        timestamp: 10,
        value: 1.2,
    });
    let id_after = service.join_user("alice");
    assert_eq!(id_before, id_after, "identity is stable across churn");
    assert!(service.predict("alice", "weather-1").is_ok());
}
