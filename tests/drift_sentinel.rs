//! Deterministic drift-sentinel behavior, end to end: the Page-Hinkley
//! sentinel inside [`AmfModel`] must stay silent on a stationary QoS stream
//! (zero false alarms) and must fire when the stream's regime genuinely
//! shifts. The sharded engine must carry the per-worker alarm counts back
//! into the merged model.
//!
//! The drifting phase is a *bimodal* regime (each sample is either ~0.1s or
//! ~16s): a pure level shift is absorbed by online SGD within a couple of
//! thousand samples and only bumps the tracked error transiently, which is
//! exactly the adaptation the paper's EMA weighting is for — the sentinel
//! is tuned to ignore it. A regime no single prediction can fit keeps the
//! relative error persistently elevated, and that is what must alarm.
//!
//! Everything here is seeded LCG arithmetic on a single thread (or a
//! deterministic shard routing), so these tests are exact: an alarm count is
//! asserted with `==`/`>`, never with tolerance.

use amf_core::{AmfConfig, AmfModel, EngineOptions, ShardedEngine};

const USERS: usize = 12;
const SERVICES: usize = 20;
const PHASE: usize = 12_000;
const SEED: u64 = 0x000D_21F7_5EED;

/// Deterministic LCG over a small entity grid: `level + uniform(0, spread)`
/// seconds per sample.
fn stationary_stream(seed: u64, n: usize) -> Vec<(usize, usize, f64)> {
    stream(seed, n, |next| 1.0 + (next % 1_000) as f64 / 1_000.0)
}

/// The drifting regime: samples alternate pseudo-randomly between a fast
/// mode (~0.1s) and a slow mode (~16s), so the per-entity relative error
/// stays high no matter what the model converges to.
fn bimodal_stream(seed: u64, n: usize) -> Vec<(usize, usize, f64)> {
    stream(seed, n, |next| {
        if next % 2 == 0 {
            0.05 + (next % 200) as f64 / 1_000.0
        } else {
            14.0 + (next % 4_000) as f64 / 1_000.0
        }
    })
}

fn stream(seed: u64, n: usize, value: impl Fn(u64) -> f64) -> Vec<(usize, usize, f64)> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        state >> 11
    };
    (0..n)
        .map(|_| {
            let user = next() as usize % USERS;
            let service = next() as usize % SERVICES;
            (user, service, value(next()))
        })
        .collect()
}

#[test]
fn stationary_stream_never_alarms() {
    let mut model = AmfModel::new(AmfConfig::response_time()).expect("valid config");
    for (user, service, value) in stationary_stream(SEED, PHASE) {
        model.observe(user, service, value);
    }
    assert_eq!(
        model.drift_sentinel().alarms(),
        (0, 0),
        "false alarm on a stationary stream"
    );
    assert!(model.drift_sentinel().healthy());
    let accuracy = model.windowed_accuracy();
    assert!(accuracy.mre.is_some() && accuracy.nmae.is_some());
}

#[test]
fn regime_shift_fires_the_sentinel() {
    let mut model = AmfModel::new(AmfConfig::response_time()).expect("valid config");
    for (user, service, value) in stationary_stream(SEED, PHASE) {
        model.observe(user, service, value);
    }
    assert_eq!(model.drift_sentinel().alarms(), (0, 0));

    let mut fired_while_unhealthy = false;
    for (user, service, value) in bimodal_stream(SEED ^ 0xFF, PHASE) {
        model.observe(user, service, value);
        if !model.drift_sentinel().healthy() {
            fired_while_unhealthy = true;
        }
    }
    let (user_alarms, service_alarms) = model.drift_sentinel().alarms();
    assert!(
        user_alarms > 0 && service_alarms > 0,
        "regime shift went undetected: user={user_alarms} service={service_alarms}"
    );
    assert!(
        fired_while_unhealthy,
        "healthy() never dropped during the drifting phase"
    );
}

#[test]
fn engine_merges_per_shard_alarm_counts() {
    let mut engine = ShardedEngine::new(
        AmfConfig::response_time(),
        EngineOptions {
            shards: 2,
            ..EngineOptions::default()
        },
    )
    .expect("valid engine options");
    engine.feed_batch(stationary_stream(SEED, PHASE));
    engine.feed_batch(bimodal_stream(SEED ^ 0xFF, PHASE));
    let model: AmfModel = engine.into_model();
    let (user_alarms, service_alarms) = model.drift_sentinel().alarms();
    assert!(
        user_alarms + service_alarms > 0,
        "per-shard sentinel alarms were lost in the merge"
    );
    // The merged accuracy window is full after 24k admitted samples.
    assert_eq!(
        model.windowed_accuracy().window_len,
        amf_core::ACCURACY_WINDOW
    );
}
