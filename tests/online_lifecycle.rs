//! Integration: the online model lifecycle across time slices — streaming
//! ingestion, warm-started convergence, expiry of stale data, churn, and
//! checkpoint/restore mid-stream.

use amf_core::{persistence, AmfConfig, AmfTrainer};
use qos_dataset::sampling::split_matrix;
use qos_dataset::stream::SliceStream;
use qos_dataset::{Attribute, DatasetConfig, QosDataset};
use qos_metrics::AccuracySummary;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset() -> QosDataset {
    QosDataset::generate(&DatasetConfig {
        users: 40,
        services: 120,
        time_slices: 6,
        ..DatasetConfig::small()
    })
}

fn mre_of(trainer: &AmfTrainer, split: &qos_dataset::MatrixSplit) -> f64 {
    let fallback = split.train.mean().unwrap_or(1.0);
    let predicted: Vec<f64> = split
        .test
        .iter()
        .map(|e| trainer.model().predict_or(e.row, e.col, fallback))
        .collect();
    AccuracySummary::evaluate(&split.test_actuals(), &predicted)
        .expect("non-empty test")
        .mre
}

#[test]
fn streaming_across_slices_stays_accurate() {
    let ds = dataset();
    let mut rng = StdRng::seed_from_u64(1);
    let mut trainer = AmfTrainer::new(AmfConfig::response_time()).unwrap();
    let mut mres = Vec::new();
    for slice in 0..4 {
        let matrix = ds.slice_matrix(Attribute::ResponseTime, slice);
        let split = split_matrix(&matrix, 0.2, &mut rng);
        let stream = SliceStream::from_split(&ds, &split, slice, &mut rng);
        let samples = stream
            .iter()
            .map(|s| (s.user, s.service, s.timestamp, s.value));
        trainer.train_slice(
            samples.collect::<Vec<_>>(),
            amf_core::trainer::ReplayOptions {
                max_iterations: 120_000,
                min_iterations: 10_000,
                window: 2_000,
                tolerance: 1e-3,
                patience: 3,
            },
        );
        mres.push(mre_of(&trainer, &split));
    }
    // Accuracy holds across slices (temporal drift absorbed online).
    for (slice, &mre) in mres.iter().enumerate() {
        assert!(mre < 1.0, "slice {slice}: MRE {mre}");
    }
    // Later slices benefit from the warm start: not worse than the first.
    assert!(
        mres[3] <= mres[0] * 1.25,
        "warm-start accuracy regressed: {:?}",
        mres
    );
}

#[test]
fn stale_data_expires_between_distant_slices() {
    let ds = dataset();
    let mut rng = StdRng::seed_from_u64(2);
    let matrix = ds.slice_matrix(Attribute::ResponseTime, 0);
    let split = split_matrix(&matrix, 0.1, &mut rng);
    let mut trainer = AmfTrainer::new(AmfConfig::response_time()).unwrap();
    for (k, e) in split.train.iter().enumerate() {
        trainer.feed(e.row, e.col, k as u64 % 900, e.value);
    }
    assert!(!trainer.store().is_empty());
    // Jump the clock far past the 15-minute expiry; everything becomes
    // stale and replay drains the store.
    trainer.advance_clock(10_000);
    let report = trainer.replay_until_converged(Default::default());
    assert_eq!(report.iterations, 0);
    assert!(trainer.store().is_empty());
    // New data revives training.
    trainer.feed(0, 0, 10_001, 1.0);
    assert!(trainer.replay_one().is_some());
}

#[test]
fn checkpoint_restore_mid_stream_is_lossless() {
    let ds = dataset();
    let mut rng = StdRng::seed_from_u64(3);
    let matrix = ds.slice_matrix(Attribute::ResponseTime, 0);
    let split = split_matrix(&matrix, 0.2, &mut rng);

    let mut trainer = AmfTrainer::new(AmfConfig::response_time()).unwrap();
    let entries: Vec<_> = split.train.iter().copied().collect();
    let half = entries.len() / 2;
    for (k, e) in entries[..half].iter().enumerate() {
        trainer.feed(e.row, e.col, k as u64 % 900, e.value);
    }

    // Checkpoint the model, restore, and continue with the second half.
    let mut buffer = Vec::new();
    persistence::save(trainer.model(), &mut buffer).unwrap();
    let restored_model = persistence::load(&buffer[..]).unwrap();
    assert_eq!(
        restored_model.update_count(),
        trainer.model().update_count()
    );

    let mut restored = AmfTrainer::new(*restored_model.config()).unwrap();
    *restored.model_mut() = restored_model;
    for (k, e) in entries[half..].iter().enumerate() {
        restored.feed(e.row, e.col, k as u64 % 900, e.value);
    }
    restored.replay_until_converged(amf_core::trainer::ReplayOptions {
        max_iterations: 60_000,
        min_iterations: 6_000,
        window: 2_000,
        tolerance: 1e-3,
        patience: 3,
    });
    let mre = mre_of(&restored, &split);
    assert!(mre < 1.0, "restored-model MRE {mre}");
}

#[test]
fn churning_users_join_without_disturbing_model() {
    let ds = dataset();
    let mut rng = StdRng::seed_from_u64(4);
    let matrix = ds.slice_matrix(Attribute::ResponseTime, 0);
    let split = split_matrix(&matrix, 0.25, &mut rng);
    let mut trainer = AmfTrainer::new(AmfConfig::response_time()).unwrap();

    // Train on users 0..30 only.
    let old_entries: Vec<_> = split.train.iter().filter(|e| e.row < 30).copied().collect();
    for (k, e) in old_entries.iter().enumerate() {
        trainer.feed(e.row, e.col, k as u64 % 900, e.value);
    }
    trainer.replay_until_converged(amf_core::trainer::ReplayOptions {
        max_iterations: 80_000,
        min_iterations: 8_000,
        window: 2_000,
        tolerance: 1e-3,
        patience: 3,
    });
    let old_test: Vec<_> = split.test.iter().filter(|e| e.row < 30).copied().collect();
    let before: Vec<f64> = old_test
        .iter()
        .map(|e| trainer.model().predict_or(e.row, e.col, 1.0))
        .collect();

    // Users 30..40 join with their observations.
    for (k, e) in split.train.iter().filter(|e| e.row >= 30).enumerate() {
        trainer.feed(e.row, e.col, k as u64 % 900, e.value);
    }
    trainer.replay_until_converged(amf_core::trainer::ReplayOptions {
        max_iterations: 40_000,
        min_iterations: 4_000,
        window: 2_000,
        tolerance: 1e-3,
        patience: 3,
    });

    // Existing users' predictions did not blow up.
    let after: Vec<f64> = old_test
        .iter()
        .map(|e| trainer.model().predict_or(e.row, e.col, 1.0))
        .collect();
    let actual: Vec<f64> = old_test.iter().map(|e| e.value).collect();
    let mre_before = AccuracySummary::evaluate(&actual, &before).unwrap().mre;
    let mre_after = AccuracySummary::evaluate(&actual, &after).unwrap().mre;
    assert!(
        mre_after < mre_before * 1.5,
        "existing users disturbed: {mre_before} -> {mre_after}"
    );

    // New users are now predictable.
    let new_user = 35;
    assert!(trainer.model().has_user(new_user));
    assert!(trainer.model().predict(new_user, 0).is_some());
}
