//! Allocation accounting for the two ingestion hot paths.
//!
//! The contiguous-slab refactor promises that steady-state training does not
//! touch the heap: the sequential `observe` path performs *zero* allocations
//! per sample, and the sharded engine's dispatch/apply path allocates only
//! per *chunk* (channel sends, journal growth), never per sample. This suite
//! pins both properties with a counting global allocator.
//!
//! It lives in its own integration-test binary (own process) so the
//! `#[global_allocator]` cannot interfere with any other suite, and runs all
//! phases from a single `#[test]` so no concurrent test thread pollutes the
//! counters. Two counters with different scopes:
//!
//! * The sequential phase uses a *thread-scoped* counter (a const-initialized
//!   TLS flag gates it), because the property under test is "the measuring
//!   thread performs zero allocations". A process-global counter is not
//!   usable here: while the test thread runs, the libtest harness's main
//!   thread blocks in `mpsc::Receiver::recv`, and std's mpmc channel lazily
//!   allocates its per-thread parking `Context` the first time a thread
//!   blocks — two allocations that land inside the measured window on some
//!   runs and before it on others.
//! * The engine phase uses a *process-global* counter on purpose: its
//!   numbers must include everything the shard workers do.

use amf_core::{AmfConfig, AmfModel, EngineOptions, ShardedEngine};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static THREAD_ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Set only on the measuring thread during the sequential phase. Const
    /// initialization keeps the TLS access itself allocation-free, and
    /// `try_with` keeps the allocator safe during thread teardown.
    static COUNT_THIS_THREAD: Cell<bool> = const { Cell::new(false) };
}

fn count(delta: u64) {
    ALLOCATIONS.fetch_add(delta, Ordering::Relaxed);
    if COUNT_THIS_THREAD.try_with(Cell::get).unwrap_or(false) {
        THREAD_ALLOCATIONS.fetch_add(delta, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count(1);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count(1);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Deterministic `(user, service, value)` stream, same shape as the bench.
fn stream(n: usize, users: usize, services: usize) -> Vec<(usize, usize, f64)> {
    let mut state = 0x2545_f491_4f6c_dd1d_u64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 33) as usize % users;
            let s = (state >> 13) as usize % services;
            let r = 0.2 + ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0;
            (u, s, r)
        })
        .collect()
}

#[test]
fn hot_paths_do_not_allocate_per_sample() {
    const USERS: usize = 32;
    const SERVICES: usize = 64;
    const SAMPLES: usize = 40_000;

    let data = stream(SAMPLES, USERS, SERVICES);

    // --- Phase 1: sequential observe is exactly allocation-free. ---
    let mut model = AmfModel::new(AmfConfig::response_time()).unwrap();
    // Warmup registers every entity (slab growth) and exercises each branch
    // of the update (trackers, clamps) before measurement starts.
    model.ensure_user(USERS - 1);
    model.ensure_service(SERVICES - 1);
    for &(u, s, r) in &data[..1000] {
        model.observe(u, s, r);
    }

    COUNT_THIS_THREAD.with(|flag| flag.set(true));
    let before = THREAD_ALLOCATIONS.load(Ordering::Relaxed);
    for &(u, s, r) in &data {
        model.observe(u, s, r);
    }
    let sequential_allocs = THREAD_ALLOCATIONS.load(Ordering::Relaxed) - before;
    COUNT_THIS_THREAD.with(|flag| flag.set(false));
    assert_eq!(
        sequential_allocs, 0,
        "sequential observe allocated {sequential_allocs} times over {SAMPLES} samples; \
         the fused slab kernel must stay off the heap"
    );

    // --- Phase 2: sharded dispatch/apply allocates per chunk, not per
    // sample. ---
    let options = EngineOptions::with_shards(4);
    let chunk = options.chunk_size;
    let mut engine = ShardedEngine::from_model(model, options).unwrap();
    // Warmup: every entity gets a stripe slot, every queue/journal/outbox
    // reaches steady capacity.
    engine.feed_batch(data.iter().copied());
    engine.drain();

    let before = allocations();
    engine.feed_batch(data.iter().copied());
    engine.drain();
    let engine_allocs = allocations() - before;

    // Each chunk costs a bounded number of allocations (the pending buffer
    // regrowing after `mem::take`, the channel send, amortized journal
    // growth); the per-sample budget must stay far below one. The bound is
    // generous — ~2 orders of magnitude above steady state — so it only
    // trips on a reintroduced per-sample clone, not on scheduler jitter.
    let chunks = SAMPLES.div_ceil(chunk) as u64;
    let budget = chunks * 64;
    assert!(
        engine_allocs < budget,
        "sharded ingest allocated {engine_allocs} times for {SAMPLES} samples \
         ({chunks} chunks); budget {budget} — a per-sample allocation crept in"
    );
    // And the model comes back out without touching the per-sample paths.
    let final_model = engine.into_model();
    assert!(final_model.update_count() >= (2 * SAMPLES + 1000) as u64 - SAMPLES as u64);
}
