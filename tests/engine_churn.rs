//! Integration: ShardedEngine under churn — users and services joining
//! (`ensure_user`/`ensure_service`) while shard workers are mid-stream —
//! must lose no updates, panic nowhere, and stay bit-identical to the
//! sequential model.

mod support;

use amf_core::{AmfConfig, AmfModel, EngineOptions, ShardedEngine};
use qos_service::{QosPredictionService, QosRecord, ServiceConfig};
use support::{factor_mismatch, qos_stream, sequential_reference, StreamSpec};

#[test]
fn joins_interleaved_with_feeding_lose_nothing() {
    let spec = StreamSpec {
        users: 12,
        services: 30,
        samples: 4_000,
        seed: 3,
    };
    let stream = qos_stream(spec);

    // Sequential reference: same interleaving of joins and observations.
    let mut reference = AmfModel::new(AmfConfig::response_time()).unwrap();
    let mut engine = ShardedEngine::new(
        AmfConfig::response_time(),
        EngineOptions {
            shards: 4,
            chunk_size: 32,
            ..EngineOptions::default()
        },
    )
    .unwrap();

    for (wave, chunk) in stream.chunks(500).enumerate() {
        // A churn wave between feed waves: brand-new ids join with no
        // observation, while workers are still applying the previous wave
        // (feed_batch only queues — no drain here).
        let new_user = spec.users + wave;
        let new_service = spec.services + 2 * wave;
        engine.ensure_user(new_user);
        engine.ensure_service(new_service);
        reference.ensure_user(new_user);
        reference.ensure_service(new_service);
        engine.feed_batch(chunk.iter().copied());
        for &(u, s, v) in chunk {
            reference.observe(u, s, v);
        }
    }
    let final_model = engine.into_model();
    assert_eq!(final_model.update_count(), stream.len() as u64);
    // Joined-but-never-observed entities exist and are predictable.
    assert!(final_model.num_users() > spec.users);
    assert!(final_model.num_services() > spec.services);
    assert!(final_model
        .predict(final_model.num_users() - 1, final_model.num_services() - 1)
        .is_some());
    assert_eq!(factor_mismatch(&reference, &final_model), None);
}

#[test]
fn join_of_entity_with_queued_samples_is_benign() {
    // ensure_* of an id that already has samples in flight must neither
    // reset its factors nor disturb its ticket sequence.
    let spec = StreamSpec {
        users: 6,
        services: 10,
        samples: 2_000,
        seed: 99,
    };
    let stream = qos_stream(spec);
    let reference = sequential_reference(AmfConfig::response_time(), &stream);

    let mut engine =
        ShardedEngine::new(AmfConfig::response_time(), EngineOptions::with_shards(3)).unwrap();
    for chunk in stream.chunks(100) {
        engine.feed_batch(chunk.iter().copied());
        for u in 0..spec.users {
            engine.ensure_user(u); // all hot ids, repeatedly, mid-flight
        }
        for s in 0..spec.services {
            engine.ensure_service(s);
        }
    }
    let got = engine.into_model();
    assert_eq!(factor_mismatch(&reference, &got), None);
}

#[test]
fn snapshots_between_churn_waves_are_consistent() {
    let spec = StreamSpec {
        users: 9,
        services: 14,
        samples: 1_500,
        seed: 21,
    };
    let stream = qos_stream(spec);
    let mut engine =
        ShardedEngine::new(AmfConfig::response_time(), EngineOptions::with_shards(2)).unwrap();

    let mut fed = 0u64;
    for chunk in stream.chunks(300) {
        engine.feed_batch(chunk.iter().copied());
        fed += chunk.len() as u64;
        let snap = engine.snapshot();
        assert_eq!(snap.update_count(), fed, "snapshot lost updates");
        // The snapshot is a plain sequential model: it keeps learning on its
        // own without touching the engine.
        let mut offline = snap;
        offline.observe(0, 0, 1.0);
        assert_eq!(offline.update_count(), fed + 1);
    }
    assert_eq!(engine.processed(), stream.len() as u64);
}

#[test]
fn service_layer_churn_with_sharded_ingestion() {
    // Names join, leave, and rejoin around sharded batch ingestion; identity
    // stays stable and every record lands in the model and database.
    let service = QosPredictionService::new(ServiceConfig {
        shards: 4,
        ..Default::default()
    });
    let record = |u: usize, s: usize, t: u64, v: f64| QosRecord {
        user: format!("u{u}"),
        service: format!("s{s}"),
        timestamp: t,
        value: v,
    };

    let mut total = 0u64;
    for wave in 0..5u64 {
        let joined = service.join_user(&format!("churn-{wave}"));
        let batch: Vec<QosRecord> = (0..200u64)
            .map(|k| {
                let t = wave * 200 + k;
                record(
                    (k % 7) as usize,
                    (k % 11) as usize,
                    t,
                    0.3 + (k % 9) as f64 * 0.5,
                )
            })
            .collect();
        total += batch.len() as u64;
        assert_eq!(service.submit_batch(batch), 200);
        assert!(service.leave_service(&format!("s{}", wave % 11)).is_some());
        // The joined-but-idle user is immediately predictable.
        assert!(service
            .predict(&format!("churn-{wave}"), "s0")
            .unwrap()
            .is_finite());
        assert_eq!(service.join_user(&format!("churn-{wave}")), joined);
    }
    let stats = service.stats();
    assert_eq!(stats.updates, total, "updates lost during churn");
    assert_eq!(stats.accepted, total, "guard must admit every clean record");
    assert_eq!(stats.rejected, 0);
    assert_eq!(service.database().observation_count() as u64, total);
}

#[test]
fn churn_with_worker_kill_stays_in_mae_band() {
    // The fault-injected churn variant: users join and services leave
    // between waves while a shard worker is killed mid-stream. Recovery
    // must lose nothing, so the faulted service's predictions stay within
    // a tight MAE band of (here: bitwise equal to) an unfaulted twin.
    use amf_core::{FaultPlan, KillPhase};
    use std::sync::Arc;

    let make = || {
        QosPredictionService::new(ServiceConfig {
            shards: 3,
            ..Default::default()
        })
    };
    let clean = make();
    let faulted = make();
    faulted.inject_fault_plan(Arc::new(FaultPlan::new(17).kill_worker(
        1,
        0,
        KillPhase::Mid,
    )));

    let record = |u: usize, s: usize, t: u64, v: f64| QosRecord {
        user: format!("u{u}"),
        service: format!("s{s}"),
        timestamp: t,
        value: v,
    };
    let mut total = 0u64;
    for wave in 0..5u64 {
        for svc in [&clean, &faulted] {
            svc.join_user(&format!("churn-{wave}"));
        }
        let batch: Vec<QosRecord> = (0..200u64)
            .map(|k| {
                let t = wave * 200 + k;
                record(
                    (k % 7) as usize,
                    (k % 11) as usize,
                    t,
                    0.3 + (k % 9) as f64 * 0.5,
                )
            })
            .collect();
        total += batch.len() as u64;
        assert_eq!(clean.submit_batch(batch.clone()), 200);
        assert_eq!(faulted.submit_batch(batch), 200);
        for svc in [&clean, &faulted] {
            svc.leave_service(&format!("s{}", wave % 11));
        }
    }

    let faults = faulted.fault_stats();
    assert_eq!(faults.worker_panics, 1, "the scripted kill must fire");
    assert_eq!(faults.samples_lost, 0);
    let stats = faulted.stats();
    assert_eq!(stats.updates, total, "recovery lost updates under churn");
    assert!(!stats.degraded);

    // MAE band: mean |faulted - clean| over the whole grid. Journal replay
    // gives exact parity, so the band is tight; the assertion allows a hair
    // of slack to stay meaningful if recovery semantics ever relax.
    let mut diff = 0.0;
    let mut n = 0usize;
    for u in 0..7 {
        for s in 0..11 {
            let a = clean.predict_ids(u, s).unwrap();
            let b = faulted.predict_ids(u, s).unwrap();
            assert!(a.is_finite() && b.is_finite());
            diff += (a - b).abs();
            n += 1;
        }
    }
    assert!(
        diff / n as f64 <= 1e-9,
        "MAE drift {} after recovery",
        diff / n as f64
    );
}

#[test]
fn many_engines_start_and_stop_cleanly() {
    // Worker threads must always shut down (Drop path included), even when
    // the engine is abandoned with work still queued.
    let stream = qos_stream(StreamSpec {
        users: 5,
        services: 8,
        samples: 400,
        seed: 55,
    });
    for shards in [1usize, 2, 8] {
        for _ in 0..3 {
            let mut engine = ShardedEngine::new(
                AmfConfig::response_time(),
                EngineOptions::with_shards(shards),
            )
            .unwrap();
            engine.feed_batch(stream.iter().copied());
            drop(engine); // no drain: Drop joins the workers
        }
    }
}
