//! Integration: fault tolerance end to end — deterministic worker crashes
//! mid-stream must lose no accepted samples and preserve bitwise parity
//! with the sequential reference; dirty input streams must be quarantined
//! with exact accounting and train to (at least) the clean model's accuracy;
//! prediction must stay finite and error-free throughout.

mod support;

use amf_core::{AmfConfig, EngineOptions, FaultPlan, KillPhase, ShardedEngine};
use qos_service::{PredictionSource, QosPredictionService, QosRecord, ServiceConfig};
use std::sync::Arc;
use support::{
    factor_mismatch, inject_garbage, model_mae, planted_stream, qos_stream, sequential_reference,
    StreamSpec,
};

fn plan(kill_worker: usize, at_job: u64, phase: KillPhase) -> Arc<FaultPlan> {
    Arc::new(FaultPlan::new(0xFA_17).kill_worker(kill_worker, at_job, phase))
}

#[test]
fn killing_any_single_worker_loses_nothing() {
    let spec = StreamSpec {
        users: 10,
        services: 24,
        samples: 2_400,
        seed: 77,
    };
    let stream = qos_stream(spec);
    let reference = sequential_reference(AmfConfig::response_time(), &stream);
    let options = EngineOptions {
        shards: 3,
        chunk_size: 16,
        ..EngineOptions::default()
    };

    for victim in 0..options.shards {
        for phase in [KillPhase::Before, KillPhase::Mid] {
            let model = amf_core::AmfModel::new(AmfConfig::response_time()).unwrap();
            let mut engine =
                ShardedEngine::from_model_with_plan(model, options, Some(plan(victim, 2, phase)))
                    .unwrap();
            engine.feed_batch(stream.iter().copied());
            engine.drain();
            let faults = engine.fault_stats();
            assert_eq!(
                faults.worker_panics, 1,
                "worker {victim} {phase:?}: expected exactly one crash"
            );
            assert_eq!(faults.respawns, 1, "worker {victim} {phase:?}");
            assert_eq!(
                faults.samples_lost, 0,
                "worker {victim} {phase:?}: accepted samples lost"
            );
            assert!(!engine.is_degraded());
            let recovered = engine.into_model();
            assert_eq!(recovered.update_count(), stream.len() as u64);
            assert_eq!(
                factor_mismatch(&reference, &recovered),
                None,
                "worker {victim} {phase:?}: recovery broke parity"
            );
        }
    }
}

#[test]
fn predictions_stay_finite_during_faulted_ingestion() {
    let service = QosPredictionService::new(ServiceConfig {
        shards: 3,
        ..Default::default()
    });
    // Each submit_batch builds a fresh engine whose per-worker job counter
    // restarts at 0, so the kills target job 0 (with the default chunk size
    // a 250-record wave is a single job per worker). Kills fire once across
    // the whole plan lifetime.
    service.inject_fault_plan(Arc::new(
        FaultPlan::new(3)
            .kill_worker(0, 0, KillPhase::Mid)
            .kill_worker(2, 0, KillPhase::Before),
    ));
    let record = |u: usize, s: usize, t: u64, v: f64| QosRecord {
        user: format!("u{u}"),
        service: format!("s{s}"),
        timestamp: t,
        value: v,
    };

    let mut total = 0u64;
    for wave in 0..6u64 {
        let batch: Vec<QosRecord> = (0..250u64)
            .map(|k| {
                let t = wave * 250 + k;
                record(
                    (k % 8) as usize,
                    (k % 12) as usize,
                    t,
                    0.2 + (k % 10) as f64 * 0.4,
                )
            })
            .collect();
        total += batch.len() as u64;
        assert_eq!(service.submit_batch(batch), 250);
        // Mid-recovery prediction: every pair (known, unknown, mixed) must
        // come back finite, never an error.
        for u in 0..10 {
            for s in 0..14 {
                let p = service.predict_degraded(&format!("u{u}"), &format!("s{s}"));
                assert!(p.value.is_finite(), "wave {wave} u{u}/s{s}: {p:?}");
            }
        }
    }
    let stats = service.stats();
    assert_eq!(stats.updates, total, "accepted samples lost to crashes");
    assert_eq!(stats.accepted, total);
    assert!(!stats.degraded, "all crashes must have been recovered");
    let faults = service.fault_stats();
    assert_eq!(faults.worker_panics, 2);
    assert_eq!(faults.samples_lost, 0);
    assert!(faults.jobs_replayed > 0, "recovery must replay the journal");
}

#[test]
fn five_percent_garbage_trains_within_two_percent_of_clean_mae() {
    let spec = StreamSpec {
        users: 12,
        services: 18,
        samples: 6_000,
        seed: 11,
    };
    let clean = planted_stream(spec);
    let (dirty, injected) = inject_garbage(&clean, 0.05, 42);
    assert!(injected > 0, "garbage injection produced nothing");
    assert_eq!(dirty.len(), clean.len() + injected);

    let record = |(u, s, v): (usize, usize, f64), t: u64| QosRecord {
        user: format!("u{u}"),
        service: format!("s{s}"),
        timestamp: t,
        value: v,
    };
    let train = |stream: &[(usize, usize, f64)]| {
        let svc = QosPredictionService::new(ServiceConfig {
            shards: 2,
            ..Default::default()
        });
        let batch: Vec<QosRecord> = stream
            .iter()
            .enumerate()
            .map(|(t, &s)| record(s, t as u64))
            .collect();
        svc.submit_batch(batch);
        svc
    };

    let clean_svc = train(&clean);
    let dirty_svc = train(&dirty);

    // Exact accounting: every record is either accepted or quarantined.
    let clean_stats = clean_svc.stats();
    let dirty_stats = dirty_svc.stats();
    assert_eq!(clean_stats.rejected, 0);
    assert_eq!(clean_stats.accepted, clean.len() as u64);
    assert_eq!(dirty_stats.rejected, injected as u64, "all garbage caught");
    assert_eq!(
        dirty_stats.accepted,
        clean.len() as u64,
        "no clean sample lost"
    );
    assert_eq!(
        dirty_stats.accepted + dirty_stats.rejected,
        dirty.len() as u64
    );
    assert_eq!(dirty_stats.updates, clean.len() as u64);

    // Accuracy: the quarantine removes the garbage entirely, so the dirty
    // model must be within 2% of the clean model's MAE (here: identical
    // stream after screening).
    let clean_mae = {
        let mut total = 0.0;
        let mut n = 0;
        for u in 0..spec.users {
            for s in 0..spec.services {
                if let Some(p) = clean_svc.predict_ids(u, s) {
                    total += (p - support::planted_truth(u, s)).abs();
                    n += 1;
                }
            }
        }
        total / n as f64
    };
    let dirty_mae = {
        let mut total = 0.0;
        let mut n = 0;
        for u in 0..spec.users {
            for s in 0..spec.services {
                if let Some(p) = dirty_svc.predict_ids(u, s) {
                    total += (p - support::planted_truth(u, s)).abs();
                    n += 1;
                }
            }
        }
        total / n as f64
    };
    assert!(
        dirty_mae <= clean_mae * 1.02 + 1e-12,
        "dirty MAE {dirty_mae} vs clean MAE {clean_mae}"
    );
}

#[test]
fn mutated_stream_drop_dup_reorder_still_trains() {
    // Transport-level faults (paper-external, but what a real deployment
    // sees): lost, duplicated, and reordered observations. The engine must
    // ingest the mutated stream fully; the model stays finite everywhere.
    let spec = StreamSpec {
        users: 8,
        services: 15,
        samples: 3_000,
        seed: 5,
    };
    let stream = planted_stream(spec);
    let plan = FaultPlan::new(99)
        .drop_rate(0.05)
        .duplicate_rate(0.05)
        .reorder_window(6);
    let mutated = plan.mutate_stream(&stream);
    assert_ne!(mutated.len(), 0);

    let mut engine = ShardedEngine::new(
        AmfConfig::response_time(),
        EngineOptions {
            shards: 2,
            chunk_size: 32,
            ..EngineOptions::default()
        },
    )
    .unwrap();
    engine.feed_batch(mutated.iter().copied());
    engine.drain();
    let model = engine.into_model();
    assert_eq!(model.update_count(), mutated.len() as u64);
    // Duplicates and reordering shift which samples trained, but accuracy
    // on the planted structure stays in a sane band.
    let mae = model_mae(&model, spec.users, spec.services);
    assert!(mae.is_finite() && mae < 2.0, "MAE {mae} out of band");
}

#[test]
fn relaxed_mode_survives_kill_and_stall_plans() {
    // The relaxed lane under the same fault scripts the parity engine
    // faces. The guarantee is deliberately weaker — at-least-once resume
    // from progress watermarks instead of exactly-once journal replay (the
    // relaxed lane keeps no journal) — so instead of bitwise parity we
    // assert: nothing lost, every sample counted once, finite predictions,
    // and accuracy drift bounded against the sequential reference.
    let spec = StreamSpec {
        users: 10,
        services: 24,
        samples: 2_400,
        seed: 77,
    };
    let stream = qos_stream(spec);
    let reference = sequential_reference(AmfConfig::response_time(), &stream);
    let reference_mre = reference
        .windowed_accuracy()
        .mre
        .expect("window is populated");

    for phase in [KillPhase::Before, KillPhase::Mid] {
        for victim in 0..3 {
            let fault = Arc::new(
                FaultPlan::new(0xFA_17)
                    .kill_worker(victim, 2, phase)
                    .stall_worker((victim + 1) % 3, 5, std::time::Duration::from_millis(2)),
            );
            let mut engine = ShardedEngine::from_model_with_plan(
                amf_core::AmfModel::new(AmfConfig::response_time()).unwrap(),
                EngineOptions {
                    relaxed_batch: 256,
                    ..EngineOptions::with_consistency(3, amf_core::Consistency::Relaxed)
                },
                Some(fault),
            )
            .unwrap();
            engine.feed_batch(stream.iter().copied());
            engine.drain();
            let faults = engine.fault_stats();
            assert_eq!(faults.worker_panics, 1, "worker {victim} {phase:?}");
            assert_eq!(faults.respawns, 1, "worker {victim} {phase:?}");
            assert_eq!(faults.samples_lost, 0, "worker {victim} {phase:?}");
            assert!(!engine.is_degraded());
            let recovered = engine.into_model();
            // At-least-once application, exactly-once counting.
            assert_eq!(recovered.update_count(), stream.len() as u64);
            for u in 0..spec.users {
                for s in 0..spec.services {
                    let p = recovered.predict(u, s).expect("pair universe is dense");
                    assert!(p.is_finite(), "worker {victim} {phase:?} ({u},{s}): {p}");
                }
            }
            let mre = recovered
                .windowed_accuracy()
                .mre
                .expect("window is populated");
            // Drift bound: this stream is short (2.4k samples over 10
            // users), so the merged accuracy window is noisier than the 8k
            // golden stream `tests/relaxed_parity.rs` pins at ±0.04; a
            // genuine lost update or torn read still lands far outside
            // half the reference MRE.
            assert!(
                (mre - reference_mre).abs() <= 0.08_f64.max(0.5 * reference_mre),
                "worker {victim} {phase:?}: relaxed MRE {mre} drifted from {reference_mre}"
            );
        }
    }
}

#[test]
fn relaxed_mode_ingests_mutated_stream_fully() {
    // Transport faults (drop/duplicate/reorder) on top of the relaxed lane:
    // the duplicated and reordered samples are exactly the perturbations
    // relaxed consistency is robust to by design.
    let spec = StreamSpec {
        users: 8,
        services: 15,
        samples: 3_000,
        seed: 5,
    };
    let stream = planted_stream(spec);
    let plan = FaultPlan::new(99)
        .drop_rate(0.05)
        .duplicate_rate(0.05)
        .reorder_window(6);
    let mutated = plan.mutate_stream(&stream);
    assert_ne!(mutated.len(), 0);

    let mut engine = ShardedEngine::new(
        AmfConfig::response_time(),
        EngineOptions {
            relaxed_batch: 512,
            ..EngineOptions::with_consistency(4, amf_core::Consistency::Relaxed)
        },
    )
    .unwrap();
    engine.feed_batch(mutated.iter().copied());
    engine.drain();
    let model = engine.into_model();
    assert_eq!(model.update_count(), mutated.len() as u64);
    let mae = model_mae(&model, spec.users, spec.services);
    assert!(mae.is_finite() && mae < 2.0, "MAE {mae} out of band");
}

#[test]
fn abandoned_worker_degrades_but_serves() {
    // A worker that dies more often than the respawn budget allows is
    // abandoned: its queued samples are lost, the engine reports degraded —
    // but the service keeps ingesting and predicting.
    let service = QosPredictionService::new(ServiceConfig {
        shards: 2,
        ..Default::default()
    });
    let mut hammer = FaultPlan::new(13);
    for k in 0..64 {
        hammer = hammer.kill_worker(0, k, KillPhase::Before);
    }
    service.inject_fault_plan(Arc::new(hammer));
    let batch: Vec<QosRecord> = (0..2_000u64)
        .map(|k| QosRecord {
            user: format!("u{}", k % 5),
            service: format!("s{}", k % 9),
            timestamp: k,
            value: 0.5 + (k % 3) as f64,
        })
        .collect();
    service.submit_batch(batch);
    let stats = service.stats();
    let faults = service.fault_stats();
    assert!(faults.worker_panics > 1);
    if faults.abandoned_workers > 0 {
        assert!(stats.degraded, "lost samples must flip the degraded flag");
        assert!(faults.samples_lost > 0);
        assert_eq!(
            stats.updates + faults.samples_lost,
            stats.accepted,
            "every accepted sample is either applied or counted lost"
        );
    } else {
        assert_eq!(stats.updates, stats.accepted);
    }
    // Degraded or not: predictions remain finite for every known pair.
    for u in 0..5 {
        for s in 0..9 {
            let p = service.predict_degraded(&format!("u{u}"), &format!("s{s}"));
            assert!(p.value.is_finite(), "u{u}/s{s}: {p:?}");
            assert_ne!(p.source, PredictionSource::Default, "data exists");
        }
    }
}
