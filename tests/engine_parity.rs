//! Integration: sequential-vs-sharded parity.
//!
//! The headline correctness artifact of the sharded engine: on a fixed-seed
//! stream, per-entity update sequences are identical to the sequential
//! trainer's, and the end state is not merely "close" — it is bit-for-bit
//! equal at every shard count, because updates on disjoint entities commute
//! exactly and per-entity order pins down every update's inputs.

mod support;

use amf_core::{AmfConfig, AmfModel, AmfTrainer, EngineOptions, ShardedEngine};
use qos_metrics::AccuracySummary;
use support::{factor_mismatch, qos_stream, sequential_reference, StreamSpec};

fn run_sharded(stream: &[(usize, usize, f64)], options: EngineOptions) -> AmfModel {
    let mut engine =
        ShardedEngine::new(AmfConfig::response_time(), options).expect("valid options");
    engine.feed_batch(stream.iter().copied());
    engine.into_model()
}

#[test]
fn sharded_equals_sequential_at_every_shard_count() {
    let stream = qos_stream(StreamSpec::default_parity());
    let reference = sequential_reference(AmfConfig::response_time(), &stream);
    for shards in [1usize, 2, 4, 8] {
        let sharded = run_sharded(&stream, EngineOptions::with_shards(shards));
        assert_eq!(
            factor_mismatch(&reference, &sharded),
            None,
            "at {shards} shards"
        );
        assert_eq!(sharded.update_count(), stream.len() as u64);
    }
}

#[test]
fn per_entity_update_sequences_match_stream_order() {
    let spec = StreamSpec {
        users: 10,
        services: 25,
        samples: 3_000,
        seed: 77,
    };
    let stream = qos_stream(spec);
    let mut engine = ShardedEngine::new(
        AmfConfig::response_time(),
        EngineOptions {
            shards: 4,
            chunk_size: 64,
            record_history: true,
            ..EngineOptions::default()
        },
    )
    .expect("valid options");
    engine.feed_batch(stream.iter().copied());
    engine.drain();

    // Every entity's applied-sample log is exactly the stream filtered to
    // that entity — the sequential trainer's per-entity update sequence.
    for user in 0..spec.users {
        let expected: Vec<u64> = stream
            .iter()
            .enumerate()
            .filter(|(_, &(u, _, _))| u == user)
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(engine.user_history(user).unwrap(), expected, "user {user}");
    }
    for service in 0..spec.services {
        let expected: Vec<u64> = stream
            .iter()
            .enumerate()
            .filter(|(_, &(_, s, _))| s == service)
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(
            engine.service_history(service).unwrap(),
            expected,
            "service {service}"
        );
    }
}

#[test]
fn parity_is_deterministic_across_three_runs() {
    let stream = qos_stream(StreamSpec::default_parity());
    let options = EngineOptions {
        shards: 4,
        chunk_size: 128,
        ..EngineOptions::default()
    };
    let first = run_sharded(&stream, options);
    for run in 1..3 {
        let again = run_sharded(&stream, options);
        assert_eq!(factor_mismatch(&first, &again), None, "run {run}");
    }
}

#[test]
fn end_of_stream_mae_matches_sequential() {
    let spec = StreamSpec::default_parity();
    let stream = qos_stream(spec);
    let reference = sequential_reference(AmfConfig::response_time(), &stream);
    let sharded = run_sharded(&stream, EngineOptions::with_shards(4));

    // Score both models against the tail of the stream (the freshest truth).
    let tail = &stream[stream.len() - 1_000..];
    let actual: Vec<f64> = tail.iter().map(|&(_, _, v)| v).collect();
    let score = |m: &AmfModel| {
        let predicted: Vec<f64> = tail
            .iter()
            .map(|&(u, s, _)| m.predict(u, s).expect("observed pair"))
            .collect();
        AccuracySummary::evaluate(&actual, &predicted)
            .expect("non-empty")
            .mae
    };
    let (seq_mae, shard_mae) = (score(&reference), score(&sharded));
    assert!(seq_mae.is_finite() && seq_mae > 0.0);
    // Bitwise parity implies the MAEs agree to the last ulp; the tolerance
    // is only here so the assertion reads as the acceptance criterion.
    assert!(
        (seq_mae - shard_mae).abs() <= 1e-12 * seq_mae.max(1.0),
        "sequential MAE {seq_mae} vs sharded MAE {shard_mae}"
    );
}

#[test]
fn trainer_batch_path_preserves_replay_behaviour() {
    // The trainer-level sharded path must leave the observation store (and
    // thus idle-time replay) exactly as sequential feeding would.
    let spec = StreamSpec {
        users: 8,
        services: 16,
        samples: 600,
        seed: 13,
    };
    let stream = qos_stream(spec);
    let timestamped: Vec<(usize, usize, u64, f64)> = stream
        .iter()
        .enumerate()
        .map(|(k, &(u, s, v))| (u, s, k as u64, v))
        .collect();

    let mut sequential = AmfTrainer::new(AmfConfig::response_time()).unwrap();
    for &(u, s, t, v) in &timestamped {
        sequential.feed(u, s, t, v);
    }
    let mut sharded = AmfTrainer::new(AmfConfig::response_time()).unwrap();
    sharded
        .feed_batch_sharded(timestamped.iter().copied(), EngineOptions::with_shards(3))
        .unwrap();

    assert_eq!(sequential.store().len(), sharded.store().len());
    assert_eq!(sequential.now(), sharded.now());
    assert_eq!(factor_mismatch(sequential.model(), sharded.model()), None);

    // Replay draws from the same store with the same trainer RNG stream, so
    // even post-replay state stays identical.
    let options = amf_core::trainer::ReplayOptions {
        max_iterations: 2_000,
        min_iterations: 0,
        window: 500,
        tolerance: 1e-3,
        patience: 2,
    };
    sequential.replay_until_converged(options);
    sharded.replay_until_converged(options);
    assert_eq!(factor_mismatch(sequential.model(), sharded.model()), None);
}
