//! Shared test support for the engine integration suites: a fixed-seed QoS
//! stream generator, so `engine_parity` and `engine_churn` drive the exact
//! same workload shape, and model-comparison helpers.

use amf_core::AmfModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a generated stream.
#[derive(Debug, Clone, Copy)]
pub struct StreamSpec {
    /// User-id universe (`0..users`).
    pub users: usize,
    /// Service-id universe (`0..services`).
    pub services: usize,
    /// Number of samples.
    pub samples: usize,
    /// RNG seed; equal specs yield identical streams.
    pub seed: u64,
}

impl StreamSpec {
    /// The spec both engine suites default to.
    #[allow(dead_code)] // each integration target compiles its own copy
    pub fn default_parity() -> Self {
        Self {
            users: 25,
            services: 70,
            samples: 8_000,
            seed: 0xA3F0_51DE,
        }
    }
}

/// Deterministic `(user, service, raw QoS)` stream: uniformly random pairs
/// with response-time-like values in `(0.05, 18.0)` seconds.
pub fn qos_stream(spec: StreamSpec) -> Vec<(usize, usize, f64)> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    (0..spec.samples)
        .map(|_| {
            let user = rng.random_range(0..spec.users);
            let service = rng.random_range(0..spec.services);
            let value = 0.05 + rng.random::<f64>() * 17.95;
            (user, service, value)
        })
        .collect()
}

/// Feeds the stream to a fresh sequential model — the reference the sharded
/// engine must match.
#[allow(dead_code)] // each integration target compiles its own copy
pub fn sequential_reference(
    config: amf_core::AmfConfig,
    stream: &[(usize, usize, f64)],
) -> AmfModel {
    let mut model = AmfModel::new(config).expect("valid config");
    for &(u, s, v) in stream {
        model.observe(u, s, v);
    }
    model
}

/// Deterministic *learnable* stream: the value of a pair is a fixed function
/// of `(user, service)`, so a trained model's accuracy against
/// [`planted_truth`] is measurable with [`model_mae`].
#[allow(dead_code)] // each integration target compiles its own copy
pub fn planted_stream(spec: StreamSpec) -> Vec<(usize, usize, f64)> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    (0..spec.samples)
        .map(|_| {
            let user = rng.random_range(0..spec.users);
            let service = rng.random_range(0..spec.services);
            (user, service, planted_truth(user, service))
        })
        .collect()
}

/// Ground-truth QoS of a pair in [`planted_stream`]: response-time-like
/// values in roughly (0.4, 4.0) seconds.
#[allow(dead_code)] // each integration target compiles its own copy
pub fn planted_truth(user: usize, service: usize) -> f64 {
    0.4 + ((user * 13 + service * 7) % 11) as f64 * 0.33
}

/// Mean absolute error of a model's predictions against [`planted_truth`]
/// over the full `users x services` grid.
#[allow(dead_code)] // each integration target compiles its own copy
pub fn model_mae(model: &AmfModel, users: usize, services: usize) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for u in 0..users {
        for s in 0..services {
            if let Some(p) = model.predict(u, s) {
                total += (p - planted_truth(u, s)).abs();
                n += 1;
            }
        }
    }
    assert!(n > 0, "no predictable pairs");
    total / n as f64
}

/// Splices garbage samples (NaN, negative, absurdly large) into a stream at
/// a deterministic `rate`, returning the dirty stream and the number of
/// garbage samples inserted. Clean samples keep their relative order.
#[allow(dead_code)] // each integration target compiles its own copy
pub fn inject_garbage(
    stream: &[(usize, usize, f64)],
    rate: f64,
    seed: u64,
) -> (Vec<(usize, usize, f64)>, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dirty = Vec::with_capacity(stream.len());
    let mut injected = 0usize;
    for &(u, s, v) in stream {
        if rng.random::<f64>() < rate {
            let garbage = match injected % 3 {
                0 => f64::NAN,
                1 => -1.5,
                _ => 1.0e7,
            };
            dirty.push((u, s, garbage));
            injected += 1;
        }
        dirty.push((u, s, v));
    }
    (dirty, injected)
}

/// Bitwise equality of two models' entire entity state, through the public
/// API. Returns a description of the first mismatch, if any.
#[allow(dead_code)] // each integration target compiles its own copy
pub fn factor_mismatch(a: &AmfModel, b: &AmfModel) -> Option<String> {
    if a.num_users() != b.num_users() || a.num_services() != b.num_services() {
        return Some(format!(
            "shape: {}x{} vs {}x{}",
            a.num_users(),
            a.num_services(),
            b.num_users(),
            b.num_services()
        ));
    }
    for u in 0..a.num_users() {
        if a.user_factors(u) != b.user_factors(u) {
            return Some(format!("user {u} factors differ"));
        }
        if a.user_error(u) != b.user_error(u) {
            return Some(format!("user {u} tracker differs"));
        }
    }
    for s in 0..a.num_services() {
        if a.service_factors(s) != b.service_factors(s) {
            return Some(format!("service {s} factors differ"));
        }
        if a.service_error(s) != b.service_error(s) {
            return Some(format!("service {s} tracker differs"));
        }
    }
    None
}
