//! Golden-trace conformance: a fixed seeded stream through the full hot
//! pipeline — guard → sharded engine → predictions — must reproduce a
//! committed fixture to 1e-12.
//!
//! The engine suites already pin *internal* consistency (sharded ==
//! sequential, replay == no-fault). This suite pins *external* behavior
//! across time: if any change to the transform, the SGD step, the adaptive
//! weights, the guard's admission rules, or the engine's ordering shifts a
//! prediction or a final EMA by more than 1e-12, the fixture diff says so —
//! and says exactly which value moved. Observability instrumentation in
//! particular must never perturb the numerics; this test is the proof.
//!
//! Regenerating after an *intentional* numeric change:
//!
//! ```text
//! GOLDEN_TRACE_REGEN=1 cargo test -p qos-eval --test golden_trace
//! ```
//!
//! then commit the updated `tests/fixtures/golden_trace.txt` and explain the
//! shift in the PR description.

use amf_core::{AmfConfig, AmfModel, EngineOptions, GuardConfig, SampleGuard, ShardedEngine};
use std::fmt::Write as _;
use std::path::PathBuf;

const USERS: usize = 12;
const SERVICES: usize = 20;
const SAMPLES: usize = 2_000;
const SEED: u64 = 0x5EED_600D;
const TOLERANCE: f64 = 1e-12;

/// Probe grid: every pair in the upper-left corner of the matrix.
const PROBE_USERS: usize = 6;
const PROBE_SERVICES: usize = 8;

fn fixture_path() -> PathBuf {
    // The test is registered from crates/eval, so the manifest dir is two
    // levels below the repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/golden_trace.txt")
}

/// Deterministic raw stream. ~5% of the samples are deliberately invalid
/// (NaN, negative, absurdly large) so the guard's admission decisions are
/// part of the pinned behavior, not just the model arithmetic.
fn raw_stream() -> Vec<(usize, usize, f64)> {
    let mut state = SEED.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        state >> 11
    };
    (0..SAMPLES)
        .map(|_| {
            let user = next() as usize % USERS;
            let service = next() as usize % SERVICES;
            let roll = next() % 100;
            let value = if roll < 2 {
                f64::NAN
            } else if roll < 4 {
                -0.5
            } else if roll < 5 {
                1.0e9
            } else {
                0.05 + (next() % 17_950) as f64 / 1_000.0
            };
            (user, service, value)
        })
        .collect()
}

/// Runs the pipeline and renders the canonical trace document: admission
/// tallies, probe-grid predictions, and the final per-entity EMA errors.
/// Floats are printed with 17 significant digits — enough to round-trip an
/// f64 exactly, so the committed fixture *is* the bit pattern.
fn render_trace() -> String {
    let config = AmfConfig::response_time();
    let mut guard = SampleGuard::new(GuardConfig {
        outlier_gate: false,
        ..GuardConfig::for_amf(&config)
    });
    let mut engine = ShardedEngine::new(
        config,
        EngineOptions {
            shards: 4,
            ..EngineOptions::default()
        },
    )
    .expect("valid engine options");

    let mut admitted = Vec::new();
    for (user, service, value) in raw_stream() {
        if guard.admit(user, service, value).is_ok() {
            admitted.push((user, service, value));
        }
    }
    engine.feed_batch(admitted.iter().copied());
    let model: AmfModel = engine.into_model();

    let stats = guard.stats();
    let mut out = String::new();
    let _ = writeln!(out, "golden-trace/v1");
    let _ = writeln!(
        out,
        "stream users={USERS} services={SERVICES} samples={SAMPLES} seed={SEED:#x}"
    );
    let _ = writeln!(
        out,
        "guard accepted={} rejected={}",
        stats.accepted,
        stats.rejected()
    );
    let _ = writeln!(out, "updates {}", model.update_count());
    for user in 0..PROBE_USERS {
        for service in 0..PROBE_SERVICES {
            let p = model.predict(user, service).expect("probe pair is known");
            let _ = writeln!(out, "predict {user} {service} {p:.17e}");
        }
    }
    for user in 0..USERS {
        let e = model.user_error(user).expect("user is known");
        let _ = writeln!(out, "e_u {user} {e:.17e}");
    }
    for service in 0..SERVICES {
        let e = model.service_error(service).expect("service is known");
        let _ = writeln!(out, "e_s {service} {e:.17e}");
    }
    // Streaming-accuracy telemetry is part of the pinned surface: the
    // windowed MRE/NMAE over the last ACCURACY_WINDOW admitted samples
    // (merged deterministically from the per-shard windows), and the drift
    // sentinel's alarm counts — which must stay at zero on this stationary
    // stream (a nonzero count here is a false alarm by construction).
    let accuracy = model.windowed_accuracy();
    let _ = writeln!(
        out,
        "mre {:.17e}",
        accuracy.mre.expect("window is non-empty")
    );
    let _ = writeln!(
        out,
        "nmae {:.17e}",
        accuracy.nmae.expect("window is non-empty")
    );
    let (alarms_user, alarms_service) = model.drift_sentinel().alarms();
    let _ = writeln!(
        out,
        "drift alarms user={alarms_user} service={alarms_service}"
    );
    out
}

/// Parses `name idx... value` float lines into `(label, value)` pairs and
/// passes exact lines (headers, counts) through as `(line, NaN)` markers.
fn parse(doc: &str) -> Vec<(String, Option<f64>)> {
    doc.lines()
        .map(|line| {
            let mut parts = line.rsplitn(2, ' ');
            let last = parts.next().unwrap_or("");
            if matches!(
                line.split(' ').next(),
                Some("predict" | "e_u" | "e_s" | "mre" | "nmae")
            ) {
                let label = parts.next().unwrap_or("").to_string();
                (label, last.parse::<f64>().ok())
            } else {
                (line.to_string(), None)
            }
        })
        .collect()
}

#[test]
fn pipeline_matches_committed_fixture() {
    let rendered = render_trace();
    let path = fixture_path();

    if std::env::var_os("GOLDEN_TRACE_REGEN").is_some() {
        std::fs::write(&path, &rendered).expect("write fixture");
        eprintln!("golden_trace: fixture regenerated at {}", path.display());
        return;
    }

    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with \
             GOLDEN_TRACE_REGEN=1 cargo test -p qos-eval --test golden_trace",
            path.display()
        )
    });

    let want = parse(&committed);
    let got = parse(&rendered);
    assert_eq!(
        want.len(),
        got.len(),
        "fixture has {} lines, run produced {}",
        want.len(),
        got.len()
    );
    for ((want_label, want_value), (got_label, got_value)) in want.iter().zip(&got) {
        assert_eq!(want_label, got_label, "trace line order changed");
        match (want_value, got_value) {
            (None, None) => {}
            (Some(w), Some(g)) => {
                assert!(
                    (w - g).abs() <= TOLERANCE,
                    "{want_label}: fixture {w:.17e} vs run {g:.17e} \
                     (|diff| = {:.3e} > {TOLERANCE:.0e})",
                    (w - g).abs()
                );
            }
            _ => panic!("{want_label}: line shape changed between fixture and run"),
        }
    }
}

#[test]
fn trace_is_reproducible_within_process() {
    // Two runs in the same process must agree bit-for-bit — this separates
    // "the fixture drifted" (cross-version change) from "the pipeline is
    // nondeterministic" (a real ordering bug) when the conformance test
    // fails.
    assert_eq!(render_trace(), render_trace());
}
