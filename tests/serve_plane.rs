//! Integration suite for the hardened serving plane (DESIGN.md §14):
//! exact accept/shed accounting under concurrent producers, a
//! malformed-HTTP corpus that must never panic a worker, admission-control
//! fast-rejects under overload, and the load harness driven end-to-end
//! against a live plane with the acceptance fault plan
//! (`conn-reset@0.05,slow-read@0.02`).

use amf_core::FaultPlan;
use qos_serve::{ClientConfig, LoadConfig, LoadMode, LoadRunner, ServeConfig, ServePlane};
use qos_service::{QosPredictionService, QosRecord, ServiceConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn service(queue_capacity: usize) -> Arc<QosPredictionService> {
    Arc::new(QosPredictionService::new(ServiceConfig {
        input_queue_capacity: queue_capacity,
        ..ServiceConfig::default()
    }))
}

fn plane(config: ServeConfig, queue_capacity: usize) -> ServePlane {
    ServePlane::start("127.0.0.1:0", service(queue_capacity), config).expect("bind plane")
}

/// Sends raw bytes and reads whatever comes back (empty when the server
/// just closes).
fn raw_exchange(addr: SocketAddr, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(raw).expect("write");
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    response
}

/// Every sample offered by N concurrent producers against a bounded input
/// queue is EXACTLY one of accepted or shed — nothing lost, nothing
/// double-counted: the accepted total equals what the drain applies.
#[test]
fn offer_accounting_is_exact_under_concurrent_producers() {
    const PRODUCERS: usize = 8;
    const PER_PRODUCER: u64 = 400;
    let svc = service(64); // capacity far below the offered volume

    let accepted = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let drained = AtomicU64::new(0);
    let (svc, accepted_ref, shed_ref, drained_ref) = (&svc, &accepted, &shed, &drained);
    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            scope.spawn(move || {
                for i in 0..PER_PRODUCER {
                    let record = QosRecord {
                        user: format!("user-{}", p % 5),
                        service: format!("svc-{}", i % 7),
                        timestamp: i,
                        value: 0.25 + (i % 13) as f64 * 0.1,
                    };
                    if svc.offer(record) {
                        accepted_ref.fetch_add(1, Ordering::Relaxed);
                    } else {
                        shed_ref.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        // A concurrent consumer keeps the queue moving, like the serve
        // workers do per-request.
        scope.spawn(move || loop {
            let n = svc.drain_inputs() as u64;
            drained_ref.fetch_add(n, Ordering::Relaxed);
            if n == 0
                && accepted_ref.load(Ordering::Relaxed) + shed_ref.load(Ordering::Relaxed)
                    == (PRODUCERS as u64) * PER_PRODUCER
            {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        });
    });
    // Producers are done; whatever is still queued drains now.
    drained.fetch_add(svc.drain_inputs() as u64, Ordering::Relaxed);

    let accepted = accepted.load(Ordering::Relaxed);
    let shed = shed.load(Ordering::Relaxed);
    let drained = drained.load(Ordering::Relaxed);
    assert_eq!(
        accepted + shed,
        (PRODUCERS as u64) * PER_PRODUCER,
        "every sample got exactly one verdict"
    );
    assert_eq!(
        drained, accepted,
        "every accepted sample was applied exactly once (no loss, no dup)"
    );
    assert!(
        shed > 0,
        "the bounded queue actually shed under this volume"
    );
}

/// Malformed requests get clean 4xx answers — never a worker panic, on any
/// corpus entry. (CI runs this in both the default and single-threaded
/// test lanes.)
#[test]
fn malformed_http_corpus_gets_4xx_never_panics() {
    let plane = plane(
        ServeConfig {
            max_body_bytes: 1024,
            io_timeout: Duration::from_millis(500),
            ..ServeConfig::default()
        },
        256,
    );
    let addr = plane.local_addr();

    // (raw request bytes, expected status-line prefix or "" for
    // connection-closed-without-response)
    let corpus: Vec<(Vec<u8>, &str)> = vec![
        // not HTTP at all
        (b"GARBAGE\r\n\r\n".to_vec(), "HTTP/1.1 400"),
        // request line with too few tokens
        (b"POST /v1/predict\r\n\r\n".to_vec(), "HTTP/1.1 400"),
        // truncated mid-headers (early FIN before the blank line)
        (
            b"POST /v1/predict HTTP/1.1\r\nContent-Le".to_vec(),
            "HTTP/1.1 400",
        ),
        // header without a colon
        (
            b"POST /v1/predict HTTP/1.1\r\nNoColonHere\r\n\r\n".to_vec(),
            "HTTP/1.1 400",
        ),
        // unparsable content-length
        (
            b"POST /v1/predict HTTP/1.1\r\nContent-Length: banana\r\n\r\n".to_vec(),
            "HTTP/1.1 400",
        ),
        // declared body larger than the configured cap -> 413
        (
            b"POST /v1/observe HTTP/1.1\r\nContent-Length: 999999\r\n\r\n".to_vec(),
            "HTTP/1.1 413",
        ),
        // body shorter than content-length, then FIN
        (
            b"POST /v1/predict HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"user\"".to_vec(),
            "HTTP/1.1 400",
        ),
        // unsupported transfer-encoding
        (
            b"POST /v1/observe HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
            "HTTP/1.1 400",
        ),
        // unknown method
        (b"BREW /v1/rank HTTP/1.1\r\n\r\n".to_vec(), "HTTP/1.1 405"),
        // oversized head -> 431
        (
            {
                let mut raw = b"GET /metrics HTTP/1.1\r\n".to_vec();
                raw.extend(vec![b'a'; 10 * 1024]);
                raw
            },
            "HTTP/1.1 431",
        ),
        // immediate FIN: a clean close, no response owed
        (Vec::new(), ""),
    ];

    for (raw, expected) in &corpus {
        let response = raw_exchange(addr, raw);
        if expected.is_empty() {
            assert!(
                response.is_empty(),
                "clean close should get no response, got: {response}"
            );
        } else {
            assert!(
                response.starts_with(expected),
                "corpus entry {:?}... expected {expected}, got: {}",
                String::from_utf8_lossy(&raw[..raw.len().min(40)]),
                &response[..response.len().min(80)]
            );
        }
    }

    // A well-formed request still works after the hostile parade.
    let body = "{\"user\":\"u\",\"service\":\"s\"}\n";
    let ok = raw_exchange(
        addr,
        format!(
            "POST /v1/predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    );
    assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");

    let stats = plane.stop();
    assert_eq!(stats.worker_panics, 0, "no corpus entry may panic a worker");
    assert!(stats.client_errors >= 9, "4xx path exercised: {stats:?}");
}

/// With one worker and a one-slot queue, silent connections saturate the
/// plane and later arrivals are fast-rejected 503 by the acceptor.
#[test]
fn overload_fast_rejects_from_the_acceptor() {
    let plane = plane(
        ServeConfig {
            workers: 1,
            max_pending: 1,
            io_timeout: Duration::from_millis(600),
            ..ServeConfig::default()
        },
        256,
    );
    let addr = plane.local_addr();

    // Occupy the single worker with a connection that sends nothing (it
    // blocks in read until its 600 ms timeout).
    let holder = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // Four CONCURRENT probes: the first to reach the acceptor takes the
    // single queue slot (and waits for the worker — it cannot be dequeued
    // before the 600 ms hold expires); the rest find the queue full and
    // must be answered 503 inline by the acceptor.
    let probes: Vec<_> = (0..4)
        .map(|_| std::thread::spawn(move || raw_exchange(addr, b"GET /healthz HTTP/1.1\r\n\r\n")))
        .collect();
    let responses: Vec<String> = probes.into_iter().map(|p| p.join().unwrap()).collect();
    let rejected = responses
        .iter()
        .filter(|r| r.starts_with("HTTP/1.1 503"))
        .count();
    let served = responses
        .iter()
        .filter(|r| r.starts_with("HTTP/1.1 200"))
        .count();
    for response in responses.iter().filter(|r| r.starts_with("HTTP/1.1 503")) {
        assert!(response.contains("Retry-After"), "{response}");
    }
    drop(holder);
    let stats = plane.stop();
    assert!(
        rejected >= 1,
        "expected at least one overload fast-reject: {responses:?}"
    );
    assert!(
        served >= 1,
        "the queued probe is flushed, not dropped: {responses:?}"
    );
    assert!(stats.rejected_overload >= 1, "{stats:?}");
    assert_eq!(stats.worker_panics, 0);
}

/// The acceptance gate: a mixed workload under
/// `conn-reset@0.05,slow-read@0.02` completes with zero server panics and
/// every logical request accounted for — a valid tagged prediction or a
/// clean protocol error.
#[test]
fn loadtest_under_acceptance_fault_plan_is_clean() {
    let plane = plane(ServeConfig::default(), 4096);
    let addr = plane.local_addr();

    let plan = FaultPlan::parse("conn-reset@0.05,slow-read@0.02").expect("acceptance spec parses");
    let config = LoadConfig {
        mode: LoadMode::Closed { concurrency: 4 },
        requests: 160,
        seed: 7,
        fault_plan: Some(plan),
        client: ClientConfig {
            request_timeout: Duration::from_millis(800),
            max_retries: 2,
            ..ClientConfig::default()
        },
        ..LoadConfig::default()
    };
    let report = LoadRunner::new(config).run(addr, "acceptance");

    // Exact outcome accounting: every request is ok, a clean HTTP error,
    // or a transport failure (which includes the sacrificed fault
    // injections) — nothing vanishes.
    let accounted = report.ok
        + report.http_4xx
        + report.http_503
        + report.http_5xx_other
        + report.transport_errors;
    assert_eq!(accounted, report.requests, "{report:?}");
    assert!(report.ok > 0, "the plane answered under faults: {report:?}");
    assert_eq!(report.server_worker_panics, 0, "{report:?}");
    assert!(
        report.faults_conn_reset + report.faults_slow_read > 0,
        "the plan actually injected faults: {report:?}"
    );
    // Predictions that did come back were all tagged + finite (the runner
    // only counts entries carrying a source label and value).
    assert!(report.predictions > 0, "{report:?}");

    let stats = plane.stop();
    assert_eq!(stats.worker_panics, 0);
}

/// Graceful drain under live fire: stop() returns promptly while clients
/// are mid-flight, flushing rather than dropping accepted work.
#[test]
fn drain_under_load_terminates_promptly() {
    let plane = plane(ServeConfig::default(), 1024);
    let addr = plane.local_addr();

    let stop_flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let shooters: Vec<_> = (0..3)
        .map(|_| {
            let flag = Arc::clone(&stop_flag);
            std::thread::spawn(move || {
                let body = "{\"user\":\"u\",\"service\":\"s\"}\n";
                let raw = format!(
                    "POST /v1/predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                );
                while !flag.load(Ordering::Relaxed) {
                    // Responses may be 200 or 503 (draining); both are
                    // clean. Connection errors once the listener closes are
                    // expected too.
                    if TcpStream::connect(addr)
                        .map(|mut s| {
                            let _ = s.write_all(raw.as_bytes());
                            let mut out = String::new();
                            let _ = s.read_to_string(&mut out);
                        })
                        .is_err()
                    {
                        break;
                    }
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(150));
    let started = std::time::Instant::now();
    let stats = plane.stop();
    let drain_time = started.elapsed();
    stop_flag.store(true, Ordering::Relaxed);
    for shooter in shooters {
        let _ = shooter.join();
    }

    assert!(
        drain_time < Duration::from_secs(10),
        "drain took {drain_time:?}"
    );
    assert_eq!(stats.worker_panics, 0);
    assert!(
        stats.ok > 0,
        "served real traffic before draining: {stats:?}"
    );
}
