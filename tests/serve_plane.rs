//! Integration suite for the hardened serving plane (DESIGN.md §14–15):
//! exact accept/shed accounting under concurrent producers, a
//! malformed-HTTP corpus that must never panic a worker, admission-control
//! fast-rejects under overload, earliest-deadline-first queue ordering,
//! the keep-alive connection lifecycle (pipelining, idle timeout,
//! per-connection request caps, drain), and the load harness driven
//! end-to-end against a live plane with the acceptance fault plan
//! (`conn-reset@0.05,slow-read@0.02`).

use amf_core::FaultPlan;
use qos_serve::{ClientConfig, LoadConfig, LoadMode, LoadRunner, ServeConfig, ServePlane};
use qos_service::{QosPredictionService, QosRecord, ServiceConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn service(queue_capacity: usize) -> Arc<QosPredictionService> {
    Arc::new(QosPredictionService::new(ServiceConfig {
        input_queue_capacity: queue_capacity,
        ..ServiceConfig::default()
    }))
}

fn plane(config: ServeConfig, queue_capacity: usize) -> ServePlane {
    ServePlane::start("127.0.0.1:0", service(queue_capacity), config).expect("bind plane")
}

/// Sends raw bytes and reads whatever comes back (empty when the server
/// just closes). Half-closes the write side so the keep-alive server
/// answers with `Connection: close` and `read_to_string` terminates.
fn raw_exchange(addr: SocketAddr, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(raw).expect("write");
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    response
}

/// Renders a POST with optional extra header lines (e.g. the deadline).
fn post_raw(path: &str, body: &str, extra_headers: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\n{extra_headers}Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Reads exactly one `Content-Length`-framed response off a live
/// keep-alive connection; `buf` carries leftover pipelined bytes between
/// calls. Returns `(head, body)` or `None` on EOF / timeout.
fn read_framed_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> Option<(String, String)> {
    loop {
        if let Some(head_end) = find_head_end(buf) {
            let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
            let content_length = head
                .lines()
                .find_map(|line| {
                    let (name, value) = line.split_once(':')?;
                    if name.trim().eq_ignore_ascii_case("content-length") {
                        value.trim().parse::<usize>().ok()
                    } else {
                        None
                    }
                })
                .unwrap_or(0);
            while buf.len() < head_end + content_length {
                let mut chunk = [0u8; 4096];
                let n = stream.read(&mut chunk).ok()?;
                if n == 0 {
                    return None;
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            let body =
                String::from_utf8_lossy(&buf[head_end..head_end + content_length]).to_string();
            buf.drain(..head_end + content_length);
            return Some((head, body));
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk).ok()?;
        if n == 0 {
            return None;
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// A predict body big enough to occupy a worker for a while (the lines are
/// parsed and predicted one by one).
fn slow_predict_body(lines: usize) -> String {
    let mut body = String::with_capacity(lines * 40);
    for i in 0..lines {
        body.push_str(&format!(
            "{{\"user\":\"user-{}\",\"service\":\"svc-{}\"}}\n",
            i % 24,
            i % 32
        ));
    }
    body
}

/// Every sample offered by N concurrent producers against a bounded input
/// queue is EXACTLY one of accepted or shed — nothing lost, nothing
/// double-counted: the accepted total equals what the drain applies.
#[test]
fn offer_accounting_is_exact_under_concurrent_producers() {
    const PRODUCERS: usize = 8;
    const PER_PRODUCER: u64 = 400;
    let svc = service(64); // capacity far below the offered volume

    let accepted = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let drained = AtomicU64::new(0);
    let (svc, accepted_ref, shed_ref, drained_ref) = (&svc, &accepted, &shed, &drained);
    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            scope.spawn(move || {
                for i in 0..PER_PRODUCER {
                    let record = QosRecord {
                        user: format!("user-{}", p % 5),
                        service: format!("svc-{}", i % 7),
                        timestamp: i,
                        value: 0.25 + (i % 13) as f64 * 0.1,
                    };
                    if svc.offer(record) {
                        accepted_ref.fetch_add(1, Ordering::Relaxed);
                    } else {
                        shed_ref.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        // A concurrent consumer keeps the queue moving, like the serve
        // workers do per-request.
        scope.spawn(move || loop {
            let n = svc.drain_inputs() as u64;
            drained_ref.fetch_add(n, Ordering::Relaxed);
            if n == 0
                && accepted_ref.load(Ordering::Relaxed) + shed_ref.load(Ordering::Relaxed)
                    == (PRODUCERS as u64) * PER_PRODUCER
            {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        });
    });
    // Producers are done; whatever is still queued drains now.
    drained.fetch_add(svc.drain_inputs() as u64, Ordering::Relaxed);

    let accepted = accepted.load(Ordering::Relaxed);
    let shed = shed.load(Ordering::Relaxed);
    let drained = drained.load(Ordering::Relaxed);
    assert_eq!(
        accepted + shed,
        (PRODUCERS as u64) * PER_PRODUCER,
        "every sample got exactly one verdict"
    );
    assert_eq!(
        drained, accepted,
        "every accepted sample was applied exactly once (no loss, no dup)"
    );
    assert!(
        shed > 0,
        "the bounded queue actually shed under this volume"
    );
}

/// Malformed requests get clean 4xx answers — never a worker panic, on any
/// corpus entry. (CI runs this in both the default and single-threaded
/// test lanes.)
#[test]
fn malformed_http_corpus_gets_4xx_never_panics() {
    let plane = plane(
        ServeConfig {
            max_body_bytes: 1024,
            io_timeout: Duration::from_millis(500),
            ..ServeConfig::default()
        },
        256,
    );
    let addr = plane.local_addr();

    // (raw request bytes, expected status-line prefix or "" for
    // connection-closed-without-response)
    let corpus: Vec<(Vec<u8>, &str)> = vec![
        // not HTTP at all
        (b"GARBAGE\r\n\r\n".to_vec(), "HTTP/1.1 400"),
        // request line with too few tokens
        (b"POST /v1/predict\r\n\r\n".to_vec(), "HTTP/1.1 400"),
        // truncated mid-headers (early FIN before the blank line)
        (
            b"POST /v1/predict HTTP/1.1\r\nContent-Le".to_vec(),
            "HTTP/1.1 400",
        ),
        // header without a colon
        (
            b"POST /v1/predict HTTP/1.1\r\nNoColonHere\r\n\r\n".to_vec(),
            "HTTP/1.1 400",
        ),
        // unparsable content-length
        (
            b"POST /v1/predict HTTP/1.1\r\nContent-Length: banana\r\n\r\n".to_vec(),
            "HTTP/1.1 400",
        ),
        // declared body larger than the configured cap -> 413
        (
            b"POST /v1/observe HTTP/1.1\r\nContent-Length: 999999\r\n\r\n".to_vec(),
            "HTTP/1.1 413",
        ),
        // body shorter than content-length, then FIN
        (
            b"POST /v1/predict HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"user\"".to_vec(),
            "HTTP/1.1 400",
        ),
        // unsupported transfer-encoding
        (
            b"POST /v1/observe HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
            "HTTP/1.1 400",
        ),
        // unknown method
        (b"BREW /v1/rank HTTP/1.1\r\n\r\n".to_vec(), "HTTP/1.1 405"),
        // oversized head -> 431
        (
            {
                let mut raw = b"GET /metrics HTTP/1.1\r\n".to_vec();
                raw.extend(vec![b'a'; 10 * 1024]);
                raw
            },
            "HTTP/1.1 431",
        ),
        // immediate FIN: a clean close, no response owed
        (Vec::new(), ""),
    ];

    for (raw, expected) in &corpus {
        let response = raw_exchange(addr, raw);
        if expected.is_empty() {
            assert!(
                response.is_empty(),
                "clean close should get no response, got: {response}"
            );
        } else {
            assert!(
                response.starts_with(expected),
                "corpus entry {:?}... expected {expected}, got: {}",
                String::from_utf8_lossy(&raw[..raw.len().min(40)]),
                &response[..response.len().min(80)]
            );
        }
    }

    // A well-formed request still works after the hostile parade.
    let body = "{\"user\":\"u\",\"service\":\"s\"}\n";
    let ok = raw_exchange(
        addr,
        format!(
            "POST /v1/predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    );
    assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");

    let stats = plane.stop();
    assert_eq!(stats.worker_panics, 0, "no corpus entry may panic a worker");
    assert!(stats.client_errors >= 9, "4xx path exercised: {stats:?}");
}

/// With one worker and a one-slot queue, a long-running batch saturates
/// the plane and later arrivals are fast-rejected 503 by the acceptor.
#[test]
fn overload_fast_rejects_from_the_acceptor() {
    let plane = plane(
        ServeConfig {
            workers: 1,
            max_pending: 1,
            max_body_bytes: 8 * 1024 * 1024,
            io_timeout: Duration::from_secs(10),
            default_deadline: Duration::from_secs(30),
            max_deadline: Duration::from_secs(30),
            ..ServeConfig::default()
        },
        256,
    );
    let addr = plane.local_addr();

    // Occupy the single worker with a batch that takes real time to churn
    // through (each line is parsed and predicted individually).
    let holder_body = slow_predict_body(100_000);
    let holder =
        std::thread::spawn(move || raw_exchange(addr, &post_raw("/v1/predict", &holder_body, "")));
    std::thread::sleep(Duration::from_millis(150));

    // Four CONCURRENT probes: the first to reach the acceptor takes the
    // single queue slot (and waits for the worker); the rest find the
    // queue full and must be answered 503 inline by the acceptor.
    let probes: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                raw_exchange(addr, b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            })
        })
        .collect();
    let responses: Vec<String> = probes.into_iter().map(|p| p.join().unwrap()).collect();
    let rejected = responses
        .iter()
        .filter(|r| r.starts_with("HTTP/1.1 503"))
        .count();
    let served = responses
        .iter()
        .filter(|r| r.starts_with("HTTP/1.1 200"))
        .count();
    for response in responses.iter().filter(|r| r.starts_with("HTTP/1.1 503")) {
        assert!(response.contains("Retry-After"), "{response}");
    }
    let holder_response = holder.join().unwrap();
    assert!(holder_response.starts_with("HTTP/1.1 200"), "holder: {}", {
        &holder_response[..holder_response.len().min(80)]
    });
    let stats = plane.stop();
    assert!(
        rejected >= 1,
        "expected at least one overload fast-reject: {responses:?}"
    );
    assert!(
        served >= 1,
        "the queued probe is flushed, not dropped: {responses:?}"
    );
    assert!(stats.rejected_overload >= 1, "{stats:?}");
    assert_eq!(stats.worker_panics, 0);
}

/// EDF ordering end-to-end: while the single worker is pinned, a
/// later-arriving tight-deadline request overtakes an earlier
/// slack-deadline request in the queue and is answered first. The probes
/// carry multi-thousand-line bodies so that worker processing order (the
/// thing EDF controls) dominates response-delivery jitter through the
/// shared poller thread — with one-line probes the two completions land
/// ~100 us apart and the client-side clocks cannot resolve queue order.
#[test]
fn tight_deadline_overtakes_slack_in_the_edf_queue() {
    let plane = plane(
        ServeConfig {
            workers: 1,
            max_pending: 8,
            max_body_bytes: 8 * 1024 * 1024,
            io_timeout: Duration::from_secs(10),
            default_deadline: Duration::from_secs(30),
            max_deadline: Duration::from_secs(60),
            ..ServeConfig::default()
        },
        256,
    );
    let addr = plane.local_addr();

    // Pin the worker long enough for both probes to be queued.
    let holder_body = slow_predict_body(100_000);
    let holder =
        std::thread::spawn(move || raw_exchange(addr, &post_raw("/v1/predict", &holder_body, "")));
    // Wait until the holder's multi-MiB body is fully parsed and admitted
    // (the free worker pops it immediately after). A fixed sleep is not
    // enough: on a loaded host the upload alone can outlast it, and a
    // probe that beats the holder to the worker voids the scenario.
    let begun = std::time::Instant::now();
    while plane.stats().requests < 1 {
        assert!(
            begun.elapsed() < Duration::from_secs(30),
            "holder request never parsed"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(50));

    let probe_body = slow_predict_body(20_000);
    // Slack (30 s budget) enqueues FIRST...
    let slack = {
        let body = probe_body.clone();
        std::thread::spawn(move || {
            let response = raw_exchange(
                addr,
                &post_raw("/v1/predict", &body, "x-amf-deadline-ms: 30000\r\n"),
            );
            (std::time::Instant::now(), response)
        })
    };
    // Same admission handshake for the slack probe before tight is sent.
    let begun = std::time::Instant::now();
    while plane.stats().requests < 2 {
        assert!(
            begun.elapsed() < Duration::from_secs(30),
            "slack request never parsed"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // ...then tight (8 s budget) arrives second but must pop first.
    let tight = {
        let body = probe_body;
        std::thread::spawn(move || {
            let response = raw_exchange(
                addr,
                &post_raw("/v1/predict", &body, "x-amf-deadline-ms: 8000\r\n"),
            );
            (std::time::Instant::now(), response)
        })
    };

    let (tight_done, tight_response) = tight.join().unwrap();
    let (slack_done, slack_response) = slack.join().unwrap();
    let _ = holder.join();
    let stats = plane.stop();

    assert!(
        tight_response.starts_with("HTTP/1.1 200"),
        "{tight_response}"
    );
    assert!(
        slack_response.starts_with("HTTP/1.1 200"),
        "{slack_response}"
    );
    assert!(
        tight_done < slack_done,
        "tight deadline must be served before slack despite arriving later"
    );
    assert_eq!(stats.worker_panics, 0);
}

#[test]
fn zero_deadline_is_fast_rejected_on_arrival() {
    let plane = plane(ServeConfig::default(), 256);
    let addr = plane.local_addr();
    let body = "{\"user\":\"u\",\"service\":\"s\"}\n";
    let response = raw_exchange(
        addr,
        &post_raw("/v1/predict", body, "x-amf-deadline-ms: 0\r\n"),
    );
    assert!(response.starts_with("HTTP/1.1 503"), "{response}");
    assert!(response.contains("deadline exceeded"), "{response}");
    let stats = plane.stop();
    assert_eq!(stats.rejected_deadline, 1, "{stats:?}");
    assert_eq!(stats.predictions, 0, "no model work for a dead request");
}

/// Keep-alive lifecycle: three requests pipelined in one write come back
/// in order on the same connection, each framed by Content-Length.
#[test]
fn pipelined_requests_are_answered_in_order_on_one_connection() {
    let plane = plane(ServeConfig::default(), 256);
    let addr = plane.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut batch = Vec::new();
    for user in ["alpha", "beta", "gamma"] {
        let body = format!("{{\"user\":\"{user}\",\"service\":\"s\"}}\n");
        batch.extend_from_slice(&post_raw("/v1/predict", &body, ""));
    }
    stream.write_all(&batch).unwrap();

    let mut buf = Vec::new();
    for user in ["alpha", "beta", "gamma"] {
        let (head, body) = read_framed_response(&mut stream, &mut buf)
            .unwrap_or_else(|| panic!("missing response for {user}"));
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains(user), "out of order: wanted {user} in {body}");
    }

    let stats = plane.stop();
    assert_eq!(stats.accepted, 1, "one connection served all three");
    assert_eq!(stats.ok, 3, "{stats:?}");
    assert_eq!(stats.worker_panics, 0);
}

/// An idle persistent connection is closed by the server once
/// `idle_timeout` elapses, and counted as such.
#[test]
fn idle_keep_alive_connection_is_reaped() {
    let plane = plane(
        ServeConfig {
            idle_timeout: Duration::from_millis(200),
            ..ServeConfig::default()
        },
        256,
    );
    let addr = plane.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut buf = Vec::new();
    let (head, _) = read_framed_response(&mut stream, &mut buf).expect("first response");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");

    // Now go quiet: the server must close the connection, observed as EOF.
    let mut probe = [0u8; 64];
    let n = stream.read(&mut probe).expect("EOF, not a read error");
    assert_eq!(n, 0, "server should close the idle connection");

    let stats = plane.stop();
    assert!(stats.idle_closed >= 1, "{stats:?}");
    assert_eq!(stats.worker_panics, 0);
}

/// `max_requests_per_conn` bounds one connection's lifetime: the last
/// budgeted response carries `Connection: close` and the socket closes,
/// requests beyond the budget on that connection are never served.
#[test]
fn max_requests_per_conn_is_enforced() {
    let plane = plane(
        ServeConfig {
            max_requests_per_conn: 2,
            ..ServeConfig::default()
        },
        256,
    );
    let addr = plane.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut batch = Vec::new();
    for _ in 0..3 {
        batch.extend_from_slice(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    }
    stream.write_all(&batch).unwrap();

    let mut buf = Vec::new();
    let (first, _) = read_framed_response(&mut stream, &mut buf).expect("first");
    assert!(first.starts_with("HTTP/1.1 200"), "{first}");
    let (second, _) = read_framed_response(&mut stream, &mut buf).expect("second");
    assert!(second.starts_with("HTTP/1.1 200"), "{second}");
    assert!(
        second.to_ascii_lowercase().contains("connection: close"),
        "budget-exhausting response must announce the close: {second}"
    );
    assert!(
        read_framed_response(&mut stream, &mut buf).is_none(),
        "third request is beyond the per-connection budget"
    );

    let stats = plane.stop();
    assert_eq!(stats.ok, 2, "{stats:?}");
    assert_eq!(stats.worker_panics, 0);
}

/// A malformed second request on a reused connection gets a clean 400 and
/// closes that connection — without poisoning a worker: the next
/// connection is served normally.
#[test]
fn malformed_second_request_on_reused_connection_is_contained() {
    let plane = plane(ServeConfig::default(), 256);
    let addr = plane.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut buf = Vec::new();
    let (first, _) = read_framed_response(&mut stream, &mut buf).expect("first response");
    assert!(first.starts_with("HTTP/1.1 200"), "{first}");

    stream.write_all(b"GARBAGE SECOND REQUEST\r\n\r\n").unwrap();
    let (second, _) = read_framed_response(&mut stream, &mut buf).expect("error response");
    assert!(second.starts_with("HTTP/1.1 400"), "{second}");
    assert!(
        read_framed_response(&mut stream, &mut buf).is_none(),
        "framing is sticky: the connection closes after the 400"
    );

    // The plane is still healthy for fresh connections.
    let after = raw_exchange(addr, b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(after.starts_with("HTTP/1.1 200"), "{after}");

    let stats = plane.stop();
    assert_eq!(stats.ok, 2, "{stats:?}");
    assert_eq!(stats.client_errors, 1, "{stats:?}");
    assert_eq!(stats.worker_panics, 0);
}

/// The acceptance gate: a mixed workload under
/// `conn-reset@0.05,slow-read@0.02` completes with zero server panics and
/// every logical request accounted for — a valid tagged prediction or a
/// clean protocol error.
#[test]
fn loadtest_under_acceptance_fault_plan_is_clean() {
    let plane = plane(ServeConfig::default(), 4096);
    let addr = plane.local_addr();

    let plan = FaultPlan::parse("conn-reset@0.05,slow-read@0.02").expect("acceptance spec parses");
    let config = LoadConfig {
        mode: LoadMode::Closed { concurrency: 4 },
        requests: 160,
        seed: 7,
        fault_plan: Some(plan),
        client: ClientConfig {
            request_timeout: Duration::from_millis(800),
            max_retries: 2,
            ..ClientConfig::default()
        },
        ..LoadConfig::default()
    };
    let report = LoadRunner::new(config).run(addr, "acceptance");

    // Exact outcome accounting: every request is ok, a clean HTTP error,
    // or a transport failure (which includes the sacrificed fault
    // injections) — nothing vanishes.
    let accounted = report.ok
        + report.http_4xx
        + report.http_503
        + report.http_5xx_other
        + report.transport_errors;
    assert_eq!(accounted, report.requests, "{report:?}");
    assert!(report.ok > 0, "the plane answered under faults: {report:?}");
    assert_eq!(report.server_worker_panics, 0, "{report:?}");
    assert!(
        report.faults_conn_reset + report.faults_slow_read > 0,
        "the plan actually injected faults: {report:?}"
    );
    // Predictions that did come back were all tagged + finite (the runner
    // only counts entries carrying a source label and value).
    assert!(report.predictions > 0, "{report:?}");

    let stats = plane.stop();
    assert_eq!(stats.worker_panics, 0);
}

/// The acceptance fault plan over the keep-alive transport: resets force
/// reconnects, pipelined batches survive around the faulted requests, and
/// the server stays panic-free with every request accounted for.
#[test]
fn keep_alive_loadtest_under_fault_plan_is_clean() {
    let plane = plane(ServeConfig::default(), 4096);
    let addr = plane.local_addr();

    let plan = FaultPlan::parse("conn-reset@0.05,slow-read@0.02").expect("acceptance spec parses");
    let config = LoadConfig {
        mode: LoadMode::Closed { concurrency: 4 },
        requests: 160,
        seed: 7,
        fault_plan: Some(plan),
        keep_alive: true,
        pipeline: 4,
        client: ClientConfig {
            request_timeout: Duration::from_millis(800),
            max_retries: 2,
            ..ClientConfig::default()
        },
        ..LoadConfig::default()
    };
    let report = LoadRunner::new(config).run(addr, "acceptance-keepalive");

    let accounted = report.ok
        + report.http_4xx
        + report.http_503
        + report.http_5xx_other
        + report.transport_errors;
    assert_eq!(accounted, report.requests, "{report:?}");
    assert!(report.ok > 0, "{report:?}");
    assert_eq!(report.server_worker_panics, 0, "{report:?}");
    assert_eq!(report.transport, "keep-alive");
    assert!(
        report.conn_reuses > 0,
        "persistent connections were actually reused: {report:?}"
    );
    // Faults force reconnects, so connects > workers but far fewer than
    // one per request.
    assert!(report.connects < report.requests, "{report:?}");

    let stats = plane.stop();
    assert_eq!(stats.worker_panics, 0);
}

/// Graceful drain under live fire: stop() returns promptly while clients
/// are mid-flight, flushing rather than dropping accepted work.
#[test]
fn drain_under_load_terminates_promptly() {
    let plane = plane(ServeConfig::default(), 1024);
    let addr = plane.local_addr();

    let stop_flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let shooters: Vec<_> = (0..3)
        .map(|_| {
            let flag = Arc::clone(&stop_flag);
            std::thread::spawn(move || {
                let body = "{\"user\":\"u\",\"service\":\"s\"}\n";
                let raw = format!(
                    "POST /v1/predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                );
                while !flag.load(Ordering::Relaxed) {
                    // Responses may be 200 or 503 (draining); both are
                    // clean. Connection errors once the listener closes are
                    // expected too.
                    if TcpStream::connect(addr)
                        .map(|mut s| {
                            let _ = s.write_all(raw.as_bytes());
                            let mut out = String::new();
                            let _ = s.read_to_string(&mut out);
                        })
                        .is_err()
                    {
                        break;
                    }
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(150));
    let started = std::time::Instant::now();
    let stats = plane.stop();
    let drain_time = started.elapsed();
    stop_flag.store(true, Ordering::Relaxed);
    for shooter in shooters {
        let _ = shooter.join();
    }

    assert!(
        drain_time < Duration::from_secs(10),
        "drain took {drain_time:?}"
    );
    assert_eq!(stats.worker_panics, 0);
    assert!(
        stats.ok > 0,
        "served real traffic before draining: {stats:?}"
    );
}
