//! Minimal flag parser: `--name value` pairs plus positional arguments.
//!
//! The approved dependency set has no argument-parsing crate, and the CLI's
//! needs are simple, so this module implements exactly what the subcommands
//! use: string/number/flag lookups with defaults and typed errors.

use std::collections::HashMap;

/// Parsed command line: a subcommand, its positional arguments, and flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

/// Argument-parsing error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgsError(pub String);

impl std::fmt::Display for ArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgsError {}

impl Args {
    /// Parses raw arguments (excluding the program name). `--name value`
    /// becomes a flag; `--name` followed by another `--flag` or end-of-input
    /// becomes a boolean switch; everything else is positional.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgsError> {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(token) = iter.next() {
            if let Some(name) = token.strip_prefix("--") {
                if name.is_empty() {
                    return Err(ArgsError("empty flag name '--'".into()));
                }
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = iter.next().expect("peeked");
                        args.flags.insert(name.to_string(), value);
                    }
                    _ => args.switches.push(name.to_string()),
                }
            } else {
                args.positional.push(token);
            }
        }
        Ok(args)
    }

    /// Positional argument by index.
    pub fn positional(&self, index: usize) -> Option<&str> {
        self.positional.get(index).map(String::as_str)
    }

    /// Number of positional arguments.
    #[allow(dead_code)] // exercised by tests; kept for subcommand symmetry
    pub fn positional_len(&self) -> usize {
        self.positional.len()
    }

    /// String flag, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// String flag with a default.
    pub fn get_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.get(name).unwrap_or(default)
    }

    /// Required string flag.
    pub fn require(&self, name: &str) -> Result<&str, ArgsError> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| ArgsError(format!("missing required flag --{name}")))
    }

    /// Typed flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] when the value does not parse as `T`.
    pub fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgsError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgsError(format!("flag --{name}: cannot parse '{raw}'"))),
        }
    }

    /// Whether a boolean switch was given.
    #[allow(dead_code)] // exercised by tests; kept for subcommand symmetry
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn positional_and_flags() {
        let a = parse(&["train", "--data", "file.txt", "--seed", "7"]);
        assert_eq!(a.positional(0), Some("train"));
        assert_eq!(a.positional_len(), 1);
        assert_eq!(a.require("data").unwrap(), "file.txt");
        assert_eq!(a.parse_or("seed", 0u64).unwrap(), 7);
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&["x"]);
        assert_eq!(a.get_or("attr", "rt"), "rt");
        assert_eq!(a.parse_or("density", 0.1f64).unwrap(), 0.1);
    }

    #[test]
    fn switches_without_values() {
        let a = parse(&["run", "--verbose", "--out", "f", "--quiet"]);
        assert!(a.switch("verbose"));
        assert!(a.switch("quiet"));
        assert!(!a.switch("missing"));
        assert_eq!(a.require("out").unwrap(), "f");
    }

    #[test]
    fn negative_numbers_are_values() {
        let a = parse(&["train", "--alpha", "-0.007"]);
        assert_eq!(a.parse_or("alpha", 0.0f64).unwrap(), -0.007);
    }

    #[test]
    fn missing_required_flag_errors() {
        let a = parse(&["train"]);
        let err = a.require("data").unwrap_err();
        assert!(err.to_string().contains("--data"));
    }

    #[test]
    fn unparsable_value_errors() {
        let a = parse(&["x", "--seed", "banana"]);
        assert!(a.parse_or("seed", 0u64).is_err());
    }

    #[test]
    fn empty_flag_rejected() {
        assert!(Args::parse(vec!["--".to_string()]).is_err());
    }
}
