//! `amf-qos trace` — offline summarizer for `amf-flight/v1` dumps.
//!
//! Reads the JSONL flight file a serving plane (`serve --flight-log`),
//! scenario engine (`scenario run --flight-dir`), or manual
//! `POST /debug/dump` produced, and answers the first incident questions
//! without a live process:
//!
//! * per-stage latency distribution (p50/p95/p99 over every trace and
//!   exemplar line, per stage and for the stage-sum total);
//! * critical-path ranking — which stage contributes the most time in
//!   aggregate, i.e. where an optimization (or an outage) actually lives;
//! * the slowest exemplars, pretty-printed with their stage vectors and
//!   deadline slack;
//! * the dump headers (trigger reasons) and recorded trace-ring events.

use super::CliError;
use crate::args::Args;
use qos_obs::{Json, STAGES};

/// Usage text for the subcommand.
pub const USAGE: &str = "amf-qos trace <flight.jsonl> [--top N]";

/// Per-stage µs samples plus derived aggregates.
#[derive(Default)]
struct StageDigest {
    /// One samples vector per stage, indexed like [`STAGES`].
    samples: [Vec<u64>; 6],
    /// Stage-sum totals, one per record.
    totals: Vec<u64>,
}

impl StageDigest {
    fn absorb(&mut self, stages_us: &Json) {
        let mut total = 0u64;
        for (i, name) in STAGES.iter().enumerate() {
            let us = stages_us.get(name).and_then(Json::as_u64).unwrap_or(0);
            self.samples[i].push(us);
            total += us;
        }
        self.totals.push(total);
    }
}

/// Nearest-rank percentile over a sorted slice; 0 when empty.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Runs the subcommand.
///
/// # Errors
///
/// Returns [`CliError`] for a missing path, unreadable file, or a file
/// with no parseable `amf-flight/v1` lines.
pub fn run(args: &Args) -> Result<String, CliError> {
    let path = args
        .positional(1)
        .ok_or_else(|| CliError("missing flight file path".into()))?;
    let top: usize = args.parse_or("top", 5)?;
    let text = std::fs::read_to_string(path).map_err(|e| CliError(format!("{path}: {e}")))?;

    let mut digest = StageDigest::default();
    let mut headers: Vec<(String, u64)> = Vec::new();
    let mut exemplars: Vec<Json> = Vec::new();
    let mut events: Vec<Json> = Vec::new();
    let mut lines_seen = 0u64;
    let mut lines_flight = 0u64;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        lines_seen += 1;
        let Ok(parsed) = Json::parse(line) else {
            continue;
        };
        if parsed.get("schema").and_then(Json::as_str) != Some("amf-flight/v1") {
            continue;
        }
        lines_flight += 1;
        match parsed.get("kind").and_then(Json::as_str) {
            Some("header") => {
                let reason = parsed
                    .get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string();
                let at_ms = parsed.get("at_ms").and_then(Json::as_u64).unwrap_or(0);
                headers.push((reason, at_ms));
            }
            Some("exemplar") => {
                if let Some(stages) = parsed.get("stages_us") {
                    digest.absorb(stages);
                }
                exemplars.push(parsed);
            }
            Some("trace") => {
                if let Some(stages) = parsed.get("stages_us") {
                    digest.absorb(stages);
                }
            }
            Some("event") => events.push(parsed),
            _ => {}
        }
    }
    if lines_flight == 0 {
        return Err(CliError(format!(
            "{path}: no amf-flight/v1 lines in {lines_seen} line(s)"
        )));
    }

    let mut out = format!(
        "flight: {path} — {} dump(s), {} stage-timed record(s), {} event(s)\n",
        headers.len(),
        digest.totals.len(),
        events.len()
    );
    for (reason, at_ms) in &headers {
        out.push_str(&format!("  dump: reason={reason} at_ms={at_ms}\n"));
    }

    if !digest.totals.is_empty() {
        // Per-stage distribution and the critical path (share of the total
        // time each stage accounts for, across every record).
        out.push_str("\nstage latency (us):\n");
        out.push_str(&format!(
            "  {:<10} {:>8} {:>8} {:>8} {:>10} {:>7}\n",
            "stage", "p50", "p95", "p99", "sum", "share"
        ));
        let grand_total: u64 = digest.totals.iter().sum();
        let mut ranked: Vec<(usize, u64)> = (0..STAGES.len())
            .map(|i| (i, digest.samples[i].iter().sum::<u64>()))
            .collect();
        for samples in digest.samples.iter_mut() {
            samples.sort_unstable();
        }
        for (i, name) in STAGES.iter().enumerate() {
            let s = &digest.samples[i];
            let sum: u64 = s.iter().sum();
            let share = if grand_total == 0 {
                0.0
            } else {
                sum as f64 / grand_total as f64 * 100.0
            };
            out.push_str(&format!(
                "  {:<10} {:>8} {:>8} {:>8} {:>10} {:>6.1}%\n",
                name,
                percentile(s, 50.0),
                percentile(s, 95.0),
                percentile(s, 99.0),
                sum,
                share
            ));
        }
        digest.totals.sort_unstable();
        out.push_str(&format!(
            "  {:<10} {:>8} {:>8} {:>8} {:>10} {:>6.1}%\n",
            "total",
            percentile(&digest.totals, 50.0),
            percentile(&digest.totals, 95.0),
            percentile(&digest.totals, 99.0),
            grand_total,
            100.0
        ));
        ranked.sort_by_key(|&(_, sum)| std::cmp::Reverse(sum));
        let path_names: Vec<&str> = ranked
            .iter()
            .filter(|&&(_, sum)| sum > 0)
            .map(|&(i, _)| STAGES[i])
            .collect();
        if !path_names.is_empty() {
            out.push_str(&format!("critical path: {}\n", path_names.join(" > ")));
        }
    }

    if !exemplars.is_empty() {
        exemplars.sort_by(|a, b| {
            let t = |j: &Json| j.get("total_us").and_then(Json::as_u64).unwrap_or(0);
            t(b).cmp(&t(a))
        });
        out.push_str(&format!("\nslowest exemplars (top {top}):\n"));
        for ex in exemplars.iter().take(top.max(1)) {
            let stages = ex.get("stages_us");
            let stage_str = STAGES
                .iter()
                .map(|name| {
                    let us = stages
                        .and_then(|s| s.get(name))
                        .and_then(Json::as_u64)
                        .unwrap_or(0);
                    format!("{name}={us}")
                })
                .collect::<Vec<_>>()
                .join(" ");
            out.push_str(&format!(
                "  {} {} status={} total={}us slack={}us\n    {}\n",
                ex.get("trace_id").and_then(Json::as_str).unwrap_or("?"),
                ex.get("endpoint").and_then(Json::as_str).unwrap_or("?"),
                ex.get("status").and_then(Json::as_u64).unwrap_or(0),
                ex.get("total_us").and_then(Json::as_u64).unwrap_or(0),
                ex.get("deadline_slack_us")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
                stage_str
            ));
        }
    }

    if !events.is_empty() {
        out.push_str(&format!("\nevents (last {}):\n", events.len().min(10)));
        let skip = events.len().saturating_sub(10);
        for ev in &events[skip..] {
            out.push_str(&format!(
                "  {} {}\n",
                ev.get("name").and_then(Json::as_str).unwrap_or("?"),
                ev.get("detail").and_then(Json::as_str).unwrap_or("")
            ));
        }
    }

    Ok(out.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_obs::{FlightConfig, FlightRecorder, StageClock, TraceRecord};

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    fn record(id: &str, execute_us: u64, queue_us: u64) -> TraceRecord {
        let mut stages = StageClock::new();
        stages.set(StageClock::QUEUE, queue_us * 1_000);
        stages.set(StageClock::EXECUTE, execute_us * 1_000);
        TraceRecord {
            trace_id: id.to_string(),
            endpoint: "/v1/predict",
            status: 200,
            stages,
            deadline_slack_us: 500,
        }
    }

    #[test]
    fn summarizes_a_real_dump() {
        let dir = std::env::temp_dir().join("amf_cli_trace_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("dump-{}.flight.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let recorder = FlightRecorder::new(FlightConfig {
            path: Some(path.clone()),
            ..FlightConfig::default()
        });
        let records = vec![record("amf-1", 100, 10), record("amf-2", 50, 40)];
        let exemplars = vec![record("amf-1", 100, 10)];
        recorder.dump("manual", &records, &exemplars, &[], &Json::obj());

        let out = run(&args(&["trace", &path.to_string_lossy()])).unwrap();
        assert!(out.contains("reason=manual"), "{out}");
        assert!(out.contains("execute"), "{out}");
        // Execute dominates (150us vs 50us queue): it leads the critical path.
        assert!(out.contains("critical path: execute > queue"), "{out}");
        assert!(out.contains("amf-1"), "{out}");
        assert!(out.contains("slowest exemplars"), "{out}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn missing_and_empty_files_are_errors() {
        assert!(run(&args(&["trace"])).is_err());
        assert!(run(&args(&["trace", "/nonexistent/flight.jsonl"])).is_err());
        let dir = std::env::temp_dir().join("amf_cli_trace_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("not-flight.jsonl");
        std::fs::write(&path, "{\"schema\":\"other/v1\"}\n").unwrap();
        let err = run(&args(&["trace", &path.to_string_lossy()])).unwrap_err();
        assert!(err.to_string().contains("no amf-flight/v1 lines"), "{err}");
        std::fs::remove_file(path).unwrap();
    }
}
