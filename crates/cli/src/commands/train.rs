//! `amf-qos train` — train an AMF model from a triplet file and save it.

use super::{amf_config_from, parse_attribute, CliError};
use crate::args::Args;
use amf_core::{persistence, AmfTrainer};
use qos_dataset::io;

/// Usage text for the subcommand.
pub const USAGE: &str = "amf-qos train --data TRIPLETS --out MODEL [--attr rt|tp] \
[--alpha A] [--lambda L] [--beta B] [--eta E] [--dim D] [--seed S] [--max-replays N] \
[--shards K]";

/// Runs the subcommand.
///
/// # Errors
///
/// Returns [`CliError`] for unreadable data, invalid flags, or save failures.
pub fn run(args: &Args) -> Result<String, CliError> {
    let data_path = args.require("data")?.to_string();
    let out = args.require("out")?.to_string();
    let attr = parse_attribute(args)?;
    let config = amf_config_from(args, attr)?;
    let max_replays: usize = args.parse_or("max-replays", 0usize)?;
    let shards: usize = args.parse_or("shards", 1usize)?;
    if shards == 0 {
        return Err(CliError("--shards must be >= 1".into()));
    }

    let samples = io::read_triplets(std::fs::File::open(&data_path)?)?;
    if samples.is_empty() {
        return Err(CliError(format!("{data_path}: no samples")));
    }

    let mut trainer = AmfTrainer::new(config)?;
    if shards > 1 {
        // Concurrent ingestion: identical results (the engine preserves
        // per-entity stream order), scaled across `shards` worker threads.
        trainer.feed_batch_sharded(
            samples.iter().map(|s| (s.user, s.service, s.timestamp, s.value)),
            amf_core::EngineOptions::with_shards(shards),
        )?;
    } else {
        for s in &samples {
            trainer.feed(s.user, s.service, s.timestamp, s.value);
        }
    }
    let mut options = qos_eval::methods::replay_options_for(samples.len());
    if max_replays > 0 {
        options.max_iterations = max_replays;
        options.min_iterations = options.min_iterations.min(max_replays);
    }
    let report = trainer.replay_until_converged(options);

    persistence::save_file(trainer.model(), &out)?;
    Ok(format!(
        "trained on {} samples ({} users, {} services): {} replays in {:.2?} \
         (converged: {}), model saved to {out}",
        samples.len(),
        trainer.model().num_users(),
        trainer.model().num_services(),
        report.iterations,
        report.elapsed,
        report.converged
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_dataset::stream::QosSample;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    fn temp_path(name: &str) -> String {
        let dir = std::env::temp_dir().join("amf_cli_train_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn write_samples(path: &str, n: usize) {
        let samples: Vec<QosSample> = (0..n)
            .map(|k| QosSample::new(k as u64 % 900, k % 5, k % 8, 0.5 + (k % 4) as f64))
            .collect();
        io::write_triplets(&samples, std::fs::File::create(path).unwrap()).unwrap();
    }

    #[test]
    fn trains_and_saves_model() {
        let data = temp_path("data.txt");
        let model = temp_path("model.amf");
        write_samples(&data, 60);
        let summary = run(&args(&[
            "--data",
            &data,
            "--out",
            &model,
            "--max-replays",
            "5000",
        ]))
        .unwrap();
        assert!(summary.contains("trained on 60 samples"));
        assert!(summary.contains("5 users"));
        let restored = persistence::load_file(&model).unwrap();
        assert_eq!(restored.num_users(), 5);
        assert_eq!(restored.num_services(), 8);
        std::fs::remove_file(data).unwrap();
        std::fs::remove_file(model).unwrap();
    }

    #[test]
    fn sharded_training_matches_sequential() {
        let data = temp_path("data3.txt");
        write_samples(&data, 80);
        let seq_model = temp_path("seq.amf");
        let shard_model = temp_path("shard.amf");
        run(&args(&[
            "--data",
            &data,
            "--out",
            &seq_model,
            "--max-replays",
            "2000",
        ]))
        .unwrap();
        let summary = run(&args(&[
            "--data",
            &data,
            "--out",
            &shard_model,
            "--max-replays",
            "2000",
            "--shards",
            "4",
        ]))
        .unwrap();
        assert!(summary.contains("trained on 80 samples"));
        // Same feed results (engine parity) + same replay stream => identical
        // saved models.
        assert_eq!(
            std::fs::read(&seq_model).unwrap(),
            std::fs::read(&shard_model).unwrap()
        );
        for p in [data, seq_model, shard_model] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn rejects_zero_shards() {
        let data = temp_path("data4.txt");
        write_samples(&data, 10);
        let err = run(&args(&[
            "--data",
            &data,
            "--out",
            &temp_path("never2.amf"),
            "--shards",
            "0",
        ]));
        assert!(err.is_err());
        std::fs::remove_file(data).unwrap();
    }

    #[test]
    fn rejects_missing_data_file() {
        let err = run(&args(&[
            "--data",
            "/nonexistent/x.txt",
            "--out",
            "/tmp/y.amf",
        ]));
        assert!(err.is_err());
    }

    #[test]
    fn rejects_empty_data() {
        let data = temp_path("empty.txt");
        std::fs::write(&data, "").unwrap();
        let model = temp_path("never.amf");
        assert!(run(&args(&["--data", &data, "--out", &model])).is_err());
        std::fs::remove_file(data).unwrap();
    }

    #[test]
    fn hyperparameter_overrides_reach_model() {
        let data = temp_path("data2.txt");
        let model = temp_path("model2.amf");
        write_samples(&data, 30);
        run(&args(&[
            "--data",
            &data,
            "--out",
            &model,
            "--alpha",
            "0.5",
            "--dim",
            "4",
            "--max-replays",
            "1000",
        ]))
        .unwrap();
        let restored = persistence::load_file(&model).unwrap();
        assert_eq!(restored.config().alpha, 0.5);
        assert_eq!(restored.config().dimension, 4);
        std::fs::remove_file(data).unwrap();
        std::fs::remove_file(model).unwrap();
    }
}
