//! `amf-qos train` — train an AMF model from a triplet file and save it.

use super::{amf_config_from, parse_attribute, CliError};
use crate::args::Args;
use amf_core::{
    persistence, AmfTrainer, FaultContext, FaultPlan, GuardConfig, QuarantineDiagnostics,
    SampleGuard,
};
use qos_dataset::io;
use std::sync::Arc;

/// Usage text for the subcommand.
pub const USAGE: &str = "amf-qos train --data TRIPLETS --out MODEL [--attr rt|tp] \
[--alpha A] [--lambda L] [--beta B] [--eta E] [--dim D] [--seed S] [--max-replays N] \
[--shards K] [--consistency parity|relaxed] [--guard] [--fault-plan SPEC]";

/// Runs the subcommand.
///
/// `--consistency relaxed` routes ingestion through the lock-free relaxed
/// engine lane (statistically equivalent, not bitwise; see DESIGN.md §13) —
/// useful with `--shards >= 2` where the parity engine pays an ordering tax.
/// `--guard` screens the stream through a [`SampleGuard`] (quarantining
/// NaN/∞, non-positive, and out-of-range values) and reports the quarantine
/// diagnostics. `--fault-plan` parses a deterministic fault script
/// (`seed=N;kill=W@J[:mid];stall=W@J:MS;drop=P;dup=P;reorder=N;`
/// `conn-reset=P;slow-read=P;blackhole=P` — entries split on `;` or `,`,
/// and the network verbs also accept the `verb@rate` shorthand, e.g.
/// `conn-reset@0.05,slow-read@0.02`): the stream mutations
/// (drop/duplicate/reorder) are applied to the input, and with
/// `--shards >= 2` the kill/stall script is injected into the shard workers
/// to exercise crash recovery — training must still complete. The network
/// verbs are *rejected* here: they only fire in `amf-qos loadtest`'s
/// client-side fault injection against a live `amf-qos serve` endpoint, and
/// silently accepting them would make a training run look fault-hardened
/// when nothing was injected.
///
/// # Errors
///
/// Returns [`CliError`] for unreadable data, invalid flags, or save failures.
pub fn run(args: &Args) -> Result<String, CliError> {
    let data_path = args.require("data")?.to_string();
    let out = args.require("out")?.to_string();
    let attr = parse_attribute(args)?;
    let config = amf_config_from(args, attr)?;
    let max_replays: usize = args.parse_or("max-replays", 0usize)?;
    let shards: usize = args.parse_or("shards", 1usize)?;
    if shards == 0 {
        return Err(CliError("--shards must be >= 1".into()));
    }
    let consistency: amf_core::Consistency = match args.get("consistency") {
        Some(text) => text
            .parse()
            .map_err(|e: String| CliError(format!("--consistency: {e}")))?,
        None => amf_core::Consistency::Parity,
    };
    let fault_plan = match args.get("fault-plan") {
        Some(spec) => Some(Arc::new(
            FaultPlan::parse_in(spec, FaultContext::Training)
                .map_err(|e| CliError(format!("--fault-plan: {e}")))?,
        )),
        None => None,
    };

    let samples = io::read_triplets(std::fs::File::open(&data_path)?)?;
    if samples.is_empty() {
        return Err(CliError(format!("{data_path}: no samples")));
    }

    let mut stream: Vec<(usize, usize, u64, f64)> = samples
        .iter()
        .map(|s| (s.user, s.service, s.timestamp, s.value))
        .collect();
    let mut notes = String::new();
    if let Some(plan) = &fault_plan {
        let before = stream.len();
        stream = plan.mutate_stream(&stream);
        notes.push_str(&format!(
            "\nfault plan: stream mutated {before} -> {} samples",
            stream.len()
        ));
    }
    let mut quarantine: Option<QuarantineDiagnostics> = None;
    if args.switch("guard") {
        let mut guard = SampleGuard::new(GuardConfig::for_amf(&config));
        stream.retain(|&(u, s, _, v)| guard.admit(u, s, v).is_ok());
        quarantine = Some(QuarantineDiagnostics::of(&guard));
    }
    if stream.is_empty() {
        return Err(CliError(format!(
            "{data_path}: no samples survived screening/faults"
        )));
    }

    let mut trainer = AmfTrainer::new(config)?;
    if shards > 1 || consistency == amf_core::Consistency::Relaxed {
        // Concurrent ingestion. In parity mode results are identical to the
        // sequential feed (the engine preserves per-entity stream order); in
        // relaxed mode the lock-free lane trades bitwise equality for
        // throughput with a statistically-bounded accuracy gap. A fault
        // plan's kill/stall script rides along to exercise crash
        // containment: parity workers respawn and replay their journal,
        // relaxed workers resume at-least-once from progress watermarks.
        let (_, faults) = trainer.feed_batch_sharded_with(
            stream.iter().copied(),
            amf_core::EngineOptions::with_consistency(shards, consistency),
            fault_plan.clone(),
        )?;
        if faults != amf_core::FaultStats::default() {
            notes.push_str(&format!(
                "\nfault recovery: {} worker panics ({} injected), {} respawns, \
                 {} jobs replayed, {} samples lost, {} workers abandoned",
                faults.worker_panics,
                faults.injected_panics,
                faults.respawns,
                faults.jobs_replayed,
                faults.samples_lost,
                faults.abandoned_workers
            ));
        }
    } else {
        for &(u, s, t, v) in &stream {
            trainer.feed(u, s, t, v);
        }
    }
    let mut options = qos_eval::methods::replay_options_for(stream.len());
    if max_replays > 0 {
        options.max_iterations = max_replays;
        options.min_iterations = options.min_iterations.min(max_replays);
    }
    let report = trainer.replay_until_converged(options);

    persistence::save_file(trainer.model(), &out)?;
    if let Some(diag) = &quarantine {
        notes.push_str(&format!("\n{diag}"));
    }
    Ok(format!(
        "trained on {} samples ({} users, {} services): {} replays in {:.2?} \
         (converged: {}), model saved to {out}{notes}",
        stream.len(),
        trainer.model().num_users(),
        trainer.model().num_services(),
        report.iterations,
        report.elapsed,
        report.converged
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_dataset::stream::QosSample;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    fn temp_path(name: &str) -> String {
        let dir = std::env::temp_dir().join("amf_cli_train_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn write_samples(path: &str, n: usize) {
        let samples: Vec<QosSample> = (0..n)
            .map(|k| QosSample::new(k as u64 % 900, k % 5, k % 8, 0.5 + (k % 4) as f64))
            .collect();
        io::write_triplets(&samples, std::fs::File::create(path).unwrap()).unwrap();
    }

    #[test]
    fn trains_and_saves_model() {
        let data = temp_path("data.txt");
        let model = temp_path("model.amf");
        write_samples(&data, 60);
        let summary = run(&args(&[
            "--data",
            &data,
            "--out",
            &model,
            "--max-replays",
            "5000",
        ]))
        .unwrap();
        assert!(summary.contains("trained on 60 samples"));
        assert!(summary.contains("5 users"));
        let restored = persistence::load_file(&model).unwrap();
        assert_eq!(restored.num_users(), 5);
        assert_eq!(restored.num_services(), 8);
        std::fs::remove_file(data).unwrap();
        std::fs::remove_file(model).unwrap();
    }

    #[test]
    fn sharded_training_matches_sequential() {
        let data = temp_path("data3.txt");
        write_samples(&data, 80);
        let seq_model = temp_path("seq.amf");
        let shard_model = temp_path("shard.amf");
        run(&args(&[
            "--data",
            &data,
            "--out",
            &seq_model,
            "--max-replays",
            "2000",
        ]))
        .unwrap();
        let summary = run(&args(&[
            "--data",
            &data,
            "--out",
            &shard_model,
            "--max-replays",
            "2000",
            "--shards",
            "4",
        ]))
        .unwrap();
        assert!(summary.contains("trained on 80 samples"));
        // Same feed results (engine parity) + same replay stream => identical
        // saved models.
        assert_eq!(
            std::fs::read(&seq_model).unwrap(),
            std::fs::read(&shard_model).unwrap()
        );
        for p in [data, seq_model, shard_model] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn relaxed_consistency_trains_and_saves() {
        let data = temp_path("data8.txt");
        let model = temp_path("model8.amf");
        write_samples(&data, 80);
        let summary = run(&args(&[
            "--data",
            &data,
            "--out",
            &model,
            "--max-replays",
            "500",
            "--shards",
            "4",
            "--consistency",
            "relaxed",
        ]))
        .unwrap();
        assert!(summary.contains("trained on 80 samples"), "{summary}");
        let restored = persistence::load_file(&model).unwrap();
        assert_eq!(restored.num_users(), 5);
        assert_eq!(restored.num_services(), 8);
        assert!(restored.update_count() > 0);
        std::fs::remove_file(data).unwrap();
        std::fs::remove_file(model).unwrap();
    }

    #[test]
    fn rejects_unknown_consistency() {
        let data = temp_path("data9.txt");
        write_samples(&data, 10);
        let err = run(&args(&[
            "--data",
            &data,
            "--out",
            &temp_path("never4.amf"),
            "--consistency",
            "eventual",
        ]))
        .unwrap_err();
        assert!(err.0.contains("consistency"), "{}", err.0);
        std::fs::remove_file(data).unwrap();
    }

    #[test]
    fn rejects_zero_shards() {
        let data = temp_path("data4.txt");
        write_samples(&data, 10);
        let err = run(&args(&[
            "--data",
            &data,
            "--out",
            &temp_path("never2.amf"),
            "--shards",
            "0",
        ]));
        assert!(err.is_err());
        std::fs::remove_file(data).unwrap();
    }

    #[test]
    fn rejects_missing_data_file() {
        let err = run(&args(&[
            "--data",
            "/nonexistent/x.txt",
            "--out",
            "/tmp/y.amf",
        ]));
        assert!(err.is_err());
    }

    #[test]
    fn rejects_empty_data() {
        let data = temp_path("empty.txt");
        std::fs::write(&data, "").unwrap();
        let model = temp_path("never.amf");
        assert!(run(&args(&["--data", &data, "--out", &model])).is_err());
        std::fs::remove_file(data).unwrap();
    }

    #[test]
    fn guard_quarantines_garbage_and_reports() {
        let data = temp_path("garbage.txt");
        let model = temp_path("garbage.amf");
        // Mix clean samples with out-of-range garbage (writable as triplets,
        // unlike NaN).
        let samples: Vec<QosSample> = (0..40)
            .map(|k| {
                let v = if k % 10 == 3 {
                    -4.0
                } else {
                    1.0 + (k % 3) as f64
                };
                QosSample::new(k as u64, k % 4, k % 6, v)
            })
            .collect();
        io::write_triplets(&samples, std::fs::File::create(&data).unwrap()).unwrap();
        let summary = run(&args(&[
            "--data",
            &data,
            "--out",
            &model,
            "--guard",
            "--max-replays",
            "500",
        ]))
        .unwrap();
        assert!(summary.contains("trained on 36 samples"), "{summary}");
        assert!(summary.contains("4 rejected"), "{summary}");
        std::fs::remove_file(data).unwrap();
        std::fs::remove_file(model).unwrap();
    }

    #[test]
    fn fault_plan_kill_still_trains_to_parity() {
        let data = temp_path("data5.txt");
        write_samples(&data, 80);
        let clean_model = temp_path("clean5.amf");
        let faulted_model = temp_path("faulted5.amf");
        run(&args(&[
            "--data",
            &data,
            "--out",
            &clean_model,
            "--max-replays",
            "1000",
            "--shards",
            "2",
        ]))
        .unwrap();
        let summary = run(&args(&[
            "--data",
            &data,
            "--out",
            &faulted_model,
            "--max-replays",
            "1000",
            "--shards",
            "2",
            "--fault-plan",
            "seed=7;kill=0@0",
        ]))
        .unwrap();
        assert!(summary.contains("fault recovery"), "{summary}");
        assert!(summary.contains("1 respawns"), "{summary}");
        // Recovery replays the journal: the crashed run converges to the
        // byte-identical model.
        assert_eq!(
            std::fs::read(&clean_model).unwrap(),
            std::fs::read(&faulted_model).unwrap()
        );
        for p in [data, clean_model, faulted_model] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn fault_plan_drop_shrinks_stream() {
        let data = temp_path("data6.txt");
        let model = temp_path("model6.amf");
        write_samples(&data, 100);
        let summary = run(&args(&[
            "--data",
            &data,
            "--out",
            &model,
            "--max-replays",
            "500",
            "--fault-plan",
            "seed=1;drop=0.5",
        ]))
        .unwrap();
        assert!(summary.contains("stream mutated 100 ->"), "{summary}");
        std::fs::remove_file(data).unwrap();
        std::fs::remove_file(model).unwrap();
    }

    #[test]
    fn rejects_network_fault_verbs() {
        let data = temp_path("data10.txt");
        write_samples(&data, 10);
        let err = run(&args(&[
            "--data",
            &data,
            "--out",
            &temp_path("never5.amf"),
            "--fault-plan",
            "seed=1;drop=0.1;conn-reset=0.05",
        ]))
        .unwrap_err();
        assert!(err.0.contains("conn-reset"), "{}", err.0);
        assert!(err.0.contains("inert in the train context"), "{}", err.0);
        std::fs::remove_file(data).unwrap();
    }

    #[test]
    fn rejects_malformed_fault_plan() {
        let data = temp_path("data7.txt");
        write_samples(&data, 10);
        let err = run(&args(&[
            "--data",
            &data,
            "--out",
            &temp_path("never3.amf"),
            "--fault-plan",
            "bogus=1",
        ]));
        assert!(err.is_err());
        std::fs::remove_file(data).unwrap();
    }

    #[test]
    fn hyperparameter_overrides_reach_model() {
        let data = temp_path("data2.txt");
        let model = temp_path("model2.amf");
        write_samples(&data, 30);
        run(&args(&[
            "--data",
            &data,
            "--out",
            &model,
            "--alpha",
            "0.5",
            "--dim",
            "4",
            "--max-replays",
            "1000",
        ]))
        .unwrap();
        let restored = persistence::load_file(&model).unwrap();
        assert_eq!(restored.config().alpha, 0.5);
        assert_eq!(restored.config().dimension, 4);
        std::fs::remove_file(data).unwrap();
        std::fs::remove_file(model).unwrap();
    }
}
