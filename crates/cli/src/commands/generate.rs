//! `amf-qos generate` — synthesize a WS-DREAM-like dataset and export it.

use super::{parse_attribute, CliError};
use crate::args::Args;
use qos_dataset::sampling::split_matrix;
use qos_dataset::stream::{QosSample, SliceStream};
use qos_dataset::{io, DatasetConfig, QosDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Usage text for the subcommand.
pub const USAGE: &str = "amf-qos generate --out FILE [--users N] [--services M] [--slices T] \
[--slice K] [--attr rt|tp] [--seed S] [--format dense|triplets] [--density D]";

/// Runs the subcommand, returning a human-readable summary.
///
/// # Errors
///
/// Returns [`CliError`] for invalid flags or I/O failures.
pub fn run(args: &Args) -> Result<String, CliError> {
    let out = args.require("out")?.to_string();
    let attr = parse_attribute(args)?;
    let config = DatasetConfig {
        users: args.parse_or("users", 142usize)?,
        services: args.parse_or("services", 500usize)?,
        time_slices: args.parse_or("slices", 8usize)?,
        seed: args.parse_or("seed", 2014u64)?,
        ..DatasetConfig::paper_scale()
    };
    let config = DatasetConfig {
        user_regions: config.user_regions.min(config.users),
        service_regions: config.service_regions.min(config.services),
        ..config
    };
    let slice = args.parse_or("slice", 0usize)?;
    let format = args.get_or("format", "dense").to_string();
    let density: f64 = args.parse_or("density", 1.0)?;
    if !(0.0 < density && density <= 1.0) {
        return Err(CliError(format!(
            "--density must be in (0, 1], got {density}"
        )));
    }

    let dataset =
        QosDataset::try_generate(&config).map_err(|e| CliError(format!("generate: {e}")))?;
    if slice >= dataset.time_slices() {
        return Err(CliError(format!(
            "--slice {slice} out of range (dataset has {})",
            dataset.time_slices()
        )));
    }
    let matrix = dataset.slice_matrix(attr, slice);

    let written = match format.as_str() {
        "dense" => {
            if density < 1.0 {
                let mut rng = StdRng::seed_from_u64(config.seed);
                let split = split_matrix(&matrix, density, &mut rng);
                io::write_dense_file(&split.train.to_dense(io::MISSING), &out)?;
                split.train.nnz()
            } else {
                io::write_dense_file(&matrix, &out)?;
                matrix.rows() * matrix.cols()
            }
        }
        "triplets" => {
            let mut rng = StdRng::seed_from_u64(config.seed);
            let split = split_matrix(&matrix, density, &mut rng);
            let stream = SliceStream::from_split(&dataset, &split, slice, &mut rng);
            let samples: Vec<QosSample> = stream.into_iter().collect();
            io::write_triplets(&samples, std::fs::File::create(&out)?)?;
            samples.len()
        }
        other => {
            return Err(CliError(format!(
                "unknown format '{other}' (expected dense or triplets)"
            )))
        }
    };

    Ok(format!(
        "wrote {written} {attr} values (slice {slice}, {}x{} matrix, density {:.0}%) to {out}",
        config.users,
        config.services,
        density * 100.0
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    fn temp_path(name: &str) -> String {
        let dir = std::env::temp_dir().join("amf_cli_generate_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn dense_export_roundtrips() {
        let out = temp_path("dense.txt");
        let summary = run(&args(&[
            "--out",
            &out,
            "--users",
            "6",
            "--services",
            "10",
            "--slices",
            "2",
        ]))
        .unwrap();
        assert!(summary.contains("60 RT values"));
        let m = io::read_dense_file(&out).unwrap();
        assert_eq!(m.shape(), (6, 10));
        std::fs::remove_file(out).unwrap();
    }

    #[test]
    fn triplet_export_at_density() {
        let out = temp_path("trip.txt");
        let summary = run(&args(&[
            "--out",
            &out,
            "--users",
            "6",
            "--services",
            "10",
            "--slices",
            "2",
            "--format",
            "triplets",
            "--density",
            "0.5",
            "--attr",
            "tp",
        ]))
        .unwrap();
        assert!(summary.contains("30 TP values"));
        let samples = io::read_triplets(std::fs::File::open(&out).unwrap()).unwrap();
        assert_eq!(samples.len(), 30);
        std::fs::remove_file(out).unwrap();
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(run(&args(&[])).is_err()); // missing --out
        let out = temp_path("x.txt");
        assert!(run(&args(&["--out", &out, "--format", "parquet"])).is_err());
        assert!(run(&args(&["--out", &out, "--density", "0"])).is_err());
        assert!(run(&args(&["--out", &out, "--slices", "2", "--slice", "5"])).is_err());
        assert!(run(&args(&["--out", &out, "--users", "0"])).is_err());
    }
}
