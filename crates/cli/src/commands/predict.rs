//! `amf-qos predict` — load a saved model and predict QoS values.

use super::CliError;
use crate::args::Args;
use amf_core::persistence;

/// Usage text for the subcommand.
pub const USAGE: &str =
    "amf-qos predict --model MODEL (--user U --service S | --pairs FILE | --user U --rank K)";

/// Runs the subcommand. With `--user`/`--service` prints one prediction;
/// with `--pairs FILE` (lines of `user service`) prints one per line; with
/// `--user`/`--rank K` prints the user's top-K services by predicted QoS
/// (ascending), one `service value` per line, using the batch ranking
/// kernel instead of one predict call per service.
///
/// # Errors
///
/// Returns [`CliError`] for unreadable/corrupt models, unknown ids, or
/// malformed pair files.
pub fn run(args: &Args) -> Result<String, CliError> {
    let model_path = args.require("model")?.to_string();
    let model = persistence::load_file(&model_path)?;

    if let Some(k) = args.get("rank") {
        let k: usize = k
            .parse()
            .map_err(|_| CliError("--rank expects a positive integer".into()))?;
        let user: usize = args.parse_or("user", usize::MAX)?;
        if user == usize::MAX {
            return Err(CliError(format!("--rank needs --user\nusage: {USAGE}")));
        }
        let ranked = model.rank_candidates(user, k);
        if ranked.is_empty() {
            return Err(CliError(format!(
                "nothing to rank: user {user} unknown, k is 0, or the model \
                 has no services ({} users, {} services registered)",
                model.num_users(),
                model.num_services()
            )));
        }
        let mut out = String::new();
        for (service, value) in ranked {
            out.push_str(&format!("{service} {value:.6}\n"));
        }
        return Ok(out);
    }

    if let Some(pairs_path) = args.get("pairs") {
        let text = std::fs::read_to_string(pairs_path)?;
        let mut out = String::new();
        for (line_no, line) in text.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let mut parts = trimmed.split_whitespace();
            let (user, service) = match (parts.next(), parts.next()) {
                (Some(u), Some(s)) => (
                    u.parse::<usize>()
                        .map_err(|_| CliError(format!("line {}: bad user id", line_no + 1)))?,
                    s.parse::<usize>()
                        .map_err(|_| CliError(format!("line {}: bad service id", line_no + 1)))?,
                ),
                _ => {
                    return Err(CliError(format!(
                        "line {}: expected 'user service'",
                        line_no + 1
                    )))
                }
            };
            match model.predict(user, service) {
                Some(v) => out.push_str(&format!("{user} {service} {v:.6}\n")),
                None => out.push_str(&format!("{user} {service} unknown\n")),
            }
        }
        return Ok(out);
    }

    let user: usize = args.parse_or("user", usize::MAX)?;
    let service: usize = args.parse_or("service", usize::MAX)?;
    if user == usize::MAX || service == usize::MAX {
        return Err(CliError(format!(
            "need --user and --service (or --pairs FILE)\nusage: {USAGE}"
        )));
    }
    match model.predict(user, service) {
        Some(v) => Ok(format!("{v:.6}")),
        None => Err(CliError(format!(
            "pair ({user}, {service}) unknown to this model \
             ({} users, {} services registered)",
            model.num_users(),
            model.num_services()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amf_core::{AmfConfig, AmfModel};

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    fn temp_path(name: &str) -> String {
        let dir = std::env::temp_dir().join("amf_cli_predict_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn saved_model(name: &str) -> String {
        let path = temp_path(name);
        let mut model = AmfModel::new(AmfConfig::response_time()).unwrap();
        for k in 0..100 {
            model.observe(k % 3, k % 4, 1.0 + (k % 2) as f64);
        }
        persistence::save_file(&model, &path).unwrap();
        path
    }

    #[test]
    fn single_pair_prediction() {
        let model = saved_model("m1.amf");
        let out = run(&args(&["--model", &model, "--user", "0", "--service", "1"])).unwrap();
        let value: f64 = out.parse().unwrap();
        assert!((0.0..=20.0).contains(&value));
        std::fs::remove_file(model).unwrap();
    }

    #[test]
    fn unknown_pair_is_an_error() {
        let model = saved_model("m2.amf");
        let err = run(&args(&[
            "--model",
            &model,
            "--user",
            "99",
            "--service",
            "0",
        ]));
        assert!(err.unwrap_err().to_string().contains("unknown"));
        std::fs::remove_file(model).unwrap();
    }

    #[test]
    fn pairs_file_batch() {
        let model = saved_model("m3.amf");
        let pairs = temp_path("pairs.txt");
        std::fs::write(&pairs, "0 0\n1 2\n\n99 0\n").unwrap();
        let out = run(&args(&["--model", &model, "--pairs", &pairs])).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("0 0 "));
        assert!(lines[2].ends_with("unknown"));
        std::fs::remove_file(model).unwrap();
        std::fs::remove_file(pairs).unwrap();
    }

    #[test]
    fn malformed_pairs_rejected() {
        let model = saved_model("m4.amf");
        let pairs = temp_path("bad_pairs.txt");
        std::fs::write(&pairs, "0\n").unwrap();
        assert!(run(&args(&["--model", &model, "--pairs", &pairs])).is_err());
        std::fs::write(&pairs, "a b\n").unwrap();
        assert!(run(&args(&["--model", &model, "--pairs", &pairs])).is_err());
        std::fs::remove_file(model).unwrap();
        std::fs::remove_file(pairs).unwrap();
    }

    #[test]
    fn rank_mode_lists_top_k_ascending() {
        let model = saved_model("m6.amf");
        let out = run(&args(&["--model", &model, "--user", "0", "--rank", "3"])).unwrap();
        let rows: Vec<(usize, f64)> = out
            .lines()
            .map(|l| {
                let mut p = l.split_whitespace();
                (
                    p.next().unwrap().parse().unwrap(),
                    p.next().unwrap().parse().unwrap(),
                )
            })
            .collect();
        assert_eq!(rows.len(), 3);
        assert!(rows.windows(2).all(|w| w[0].1 <= w[1].1));
        // Values agree with the single-pair path.
        let single = run(&args(&[
            "--model",
            &model,
            "--user",
            "0",
            "--service",
            &rows[0].0.to_string(),
        ]))
        .unwrap();
        assert_eq!(single, format!("{:.6}", rows[0].1));
        std::fs::remove_file(model).unwrap();
    }

    #[test]
    fn rank_mode_rejects_bad_input() {
        let model = saved_model("m7.amf");
        assert!(run(&args(&["--model", &model, "--rank", "3"])).is_err());
        assert!(run(&args(&["--model", &model, "--user", "0", "--rank", "x"])).is_err());
        let err = run(&args(&["--model", &model, "--user", "99", "--rank", "3"])).unwrap_err();
        assert!(err.to_string().contains("unknown"));
        std::fs::remove_file(model).unwrap();
    }

    #[test]
    fn missing_selectors_explains_usage() {
        let model = saved_model("m5.amf");
        let err = run(&args(&["--model", &model])).unwrap_err();
        assert!(err.to_string().contains("--user"));
        std::fs::remove_file(model).unwrap();
    }
}
