//! `amf-qos report` — summarize an `amf-obs-ts/v1` JSONL telemetry log.
//!
//! Consumes the file a [`qos_obs::SnapshotRecorder`] produced (e.g. via
//! `amf-qos serve --telemetry-log`) and prints accuracy/throughput/health
//! trends across the recorded interval snapshots: windowed MRE and NMAE at
//! the first and last snapshot plus their extremes, ingest and drift-alarm
//! deltas, and queue-depth high-watermarks. Pure text; the raw log stays
//! `jq`-friendly.

use super::CliError;
use crate::args::Args;
use qos_obs::Json;
use std::io::BufRead;

/// Usage text for the subcommand.
pub const USAGE: &str = "amf-qos report TELEMETRY_JSONL [--last N]";

/// One parsed telemetry line's fields of interest.
struct Point {
    seq: u64,
    at_ms: u64,
    mre: Option<f64>,
    nmae: Option<f64>,
    drift_healthy: Option<f64>,
    accepted: u64,
    updates: u64,
    alarms: u64,
    outbox_hwm: f64,
}

impl Point {
    fn parse(line: &str, line_no: usize) -> Result<Self, CliError> {
        let doc = Json::parse(line)
            .map_err(|e| CliError(format!("line {line_no}: not valid telemetry JSON ({e})")))?;
        let schema = doc.get("schema").and_then(Json::as_str);
        if schema != Some(qos_obs::TS_SCHEMA) {
            return Err(CliError(format!(
                "line {line_no}: schema {schema:?}, expected {:?}",
                qos_obs::TS_SCHEMA
            )));
        }
        let snapshot = doc
            .get("snapshot")
            .ok_or_else(|| CliError(format!("line {line_no}: missing snapshot")))?;
        let gauge = |name: &str| snapshot.get("gauges").and_then(|g| g.get(name))?.as_f64();
        let counter = |name: &str| snapshot.get("counters")?.get(name).and_then(Json::as_u64);
        Ok(Self {
            seq: doc.get("seq").and_then(Json::as_u64).unwrap_or(0),
            at_ms: doc.get("at_ms").and_then(Json::as_u64).unwrap_or(0),
            mre: gauge("model.mre_w"),
            nmae: gauge("model.nmae_w"),
            drift_healthy: gauge("model.drift_healthy"),
            accepted: counter("service.accepted").unwrap_or(0),
            updates: counter("service.updates").unwrap_or(0),
            alarms: counter("model.drift_alarms.user").unwrap_or(0)
                + counter("model.drift_alarms.service").unwrap_or(0),
            outbox_hwm: gauge("engine.outbox_depth_hwm").unwrap_or(0.0),
        })
    }
}

/// Min/max/first/last over an optional-valued series.
fn trend(points: &[Point], pick: impl Fn(&Point) -> Option<f64>) -> Option<String> {
    let values: Vec<f64> = points.iter().filter_map(&pick).collect();
    let (first, last) = (values.first()?, values.last()?);
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let direction = if last < first {
        "improving"
    } else if last > first {
        "worsening"
    } else {
        "flat"
    };
    Some(format!(
        "first {first:.4}  last {last:.4}  min {min:.4}  max {max:.4}  ({direction})"
    ))
}

/// Runs the subcommand.
///
/// # Errors
///
/// Returns [`CliError`] for unreadable files or malformed telemetry lines.
pub fn run(args: &Args) -> Result<String, CliError> {
    let path = args
        .positional(1)
        .ok_or_else(|| CliError(format!("missing telemetry file\nusage: {USAGE}")))?;
    let last: usize = args.parse_or("last", usize::MAX)?;
    let file =
        std::fs::File::open(path).map_err(|e| CliError(format!("{path}: {e}\nusage: {USAGE}")))?;

    let mut points = Vec::new();
    for (line_no, line) in std::io::BufReader::new(file).lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        points.push(Point::parse(&line, line_no + 1)?);
    }
    if points.is_empty() {
        return Err(CliError(format!("{path}: no telemetry lines")));
    }
    if points.len() > last {
        points.drain(..points.len() - last);
    }

    let (first, final_point) = (&points[0], &points[points.len() - 1]);
    let span_ms = final_point.at_ms.saturating_sub(first.at_ms);
    let health = match final_point.drift_healthy {
        Some(0.0) => "DRIFTING (recent alarm)",
        Some(_) => "healthy",
        None => "unknown (no sentinel gauge yet)",
    };
    let na = || "n/a (no samples in window yet)".to_string();
    Ok(format!(
        "telemetry report  {path}\n\
         snapshots         {} (seq {}..{}), spanning {:.1}s\n\
         accepted          {} -> {} (+{})\n\
         model updates     {} -> {} (+{})\n\
         windowed MRE      {}\n\
         windowed NMAE     {}\n\
         drift alarms      +{} over the span; end state {health}\n\
         outbox depth hwm  {:.0}",
        points.len(),
        first.seq,
        final_point.seq,
        span_ms as f64 / 1_000.0,
        first.accepted,
        final_point.accepted,
        final_point.accepted.saturating_sub(first.accepted),
        first.updates,
        final_point.updates,
        final_point.updates.saturating_sub(first.updates),
        trend(&points, |p| p.mre).unwrap_or_else(na),
        trend(&points, |p| p.nmae).unwrap_or_else(na),
        final_point.alarms.saturating_sub(first.alarms),
        final_point.outbox_hwm,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    fn line(seq: u64, at_ms: u64, mre: f64, accepted: u64, alarms: u64) -> String {
        format!(
            "{{\"schema\":\"{}\",\"seq\":{seq},\"at_ms\":{at_ms},\"unix_ms\":0,\
             \"snapshot\":{{\"schema\":\"{}\",\
             \"counters\":{{\"service.accepted\":{accepted},\"service.updates\":{accepted},\
             \"model.drift_alarms.user\":{alarms}}},\
             \"gauges\":{{\"model.mre_w\":{mre:.4},\"model.nmae_w\":{:.4},\
             \"model.drift_healthy\":1.0,\"engine.outbox_depth_hwm\":3.0}},\
             \"histograms\":{{}}}}}}",
            qos_obs::TS_SCHEMA,
            qos_obs::SCHEMA,
            mre * 0.8,
        )
    }

    fn write_log(name: &str, lines: &[String]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("amf_cli_report_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        path
    }

    #[test]
    fn report_summarizes_trends() {
        let path = write_log(
            "ok.jsonl",
            &[
                line(0, 1_000, 0.50, 100, 0),
                line(1, 2_000, 0.40, 900, 0),
                line(2, 3_000, 0.30, 2_000, 1),
            ],
        );
        let out = run(&args(&["report", &path.to_string_lossy()])).unwrap();
        assert!(out.contains("snapshots         3 (seq 0..2), spanning 2.0s"));
        assert!(out.contains("accepted          100 -> 2000 (+1900)"));
        assert!(
            out.contains("first 0.5000  last 0.3000") && out.contains("(improving)"),
            "{out}"
        );
        assert!(out.contains("drift alarms      +1"));
        assert!(out.contains("healthy"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn last_flag_trims_the_window() {
        let path = write_log(
            "tail.jsonl",
            &[
                line(0, 0, 0.90, 0, 0),
                line(1, 1_000, 0.20, 500, 0),
                line(2, 2_000, 0.25, 700, 0),
            ],
        );
        let out = run(&args(&["report", &path.to_string_lossy(), "--last", "2"])).unwrap();
        assert!(out.contains("snapshots         2 (seq 1..2)"));
        assert!(out.contains("(worsening)"), "{out}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let path = write_log(
            "bad.jsonl",
            &["{\"schema\":\"nope/v9\",\"seq\":0,\"snapshot\":{}}".to_string()],
        );
        let err = run(&args(&["report", &path.to_string_lossy()])).unwrap_err();
        assert!(err.to_string().contains("schema"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn missing_file_and_missing_arg_error() {
        assert!(run(&args(&["report"])).is_err());
        assert!(run(&args(&["report", "/nonexistent/telemetry.jsonl"])).is_err());
    }
}
