//! CLI subcommands. Every command is a pure function from parsed [`Args`] to
//! its output text, so the test suite drives commands directly without
//! spawning processes.

pub mod diagnose;
pub mod evaluate;
pub mod experiment;
pub mod generate;
pub mod loadtest;
pub mod predict;
pub mod report;
pub mod scenario;
pub mod serve;
pub mod simulate;
pub mod stats;
pub mod trace;
pub mod train;

use crate::args::{Args, ArgsError};
use qos_dataset::Attribute;

/// A CLI failure with a user-facing message.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<ArgsError> for CliError {
    fn from(e: ArgsError) -> Self {
        CliError(e.0)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("io error: {e}"))
    }
}

impl From<qos_dataset::DatasetError> for CliError {
    fn from(e: qos_dataset::DatasetError) -> Self {
        CliError(e.to_string())
    }
}

impl From<amf_core::AmfError> for CliError {
    fn from(e: amf_core::AmfError) -> Self {
        CliError(e.to_string())
    }
}

/// Parses `--attr rt|tp` (default rt).
pub fn parse_attribute(args: &Args) -> Result<Attribute, CliError> {
    match args.get_or("attr", "rt").to_ascii_lowercase().as_str() {
        "rt" | "response-time" => Ok(Attribute::ResponseTime),
        "tp" | "throughput" => Ok(Attribute::Throughput),
        other => Err(CliError(format!(
            "unknown attribute '{other}' (expected rt or tp)"
        ))),
    }
}

/// Parses `--scale small|medium|full` (default small).
pub fn parse_scale(args: &Args) -> Result<qos_eval::Scale, CliError> {
    match args.get_or("scale", "small").to_ascii_lowercase().as_str() {
        "small" => Ok(qos_eval::Scale::small()),
        "medium" => Ok(qos_eval::Scale::medium()),
        "full" => Ok(qos_eval::Scale::full()),
        other => Err(CliError(format!(
            "unknown scale '{other}' (expected small, medium, or full)"
        ))),
    }
}

/// The AMF configuration from CLI flags, starting from the attribute's paper
/// defaults and overriding any of `--alpha --lambda --beta --eta --dim
/// --seed`.
pub fn amf_config_from(args: &Args, attr: Attribute) -> Result<amf_core::AmfConfig, CliError> {
    let base = match attr {
        Attribute::ResponseTime => amf_core::AmfConfig::response_time(),
        Attribute::Throughput => amf_core::AmfConfig::throughput(),
    };
    let lambda = args.parse_or("lambda", base.lambda_user)?;
    Ok(amf_core::AmfConfig {
        alpha: args.parse_or("alpha", base.alpha)?,
        lambda_user: lambda,
        lambda_service: lambda,
        beta: args.parse_or("beta", base.beta)?,
        learning_rate: args.parse_or("eta", base.learning_rate)?,
        dimension: args.parse_or("dim", base.dimension)?,
        seed: args.parse_or("seed", base.seed)?,
        ..base
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn attribute_parsing() {
        assert_eq!(
            parse_attribute(&args(&[])).unwrap(),
            Attribute::ResponseTime
        );
        assert_eq!(
            parse_attribute(&args(&["--attr", "tp"])).unwrap(),
            Attribute::Throughput
        );
        assert_eq!(
            parse_attribute(&args(&["--attr", "Throughput"])).unwrap(),
            Attribute::Throughput
        );
        assert!(parse_attribute(&args(&["--attr", "latency"])).is_err());
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(parse_scale(&args(&[])).unwrap(), qos_eval::Scale::small());
        assert_eq!(
            parse_scale(&args(&["--scale", "full"])).unwrap(),
            qos_eval::Scale::full()
        );
        assert!(parse_scale(&args(&["--scale", "huge"])).is_err());
    }

    #[test]
    fn amf_config_overrides() {
        let a = args(&[
            "--alpha", "-0.05", "--lambda", "0.01", "--dim", "5", "--seed", "9",
        ]);
        let c = amf_config_from(&a, Attribute::ResponseTime).unwrap();
        assert_eq!(c.alpha, -0.05);
        assert_eq!(c.lambda_user, 0.01);
        assert_eq!(c.lambda_service, 0.01);
        assert_eq!(c.dimension, 5);
        assert_eq!(c.seed, 9);
        // untouched defaults
        assert_eq!(c.beta, 0.3);
    }

    #[test]
    fn amf_config_defaults_by_attribute() {
        let c = amf_config_from(&args(&[]), Attribute::Throughput).unwrap();
        assert_eq!(c.alpha, -0.05);
        assert_eq!(c.r_max, 7000.0);
    }
}
