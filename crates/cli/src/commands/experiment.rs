//! `amf-qos experiment` — regenerate any paper artifact by id.

use super::{parse_scale, CliError};
use crate::args::Args;
use qos_eval::experiments;

/// Usage text for the subcommand.
pub const USAGE: &str = "amf-qos experiment <id> [--scale small|medium|full]\n\
ids: fig2 fig6 fig7-8 fig9 table1 fig10 fig11 fig12 fig13 fig14 \
ablation-weights ablation-loss ablation-alpha ablation-sampling over-time adaptation";

/// All experiment ids, for help output and tests.
#[allow(dead_code)] // exercised by tests; single source of truth for the id list
pub const IDS: [&str; 16] = [
    "fig2",
    "fig6",
    "fig7-8",
    "fig9",
    "table1",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "ablation-weights",
    "ablation-loss",
    "ablation-alpha",
    "over-time",
    "ablation-sampling",
    "adaptation",
];

/// Runs the subcommand: the artifact text for the given experiment id.
///
/// # Errors
///
/// Returns [`CliError`] for an unknown id or missing positional argument.
pub fn run(args: &Args) -> Result<String, CliError> {
    let id = args
        .positional(1)
        .ok_or_else(|| CliError(format!("missing experiment id\nusage: {USAGE}")))?;
    let scale = parse_scale(args)?;
    let artifact = match id {
        "fig2" => experiments::fig2::run(&scale).render(),
        "fig6" => experiments::fig6::run(&scale).to_table(),
        "fig7-8" => experiments::fig7_8::run(&scale).render(),
        "fig9" => experiments::fig9::run(&scale).render(),
        "table1" => experiments::table1::run(&scale).render(),
        "fig10" => experiments::fig10::run(&scale).render(),
        "fig11" => experiments::fig11::run(&scale).render(),
        "fig12" => experiments::fig12::run(&scale).render(),
        "fig13" => experiments::fig13::run(&scale).render(),
        "fig14" => experiments::fig14::run(&scale).render(),
        "ablation-weights" => experiments::ablation::run_weights(&scale).render(),
        "ablation-loss" => experiments::ablation::run_loss(&scale).render(),
        "ablation-alpha" => experiments::ablation::run_alpha(&scale).render(),
        "over-time" => experiments::over_time::run(&scale).render(),
        "ablation-sampling" => experiments::ablation::run_sampling(&scale).render(),
        "adaptation" => experiments::adaptation::run(&scale).render(),
        other => {
            return Err(CliError(format!(
                "unknown experiment '{other}'\nusage: {USAGE}"
            )))
        }
    };
    Ok(artifact)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn quick_experiments_run_at_small_scale() {
        // Only the cheap data-shape experiments in unit tests; the heavy
        // accuracy ones are exercised by their own modules and the benches.
        for id in ["fig2", "fig6", "fig7-8", "fig9"] {
            let out = run(&args(&["experiment", id])).unwrap();
            assert!(!out.is_empty(), "{id} produced empty artifact");
        }
    }

    #[test]
    fn unknown_id_lists_usage() {
        let err = run(&args(&["experiment", "fig99"])).unwrap_err();
        assert!(err.to_string().contains("unknown experiment"));
        assert!(err.to_string().contains("table1"));
    }

    #[test]
    fn missing_id_is_an_error() {
        assert!(run(&args(&["experiment"])).is_err());
    }

    #[test]
    fn id_list_matches_dispatch() {
        // Every advertised id must dispatch (don't run the heavy ones; just
        // check they aren't "unknown").
        for id in IDS {
            let err_text = run(&args(&["experiment", id, "--scale", "bogus"]))
                .unwrap_err()
                .to_string();
            assert!(
                err_text.contains("unknown scale"),
                "id {id} failed before scale parsing: {err_text}"
            );
        }
    }
}
