//! `amf-qos stats` — dataset statistics (the Fig. 6 table) for a synthetic
//! configuration or an imported WS-DREAM-format file.

use super::CliError;
use crate::args::Args;
use qos_dataset::io;
use qos_linalg::stats as lstats;

/// Usage text for the subcommand.
pub const USAGE: &str =
    "amf-qos stats [--scale small|medium|full] | amf-qos stats --data DENSE_FILE";

/// Runs the subcommand.
///
/// # Errors
///
/// Returns [`CliError`] for unreadable files or invalid flags.
pub fn run(args: &Args) -> Result<String, CliError> {
    if let Some(path) = args.get("data") {
        // Statistics of an imported matrix file.
        let sparse = io::read_dense_as_sparse(std::fs::File::open(path)?)?;
        let values = sparse.observed_values();
        let summary = lstats::Summary::of(&values)
            .ok_or_else(|| CliError(format!("{path}: no observed values")))?;
        let skew = lstats::skewness(&values).unwrap_or(0.0);
        return Ok(format!(
            "file                  {path}\n\
             shape                 {} x {}\n\
             observed              {} ({:.1}% density)\n\
             min / median / max    {:.4} / {:.4} / {:.4}\n\
             mean / std            {:.4} / {:.4}\n\
             skewness              {:.3}\n",
            sparse.rows(),
            sparse.cols(),
            sparse.nnz(),
            sparse.density() * 100.0,
            summary.min,
            summary.median,
            summary.max,
            summary.mean,
            summary.std_dev,
            skew,
        ));
    }

    let scale = super::parse_scale(args)?;
    Ok(qos_eval::experiments::fig6::run(&scale).to_table())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn synthetic_stats_table() {
        let out = run(&args(&["stats"])).unwrap();
        assert!(out.contains("#Users"));
        assert!(out.contains("RT average"));
    }

    #[test]
    fn file_stats() {
        let dir = std::env::temp_dir().join("amf_cli_stats_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.txt");
        std::fs::write(&path, "1.0 -1.0 3.0\n2.0 4.0 -1.0\n").unwrap();
        let out = run(&args(&["stats", "--data", &path.to_string_lossy()])).unwrap();
        assert!(out.contains("2 x 3"));
        assert!(out.contains("66.7% density"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn empty_file_rejected() {
        let dir = std::env::temp_dir().join("amf_cli_stats_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.txt");
        std::fs::write(&path, "-1.0 -1.0\n").unwrap();
        assert!(run(&args(&["stats", "--data", &path.to_string_lossy()])).is_err());
        std::fs::remove_file(path).unwrap();
    }
}
