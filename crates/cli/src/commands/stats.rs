//! `amf-qos stats` — dataset statistics (the Fig. 6 table) for a synthetic
//! configuration or an imported WS-DREAM-format file, plus `--obs`, which
//! runs a short seeded training workload through the full prediction service
//! and prints the `amf-obs/v1` observability snapshot as JSON.

use super::CliError;
use crate::args::Args;
use qos_dataset::io;
use qos_linalg::stats as lstats;
use qos_service::{QosPredictionService, QosRecord, ServiceConfig};

/// Usage text for the subcommand.
pub const USAGE: &str = "amf-qos stats [--scale small|medium|full] | amf-qos stats --data DENSE_FILE | amf-qos stats --obs [--samples N] [--seed S] [--shards K]";

/// Runs the subcommand.
///
/// # Errors
///
/// Returns [`CliError`] for unreadable files or invalid flags.
pub fn run(args: &Args) -> Result<String, CliError> {
    if args.switch("obs") {
        return run_obs(args);
    }
    if let Some(path) = args.get("data") {
        // Statistics of an imported matrix file.
        let sparse = io::read_dense_as_sparse(std::fs::File::open(path)?)?;
        let values = sparse.observed_values();
        let summary = lstats::Summary::of(&values)
            .ok_or_else(|| CliError(format!("{path}: no observed values")))?;
        let skew = lstats::skewness(&values).unwrap_or(0.0);
        return Ok(format!(
            "file                  {path}\n\
             shape                 {} x {}\n\
             observed              {} ({:.1}% density)\n\
             min / median / max    {:.4} / {:.4} / {:.4}\n\
             mean / std            {:.4} / {:.4}\n\
             skewness              {:.3}\n",
            sparse.rows(),
            sparse.cols(),
            sparse.nnz(),
            sparse.density() * 100.0,
            summary.min,
            summary.median,
            summary.max,
            summary.mean,
            summary.std_dev,
            skew,
        ));
    }

    let scale = super::parse_scale(args)?;
    Ok(qos_eval::experiments::fig6::run(&scale).to_table())
}

/// `amf-qos stats --obs`: feed a deterministic synthetic stream through the
/// prediction service (guard on, sharded ingestion) and print the merged
/// `amf-obs/v1` snapshot. The output is pure JSON so it can be piped to
/// `jq`; everything is derived from `--seed`, so repeated runs produce the
/// same counter values (latency histograms naturally vary).
fn run_obs(args: &Args) -> Result<String, CliError> {
    let samples: u64 = args.parse_or("samples", 2_000)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let shards: usize = args.parse_or("shards", 4)?;
    if shards == 0 {
        return Err(CliError("--shards must be at least 1".into()));
    }

    let config = ServiceConfig {
        shards,
        ..ServiceConfig::default()
    };
    let service =
        QosPredictionService::try_new(config).map_err(|e| CliError(format!("service: {e}")))?;

    // Deterministic LCG stream over a small entity grid; ~5% of the samples
    // are deliberately invalid (NaN / negative / out-of-range) so the guard
    // counters are exercised, not just the happy path.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        state >> 11
    };
    let mut batch = Vec::with_capacity(256);
    for t in 0..samples {
        let user = next() % 24;
        let svc = next() % 32;
        let roll = next() % 100;
        let value = if roll < 2 {
            f64::NAN
        } else if roll < 4 {
            -1.0
        } else if roll < 5 {
            1.0e9
        } else {
            0.05 + (next() % 19_000) as f64 / 1_000.0
        };
        batch.push(QosRecord {
            user: format!("user-{user}"),
            service: format!("svc-{svc}"),
            timestamp: t,
            value,
        });
        if batch.len() == 256 {
            service.submit_batch(std::mem::take(&mut batch));
        }
    }
    service.submit_batch(batch);

    // Exercise the full prediction surface: the model path, the degraded
    // fallback ladder (unknown entities), and the batch ranking kernel.
    for u in 0..24 {
        let _ = service.predict(&format!("user-{u}"), &format!("svc-{}", u % 32));
        let _ = service.predict_degraded(&format!("user-{u}"), "svc-unknown");
        let _ = service.rank_candidates(&format!("user-{u}"), 5);
    }
    let _ = service.predict_degraded("user-unknown", "svc-unknown");

    Ok(service.stats_snapshot().to_string_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn synthetic_stats_table() {
        let out = run(&args(&["stats"])).unwrap();
        assert!(out.contains("#Users"));
        assert!(out.contains("RT average"));
    }

    #[test]
    fn file_stats() {
        let dir = std::env::temp_dir().join("amf_cli_stats_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.txt");
        std::fs::write(&path, "1.0 -1.0 3.0\n2.0 4.0 -1.0\n").unwrap();
        let out = run(&args(&["stats", "--data", &path.to_string_lossy()])).unwrap();
        assert!(out.contains("2 x 3"));
        assert!(out.contains("66.7% density"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn obs_mode_emits_schema_valid_json() {
        let out = run(&args(&[
            "stats",
            "--obs",
            "--samples",
            "500",
            "--shards",
            "2",
        ]))
        .unwrap();
        let doc = qos_obs::Json::parse(&out).expect("obs output must be pure JSON");
        assert_eq!(
            doc.get("schema").and_then(qos_obs::Json::as_str),
            Some(qos_obs::SCHEMA)
        );
        let counter = |name: &str| {
            doc.get("counters")
                .and_then(|c| c.get(name))
                .and_then(qos_obs::Json::as_u64)
                .unwrap_or(0)
        };
        assert!(counter("service.accepted") > 400);
        assert!(
            counter("service.rejected") > 0,
            "garbage samples must hit the guard"
        );
        assert!(counter("service.predictions") > 0);
        // Unknown entities walk the fallback ladder; with data present they
        // land on the global mean rather than the hard default.
        assert!(counter("service.predict_source.global-mean") > 0);
    }

    #[test]
    fn obs_mode_rejects_zero_shards() {
        assert!(run(&args(&["stats", "--obs", "--shards", "0"])).is_err());
    }

    #[test]
    fn empty_file_rejected() {
        let dir = std::env::temp_dir().join("amf_cli_stats_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.txt");
        std::fs::write(&path, "-1.0 -1.0\n").unwrap();
        assert!(run(&args(&["stats", "--data", &path.to_string_lossy()])).is_err());
        std::fs::remove_file(path).unwrap();
    }
}
