//! `amf-qos diagnose` — health snapshot of a saved model.

use super::CliError;
use crate::args::Args;
use amf_core::{persistence, ModelDiagnostics};

/// Usage text for the subcommand.
pub const USAGE: &str = "amf-qos diagnose --model MODEL [--threshold T] [--norm-limit N]";

/// Runs the subcommand: prints [`ModelDiagnostics`] plus a health verdict.
///
/// # Errors
///
/// Returns [`CliError`] for unreadable/corrupt model files or bad flags.
pub fn run(args: &Args) -> Result<String, CliError> {
    let model_path = args.require("model")?.to_string();
    let threshold: f64 = args.parse_or(
        "threshold",
        amf_core::diagnostics::DEFAULT_CONVERGED_THRESHOLD,
    )?;
    let norm_limit: f64 = args.parse_or("norm-limit", 25.0)?;
    if threshold.is_nan() || threshold <= 0.0 || norm_limit.is_nan() || norm_limit <= 0.0 {
        return Err(CliError(
            "--threshold and --norm-limit must be positive".into(),
        ));
    }

    let model = persistence::load_file(&model_path)?;
    let diagnostics = ModelDiagnostics::with_threshold(&model, threshold);
    let verdict = if diagnostics.looks_healthy(norm_limit) {
        "HEALTHY"
    } else {
        "ATTENTION NEEDED"
    };
    Ok(format!(
        "model: {model_path}\nconfig: d={} alpha={} eta={} lambda={}\n{}\nverdict: {verdict} (norm limit {norm_limit})",
        model.config().dimension,
        model.config().alpha,
        model.config().learning_rate,
        model.config().lambda_user,
        diagnostics,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use amf_core::{AmfConfig, AmfModel};

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    fn saved_model(name: &str, updates: usize) -> String {
        let dir = std::env::temp_dir().join("amf_cli_diagnose_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name).to_string_lossy().into_owned();
        let mut model = AmfModel::new(AmfConfig::response_time()).unwrap();
        for k in 0..updates {
            model.observe(k % 3, k % 5, 1.0 + (k % 2) as f64);
        }
        persistence::save_file(&model, &path).unwrap();
        path
    }

    #[test]
    fn healthy_trained_model() {
        let path = saved_model("good.amf", 500);
        let out = run(&args(&["--model", &path])).unwrap();
        assert!(out.contains("HEALTHY"));
        assert!(out.contains("users: 3 registered"));
        assert!(out.contains("services: 5 registered"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn empty_model_needs_attention() {
        let path = saved_model("empty.amf", 0);
        let out = run(&args(&["--model", &path])).unwrap();
        assert!(out.contains("ATTENTION NEEDED"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn rejects_bad_flags_and_files() {
        assert!(run(&args(&["--model", "/nonexistent.amf"])).is_err());
        let path = saved_model("x.amf", 10);
        assert!(run(&args(&["--model", &path, "--threshold", "-1"])).is_err());
        assert!(run(&args(&["--model", &path, "--norm-limit", "0"])).is_err());
        std::fs::remove_file(path).unwrap();
    }
}
