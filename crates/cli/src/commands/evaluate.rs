//! `amf-qos evaluate` — the Table I accuracy protocol on synthetic data.

use super::{parse_attribute, parse_scale, CliError};
use crate::args::Args;
use qos_eval::experiments::table1;
use qos_eval::methods::Approach;

/// Usage text for the subcommand.
pub const USAGE: &str = "amf-qos evaluate [--scale small|medium|full] [--attr rt|tp] \
[--density D] [--approaches upcc,ipcc,uipcc,pmf,nimf,amf]";

fn parse_approaches(raw: &str) -> Result<Vec<Approach>, CliError> {
    raw.split(',')
        .map(|name| match name.trim().to_ascii_lowercase().as_str() {
            "upcc" => Ok(Approach::Upcc),
            "ipcc" => Ok(Approach::Ipcc),
            "uipcc" => Ok(Approach::Uipcc),
            "pmf" => Ok(Approach::Pmf),
            "nimf" => Ok(Approach::Nimf),
            "svd" | "svd-impute" => Ok(Approach::SvdImpute),
            "amf" => Ok(Approach::Amf),
            "amf-linear" => Ok(Approach::AmfLinear),
            other => Err(CliError(format!("unknown approach '{other}'"))),
        })
        .collect()
}

/// Runs the subcommand. Without `--density` runs the paper's full grid;
/// with it, a single density.
///
/// # Errors
///
/// Returns [`CliError`] for invalid flags.
pub fn run(args: &Args) -> Result<String, CliError> {
    let scale = parse_scale(args)?;
    let attr = parse_attribute(args)?;
    let approaches = parse_approaches(args.get_or("approaches", "upcc,ipcc,uipcc,pmf,amf"))?;
    if approaches.is_empty() {
        return Err(CliError("no approaches selected".into()));
    }

    let densities: Vec<f64> = match args.get("density") {
        Some(raw) => {
            let d: f64 = raw
                .parse()
                .map_err(|_| CliError(format!("bad density '{raw}'")))?;
            if !(0.0 < d && d < 1.0) {
                return Err(CliError(format!("density must be in (0, 1), got {d}")));
            }
            vec![d]
        }
        None => qos_eval::experiments::TABLE1_DENSITIES.to_vec(),
    };

    let result = table1::run_with(&scale, &densities, &approaches, &[attr]);
    Ok(result.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn single_density_subset_runs() {
        let out = run(&args(&["--density", "0.2", "--approaches", "upcc,amf"])).unwrap();
        assert!(out.contains("UPCC"));
        assert!(out.contains("AMF"));
        assert!(out.contains("MRE@20%"));
        assert!(!out.contains("PMF"));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(run(&args(&["--density", "1.5"])).is_err());
        assert!(run(&args(&["--density", "x"])).is_err());
        assert!(run(&args(&["--approaches", "oracle"])).is_err());
        assert!(run(&args(&["--scale", "galactic"])).is_err());
    }

    #[test]
    fn approach_list_parsing() {
        let list = parse_approaches("upcc, AMF,amf-linear").unwrap();
        assert_eq!(
            list,
            vec![Approach::Upcc, Approach::Amf, Approach::AmfLinear]
        );
    }
}
