//! `amf-qos loadtest` — fault-injecting load harness for a live
//! `amf-qos serve` endpoint.
//!
//! Drives a mixed `observe`/`predict`/`rank` workload through
//! [`qos_serve::LoadRunner`]: closed- or open-loop arrivals, per-request
//! timeouts, bounded retry (idempotent requests only — `observe` is never
//! retried), and client-side network faults from a [`FaultPlan`]'s
//! `conn-reset`/`slow-read`/`blackhole` verbs.
//!
//! Transports: the baseline opens one connection per request; with
//! `--keep-alive` a second clean pass runs over persistent connections
//! (`--conns N` workers, optional `--pipeline D` requests per write) and
//! the report gains a `comparison` block quantifying the reuse win.
//!
//! Without `--fault-plan` the clean pass(es) run; with it, a faulted pass
//! runs back-to-back (over the keep-alive transport when enabled, so the
//! reconnect path is exercised too) and a manual flight dump
//! (`POST /debug/dump`) is requested afterwards so the incident lands in
//! the server's `--flight-log`. Every run reconciles the server's
//! `x-amf-stage-us` breakdowns and tail exemplars against the client's
//! own clock (the `reconciliation` block). `--out` writes the
//! `amf-bench-serve/v3` document (`BENCH_SERVE.json`); a degraded server
//! health is reported but non-fatal, while server-side worker panics fail
//! the command.

use super::CliError;
use crate::args::Args;
use amf_core::FaultPlan;
use qos_obs::Json;
use qos_serve::{
    ClientConfig, LoadConfig, LoadMode, LoadReport, LoadRunner, ServeClient, BENCH_SERVE_SCHEMA,
};
use std::net::SocketAddr;
use std::time::Duration;

/// Usage text for the subcommand.
pub const USAGE: &str = "amf-qos loadtest (--addr HOST:PORT | --addr-file PATH) \
[--requests N] [--concurrency N] [--mode closed|open] [--qps Q] \
[--keep-alive] [--conns N] [--pipeline D] [--fault-plan SPEC] [--seed S] \
[--timeout-ms MS] [--retries N] [--deadline-ms MS] [--batch N] [--out PATH] \
[--quick]";

/// Runs the subcommand.
///
/// # Errors
///
/// Returns [`CliError`] for an unreachable endpoint, an invalid fault
/// plan, server-side worker panics, or unwritable `--out`.
pub fn run(args: &Args) -> Result<String, CliError> {
    let addr = resolve_addr(args)?;
    let quick = args.switch("quick");
    let requests: u64 = args.parse_or("requests", if quick { 120 } else { 400 })?;
    let concurrency: usize = args.parse_or("concurrency", 4)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let timeout_ms: u64 = args.parse_or("timeout-ms", if quick { 500 } else { 2000 })?;
    let retries: u32 = args.parse_or("retries", 2)?;
    let batch: usize = args.parse_or("batch", 8)?;
    let keep_alive = args.switch("keep-alive");
    let conns: usize = args.parse_or("conns", concurrency)?;
    let pipeline: usize = args.parse_or("pipeline", 1)?;
    if conns == 0 {
        return Err(CliError("--conns must be at least 1".into()));
    }
    let deadline_ms: Option<u64> = match args.get("deadline-ms") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| CliError(format!("--deadline-ms: '{raw}' is not a number")))?,
        ),
        None => None,
    };
    let mode = match args.get_or("mode", "closed") {
        "closed" => LoadMode::Closed { concurrency },
        "open" => LoadMode::Open {
            qps: args.parse_or("qps", 200.0)?,
            concurrency,
        },
        other => {
            return Err(CliError(format!(
                "--mode: '{other}' (expected closed or open)"
            )))
        }
    };
    let fault_plan = match args.get("fault-plan") {
        Some(spec) => {
            let plan =
                FaultPlan::parse(spec).map_err(|e| CliError(format!("--fault-plan: {e}")))?;
            if !plan.mutates_network() {
                return Err(CliError(format!(
                    "--fault-plan '{spec}' has no network verbs \
                     (conn-reset/slow-read/blackhole)"
                )));
            }
            Some(plan)
        }
        None => None,
    };

    let base = LoadConfig {
        mode,
        requests,
        seed,
        fault_plan: None,
        client: ClientConfig {
            request_timeout: Duration::from_millis(timeout_ms.max(1)),
            max_retries: retries,
            deadline_ms,
            ..ClientConfig::default()
        },
        batch,
        ..LoadConfig::default()
    };

    // Keep-alive runs re-shape the arrival model around `--conns`
    // persistent connections (one per worker).
    let keep_alive_mode = match mode {
        LoadMode::Closed { .. } => LoadMode::Closed { concurrency: conns },
        LoadMode::Open { qps, .. } => LoadMode::Open {
            qps,
            concurrency: conns,
        },
    };

    let probe_client = base.client;
    let mut runs: Vec<LoadReport> = Vec::new();
    runs.push(LoadRunner::new(base.clone()).run(addr, "clean"));
    if keep_alive {
        let reused = LoadConfig {
            mode: keep_alive_mode,
            keep_alive: true,
            pipeline,
            ..base.clone()
        };
        runs.push(LoadRunner::new(reused).run(addr, "clean-keepalive"));
    }
    if let Some(plan) = fault_plan {
        // Fault the richer transport when enabled: reconnect-after-reset is
        // exactly the keep-alive path worth measuring under faults.
        let faulted = LoadConfig {
            fault_plan: Some(plan),
            mode: if keep_alive { keep_alive_mode } else { mode },
            keep_alive,
            pipeline: if keep_alive { pipeline } else { 1 },
            ..base
        };
        runs.push(LoadRunner::new(faulted).run(addr, "faulted"));
    }
    // After a faulted pass, ask the server to flight-record the incident:
    // a manual dump is forced (no cooldown), so a `--flight-log` server
    // persists the window this harness just disturbed.
    let flight_dumped = runs.iter().any(|r| r.label == "faulted") && {
        let mut probe = ServeClient::new(addr, probe_client, seed ^ 0x51EF);
        probe
            .request("POST", "/debug/dump", "", None, false)
            .map(|r| r.status == 200)
            .unwrap_or(false)
    };

    for report in &runs {
        if report.server_worker_panics > 0 {
            return Err(CliError(format!(
                "run '{}': server reported {} worker panics",
                report.label, report.server_worker_panics
            )));
        }
    }
    for report in runs.iter().filter(|r| r.label.starts_with("clean")) {
        if report.ok == 0 {
            return Err(CliError(format!(
                "run '{}' got no successful response from {addr} \
                 ({} transport errors)",
                report.label, report.transport_errors
            )));
        }
    }

    if let Some(path) = args.get("out") {
        let mut doc = Json::obj();
        doc.set("schema", Json::Str(BENCH_SERVE_SCHEMA.into()))
            .set("generated_by", Json::Str("amf-qos loadtest".into()))
            .set(
                "runs",
                Json::Arr(runs.iter().map(LoadReport::to_json).collect()),
            );
        if let Some(comparison) = comparison_block(&runs) {
            doc.set("comparison", comparison);
        }
        std::fs::write(path, doc.to_string_pretty() + "\n")
            .map_err(|e| CliError(format!("--out {path}: {e}")))?;
    }

    let mut out = String::new();
    for report in &runs {
        out.push_str(&format!(
            "loadtest[{}]: {} requests -> {} ok, {} 4xx, {} 503, {} transport \
             (error rate {:.1}%)\n\
             latency         p50 {}us  p95 {}us  p99 {}us (n={})\n\
             throughput      {:.1} ok/s sustained over {} ms\n\
             transport       {} (pipeline {}, {} connects, {} reuses, {:.1} req/conn)\n\
             faults          {} conn-reset, {} slow-read, {} blackhole; {} retries\n\
             predictions     {} served, {} degraded ({:.1}%)\n\
             server          health={} worker_panics={}\n",
            report.label,
            report.requests,
            report.ok,
            report.http_4xx,
            report.http_503,
            report.transport_errors,
            report.error_rate() * 100.0,
            report.percentile_us(50.0),
            report.percentile_us(95.0),
            report.percentile_us(99.0),
            report.latencies_us.len(),
            report.achieved_qps,
            report.wall.as_millis(),
            report.transport,
            report.pipeline_depth,
            report.connects,
            report.conn_reuses,
            report.requests_per_conn(),
            report.faults_conn_reset,
            report.faults_slow_read,
            report.faults_blackhole,
            report.retries,
            report.predictions,
            report.degraded_answers,
            report.degraded_rate() * 100.0,
            report.server_health,
            report.server_worker_panics,
        ));
        if let Some(recon) = &report.reconciliation {
            out.push_str(&format!(
                "tracing         {} stage samples; exemplars {} ({} matched), \
                 median server/client {:.2} (within 10%: {})\n",
                report.stage_samples,
                recon.exemplars,
                recon.matched,
                recon.median_ratio,
                if recon.within(0.10) { "yes" } else { "no" },
            ));
        }
    }
    if flight_dumped {
        out.push_str("flight          manual dump recorded (POST /debug/dump)\n");
    }
    if let Some(comparison) = comparison_block(&runs) {
        out.push_str(&format!(
            "comparison      keep-alive vs per-conn: p50 {:.2}x, ok/s {:.2}x\n",
            comparison
                .get("p50_ratio")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            comparison
                .get("ok_per_s_ratio")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
        ));
    }
    Ok(out.trim_end().to_string())
}

/// Pairs the clean per-conn and clean keep-alive runs into the `comparison`
/// object of the v2 document (`None` unless both ran). Ratios are
/// keep-alive over per-conn: `p50_ratio < 1` and `ok_per_s_ratio > 1` mean
/// connection reuse won.
fn comparison_block(runs: &[LoadReport]) -> Option<Json> {
    let per_conn = runs.iter().find(|r| r.label == "clean")?;
    let keep_alive = runs.iter().find(|r| r.label == "clean-keepalive")?;
    let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
    let mut out = Json::obj();
    out.set("per_conn_p50_us", Json::UInt(per_conn.percentile_us(50.0)))
        .set(
            "keep_alive_p50_us",
            Json::UInt(keep_alive.percentile_us(50.0)),
        )
        .set(
            "p50_ratio",
            Json::Num(ratio(
                keep_alive.percentile_us(50.0) as f64,
                per_conn.percentile_us(50.0) as f64,
            )),
        )
        .set("per_conn_ok_per_s", Json::Num(per_conn.achieved_qps))
        .set("keep_alive_ok_per_s", Json::Num(keep_alive.achieved_qps))
        .set(
            "ok_per_s_ratio",
            Json::Num(ratio(keep_alive.achieved_qps, per_conn.achieved_qps)),
        )
        .set(
            "keep_alive_requests_per_conn",
            Json::Num(keep_alive.requests_per_conn()),
        );
    Some(out)
}

/// `--addr` directly, or poll `--addr-file` (written by `serve` post-bind)
/// for up to ~5 s.
fn resolve_addr(args: &Args) -> Result<SocketAddr, CliError> {
    if let Some(raw) = args.get("addr") {
        return raw
            .parse()
            .map_err(|_| CliError(format!("--addr: '{raw}' is not HOST:PORT")));
    }
    let path = args
        .get("addr-file")
        .ok_or_else(|| CliError("need --addr or --addr-file".into()))?;
    for _ in 0..250 {
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Ok(addr) = text.trim().parse() {
                return Ok(addr);
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    Err(CliError(format!(
        "--addr-file {path}: no parsable address after 5s"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_serve::{ServeConfig, ServePlane};
    use qos_service::{QosPredictionService, ServiceConfig};
    use std::sync::Arc;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    fn live_plane() -> ServePlane {
        let service = Arc::new(QosPredictionService::new(ServiceConfig {
            input_queue_capacity: 4096,
            ..ServiceConfig::default()
        }));
        ServePlane::start("127.0.0.1:0", service, ServeConfig::default()).expect("bind")
    }

    #[test]
    fn loadtest_against_live_plane_writes_report() {
        let plane = live_plane();
        let addr = plane.local_addr().to_string();
        let dir = std::env::temp_dir().join("amf_cli_loadtest_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let out_path = dir.join("bench_serve.json");
        let _ = std::fs::remove_file(&out_path);

        let out = run(&args(&[
            "loadtest",
            "--addr",
            &addr,
            "--quick",
            "--requests",
            "60",
            "--concurrency",
            "3",
            "--timeout-ms",
            "400",
            "--fault-plan",
            "conn-reset@0.1,slow-read@0.05",
            "--out",
            &out_path.to_string_lossy(),
        ]))
        .unwrap();
        assert!(out.contains("loadtest[clean]"), "{out}");
        assert!(out.contains("loadtest[faulted]"), "{out}");
        assert!(out.contains("worker_panics=0"), "{out}");
        assert!(out.contains("tracing"), "{out}");
        assert!(
            out.contains("flight          manual dump recorded"),
            "{out}"
        );

        let doc = Json::parse(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(BENCH_SERVE_SCHEMA)
        );
        let runs = doc.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), 2);
        for run in runs {
            assert!(run.get("error_rate").and_then(Json::as_f64).unwrap() < 1.0);
            assert_eq!(
                run.get("server_worker_panics").and_then(Json::as_u64),
                Some(0)
            );
            // v3: every answered request carried a parseable stage header,
            // and the exemplar fetch produced a reconciliation verdict.
            assert!(run.get("stage_samples").and_then(Json::as_u64).unwrap() > 0);
            let recon = run.get("reconciliation").expect("reconciliation block");
            assert!(recon.get("exemplars").and_then(Json::as_u64).unwrap() > 0);
        }
        let stats = plane.stop();
        assert_eq!(stats.worker_panics, 0);
        std::fs::remove_file(out_path).unwrap();
    }

    #[test]
    fn keep_alive_loadtest_pairs_runs_and_emits_comparison() {
        let plane = live_plane();
        let addr = plane.local_addr().to_string();
        let dir = std::env::temp_dir().join("amf_cli_loadtest_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let out_path = dir.join("bench_serve_keepalive.json");
        let _ = std::fs::remove_file(&out_path);

        let out = run(&args(&[
            "loadtest",
            "--addr",
            &addr,
            "--quick",
            "--requests",
            "60",
            "--concurrency",
            "3",
            "--keep-alive",
            "--conns",
            "3",
            "--pipeline",
            "4",
            "--timeout-ms",
            "400",
            "--out",
            &out_path.to_string_lossy(),
        ]))
        .unwrap();
        assert!(out.contains("loadtest[clean]"), "{out}");
        assert!(out.contains("loadtest[clean-keepalive]"), "{out}");
        assert!(
            out.contains("comparison      keep-alive vs per-conn"),
            "{out}"
        );

        let doc = Json::parse(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(BENCH_SERVE_SCHEMA)
        );
        let runs = doc.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), 2);
        let reused = runs
            .iter()
            .find(|r| r.get("label").and_then(Json::as_str) == Some("clean-keepalive"))
            .unwrap();
        assert_eq!(
            reused.get("transport").and_then(Json::as_str),
            Some("keep-alive")
        );
        // 60 requests over 3 persistent connections: far more than one
        // request per connect.
        assert!(
            reused
                .get("requests_per_conn")
                .and_then(Json::as_f64)
                .unwrap()
                > 2.0,
            "{reused:?}"
        );
        let comparison = doc.get("comparison").unwrap();
        assert!(
            comparison
                .get("keep_alive_requests_per_conn")
                .and_then(Json::as_f64)
                .unwrap()
                > 2.0
        );
        let stats = plane.stop();
        assert_eq!(stats.worker_panics, 0);
        std::fs::remove_file(out_path).unwrap();
    }

    #[test]
    fn fault_plan_without_network_verbs_rejected() {
        let err = run(&args(&[
            "loadtest",
            "--addr",
            "127.0.0.1:1",
            "--fault-plan",
            "seed=3;drop=0.5",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("no network verbs"), "{err}");
    }

    #[test]
    fn missing_addr_rejected() {
        let err = run(&args(&["loadtest"])).unwrap_err();
        assert!(err.to_string().contains("--addr"));
    }

    #[test]
    fn unreachable_endpoint_fails_cleanly() {
        // Bind-then-drop: nothing listens there.
        let addr = std::net::TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap()
            .to_string();
        let err = run(&args(&[
            "loadtest",
            "--addr",
            &addr,
            "--requests",
            "4",
            "--retries",
            "0",
            "--timeout-ms",
            "100",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("no successful response"), "{err}");
    }
}
