//! `amf-qos serve` — run the hardened serving plane over the prediction
//! service.
//!
//! Earlier revisions only exposed the observability routes; this command
//! now boots a full [`qos_serve::ServePlane`]: `POST /v1/observe`,
//! `/v1/predict`, `/v1/rank` (newline-delimited JSON bodies, per-request
//! deadlines via `x-amf-deadline-ms`, two-level admission control) next to
//! `GET /metrics`, `/healthz`, and `/snapshot.json` — one listener, one
//! graceful drain path. An optional seeded (or file-fed) workload warms
//! the model before the port is published, and a
//! [`qos_obs::SnapshotRecorder`] can append `amf-obs-ts/v1` interval
//! snapshots for `amf-qos report`.
//!
//! `--metrics-addr` is kept as an alias of `--listen` for pre-plane
//! supervisors and CI jobs.

use super::CliError;
use crate::args::Args;
use qos_dataset::io;
use qos_obs::{FlightConfig, RecorderConfig, SnapshotRecorder};
use qos_serve::{ServeConfig, ServePlane};
use qos_service::{QosPredictionService, QosRecord, ServiceConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Usage text for the subcommand.
pub const USAGE: &str = "amf-qos serve [--listen HOST:PORT | --metrics-addr HOST:PORT] \
[--addr-file PATH] [--workers N] [--max-pending N] [--deadline-ms MS] \
[--io-timeout-ms MS] [--max-body-bytes N] [--max-conns N] \
[--max-requests-per-conn N] [--idle-timeout-ms MS] [--samples N] [--seed S] \
[--shards K] [--data TRIPLET_FILE] [--telemetry-log PATH] [--interval-ms MS] \
[--max-log-bytes N] [--flight-log PATH] [--run-ms MS]";

/// Runs the subcommand.
///
/// # Errors
///
/// Returns [`CliError`] for bind failures, unreadable workload files, or
/// invalid flags.
pub fn run(args: &Args) -> Result<String, CliError> {
    let samples: u64 = args.parse_or("samples", 20_000)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let shards: usize = args.parse_or("shards", 4)?;
    let run_ms: u64 = args.parse_or("run-ms", 0)?;
    let interval_ms: u64 = args.parse_or("interval-ms", 200)?;
    let max_log_bytes: u64 = args.parse_or("max-log-bytes", 4 * 1024 * 1024)?;
    let workers: usize = args.parse_or("workers", 4)?;
    let max_pending: usize = args.parse_or("max-pending", 128)?;
    let deadline_ms: u64 = args.parse_or("deadline-ms", 1000)?;
    let io_timeout_ms: u64 = args.parse_or("io-timeout-ms", 2000)?;
    let max_body_bytes: usize = args.parse_or("max-body-bytes", 1024 * 1024)?;
    let max_connections: usize = args.parse_or("max-conns", 256)?;
    let max_requests_per_conn: u64 = args.parse_or("max-requests-per-conn", 1024)?;
    let idle_timeout_ms: u64 = args.parse_or("idle-timeout-ms", 30_000)?;
    // `--metrics-addr` predates the serving plane; both spell the one
    // listener that now carries every route.
    let listen = args
        .get("listen")
        .or_else(|| args.get("metrics-addr"))
        .unwrap_or("127.0.0.1:0");
    if shards == 0 {
        return Err(CliError("--shards must be at least 1".into()));
    }
    if workers == 0 {
        return Err(CliError("--workers must be at least 1".into()));
    }
    if max_connections == 0 {
        return Err(CliError("--max-conns must be at least 1".into()));
    }
    if max_requests_per_conn == 0 {
        return Err(CliError(
            "--max-requests-per-conn must be at least 1".into(),
        ));
    }

    let config = ServiceConfig {
        shards,
        ..ServiceConfig::default()
    };
    let service = Arc::new(
        QosPredictionService::try_new(config).map_err(|e| CliError(format!("service: {e}")))?,
    );

    // Warm the model BEFORE publishing the port, so a supervisor that
    // waits on --addr-file sees a plane that already answers above the
    // bottom of the fallback ladder.
    let fed = feed_workload(&service, args, samples, seed)?;
    for u in 0..16 {
        let _ = service.predict(&format!("user-{u}"), &format!("svc-{}", u % 32));
        let _ = service.rank_candidates(&format!("user-{u}"), 5);
    }

    // Black-box flight recorder: panic / drift / SLO-burst / manual dumps
    // land in this JSONL file (readable with `amf-qos trace`).
    let flight = FlightConfig {
        path: args.get("flight-log").map(Into::into),
        max_bytes: max_log_bytes,
        max_rotated: 2,
    };
    let plane = ServePlane::start_with_flight(
        listen,
        Arc::clone(&service),
        ServeConfig {
            workers,
            max_pending,
            max_body_bytes,
            max_connections,
            max_requests_per_conn,
            idle_timeout: Duration::from_millis(idle_timeout_ms.max(1)),
            io_timeout: Duration::from_millis(io_timeout_ms.max(1)),
            default_deadline: Duration::from_millis(deadline_ms.max(1)),
            ..ServeConfig::default()
        },
        flight,
    )
    .map_err(|e| CliError(format!("--listen {listen}: {e}")))?;
    let addr = plane.local_addr();
    if let Some(path) = args.get("addr-file") {
        // Written post-bind so a supervisor (or the CI smoke job) can poll
        // this file to discover the ephemeral port.
        std::fs::write(path, format!("{addr}\n"))?;
    }

    let recorder = match args.get("telemetry-log") {
        Some(path) => {
            let recorder_service = Arc::clone(&service);
            Some(
                SnapshotRecorder::start(
                    RecorderConfig {
                        interval: Duration::from_millis(interval_ms.max(1)),
                        path: Some(path.into()),
                        max_bytes: max_log_bytes,
                        ..RecorderConfig::default()
                    },
                    move || recorder_service.stats_snapshot(),
                )
                .map_err(|e| CliError(format!("--telemetry-log {path}: {e}")))?,
            )
        }
        None => None,
    };

    // Hold the endpoint open for traffic; the warm-up workload has been
    // absorbed, so this is pure serving time.
    let deadline = Instant::now() + Duration::from_millis(run_ms);
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }

    let (lines, rotations) = match recorder {
        Some(recorder) => {
            let rotations = recorder.rotations();
            (recorder.stop(), rotations)
        }
        None => (0, 0),
    };
    let stats = service.stats();
    let accuracy = {
        // One final gauge publish so the printed MRE matches a last scrape.
        let snapshot = service.stats_snapshot();
        snapshot
            .get("gauges")
            .and_then(|g| g.get("model.mre_w"))
            .and_then(qos_obs::Json::as_f64)
    };
    let serve = plane.stop();
    Ok(format!(
        "serve: endpoint {addr} ({} requests, {} ok, {} rejected, {} panics)\n\
         admission       {} overload, {} deadline, {} draining\n\
         workload        {fed} samples fed, {} accepted, {} rejected\n\
         served          {} predictions ({} degraded), {} ranks, {} observed ({} shed)\n\
         model           {} users, {} services, {} updates\n\
         windowed MRE    {}\n\
         telemetry log   {lines} lines, {rotations} rotations",
        serve.requests,
        serve.ok,
        serve.rejected_overload + serve.rejected_deadline + serve.rejected_draining,
        serve.worker_panics,
        serve.rejected_overload,
        serve.rejected_deadline,
        serve.rejected_draining,
        stats.accepted,
        stats.rejected,
        serve.predictions,
        serve.degraded_answers,
        serve.ranks,
        serve.observe_queued,
        serve.observe_shed,
        stats.users,
        stats.services,
        stats.updates,
        accuracy.map_or_else(|| "n/a".to_string(), |v| format!("{v:.4}")),
    ))
}

/// Streams the workload into the service: `--data` replays a triplet file,
/// otherwise a deterministic seeded stream over a small entity grid (the
/// same generator as `amf-qos stats --obs`, including ~5% guard-exercising
/// garbage).
fn feed_workload(
    service: &QosPredictionService,
    args: &Args,
    samples: u64,
    seed: u64,
) -> Result<u64, CliError> {
    if let Some(path) = args.get("data") {
        let triplets = io::read_triplets(std::fs::File::open(path)?)?;
        if triplets.is_empty() {
            return Err(CliError(format!("{path}: no samples")));
        }
        let mut fed = 0u64;
        let mut batch = Vec::with_capacity(256);
        // Cycle the file until `--samples` records have been fed, so a small
        // fixture can still drive a long-running serve.
        'outer: loop {
            for s in &triplets {
                if fed == samples {
                    break 'outer;
                }
                batch.push(QosRecord {
                    user: format!("user-{}", s.user),
                    service: format!("svc-{}", s.service),
                    timestamp: s.timestamp,
                    value: s.value,
                });
                fed += 1;
                if batch.len() == 256 {
                    service.submit_batch(std::mem::take(&mut batch));
                }
            }
            if triplets.is_empty() {
                break;
            }
        }
        service.submit_batch(batch);
        return Ok(fed);
    }

    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        state >> 11
    };
    let mut batch = Vec::with_capacity(256);
    for t in 0..samples {
        let user = next() % 24;
        let svc = next() % 32;
        let roll = next() % 100;
        let value = if roll < 2 {
            f64::NAN
        } else if roll < 4 {
            -1.0
        } else if roll < 5 {
            1.0e9
        } else {
            0.05 + (next() % 19_000) as f64 / 1_000.0
        };
        batch.push(QosRecord {
            user: format!("user-{user}"),
            service: format!("svc-{svc}"),
            timestamp: t,
            value,
        });
        if batch.len() == 256 {
            service.submit_batch(std::mem::take(&mut batch));
        }
    }
    service.submit_batch(batch);
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn serve_feeds_writes_addr_and_telemetry() {
        let dir = std::env::temp_dir().join("amf_cli_serve_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let addr_file = dir.join("addr.txt");
        let log = dir.join("telemetry.jsonl");
        let _ = std::fs::remove_file(&log);

        let out = run(&args(&[
            "serve",
            "--samples",
            "3000",
            "--shards",
            "2",
            "--addr-file",
            &addr_file.to_string_lossy(),
            "--telemetry-log",
            &log.to_string_lossy(),
            "--interval-ms",
            "20",
            "--run-ms",
            "80",
        ]))
        .unwrap();
        assert!(out.contains("serve: endpoint"), "summary header: {out}");
        assert!(out.contains("samples fed"));

        let addr = std::fs::read_to_string(&addr_file).unwrap();
        assert!(addr.trim().parse::<std::net::SocketAddr>().is_ok());

        let telemetry = std::fs::read_to_string(&log).unwrap();
        let first = telemetry.lines().next().expect("at least one line");
        let parsed = qos_obs::Json::parse(first).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(qos_obs::Json::as_str),
            Some(qos_obs::TS_SCHEMA)
        );
        std::fs::remove_file(addr_file).unwrap();
        std::fs::remove_file(log).unwrap();
    }

    #[test]
    fn serve_endpoint_answers_while_running() {
        // Drive /metrics and /v1/predict from a second thread while serve
        // holds the port.
        let dir = std::env::temp_dir().join("amf_cli_serve_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let addr_file = dir.join("live-addr.txt");
        let _ = std::fs::remove_file(&addr_file);
        let addr_path = addr_file.to_string_lossy().into_owned();

        let probe_path = addr_path.clone();
        let probe = std::thread::spawn(move || {
            // Poll for the addr file, then exercise both route families.
            for _ in 0..200 {
                if let Ok(text) = std::fs::read_to_string(&probe_path) {
                    if let Ok(addr) = text.trim().parse::<std::net::SocketAddr>() {
                        let mut stream = std::net::TcpStream::connect(addr).unwrap();
                        stream
                            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                            .unwrap();
                        // Half-close so the keep-alive server answers with
                        // Connection: close and read_to_string terminates.
                        stream.shutdown(std::net::Shutdown::Write).unwrap();
                        let mut metrics = String::new();
                        stream.read_to_string(&mut metrics).unwrap();

                        let body = "{\"user\":\"user-0\",\"service\":\"svc-0\"}\n";
                        let mut stream = std::net::TcpStream::connect(addr).unwrap();
                        stream
                            .write_all(
                                format!(
                                    "POST /v1/predict HTTP/1.1\r\nHost: x\r\n\
                                     Content-Length: {}\r\n\r\n{body}",
                                    body.len()
                                )
                                .as_bytes(),
                            )
                            .unwrap();
                        stream.shutdown(std::net::Shutdown::Write).unwrap();
                        let mut predict = String::new();
                        stream.read_to_string(&mut predict).unwrap();
                        return (metrics, predict);
                    }
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            panic!("serve never published its address");
        });

        let out = run(&args(&[
            "serve",
            "--samples",
            "500",
            "--shards",
            "2",
            "--addr-file",
            &addr_path,
            "--run-ms",
            "600",
        ]))
        .unwrap();
        let (metrics, predict) = probe.join().unwrap();
        assert!(metrics.starts_with("HTTP/1.1 200"));
        assert!(metrics.contains("amf_service_accepted_total"));
        assert!(metrics.contains("amf_serve_requests_total"));
        assert!(predict.starts_with("HTTP/1.1 200"), "{predict}");
        assert!(predict.contains("\"source\""), "{predict}");
        assert!(out.contains("requests"));
        assert!(out.contains("0 panics"), "{out}");
        std::fs::remove_file(addr_file).unwrap();
    }

    #[test]
    fn zero_shards_rejected() {
        assert!(run(&args(&["serve", "--shards", "0"])).is_err());
    }

    #[test]
    fn zero_workers_rejected() {
        assert!(run(&args(&["serve", "--workers", "0", "--samples", "10"])).is_err());
    }

    #[test]
    fn file_fed_workload_cycles() {
        let dir = std::env::temp_dir().join("amf_cli_serve_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("w.txt");
        std::fs::write(&data, "0 0 0 1.5\n0 1 0 0.7\n1 0 1 2.2\n").unwrap();
        let out = run(&args(&[
            "serve",
            "--data",
            &data.to_string_lossy(),
            "--samples",
            "10",
            "--shards",
            "1",
        ]))
        .unwrap();
        assert!(out.contains("10 samples fed"), "{out}");
        std::fs::remove_file(data).unwrap();
    }
}
