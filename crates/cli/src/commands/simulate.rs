//! `amf-qos simulate` — the end-to-end runtime-adaptation simulation.

use super::CliError;
use crate::args::Args;
use qos_dataset::{DatasetConfig, QosDataset};
use qos_service::policy::StaticPolicy;
use qos_service::{AdaptationSimulation, BestPredictedPolicy, SimulationConfig, ThresholdPolicy};

/// Usage text for the subcommand.
pub const USAGE: &str = "amf-qos simulate [--apps N] [--tasks T] [--candidates C] \
[--slices K] [--sla SECONDS] [--density D] [--users U] [--services S] [--seed X]";

/// Runs the subcommand: simulates static vs threshold vs greedy adaptation
/// and prints the comparison.
///
/// # Errors
///
/// Returns [`CliError`] when the configuration does not fit the dataset.
pub fn run(args: &Args) -> Result<String, CliError> {
    let users: usize = args.parse_or("users", 40usize)?;
    let services: usize = args.parse_or("services", 120usize)?;
    let slices: usize = args.parse_or("slices", 10usize)?;
    let dataset_config = DatasetConfig {
        users,
        services,
        time_slices: slices,
        user_regions: 22.min(users),
        service_regions: 57.min(services),
        seed: args.parse_or("seed", 42u64)?,
        ..DatasetConfig::paper_scale()
    };
    let dataset = QosDataset::try_generate(&dataset_config).map_err(|e| CliError(e.to_string()))?;

    let config = SimulationConfig {
        applications: args.parse_or("apps", 8usize)?,
        tasks_per_workflow: args.parse_or("tasks", 3usize)?,
        candidates_per_task: args.parse_or("candidates", 5usize)?,
        sla_threshold: args.parse_or("sla", 2.0f64)?,
        slices,
        background_density: args.parse_or("density", 0.12f64)?,
        seed: dataset_config.seed,
    };
    let simulation =
        AdaptationSimulation::new(&dataset, config).map_err(|e| CliError(e.to_string()))?;

    let static_run = simulation.run(&StaticPolicy);
    let threshold_run = simulation.run(&ThresholdPolicy::new(config.sla_threshold));
    let greedy_run = simulation.run(&BestPredictedPolicy);

    let mut out = format!(
        "{} apps x {} tasks x {} candidates over {} slices ({}x{} dataset, SLA {}s)\n\n",
        config.applications,
        config.tasks_per_workflow,
        config.candidates_per_task,
        slices,
        users,
        services,
        config.sla_threshold
    );
    out.push_str("policy           mean e2e RT   steady RT   adaptations   violations\n");
    for report in [&static_run, &threshold_run, &greedy_run] {
        out.push_str(&format!(
            "{:<16} {:>10.3}s {:>10.3}s {:>12} {:>11}\n",
            report.policy,
            report.mean_rt(),
            report.steady_state_rt(),
            report.total_adaptations(),
            report.total_violations()
        ));
    }
    let improvement = 100.0 * (static_run.steady_state_rt() - greedy_run.steady_state_rt())
        / static_run.steady_state_rt();
    out.push_str(&format!(
        "\nAMF-guided adaptation improves steady-state RT by {improvement:.1}% over never adapting\n"
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn small_simulation_runs() {
        let out = run(&args(&[
            "--users",
            "20",
            "--services",
            "40",
            "--apps",
            "3",
            "--tasks",
            "2",
            "--candidates",
            "3",
            "--slices",
            "4",
        ]))
        .unwrap();
        assert!(out.contains("static"));
        assert!(out.contains("threshold"));
        assert!(out.contains("best-predicted"));
        assert!(out.contains("improves steady-state RT"));
    }

    #[test]
    fn impossible_config_rejected() {
        // More candidate slots than services exist.
        let err = run(&args(&[
            "--users",
            "10",
            "--services",
            "8",
            "--tasks",
            "4",
            "--candidates",
            "4",
        ]));
        assert!(err.is_err());
    }
}
