//! `amf-qos scenario` — closed-loop adaptation scenarios (adaptive vs
//! static) over seeded phase-regime worlds.

use super::CliError;
use crate::args::Args;
use qos_service::{catalog, find_scenario, report_json, ScenarioConfig, ScenarioEngine};

/// Usage text for the subcommand.
pub const USAGE: &str = "amf-qos scenario <run|list> [--name NAME|all] [--seed S] \
[--quick] [--slo SECONDS] [--out FILE] [--flight-dir DIR]";

/// Runs the subcommand.
///
/// `scenario list` prints the catalog. `scenario run` drives the named
/// scenario (or every scenario with `--name all`, the default) through the
/// MAPE-K adaptation loop *and* a static-selection baseline over the same
/// seeded world, then emits the `amf-scenario/v1` report — to stdout, or to
/// `--out FILE`. `--quick` shrinks every phase for smoke runs. The report is
/// a pure function of the seed: rerunning with the same flags reproduces it
/// byte for byte.
///
/// # Errors
///
/// Returns [`CliError`] for unknown scenario names, invalid flags, or an
/// unwritable `--out` path.
pub fn run(args: &Args) -> Result<String, CliError> {
    match args.positional(1) {
        Some("list") => Ok(list()),
        Some("run") => run_scenarios(args),
        Some(other) => Err(CliError(format!("unknown scenario action '{other}'"))),
        None => Err(CliError("missing action (run or list)".into())),
    }
}

fn list() -> String {
    let mut out = String::from("available scenarios (quick ticks / full ticks):\n");
    let quick = catalog(true);
    for (spec, full) in quick.iter().zip(catalog(false)) {
        let ticks = |s: &qos_service::ScenarioSpec| s.spans.iter().map(|&(_, t)| t).sum::<u32>();
        out.push_str(&format!(
            "  {:16} {:>4} / {:<4} {}\n",
            spec.name,
            ticks(spec),
            ticks(&full),
            spec.summary
        ));
    }
    out.push_str("run one with: amf-qos scenario run --name NAME (or --name all)");
    out
}

fn run_scenarios(args: &Args) -> Result<String, CliError> {
    let quick = args.switch("quick");
    let seed: u64 = args.parse_or("seed", 42u64)?;
    let slo: f64 = args.parse_or("slo", 2.5f64)?;
    let config = ScenarioConfig {
        seed,
        slo,
        ..Default::default()
    };
    let mut engine = ScenarioEngine::new(config).map_err(|e| CliError(e.to_string()))?;
    if let Some(dir) = args.get("flight-dir") {
        // One amf-flight/v1 dump per scenario (<dir>/<name>.flight.jsonl),
        // readable with `amf-qos trace`.
        std::fs::create_dir_all(dir)?;
        engine = engine.with_flight_dir(dir.into());
    }

    let name = args.get_or("name", "all");
    let specs = if name == "all" {
        catalog(quick)
    } else {
        vec![find_scenario(name, quick).map_err(|e| CliError(e.to_string()))?]
    };
    let outcomes = engine
        .run_all(&specs)
        .map_err(|e| CliError(e.to_string()))?;
    let report = report_json(engine.config(), quick, &outcomes);
    let text = report.to_string_pretty();

    match args.get("out") {
        Some(path) => {
            std::fs::write(path, format!("{text}\n"))?;
            let wins = outcomes
                .iter()
                .filter(|o| o.adaptation_gain() > 0.0)
                .count();
            Ok(format!(
                "ran {} scenario(s) (seed {seed}{}): adaptive strictly better in {wins}, \
                 report written to {path}",
                outcomes.len(),
                if quick { ", quick" } else { "" },
            ))
        }
        None => Ok(text),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_obs::Json;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn list_names_every_scenario() {
        let out = run(&args(&["scenario", "list"])).unwrap();
        for spec in catalog(true) {
            assert!(out.contains(spec.name), "missing {}", spec.name);
        }
    }

    #[test]
    fn rejects_bad_action_and_name() {
        assert!(run(&args(&["scenario"])).is_err());
        assert!(run(&args(&["scenario", "destroy"])).is_err());
        let err = run(&args(&["scenario", "run", "--name", "nope", "--quick"])).unwrap_err();
        assert!(err.0.contains("unknown scenario"), "{}", err.0);
    }

    #[test]
    fn quick_run_emits_schema_valid_report() {
        let out = run(&args(&[
            "scenario", "run", "--name", "good", "--quick", "--seed", "7",
        ]))
        .unwrap();
        let parsed = Json::parse(&out).unwrap();
        match parsed {
            Json::Obj(map) => {
                assert_eq!(
                    map.get("schema"),
                    Some(&Json::Str("amf-scenario/v1".to_string()))
                );
                assert_eq!(map.get("seed"), Some(&Json::UInt(7)));
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn out_flag_writes_file_and_summarizes() {
        let dir = std::env::temp_dir().join("amf_cli_scenario_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json").to_string_lossy().into_owned();
        let summary = run(&args(&[
            "scenario", "run", "--name", "good", "--quick", "--out", &path,
        ]))
        .unwrap();
        assert!(summary.contains("report written"), "{summary}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(Json::parse(&text).is_ok());
        std::fs::remove_file(path).unwrap();
    }
}
