//! `amf-qos` — command-line interface to the AMF QoS-prediction
//! reproduction.
//!
//! ```text
//! amf-qos generate    synthesize a WS-DREAM-like dataset and export it
//! amf-qos train       train an AMF model from a triplet file
//! amf-qos predict     predict QoS values from a saved model
//! amf-qos evaluate    run the Table I accuracy protocol
//! amf-qos experiment  regenerate any paper artifact by id
//! amf-qos stats       dataset statistics (Fig. 6), synthetic or from file;
//!                     `--obs` emits an `amf-obs/v1` observability snapshot
//! amf-qos serve       run the hardened serving plane (observe/predict/rank
//!                     endpoint + /metrics, /healthz, /snapshot.json)
//! amf-qos loadtest    drive a live serve endpoint with a fault-injecting
//!                     load harness and emit an amf-bench-serve/v1 report
//! amf-qos scenario    closed-loop adaptation scenarios (adaptive vs static)
//!                     over seeded phase-regime worlds
//! amf-qos trace       summarize an amf-flight/v1 flight-recorder dump
//! amf-qos report      summarize a recorded telemetry log
//! ```
//!
//! Run `amf-qos <subcommand> --help` conceptually via the usage lines each
//! subcommand prints on bad input.

mod args;
mod commands;

use args::Args;

const USAGE: &str = "amf-qos <subcommand> [flags]\n\
\n\
subcommands:\n  \
generate    synthesize a WS-DREAM-like dataset and export it\n  \
train       train an AMF model from a triplet file\n  \
predict     predict QoS values from a saved model\n  \
evaluate    run the Table I accuracy protocol on synthetic data\n  \
experiment  regenerate a paper artifact (fig2..fig14, table1, ablations)\n  \
stats       dataset statistics (Fig. 6); --obs for a runtime metrics snapshot\n  \
diagnose    health snapshot of a saved model\n  \
simulate    end-to-end runtime-adaptation simulation\n  \
serve       run the hardened serving plane (predict/observe/rank + metrics)\n  \
loadtest    fault-injecting load harness against a live serve endpoint\n  \
scenario    closed-loop adaptation scenarios, amf-scenario/v1 reports\n  \
trace       summarize an amf-flight/v1 flight-recorder dump\n  \
report      summarize an amf-obs-ts/v1 telemetry JSONL log\n\
\n\
run a subcommand without flags to see its usage";

/// Dispatches one parsed command line; exposed for the integration tests.
fn dispatch(args: &Args) -> Result<String, commands::CliError> {
    match args.positional(0) {
        Some("generate") => {
            commands::generate::run(args).map_err(|e| usage_hint(e, commands::generate::USAGE))
        }
        Some("train") => {
            commands::train::run(args).map_err(|e| usage_hint(e, commands::train::USAGE))
        }
        Some("predict") => {
            commands::predict::run(args).map_err(|e| usage_hint(e, commands::predict::USAGE))
        }
        Some("evaluate") => {
            commands::evaluate::run(args).map_err(|e| usage_hint(e, commands::evaluate::USAGE))
        }
        Some("experiment") => commands::experiment::run(args),
        Some("stats") => {
            commands::stats::run(args).map_err(|e| usage_hint(e, commands::stats::USAGE))
        }
        Some("diagnose") => {
            commands::diagnose::run(args).map_err(|e| usage_hint(e, commands::diagnose::USAGE))
        }
        Some("simulate") => {
            commands::simulate::run(args).map_err(|e| usage_hint(e, commands::simulate::USAGE))
        }
        Some("serve") => {
            commands::serve::run(args).map_err(|e| usage_hint(e, commands::serve::USAGE))
        }
        Some("loadtest") => {
            commands::loadtest::run(args).map_err(|e| usage_hint(e, commands::loadtest::USAGE))
        }
        Some("scenario") => {
            commands::scenario::run(args).map_err(|e| usage_hint(e, commands::scenario::USAGE))
        }
        Some("trace") => {
            commands::trace::run(args).map_err(|e| usage_hint(e, commands::trace::USAGE))
        }
        Some("report") => {
            commands::report::run(args).map_err(|e| usage_hint(e, commands::report::USAGE))
        }
        Some(other) => Err(commands::CliError(format!(
            "unknown subcommand '{other}'\n\n{USAGE}"
        ))),
        None => Err(commands::CliError(USAGE.to_string())),
    }
}

fn usage_hint(e: commands::CliError, usage: &str) -> commands::CliError {
    if e.0.contains("usage:") {
        e
    } else {
        commands::CliError(format!("{e}\nusage: {usage}"))
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(raw) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    match dispatch(&parsed) {
        Ok(output) => println!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn no_subcommand_prints_usage() {
        let err = dispatch(&parse(&[])).unwrap_err();
        assert!(err.to_string().contains("subcommands"));
    }

    #[test]
    fn unknown_subcommand_is_an_error() {
        let err = dispatch(&parse(&["frobnicate"])).unwrap_err();
        assert!(err.to_string().contains("unknown subcommand"));
    }

    #[test]
    fn subcommand_errors_carry_usage() {
        let err = dispatch(&parse(&["train"])).unwrap_err();
        assert!(err.to_string().contains("--data"));
        assert!(err.to_string().contains("usage:"));
    }

    #[test]
    fn stats_roundtrip_through_dispatch() {
        let out = dispatch(&parse(&["stats"])).unwrap();
        assert!(out.contains("#Users"));
    }

    #[test]
    fn generate_then_train_then_predict() {
        let dir = std::env::temp_dir().join("amf_cli_main_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("d.txt").to_string_lossy().into_owned();
        let model = dir.join("m.amf").to_string_lossy().into_owned();

        let out = dispatch(&parse(&[
            "generate",
            "--out",
            &data,
            "--users",
            "8",
            "--services",
            "12",
            "--slices",
            "2",
            "--format",
            "triplets",
            "--density",
            "0.5",
        ]))
        .unwrap();
        assert!(out.contains("48"));

        let out = dispatch(&parse(&[
            "train",
            "--data",
            &data,
            "--out",
            &model,
            "--max-replays",
            "3000",
        ]))
        .unwrap();
        assert!(out.contains("model saved"));

        let out = dispatch(&parse(&[
            "predict",
            "--model",
            &model,
            "--user",
            "0",
            "--service",
            "0",
        ]))
        .unwrap();
        let value: f64 = out.trim().parse().unwrap();
        assert!((0.0..=20.0).contains(&value));

        std::fs::remove_file(data).unwrap();
        std::fs::remove_file(model).unwrap();
    }
}
