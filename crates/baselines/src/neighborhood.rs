//! Neighborhood-based collaborative filtering: UPCC and IPCC.
//!
//! Following Zheng et al. (WSRec), the similarity between two users (or two
//! services) is the Pearson correlation over their co-observed entries,
//! discounted by a significance weight when few co-observations exist. A
//! prediction blends the deviations of the top-K most-similar positive
//! neighbors around their own means:
//!
//! ```text
//! r̂_uj = mean_u + Σ_{v ∈ N(u,j)} sim(u,v) · (r_vj − mean_v) / Σ |sim(u,v)|
//! ```
//!
//! Entity profiles are stored as dense value arrays plus observation bitmaps,
//! so a PCC between two entities is a linear pass over 64-bit mask words —
//! this is what makes IPCC over 4,500 services tractable at paper scale.

use crate::{BaselineError, QosPredictor};
use qos_linalg::SparseMatrix;
use serde::{Deserialize, Serialize};

/// Configuration shared by UPCC and IPCC.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NeighborhoodConfig {
    /// Number of neighbors blended per prediction (paper-era CF default: 10).
    pub top_k: usize,
    /// Significance-weight cap: similarities from fewer than this many
    /// co-observations are scaled down proportionally. 0 disables.
    pub significance_cap: usize,
    /// Neighbors with (weighted) similarity at or below this are ignored.
    /// Standard practice keeps only positive correlations.
    pub min_similarity: f64,
}

impl Default for NeighborhoodConfig {
    fn default() -> Self {
        Self {
            top_k: 10,
            significance_cap: 5,
            min_similarity: 0.0,
        }
    }
}

impl NeighborhoodConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidConfig`] when `top_k` is zero or
    /// `min_similarity` is not in `[-1, 1)`.
    pub fn validate(&self) -> Result<(), BaselineError> {
        if self.top_k == 0 {
            return Err(BaselineError::InvalidConfig(
                "top_k must be positive".into(),
            ));
        }
        if !(-1.0..1.0).contains(&self.min_similarity) {
            return Err(BaselineError::InvalidConfig(
                "min_similarity must be in [-1, 1)".into(),
            ));
        }
        Ok(())
    }
}

/// Dense profiles with observation bitmaps for one side of the matrix
/// (rows = users, or columns = services).
#[derive(Debug, Clone)]
pub(crate) struct ProfileSet {
    /// `entities x dim` values; unobserved cells are 0 and masked off.
    values: Vec<Vec<f64>>,
    /// Observation bitmaps, `dim` bits per entity.
    masks: Vec<Vec<u64>>,
    /// Mean of each entity's observed values (`None` when it has none).
    means: Vec<Option<f64>>,
    dim: usize,
}

impl ProfileSet {
    pub(crate) fn from_rows(m: &SparseMatrix) -> Self {
        let dim = m.cols();
        let words = dim.div_ceil(64);
        let mut values = vec![vec![0.0; dim]; m.rows()];
        let mut masks = vec![vec![0u64; words]; m.rows()];
        for e in m.iter() {
            values[e.row][e.col] = e.value;
            masks[e.row][e.col / 64] |= 1 << (e.col % 64);
        }
        let means = (0..m.rows()).map(|i| m.row_mean(i)).collect();
        Self {
            values,
            masks,
            means,
            dim,
        }
    }

    pub(crate) fn from_cols(m: &SparseMatrix) -> Self {
        let dim = m.rows();
        let words = dim.div_ceil(64);
        let mut values = vec![vec![0.0; dim]; m.cols()];
        let mut masks = vec![vec![0u64; words]; m.cols()];
        for e in m.iter() {
            values[e.col][e.row] = e.value;
            masks[e.col][e.row / 64] |= 1 << (e.row % 64);
        }
        let means = (0..m.cols()).map(|j| m.col_mean(j)).collect();
        Self {
            values,
            masks,
            means,
            dim,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.values.len()
    }

    pub(crate) fn mean(&self, entity: usize) -> Option<f64> {
        self.means.get(entity).copied().flatten()
    }

    /// Whether `entity` observed position `pos`.
    #[inline]
    pub(crate) fn observed(&self, entity: usize, pos: usize) -> bool {
        (self.masks[entity][pos / 64] >> (pos % 64)) & 1 == 1
    }

    /// Observed value (unchecked: call only when [`ProfileSet::observed`]).
    #[inline]
    pub(crate) fn value(&self, entity: usize, pos: usize) -> f64 {
        self.values[entity][pos]
    }

    /// PCC over the mask intersection plus the co-observation count.
    /// `None` when fewer than 2 co-observations or zero variance.
    pub(crate) fn pcc(&self, a: usize, b: usize) -> Option<(f64, usize)> {
        let (ma, mb) = (&self.masks[a], &self.masks[b]);
        let (va, vb) = (&self.values[a], &self.values[b]);
        let mut n = 0usize;
        let mut sx = 0.0;
        let mut sy = 0.0;
        let mut sxx = 0.0;
        let mut syy = 0.0;
        let mut sxy = 0.0;
        for (w, (&wa, &wb)) in ma.iter().zip(mb).enumerate() {
            let mut inter = wa & wb;
            while inter != 0 {
                let bit = inter.trailing_zeros() as usize;
                inter &= inter - 1;
                let pos = w * 64 + bit;
                let x = va[pos];
                let y = vb[pos];
                n += 1;
                sx += x;
                sy += y;
                sxx += x * x;
                syy += y * y;
                sxy += x * y;
            }
        }
        if n < 2 {
            return None;
        }
        let nf = n as f64;
        let cov = sxy - sx * sy / nf;
        let var_x = sxx - sx * sx / nf;
        let var_y = syy - sy * sy / nf;
        if var_x <= 0.0 || var_y <= 0.0 {
            return None;
        }
        Some(((cov / (var_x * var_y).sqrt()).clamp(-1.0, 1.0), n))
    }

    /// Top-K positive-similarity neighbors of every entity, significance
    /// weighted per `config`.
    pub(crate) fn top_k_neighbors(&self, config: &NeighborhoodConfig) -> Vec<Vec<(usize, f64)>> {
        let n = self.len();
        let mut neighbors: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for a in 0..n {
            for b in (a + 1)..n {
                if let Some((sim, co)) = self.pcc(a, b) {
                    let weighted = qos_linalg::correlation::significance_weighted(
                        sim,
                        co,
                        config.significance_cap,
                    );
                    if weighted > config.min_similarity {
                        neighbors[a].push((b, weighted));
                        neighbors[b].push((a, weighted));
                    }
                }
            }
        }
        for list in neighbors.iter_mut() {
            list.sort_by(|x, y| y.1.partial_cmp(&x.1).expect("similarities are finite"));
            list.truncate(config.top_k);
        }
        neighbors
    }

    /// Dimension of each profile vector.
    pub(crate) fn dim(&self) -> usize {
        self.dim
    }
}

/// Shared prediction core: deviation-from-mean blend over neighbors that
/// observed the target position.
fn blend(
    profiles: &ProfileSet,
    neighbors: &[(usize, f64)],
    entity: usize,
    pos: usize,
    fallback: f64,
) -> f64 {
    let own_mean = match profiles.mean(entity) {
        Some(m) => m,
        None => return fallback,
    };
    let mut num = 0.0;
    let mut den = 0.0;
    for &(other, sim) in neighbors {
        if profiles.observed(other, pos) {
            let other_mean = profiles.mean(other).unwrap_or(own_mean);
            num += sim * (profiles.value(other, pos) - other_mean);
            den += sim.abs();
        }
    }
    if den == 0.0 {
        own_mean
    } else {
        num / den + own_mean
    }
}

/// User-based PCC collaborative filtering (the paper's UPCC baseline).
///
/// # Examples
///
/// ```
/// use qos_baselines::{NeighborhoodConfig, QosPredictor, Upcc};
/// use qos_linalg::SparseMatrix;
///
/// let mut m = SparseMatrix::new(3, 3);
/// // users 0 and 1 behave identically; user 1 observed service 2.
/// for (u, s, v) in [(0, 0, 1.0), (0, 1, 2.0), (1, 0, 1.0), (1, 1, 2.0), (1, 2, 9.0), (2, 0, 5.0), (2, 1, 1.0)] {
///     m.insert(u, s, v);
/// }
/// let upcc = Upcc::train(&m, NeighborhoodConfig::default())?;
/// let pred = upcc.predict(0, 2);
/// assert!(pred > 5.0, "user 0 should inherit user 1's high value, got {pred}");
/// # Ok::<(), qos_baselines::BaselineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Upcc {
    profiles: ProfileSet,
    neighbors: Vec<Vec<(usize, f64)>>,
    global_mean: f64,
}

impl Upcc {
    /// Trains on the observed matrix: computes all user–user similarities and
    /// keeps each user's top-K positive neighbors.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::EmptyTrainingData`] for an empty matrix and
    /// [`BaselineError::InvalidConfig`] for an invalid `config`.
    pub fn train(matrix: &SparseMatrix, config: NeighborhoodConfig) -> Result<Self, BaselineError> {
        config.validate()?;
        let global_mean = matrix.mean().ok_or(BaselineError::EmptyTrainingData)?;
        let profiles = ProfileSet::from_rows(matrix);
        let neighbors = profiles.top_k_neighbors(&config);
        Ok(Self {
            profiles,
            neighbors,
            global_mean,
        })
    }

    /// The similarity-ranked neighbors of `user` (index, weighted PCC).
    pub fn neighbors(&self, user: usize) -> &[(usize, f64)] {
        &self.neighbors[user]
    }
}

impl QosPredictor for Upcc {
    fn predict(&self, user: usize, service: usize) -> f64 {
        assert!(user < self.profiles.len(), "user out of range");
        assert!(service < self.profiles.dim(), "service out of range");
        blend(
            &self.profiles,
            &self.neighbors[user],
            user,
            service,
            self.global_mean,
        )
    }

    fn name(&self) -> &'static str {
        "UPCC"
    }
}

/// Item-based PCC collaborative filtering (the paper's IPCC baseline).
#[derive(Debug, Clone)]
pub struct Ipcc {
    profiles: ProfileSet,
    neighbors: Vec<Vec<(usize, f64)>>,
    global_mean: f64,
}

impl Ipcc {
    /// Trains on the observed matrix: computes all service–service
    /// similarities and keeps each service's top-K positive neighbors.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::EmptyTrainingData`] for an empty matrix and
    /// [`BaselineError::InvalidConfig`] for an invalid `config`.
    pub fn train(matrix: &SparseMatrix, config: NeighborhoodConfig) -> Result<Self, BaselineError> {
        config.validate()?;
        let global_mean = matrix.mean().ok_or(BaselineError::EmptyTrainingData)?;
        let profiles = ProfileSet::from_cols(matrix);
        let neighbors = profiles.top_k_neighbors(&config);
        Ok(Self {
            profiles,
            neighbors,
            global_mean,
        })
    }

    /// The similarity-ranked neighbors of `service` (index, weighted PCC).
    pub fn neighbors(&self, service: usize) -> &[(usize, f64)] {
        &self.neighbors[service]
    }
}

impl QosPredictor for Ipcc {
    fn predict(&self, user: usize, service: usize) -> f64 {
        assert!(service < self.profiles.len(), "service out of range");
        assert!(user < self.profiles.dim(), "user out of range");
        blend(
            &self.profiles,
            &self.neighbors[service],
            service,
            user,
            self.global_mean,
        )
    }

    fn name(&self) -> &'static str {
        "IPCC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two blocks of users with opposite profiles over 6 services.
    fn blocky_matrix() -> SparseMatrix {
        let mut m = SparseMatrix::new(6, 6);
        // block A (users 0-2): fast on services 0-2, slow on 3-5
        // block B (users 3-5): the opposite
        for u in 0..3 {
            for s in 0..6 {
                let v = if s < 3 { 1.0 } else { 5.0 };
                // leave a hole to predict: user 0 never saw service 5
                if !(u == 0 && s == 5) {
                    m.insert(u, s, v + 0.1 * u as f64 + 0.05 * s as f64);
                }
            }
        }
        for u in 3..6 {
            for s in 0..6 {
                let v = if s < 3 { 5.0 } else { 1.0 };
                m.insert(u, s, v + 0.1 * u as f64 + 0.05 * s as f64);
            }
        }
        m
    }

    #[test]
    fn profile_set_masks_and_values() {
        let m = blocky_matrix();
        let rows = ProfileSet::from_rows(&m);
        assert_eq!(rows.len(), 6);
        assert!(!rows.observed(0, 5));
        assert!(rows.observed(0, 0));
        assert_eq!(rows.value(1, 0), 1.1);
        let cols = ProfileSet::from_cols(&m);
        assert_eq!(cols.len(), 6);
        assert!(!cols.observed(5, 0));
        assert!(cols.observed(5, 1));
    }

    #[test]
    fn pcc_matches_reference_implementation() {
        let m = blocky_matrix();
        let rows = ProfileSet::from_rows(&m);
        let (a, b) = qos_linalg::correlation::co_observed_rows(&m, 0, 1);
        let reference = qos_linalg::correlation::pearson(&a, &b).unwrap();
        let (fast, n) = rows.pcc(0, 1).unwrap();
        assert_eq!(n, a.len());
        assert!((fast - reference).abs() < 1e-12);
    }

    #[test]
    fn upcc_uses_same_block_neighbors() {
        let m = blocky_matrix();
        let upcc = Upcc::train(&m, NeighborhoodConfig::default()).unwrap();
        // user 0's strongest neighbors are users 1, 2 (same block)
        let neighbor_ids: Vec<usize> = upcc.neighbors(0).iter().map(|&(v, _)| v).collect();
        assert!(neighbor_ids.contains(&1) && neighbor_ids.contains(&2));
        // predicted value for the hole: block A is slow (~5) on service 5
        let pred = upcc.predict(0, 5);
        assert!(pred > 3.0, "expected slow prediction, got {pred}");
    }

    #[test]
    fn ipcc_predicts_from_similar_services() {
        let m = blocky_matrix();
        let ipcc = Ipcc::train(&m, NeighborhoodConfig::default()).unwrap();
        let pred = ipcc.predict(0, 5);
        // services 3,4 are similar to 5 and user 0 saw them as ~5
        assert!(pred > 3.0, "expected slow prediction, got {pred}");
        assert_eq!(ipcc.name(), "IPCC");
    }

    #[test]
    fn cold_user_falls_back_to_mean() {
        // user with no observations at all
        let mut m2 = SparseMatrix::new(4, 3);
        m2.insert(0, 0, 2.0);
        m2.insert(0, 1, 4.0);
        m2.insert(1, 0, 2.0);
        m2.insert(1, 1, 4.0);
        // rows 2,3 empty
        let upcc = Upcc::train(&m2, NeighborhoodConfig::default()).unwrap();
        let pred = upcc.predict(3, 2);
        assert_eq!(pred, 3.0); // global mean
    }

    #[test]
    fn no_matching_neighbor_falls_back_to_own_mean() {
        // user 0 and 1 similar, but neighbor never observed target service
        let mut m = SparseMatrix::new(2, 4);
        m.insert(0, 0, 1.0);
        m.insert(0, 1, 2.0);
        m.insert(1, 0, 1.0);
        m.insert(1, 1, 2.0);
        let upcc = Upcc::train(&m, NeighborhoodConfig::default()).unwrap();
        let pred = upcc.predict(0, 3);
        assert!((pred - 1.5).abs() < 1e-12); // user 0's own mean
    }

    #[test]
    fn empty_matrix_rejected() {
        let m = SparseMatrix::new(3, 3);
        assert!(Upcc::train(&m, NeighborhoodConfig::default()).is_err());
        assert!(Ipcc::train(&m, NeighborhoodConfig::default()).is_err());
    }

    #[test]
    fn invalid_config_rejected() {
        let m = blocky_matrix();
        let bad = NeighborhoodConfig {
            top_k: 0,
            ..Default::default()
        };
        assert!(matches!(
            Upcc::train(&m, bad),
            Err(BaselineError::InvalidConfig(_))
        ));
        let bad = NeighborhoodConfig {
            min_similarity: 1.5,
            ..Default::default()
        };
        assert!(Ipcc::train(&m, bad).is_err());
    }

    #[test]
    fn top_k_truncates() {
        let m = blocky_matrix();
        let config = NeighborhoodConfig {
            top_k: 1,
            ..Default::default()
        };
        let upcc = Upcc::train(&m, config).unwrap();
        assert!(upcc.neighbors(0).len() <= 1);
    }

    #[test]
    fn significance_weighting_discounts_thin_overlap() {
        // Users 0/1 overlap on exactly 2 services with perfect correlation;
        // users 0/2 overlap on 5 with perfect correlation. With a cap of 5,
        // the 2-overlap neighbor must rank below the 5-overlap neighbor.
        let mut m = SparseMatrix::new(3, 8);
        for s in 0..5 {
            m.insert(0, s, s as f64 + 1.0);
            m.insert(2, s, 2.0 * (s as f64 + 1.0));
        }
        m.insert(1, 0, 1.0);
        m.insert(1, 1, 2.0);
        let config = NeighborhoodConfig {
            top_k: 5,
            significance_cap: 5,
            min_similarity: 0.0,
        };
        let upcc = Upcc::train(&m, config).unwrap();
        let neighbors = upcc.neighbors(0);
        assert_eq!(neighbors[0].0, 2, "high-overlap neighbor should rank first");
        assert!(neighbors[0].1 > neighbors[1].1);
    }

    #[test]
    #[should_panic(expected = "user out of range")]
    fn predict_out_of_range_panics() {
        let m = blocky_matrix();
        let upcc = Upcc::train(&m, NeighborhoodConfig::default()).unwrap();
        upcc.predict(99, 0);
    }

    #[test]
    fn mask_boundary_above_64_entities() {
        // Exercise multi-word bitmaps: 70 services so masks span 2 words.
        let mut m = SparseMatrix::new(3, 70);
        for s in 0..70 {
            m.insert(0, s, (s % 7) as f64 + 1.0);
            if s != 69 {
                m.insert(1, s, (s % 7) as f64 + 1.0);
            }
        }
        m.insert(2, 69, 3.0);
        let rows = ProfileSet::from_rows(&m);
        let (sim, n) = rows.pcc(0, 1).unwrap();
        assert_eq!(n, 69);
        assert!((sim - 1.0).abs() < 1e-9);
        assert!(rows.observed(0, 69));
        assert!(!rows.observed(1, 69));
    }
}
