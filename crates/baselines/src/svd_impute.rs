//! SVD imputation — the classic low-rank matrix-completion baseline
//! (extension).
//!
//! Iterative hard-impute: fill the missing cells with column (service)
//! means, compute a rank-`k` truncated SVD, replace the missing cells with
//! the low-rank reconstruction, and repeat until the imputed values stop
//! moving. A useful reference point because it exploits exactly the same
//! low-rank structure as PMF/AMF but through a direct spectral method with
//! no learning-rate tuning — and, like the other offline baselines, it must
//! recompute from scratch whenever the matrix changes.

use crate::{BaselineError, QosPredictor};
use qos_linalg::svd::truncated;
use qos_linalg::{DenseMatrix, SparseMatrix};
use serde::{Deserialize, Serialize};

/// SVD-imputation hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SvdImputeConfig {
    /// Truncation rank `k`.
    pub rank: usize,
    /// Maximum impute–decompose iterations.
    pub max_iterations: usize,
    /// RNG seed for the SVD's subspace initialization.
    pub seed: u64,
}

impl Default for SvdImputeConfig {
    fn default() -> Self {
        Self {
            rank: 10,
            max_iterations: 60,
            seed: 42,
        }
    }
}

impl SvdImputeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidConfig`] when `rank` or
    /// `max_iterations` is zero.
    pub fn validate(&self) -> Result<(), BaselineError> {
        if self.rank == 0 {
            return Err(BaselineError::InvalidConfig("rank must be positive".into()));
        }
        if self.max_iterations == 0 {
            return Err(BaselineError::InvalidConfig(
                "max_iterations must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// A fitted SVD-imputation model: the completed matrix.
#[derive(Debug, Clone)]
pub struct SvdImpute {
    completed: DenseMatrix,
    bounds: (f64, f64),
}

impl SvdImpute {
    /// Fits the model on the observed matrix.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::EmptyTrainingData`] for an empty matrix and
    /// [`BaselineError::InvalidConfig`] for invalid hyperparameters (a rank
    /// above `min(rows, cols)` is clamped rather than rejected).
    pub fn train(matrix: &SparseMatrix, config: SvdImputeConfig) -> Result<Self, BaselineError> {
        config.validate()?;
        if matrix.nnz() == 0 {
            return Err(BaselineError::EmptyTrainingData);
        }
        let (rows, cols) = matrix.shape();
        let rank = config.rank.min(rows.min(cols));

        let observed = matrix.observed_values();
        let global_mean = observed.iter().sum::<f64>() / observed.len() as f64;
        let bounds = (
            observed.iter().cloned().fold(f64::INFINITY, f64::min),
            observed.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        );

        // Initial fill: column (service) means, then global mean.
        let mut working = DenseMatrix::from_fn(rows, cols, |i, j| {
            matrix
                .get(i, j)
                .or_else(|| matrix.col_mean(j))
                .unwrap_or(global_mean)
        });

        for _ in 0..config.max_iterations {
            let svd = truncated(&working, rank, config.seed)
                .map_err(|e| BaselineError::InvalidConfig(format!("svd failed: {e}")))?;
            let approx = svd.reconstruct();
            // Re-impose the observed entries; only missing cells move.
            let mut change = 0.0;
            let mut next = approx;
            for e in matrix.iter() {
                next.set(e.row, e.col, e.value);
            }
            for i in 0..rows {
                for j in 0..cols {
                    if !matrix.contains(i, j) {
                        change += (next.get(i, j) - working.get(i, j)).abs();
                    }
                }
            }
            working = next;
            let denom = ((rows * cols) - matrix.nnz()).max(1) as f64;
            if change / denom < 1e-5 {
                break;
            }
        }

        Ok(Self {
            completed: working,
            bounds,
        })
    }

    /// The completed (imputed) matrix.
    pub fn completed(&self) -> &DenseMatrix {
        &self.completed
    }
}

impl QosPredictor for SvdImpute {
    fn predict(&self, user: usize, service: usize) -> f64 {
        self.completed
            .get(user, service)
            .clamp(self.bounds.0, self.bounds.1)
    }

    fn name(&self) -> &'static str {
        "SVD-impute"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exactly low-rank ground truth with scattered holes (one per row, no
    /// two in the same column — the benign missingness regime).
    fn low_rank_case() -> (SparseMatrix, Vec<(usize, usize, f64)>) {
        let u = [1.0, 2.0, 3.0, 1.5, 2.5, 0.5];
        let w = [2.0, 1.0, 3.0, 1.5, 2.5, 0.8, 1.2];
        let holes = [(0usize, 1usize), (1, 4), (2, 6), (3, 2), (4, 0), (5, 3)];
        let mut m = SparseMatrix::new(6, 7);
        let mut held_out = Vec::new();
        for (i, &ui) in u.iter().enumerate() {
            for (j, &wj) in w.iter().enumerate() {
                let v = ui * wj + 1.0;
                if holes.contains(&(i, j)) {
                    held_out.push((i, j, v));
                } else {
                    m.insert(i, j, v);
                }
            }
        }
        (m, held_out)
    }

    #[test]
    fn completes_low_rank_matrix() {
        let (m, held_out) = low_rank_case();
        let model = SvdImpute::train(
            &m,
            SvdImputeConfig {
                rank: 2,
                ..Default::default()
            },
        )
        .unwrap();
        for (i, j, actual) in held_out {
            let pred = model.predict(i, j);
            assert!(
                (pred - actual).abs() / actual < 0.25,
                "({i},{j}): predicted {pred}, actual {actual}"
            );
        }
    }

    #[test]
    fn adversarial_missingness_still_beats_initial_fill_on_aggregate() {
        // A held-out diagonal has an invariant perturbation component under
        // hard-impute (the rank-k projection preserves part of the initial
        // fill error), so per-cell recovery is NOT guaranteed — but the
        // aggregate must still improve on the column-mean fill.
        let u = [1.0, 2.0, 3.0, 1.5, 2.5, 0.5];
        let w = [2.0, 1.0, 3.0, 1.5, 2.5, 0.8, 1.2];
        let mut m = SparseMatrix::new(6, 7);
        let mut held_out = Vec::new();
        for (i, &ui) in u.iter().enumerate() {
            for (j, &wj) in w.iter().enumerate() {
                let v = ui * wj + 1.0;
                if i == j {
                    held_out.push((i, j, v));
                } else {
                    m.insert(i, j, v);
                }
            }
        }
        let model = SvdImpute::train(
            &m,
            SvdImputeConfig {
                rank: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let mae = |f: &dyn Fn(usize, usize) -> f64| {
            held_out
                .iter()
                .map(|&(i, j, v)| (f(i, j) - v).abs())
                .sum::<f64>()
                / held_out.len() as f64
        };
        let model_mae = mae(&|i, j| model.predict(i, j));
        let fill_mae = mae(&|_, j| m.col_mean(j).unwrap());
        assert!(
            model_mae <= fill_mae,
            "imputation MAE {model_mae} vs fill {fill_mae}"
        );
    }

    #[test]
    fn observed_entries_preserved_exactly() {
        let (m, _) = low_rank_case();
        let model = SvdImpute::train(&m, SvdImputeConfig::default()).unwrap();
        for e in m.iter() {
            assert!(
                (model.completed().get(e.row, e.col) - e.value).abs() < 1e-12,
                "observed cell moved"
            );
        }
    }

    #[test]
    fn rank_clamped_to_matrix_size() {
        let (m, _) = low_rank_case();
        let model = SvdImpute::train(
            &m,
            SvdImputeConfig {
                rank: 100,
                ..Default::default()
            },
        );
        assert!(model.is_ok());
    }

    #[test]
    fn predictions_within_observed_bounds() {
        let (m, _) = low_rank_case();
        let model = SvdImpute::train(&m, SvdImputeConfig::default()).unwrap();
        let lo = m
            .observed_values()
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let hi = m
            .observed_values()
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        for i in 0..6 {
            for j in 0..7 {
                let p = model.predict(i, j);
                assert!((lo..=hi).contains(&p));
            }
        }
    }

    #[test]
    fn deterministic() {
        let (m, _) = low_rank_case();
        let a = SvdImpute::train(&m, SvdImputeConfig::default()).unwrap();
        let b = SvdImpute::train(&m, SvdImputeConfig::default()).unwrap();
        assert_eq!(a.predict(0, 0), b.predict(0, 0));
    }

    #[test]
    fn rejects_bad_inputs() {
        let (m, _) = low_rank_case();
        assert!(SvdImpute::train(
            &m,
            SvdImputeConfig {
                rank: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(SvdImpute::train(
            &m,
            SvdImputeConfig {
                max_iterations: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(matches!(
            SvdImpute::train(&SparseMatrix::new(3, 3), SvdImputeConfig::default()),
            Err(BaselineError::EmptyTrainingData)
        ));
    }

    #[test]
    fn name_and_accessors() {
        let (m, _) = low_rank_case();
        let model = SvdImpute::train(&m, SvdImputeConfig::default()).unwrap();
        assert_eq!(model.name(), "SVD-impute");
        assert_eq!(model.completed().shape(), (6, 7));
    }
}
