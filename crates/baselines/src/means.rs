//! Mean-based predictors: the floors every CF model must beat.

use crate::{BaselineError, QosPredictor};
use qos_linalg::SparseMatrix;

/// Predicts the global mean of all observed values for every pair.
#[derive(Debug, Clone)]
pub struct GlobalMean {
    mean: f64,
}

impl GlobalMean {
    /// Trains on the observed matrix.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::EmptyTrainingData`] for an empty matrix.
    pub fn train(matrix: &SparseMatrix) -> Result<Self, BaselineError> {
        Ok(Self {
            mean: matrix.mean().ok_or(BaselineError::EmptyTrainingData)?,
        })
    }

    /// The learned global mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

impl QosPredictor for GlobalMean {
    fn predict(&self, _user: usize, _service: usize) -> f64 {
        self.mean
    }

    fn name(&self) -> &'static str {
        "GlobalMean"
    }
}

/// Predicts each user's observed mean (global mean for cold users).
#[derive(Debug, Clone)]
pub struct UserMean {
    user_means: Vec<Option<f64>>,
    global: f64,
}

impl UserMean {
    /// Trains on the observed matrix.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::EmptyTrainingData`] for an empty matrix.
    pub fn train(matrix: &SparseMatrix) -> Result<Self, BaselineError> {
        let global = matrix.mean().ok_or(BaselineError::EmptyTrainingData)?;
        Ok(Self {
            user_means: (0..matrix.rows()).map(|i| matrix.row_mean(i)).collect(),
            global,
        })
    }
}

impl QosPredictor for UserMean {
    fn predict(&self, user: usize, _service: usize) -> f64 {
        self.user_means
            .get(user)
            .copied()
            .flatten()
            .unwrap_or(self.global)
    }

    fn name(&self) -> &'static str {
        "UserMean"
    }
}

/// Predicts each service's observed mean (global mean for cold services).
#[derive(Debug, Clone)]
pub struct ItemMean {
    item_means: Vec<Option<f64>>,
    global: f64,
}

impl ItemMean {
    /// Trains on the observed matrix.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::EmptyTrainingData`] for an empty matrix.
    pub fn train(matrix: &SparseMatrix) -> Result<Self, BaselineError> {
        let global = matrix.mean().ok_or(BaselineError::EmptyTrainingData)?;
        Ok(Self {
            item_means: (0..matrix.cols()).map(|j| matrix.col_mean(j)).collect(),
            global,
        })
    }
}

impl QosPredictor for ItemMean {
    fn predict(&self, _user: usize, service: usize) -> f64 {
        self.item_means
            .get(service)
            .copied()
            .flatten()
            .unwrap_or(self.global)
    }

    fn name(&self) -> &'static str {
        "ItemMean"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> SparseMatrix {
        let mut m = SparseMatrix::new(3, 3);
        m.insert(0, 0, 1.0);
        m.insert(0, 1, 3.0);
        m.insert(1, 0, 5.0);
        m
    }

    #[test]
    fn global_mean_value() {
        let g = GlobalMean::train(&matrix()).unwrap();
        assert_eq!(g.mean(), 3.0);
        assert_eq!(g.predict(2, 2), 3.0);
        assert_eq!(g.name(), "GlobalMean");
    }

    #[test]
    fn user_mean_with_cold_fallback() {
        let u = UserMean::train(&matrix()).unwrap();
        assert_eq!(u.predict(0, 9), 2.0);
        assert_eq!(u.predict(1, 0), 5.0);
        assert_eq!(u.predict(2, 0), 3.0); // cold user -> global
        assert_eq!(u.predict(99, 0), 3.0); // out of range -> global
    }

    #[test]
    fn item_mean_with_cold_fallback() {
        let m = ItemMean::train(&matrix()).unwrap();
        assert_eq!(m.predict(9, 0), 3.0);
        assert_eq!(m.predict(0, 1), 3.0);
        assert_eq!(m.predict(0, 2), 3.0); // cold item -> global
    }

    #[test]
    fn empty_matrix_rejected() {
        let empty = SparseMatrix::new(2, 2);
        assert!(GlobalMean::train(&empty).is_err());
        assert!(UserMean::train(&empty).is_err());
        assert!(ItemMean::train(&empty).is_err());
    }

    #[test]
    fn predict_batch_default_impl() {
        let g = GlobalMean::train(&matrix()).unwrap();
        assert_eq!(g.predict_batch(&[(0, 0), (1, 1)]), vec![3.0, 3.0]);
    }
}
