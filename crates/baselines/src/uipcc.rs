//! UIPCC: the confidence-weighted hybrid of UPCC and IPCC.
//!
//! Following Zheng et al. (WSRec), the user-based and item-based predictions
//! are blended with weights that combine a tunable parameter `λ` with
//! per-prediction *confidence* — how strongly the contributing neighbors
//! agree:
//!
//! ```text
//! con_u = Σ_v (sim(u,v) / Σ sim) · sim(u,v)        (same for con_i)
//! w_u   = con_u · λ / (con_u · λ + con_i · (1 − λ))
//! r̂    = w_u · r̂_UPCC + (1 − w_u) · r̂_IPCC
//! ```

use crate::neighborhood::{Ipcc, NeighborhoodConfig, Upcc};
use crate::{BaselineError, QosPredictor};
use qos_linalg::SparseMatrix;
use serde::{Deserialize, Serialize};

/// UIPCC configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UipccConfig {
    /// Shared neighborhood parameters for both component models.
    pub neighborhood: NeighborhoodConfig,
    /// Blend parameter `λ ∈ [0, 1]`: 1 = pure UPCC, 0 = pure IPCC.
    pub lambda: f64,
}

impl Default for UipccConfig {
    fn default() -> Self {
        Self {
            neighborhood: NeighborhoodConfig::default(),
            lambda: 0.5,
        }
    }
}

impl UipccConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidConfig`] when `lambda` is outside
    /// `[0, 1]` or the neighborhood config is invalid.
    pub fn validate(&self) -> Result<(), BaselineError> {
        self.neighborhood.validate()?;
        if !(0.0..=1.0).contains(&self.lambda) {
            return Err(BaselineError::InvalidConfig(
                "lambda must be in [0, 1]".into(),
            ));
        }
        Ok(())
    }
}

/// The hybrid UPCC + IPCC predictor (the paper's UIPCC baseline).
#[derive(Debug, Clone)]
pub struct Uipcc {
    upcc: Upcc,
    ipcc: Ipcc,
    lambda: f64,
}

impl Uipcc {
    /// Trains both component models on the observed matrix.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::EmptyTrainingData`] for an empty matrix and
    /// [`BaselineError::InvalidConfig`] for an invalid `config`.
    pub fn train(matrix: &SparseMatrix, config: UipccConfig) -> Result<Self, BaselineError> {
        config.validate()?;
        Ok(Self {
            upcc: Upcc::train(matrix, config.neighborhood)?,
            ipcc: Ipcc::train(matrix, config.neighborhood)?,
            lambda: config.lambda,
        })
    }

    /// Confidence of a neighbor list: similarity-weighted mean similarity.
    fn confidence(neighbors: &[(usize, f64)]) -> f64 {
        let total: f64 = neighbors.iter().map(|&(_, s)| s).sum();
        if total <= 0.0 {
            return 0.0;
        }
        neighbors.iter().map(|&(_, s)| (s / total) * s).sum()
    }

    /// The user-side blend weight for a prediction at `(user, service)`.
    pub fn user_weight(&self, user: usize, service: usize) -> f64 {
        let con_u = Self::confidence(self.upcc.neighbors(user));
        let con_i = Self::confidence(self.ipcc.neighbors(service));
        let num = con_u * self.lambda;
        let den = num + con_i * (1.0 - self.lambda);
        if den == 0.0 {
            // No confidence on either side: fall back to the raw lambda.
            self.lambda
        } else {
            num / den
        }
    }

    /// The component UPCC model.
    pub fn upcc(&self) -> &Upcc {
        &self.upcc
    }

    /// The component IPCC model.
    pub fn ipcc(&self) -> &Ipcc {
        &self.ipcc
    }
}

impl QosPredictor for Uipcc {
    fn predict(&self, user: usize, service: usize) -> f64 {
        let w = self.user_weight(user, service);
        w * self.upcc.predict(user, service) + (1.0 - w) * self.ipcc.predict(user, service)
    }

    fn name(&self) -> &'static str {
        "UIPCC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> SparseMatrix {
        let mut m = SparseMatrix::new(6, 6);
        for u in 0..6 {
            for s in 0..6 {
                if (u + s) % 7 != 0 {
                    let base = if (u < 3) == (s < 3) { 1.0 } else { 5.0 };
                    m.insert(u, s, base + 0.1 * u as f64 + 0.07 * s as f64);
                }
            }
        }
        m
    }

    #[test]
    fn prediction_between_components() {
        let m = matrix();
        let uipcc = Uipcc::train(&m, UipccConfig::default()).unwrap();
        for (u, s) in [(0usize, 0usize), (2, 5), (4, 1)] {
            let hybrid = uipcc.predict(u, s);
            let up = uipcc.upcc().predict(u, s);
            let ip = uipcc.ipcc().predict(u, s);
            let (lo, hi) = if up <= ip { (up, ip) } else { (ip, up) };
            assert!(
                (lo - 1e-9..=hi + 1e-9).contains(&hybrid),
                "hybrid {hybrid} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn lambda_one_is_pure_upcc() {
        let m = matrix();
        let config = UipccConfig {
            lambda: 1.0,
            ..Default::default()
        };
        let uipcc = Uipcc::train(&m, config).unwrap();
        for (u, s) in [(0usize, 1usize), (3, 4)] {
            assert_eq!(uipcc.predict(u, s), uipcc.upcc().predict(u, s));
        }
    }

    #[test]
    fn lambda_zero_is_pure_ipcc() {
        let m = matrix();
        let config = UipccConfig {
            lambda: 0.0,
            ..Default::default()
        };
        let uipcc = Uipcc::train(&m, config).unwrap();
        for (u, s) in [(1usize, 0usize), (5, 2)] {
            assert_eq!(uipcc.predict(u, s), uipcc.ipcc().predict(u, s));
        }
    }

    #[test]
    fn weight_in_unit_interval() {
        let m = matrix();
        let uipcc = Uipcc::train(&m, UipccConfig::default()).unwrap();
        for u in 0..6 {
            for s in 0..6 {
                let w = uipcc.user_weight(u, s);
                assert!((0.0..=1.0).contains(&w), "weight {w}");
            }
        }
    }

    #[test]
    fn invalid_lambda_rejected() {
        let m = matrix();
        let config = UipccConfig {
            lambda: 1.5,
            ..Default::default()
        };
        assert!(matches!(
            Uipcc::train(&m, config),
            Err(BaselineError::InvalidConfig(_))
        ));
    }

    #[test]
    fn empty_matrix_rejected() {
        assert!(Uipcc::train(&SparseMatrix::new(2, 2), UipccConfig::default()).is_err());
    }

    #[test]
    fn confidence_of_empty_is_zero() {
        assert_eq!(Uipcc::confidence(&[]), 0.0);
        assert!(Uipcc::confidence(&[(1, 0.8), (2, 0.4)]) > 0.0);
    }

    #[test]
    fn name_is_uipcc() {
        let m = matrix();
        let uipcc = Uipcc::train(&m, UipccConfig::default()).unwrap();
        assert_eq!(uipcc.name(), "UIPCC");
    }
}
