//! Baseline QoS predictors (paper Section V-C comparison set).
//!
//! The paper compares AMF against four approaches, all reproduced here:
//!
//! * [`Upcc`] — user-based collaborative filtering: predicts from the
//!   deviations of PCC-similar *users* (Zheng et al., "QoS-aware Web service
//!   recommendation by collaborative filtering").
//! * [`Ipcc`] — item-based collaborative filtering: same idea over *services*.
//! * [`Uipcc`] — the confidence-weighted hybrid of the two.
//! * [`Pmf`] — probabilistic matrix factorization (Salakhutdinov & Mnih):
//!   batch-trained low-rank factors with a sigmoid link on normalized data.
//!
//! The [`means`] module adds the trivial global/user/item mean predictors used
//! as fallbacks and sanity floors. All predictors implement [`QosPredictor`],
//! which is what the evaluation harness consumes.
//!
//! As the paper notes, these baselines "cannot be directly used for runtime
//! service adaptation in practice": they train offline on a frozen matrix and
//! must be fully retrained to absorb new observations (the cost measured in
//! Fig. 13). They are reproduced to measure exactly that contrast with AMF.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod means;
pub mod neighborhood;
pub mod nimf;
pub mod pmf;
pub mod svd_impute;
pub mod uipcc;

pub use means::{GlobalMean, ItemMean, UserMean};
pub use neighborhood::{Ipcc, NeighborhoodConfig, Upcc};
pub use nimf::{Nimf, NimfConfig};
pub use pmf::{Pmf, PmfConfig, PmfLink, PmfTrainReport};
pub use svd_impute::{SvdImpute, SvdImputeConfig};
pub use uipcc::{Uipcc, UipccConfig};

/// A trained QoS predictor: given a (user, service) pair, produce an estimate
/// of the unobserved QoS value.
///
/// Implementations never fail on valid indices: when a model has no signal
/// for a pair (cold user, no similar neighbors, ...) it falls back to
/// coarser statistics (user mean → item mean → global mean), mirroring how
/// the original WSRec implementations behave.
pub trait QosPredictor {
    /// Predicts the QoS value for `(user, service)`.
    ///
    /// # Panics
    ///
    /// May panic if `user`/`service` are outside the training matrix shape.
    fn predict(&self, user: usize, service: usize) -> f64;

    /// Short display name ("UPCC", "PMF", ...), as used in the paper tables.
    fn name(&self) -> &'static str;

    /// Predicts a batch of pairs. Default implementation maps
    /// [`QosPredictor::predict`]; models may override with something faster.
    fn predict_batch(&self, pairs: &[(usize, usize)]) -> Vec<f64> {
        pairs.iter().map(|&(u, s)| self.predict(u, s)).collect()
    }
}

/// Error type for baseline training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The training matrix contained no observations.
    EmptyTrainingData,
    /// A configuration parameter was invalid.
    InvalidConfig(String),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::EmptyTrainingData => write!(f, "training matrix has no observations"),
            BaselineError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
        }
    }
}

impl std::error::Error for BaselineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(BaselineError::EmptyTrainingData
            .to_string()
            .contains("no observations"));
        assert!(BaselineError::InvalidConfig("k".into())
            .to_string()
            .contains("invalid"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BaselineError>();
    }
}
