//! Probabilistic Matrix Factorization (the paper's PMF baseline).
//!
//! Follows Salakhutdinov & Mnih (NIPS'07) as the paper uses it
//! (Section IV-B): the QoS matrix is fitted directly by latent inner
//! products, `R̂_ij = U_i^T S_j` (a linear-Gaussian model), minimizing squared
//! error with L2 regularization. Observed values are z-scored for numerical
//! conditioning (an affine map, so the model stays linear); a
//! sigmoid-constrained variant ([`PmfLink::Sigmoid`]) is provided for
//! comparison with the logistic formulation some implementations use.
//!
//! Training is batch-style: repeated epochs over the *whole* observed matrix
//! until convergence — exactly the property that makes PMF unsuitable for
//! online use (it must retrain per time slice; the cost the paper measures
//! in Fig. 13).

use crate::{BaselineError, QosPredictor};
use qos_linalg::random::{normal_vec, shuffle};
use qos_linalg::{Entry, SparseMatrix};
use qos_transform::{sigmoid, sigmoid_derivative, Range};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Output link of the factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PmfLink {
    /// `R̂ = μ + σ·(U^T S)` on z-scored data — the paper's `R ≈ U^T S`
    /// formulation (default).
    Linear,
    /// `R̂ = denormalize(g(U^T S))` with min–max normalization — the
    /// logistic-constrained variant.
    Sigmoid,
}

/// PMF hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PmfConfig {
    /// Latent dimensionality (paper: `d = 10`).
    pub dimension: usize,
    /// L2 regularization strength for both factor matrices.
    pub lambda: f64,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Per-epoch multiplicative learning-rate decay.
    pub learning_rate_decay: f64,
    /// Maximum training epochs.
    pub max_epochs: usize,
    /// Convergence: stop when the relative epoch-loss improvement drops below
    /// this threshold.
    pub tolerance: f64,
    /// Output link (linear per the paper; sigmoid for comparison).
    pub link: PmfLink,
    /// RNG seed for initialization and epoch shuffling.
    pub seed: u64,
}

impl Default for PmfConfig {
    fn default() -> Self {
        Self {
            dimension: 10,
            lambda: 0.02,
            learning_rate: 0.02,
            learning_rate_decay: 0.995,
            max_epochs: 300,
            tolerance: 1e-5,
            link: PmfLink::Linear,
            seed: 42,
        }
    }
}

impl PmfConfig {
    /// The sigmoid-constrained configuration (tuned step size for the
    /// `[0, 1]` domain).
    pub fn sigmoid() -> Self {
        Self {
            link: PmfLink::Sigmoid,
            learning_rate: 0.8,
            learning_rate_decay: 0.98,
            lambda: 0.001,
            ..Self::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidConfig`] when a parameter is outside
    /// its valid domain.
    pub fn validate(&self) -> Result<(), BaselineError> {
        let bad = |msg: &str| Err(BaselineError::InvalidConfig(msg.to_string()));
        if self.dimension == 0 {
            return bad("dimension must be positive");
        }
        if self.lambda.is_nan() || self.lambda < 0.0 {
            return bad("lambda must be non-negative");
        }
        if self.learning_rate.is_nan() || self.learning_rate <= 0.0 {
            return bad("learning_rate must be positive");
        }
        if !(0.0 < self.learning_rate_decay && self.learning_rate_decay <= 1.0) {
            return bad("learning_rate_decay must be in (0, 1]");
        }
        if self.max_epochs == 0 {
            return bad("max_epochs must be positive");
        }
        if self.tolerance.is_nan() || self.tolerance < 0.0 {
            return bad("tolerance must be non-negative");
        }
        Ok(())
    }
}

/// Outcome of a PMF training run (for the Fig. 13 efficiency comparison).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PmfTrainReport {
    /// Number of epochs executed.
    pub epochs: usize,
    /// Final mean squared training loss (normalized domain).
    pub final_loss: f64,
    /// Wall-clock training time.
    pub elapsed: Duration,
    /// Whether the tolerance criterion was met before `max_epochs`.
    pub converged: bool,
}

/// How raw values map into the training domain and back.
#[derive(Debug, Clone, Copy)]
enum Scaling {
    /// z-scoring for the linear link: `z = (R − mean) / std`.
    ZScore { mean: f64, std: f64 },
    /// Min–max (padded) for the sigmoid link.
    MinMax(Range),
}

/// A trained PMF model.
///
/// # Examples
///
/// ```
/// use qos_baselines::{Pmf, PmfConfig, QosPredictor};
/// use qos_linalg::SparseMatrix;
///
/// let mut m = SparseMatrix::new(4, 4);
/// for u in 0..4 {
///     for s in 0..4 {
///         if (u, s) != (3, 3) {
///             m.insert(u, s, 1.0 + ((u * s) % 3) as f64);
///         }
///     }
/// }
/// let (pmf, report) = Pmf::train(&m, PmfConfig::default())?;
/// let pred = pmf.predict(3, 3);
/// assert!(pred >= 1.0 && pred <= 3.0);
/// assert!(report.epochs > 0);
/// # Ok::<(), qos_baselines::BaselineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Pmf {
    user_factors: Vec<Vec<f64>>,
    service_factors: Vec<Vec<f64>>,
    scaling: Scaling,
    /// Observed-value bounds; predictions are clamped into them.
    bounds: (f64, f64),
    link: PmfLink,
}

impl Pmf {
    /// Trains PMF on the observed matrix, returning the model and a training
    /// report.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::EmptyTrainingData`] for an empty matrix and
    /// [`BaselineError::InvalidConfig`] for an invalid `config`.
    pub fn train(
        matrix: &SparseMatrix,
        config: PmfConfig,
    ) -> Result<(Self, PmfTrainReport), BaselineError> {
        config.validate()?;
        if matrix.nnz() == 0 {
            return Err(BaselineError::EmptyTrainingData);
        }
        let start = Instant::now();

        let observed = matrix.observed_values();
        let obs_min = observed.iter().cloned().fold(f64::INFINITY, f64::min);
        let obs_max = observed.iter().cloned().fold(f64::NEG_INFINITY, f64::max);

        let scaling = match config.link {
            PmfLink::Linear => {
                let mean = observed.iter().sum::<f64>() / observed.len() as f64;
                let var = observed
                    .iter()
                    .map(|v| (v - mean) * (v - mean))
                    .sum::<f64>()
                    / observed.len() as f64;
                Scaling::ZScore {
                    mean,
                    // Constant matrices have zero variance; any positive std
                    // keeps the map defined (the factors then fit 0).
                    std: var.sqrt().max(1e-9),
                }
            }
            PmfLink::Sigmoid => {
                // Pad the range: the sigmoid link only reaches the open
                // interval (0, 1), so data extremes must be interior points.
                let range = match Range::from_data(&observed) {
                    Ok(tight) => {
                        let pad = 0.1 * tight.width();
                        Range::new(tight.min() - pad, tight.max() + pad)
                            .expect("padded range is valid")
                    }
                    Err(_) => {
                        let v = observed[0];
                        Range::new(v - 0.5, v + 0.5).expect("widened range is valid")
                    }
                };
                Scaling::MinMax(range)
            }
        };
        let to_target = |raw: f64| -> f64 {
            match scaling {
                Scaling::ZScore { mean, std } => (raw - mean) / std,
                Scaling::MinMax(range) => range.normalize(raw),
            }
        };

        let mut rng = StdRng::seed_from_u64(config.seed);
        let d = config.dimension;
        let init_sigma = 0.1;
        let mut user_factors: Vec<Vec<f64>> = (0..matrix.rows())
            .map(|_| normal_vec(&mut rng, d, 0.0, init_sigma))
            .collect();
        let mut service_factors: Vec<Vec<f64>> = (0..matrix.cols())
            .map(|_| normal_vec(&mut rng, d, 0.0, init_sigma))
            .collect();

        let mut entries: Vec<Entry> = matrix.iter().copied().collect();
        let mut eta = config.learning_rate;
        let mut prev_loss = f64::INFINITY;
        let mut epochs = 0;
        let mut converged = false;
        let mut loss = f64::INFINITY;

        for epoch in 0..config.max_epochs {
            epochs = epoch + 1;
            shuffle(&mut rng, &mut entries);
            let mut sq_err_sum = 0.0;
            for e in &entries {
                let target = to_target(e.value);
                let u = &user_factors[e.row];
                let s = &service_factors[e.col];
                let x = qos_linalg::vector::dot(u, s);
                let (err, gradient_scale) = match config.link {
                    PmfLink::Linear => (x - target, 1.0),
                    PmfLink::Sigmoid => (sigmoid(x) - target, sigmoid_derivative(x)),
                };
                sq_err_sum += err * err;
                // Clip the per-sample gradient coefficient: extreme z-scores
                // in heavy-tailed data can otherwise blow the factors up
                // (divergence shows as NaN predictions).
                let coef = (err * gradient_scale).clamp(-5.0, 5.0);
                // Simultaneous update of U_i and S_j (Eq. 2 with Eq. 1's loss).
                for k in 0..d {
                    let (uk, sk) = (user_factors[e.row][k], service_factors[e.col][k]);
                    user_factors[e.row][k] = uk - eta * (coef * sk + config.lambda * uk);
                    service_factors[e.col][k] = sk - eta * (coef * uk + config.lambda * sk);
                }
            }
            loss = sq_err_sum / entries.len() as f64;
            if prev_loss.is_finite() {
                let improvement = (prev_loss - loss) / prev_loss.max(f64::MIN_POSITIVE);
                if improvement.abs() < config.tolerance {
                    converged = true;
                    break;
                }
            }
            prev_loss = loss;
            eta *= config.learning_rate_decay;
        }

        Ok((
            Self {
                user_factors,
                service_factors,
                scaling,
                bounds: (obs_min, obs_max),
                link: config.link,
            },
            PmfTrainReport {
                epochs,
                final_loss: loss,
                elapsed: start.elapsed(),
                converged,
            },
        ))
    }

    /// Latent vector of a user.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn user_factor(&self, user: usize) -> &[f64] {
        &self.user_factors[user]
    }

    /// Latent vector of a service.
    ///
    /// # Panics
    ///
    /// Panics if `service` is out of range.
    pub fn service_factor(&self, service: usize) -> &[f64] {
        &self.service_factors[service]
    }

    /// The output link this model was trained with.
    pub fn link(&self) -> PmfLink {
        self.link
    }

    /// Observed-value bounds used to clamp predictions.
    pub fn bounds(&self) -> (f64, f64) {
        self.bounds
    }
}

impl QosPredictor for Pmf {
    fn predict(&self, user: usize, service: usize) -> f64 {
        assert!(user < self.user_factors.len(), "user out of range");
        assert!(service < self.service_factors.len(), "service out of range");
        let x = qos_linalg::vector::dot(&self.user_factors[user], &self.service_factors[service]);
        let raw = match self.scaling {
            Scaling::ZScore { mean, std } => mean + std * x,
            Scaling::MinMax(range) => range.denormalize(sigmoid(x)),
        };
        raw.clamp(self.bounds.0, self.bounds.1)
    }

    fn name(&self) -> &'static str {
        "PMF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rank-1 ground truth with a few holes.
    fn rank_one_matrix() -> (SparseMatrix, Vec<(usize, usize, f64)>) {
        let users = [1.0, 2.0, 3.0, 4.0, 5.0];
        let services = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0];
        let mut m = SparseMatrix::new(5, 6);
        let mut held_out = Vec::new();
        for (i, &u) in users.iter().enumerate() {
            for (j, &s) in services.iter().enumerate() {
                let v = u * s;
                if (i + 2 * j) % 7 == 0 {
                    held_out.push((i, j, v));
                } else {
                    m.insert(i, j, v);
                }
            }
        }
        (m, held_out)
    }

    #[test]
    fn linear_link_learns_rank_one_structure() {
        let (m, held_out) = rank_one_matrix();
        let (pmf, report) = Pmf::train(&m, PmfConfig::default()).unwrap();
        assert!(report.final_loss < 0.02, "loss {}", report.final_loss);
        // PMF optimizes absolute error; judge held-out cells on that scale,
        // plus relative accuracy on the large values where it is meaningful.
        // Corner cells are pure extrapolation and their error depends heavily
        // on the RNG initialization stream, so the bound is deliberately
        // loose: within half the observed range.
        let (lo, hi) = pmf.bounds();
        let width = hi - lo;
        for (u, s, actual) in held_out {
            let pred = pmf.predict(u, s);
            let abs = (pred - actual).abs();
            assert!(
                abs < 0.5 * width,
                "({u},{s}): predicted {pred}, actual {actual}, width {width}"
            );
            if actual > 5.0 {
                assert!(
                    abs / actual < 0.4,
                    "large value ({u},{s}): rel {}",
                    abs / actual
                );
            }
        }
    }

    #[test]
    fn sigmoid_link_learns_absolute_structure() {
        let (m, held_out) = rank_one_matrix();
        let (pmf, _) = Pmf::train(&m, PmfConfig::sigmoid()).unwrap();
        let (lo, hi) = pmf.bounds();
        let width = hi - lo;
        for (u, s, actual) in held_out {
            let abs = (pmf.predict(u, s) - actual).abs();
            // Same loose extrapolation bound as the linear-link test.
            assert!(abs < 0.5 * width, "({u},{s}): |err| {abs} vs width {width}");
        }
    }

    #[test]
    fn training_loss_decreases() {
        let (m, _) = rank_one_matrix();
        let quick = PmfConfig {
            max_epochs: 2,
            tolerance: 0.0,
            ..Default::default()
        };
        let (_, short) = Pmf::train(&m, quick).unwrap();
        let long_config = PmfConfig {
            max_epochs: 100,
            tolerance: 0.0,
            ..Default::default()
        };
        let (_, long) = Pmf::train(&m, long_config).unwrap();
        assert!(long.final_loss < short.final_loss);
    }

    #[test]
    fn converges_before_max_epochs() {
        // A looser tolerance makes the flat-loss criterion reachable well
        // before the epoch cap on this tiny problem.
        let (m, _) = rank_one_matrix();
        let config = PmfConfig {
            tolerance: 1e-3,
            ..Default::default()
        };
        let (_, report) = Pmf::train(&m, config).unwrap();
        assert!(report.converged);
        assert!(report.epochs < config.max_epochs);
        assert!(report.elapsed.as_nanos() > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (m, _) = rank_one_matrix();
        let (a, _) = Pmf::train(&m, PmfConfig::default()).unwrap();
        let (b, _) = Pmf::train(&m, PmfConfig::default()).unwrap();
        assert_eq!(a.predict(0, 0), b.predict(0, 0));
        let seeded = PmfConfig {
            seed: 7,
            ..Default::default()
        };
        let (c, _) = Pmf::train(&m, seeded).unwrap();
        assert_ne!(a.predict(0, 0), c.predict(0, 0));
    }

    #[test]
    fn predictions_clamped_to_observed_bounds() {
        let (m, _) = rank_one_matrix();
        for config in [PmfConfig::default(), PmfConfig::sigmoid()] {
            let (pmf, _) = Pmf::train(&m, config).unwrap();
            let (lo, hi) = pmf.bounds();
            for u in 0..5 {
                for s in 0..6 {
                    let p = pmf.predict(u, s);
                    assert!(
                        (lo..=hi).contains(&p),
                        "prediction {p} outside [{lo}, {hi}]"
                    );
                }
            }
        }
    }

    #[test]
    fn constant_matrix_trains_without_panic() {
        let mut m = SparseMatrix::new(3, 3);
        for u in 0..3 {
            for s in 0..3 {
                m.insert(u, s, 5.0);
            }
        }
        for config in [PmfConfig::default(), PmfConfig::sigmoid()] {
            let (pmf, _) = Pmf::train(&m, config).unwrap();
            let p = pmf.predict(0, 0);
            assert!((4.5..=5.5).contains(&p), "prediction {p}");
        }
    }

    #[test]
    fn handles_skewed_heavy_tailed_data() {
        // The throughput regime: most values tiny, a few huge. Linear PMF
        // must keep absolute error moderate (this is where the sigmoid
        // variant collapses).
        let mut m = SparseMatrix::new(8, 12);
        let mut held_out = Vec::new();
        for u in 0..8 {
            for s in 0..12 {
                let v = if (u + s) % 11 == 0 {
                    2000.0 + 100.0 * u as f64
                } else {
                    2.0 + (u * s % 7) as f64
                };
                if (u * 12 + s) % 9 == 0 {
                    held_out.push((u, s, v));
                } else {
                    m.insert(u, s, v);
                }
            }
        }
        let (pmf, _) = Pmf::train(&m, PmfConfig::default()).unwrap();
        let mae: f64 = held_out
            .iter()
            .map(|&(u, s, v)| (pmf.predict(u, s) - v).abs())
            .sum::<f64>()
            / held_out.len() as f64;
        // Global mean would incur MAE ~300 on the small values; the model
        // should do clearly better than that.
        assert!(mae < 500.0, "MAE {mae} unreasonable for this data");
    }

    #[test]
    fn rejects_empty_and_invalid() {
        assert!(matches!(
            Pmf::train(&SparseMatrix::new(2, 2), PmfConfig::default()),
            Err(BaselineError::EmptyTrainingData)
        ));
        let (m, _) = rank_one_matrix();
        let bad = PmfConfig {
            dimension: 0,
            ..Default::default()
        };
        assert!(Pmf::train(&m, bad).is_err());
        let bad = PmfConfig {
            learning_rate: -1.0,
            ..Default::default()
        };
        assert!(Pmf::train(&m, bad).is_err());
        let bad = PmfConfig {
            learning_rate_decay: 0.0,
            ..Default::default()
        };
        assert!(Pmf::train(&m, bad).is_err());
        let bad = PmfConfig {
            max_epochs: 0,
            ..Default::default()
        };
        assert!(Pmf::train(&m, bad).is_err());
        let bad = PmfConfig {
            lambda: f64::NAN,
            ..Default::default()
        };
        assert!(Pmf::train(&m, bad).is_err());
    }

    #[test]
    fn factor_accessors() {
        let (m, _) = rank_one_matrix();
        let (pmf, _) = Pmf::train(&m, PmfConfig::default()).unwrap();
        assert_eq!(pmf.user_factor(0).len(), 10);
        assert_eq!(pmf.service_factor(0).len(), 10);
        assert_eq!(pmf.name(), "PMF");
        assert_eq!(pmf.link(), PmfLink::Linear);
    }
}
