//! NIMF — Neighborhood-Integrated Matrix Factorization (extension).
//!
//! The paper cites Zheng et al., *"Collaborative Web service QoS prediction
//! via neighborhood integrated matrix factorization"* (IEEE TSC 2013) as
//! state of the art for offline QoS prediction; we include it as an
//! extension baseline. NIMF blends a user's own latent prediction with those
//! of its PCC-similar neighbors:
//!
//! ```text
//! ẑ_ij = ρ · U_i^T S_j + (1 − ρ) · Σ_{k ∈ N(i)} w_ik · U_k^T S_j
//! ```
//!
//! where `w_ik` are the user's normalized top-K similarity weights and `ρ`
//! controls how much the model trusts the individual versus the
//! neighborhood. Training minimizes squared error on z-scored values by SGD,
//! like the linear PMF it generalizes (`ρ = 1` recovers PMF exactly).

use crate::neighborhood::{NeighborhoodConfig, ProfileSet};
use crate::{BaselineError, QosPredictor};
use qos_linalg::random::{normal_vec, shuffle};
use qos_linalg::{Entry, SparseMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// NIMF hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NimfConfig {
    /// Latent dimensionality.
    pub dimension: usize,
    /// L2 regularization strength.
    pub lambda: f64,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Per-epoch learning-rate decay.
    pub learning_rate_decay: f64,
    /// Maximum epochs.
    pub max_epochs: usize,
    /// Relative epoch-loss improvement below which training stops.
    pub tolerance: f64,
    /// Blend `ρ ∈ [0, 1]`: 1 = pure MF, 0 = pure neighborhood.
    pub rho: f64,
    /// Neighborhood selection (top-K PCC with significance weighting).
    pub neighborhood: NeighborhoodConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NimfConfig {
    fn default() -> Self {
        Self {
            dimension: 10,
            lambda: 0.02,
            learning_rate: 0.02,
            learning_rate_decay: 0.995,
            max_epochs: 200,
            tolerance: 1e-5,
            rho: 0.6,
            neighborhood: NeighborhoodConfig::default(),
            seed: 42,
        }
    }
}

impl NimfConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidConfig`] for out-of-domain parameters.
    pub fn validate(&self) -> Result<(), BaselineError> {
        let bad = |msg: &str| Err(BaselineError::InvalidConfig(msg.to_string()));
        if self.dimension == 0 {
            return bad("dimension must be positive");
        }
        if self.lambda.is_nan() || self.lambda < 0.0 {
            return bad("lambda must be non-negative");
        }
        if self.learning_rate.is_nan() || self.learning_rate <= 0.0 {
            return bad("learning_rate must be positive");
        }
        if !(0.0 < self.learning_rate_decay && self.learning_rate_decay <= 1.0) {
            return bad("learning_rate_decay must be in (0, 1]");
        }
        if self.max_epochs == 0 {
            return bad("max_epochs must be positive");
        }
        if !(0.0..=1.0).contains(&self.rho) {
            return bad("rho must be in [0, 1]");
        }
        self.neighborhood.validate()
    }
}

/// A trained NIMF model.
///
/// # Examples
///
/// ```
/// use qos_baselines::{Nimf, NimfConfig, QosPredictor};
/// use qos_linalg::SparseMatrix;
///
/// let mut m = SparseMatrix::new(4, 5);
/// for u in 0..4 {
///     for s in 0..5 {
///         if (u, s) != (0, 4) {
///             m.insert(u, s, (u + 1) as f64 * (s + 1) as f64 * 0.3);
///         }
///     }
/// }
/// let (nimf, _) = Nimf::train(&m, NimfConfig::default())?;
/// let pred = nimf.predict(0, 4);
/// assert!(pred > 0.0);
/// # Ok::<(), qos_baselines::BaselineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Nimf {
    user_factors: Vec<Vec<f64>>,
    service_factors: Vec<Vec<f64>>,
    /// Per-user normalized neighbor weights `(neighbor, w)`.
    neighbor_weights: Vec<Vec<(usize, f64)>>,
    rho: f64,
    mean: f64,
    std: f64,
    bounds: (f64, f64),
}

impl Nimf {
    /// Trains NIMF on the observed matrix.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::EmptyTrainingData`] for an empty matrix and
    /// [`BaselineError::InvalidConfig`] for an invalid `config`.
    pub fn train(
        matrix: &SparseMatrix,
        config: NimfConfig,
    ) -> Result<(Self, Duration), BaselineError> {
        config.validate()?;
        if matrix.nnz() == 0 {
            return Err(BaselineError::EmptyTrainingData);
        }
        let start = Instant::now();

        // z-scoring, as in the linear PMF.
        let observed = matrix.observed_values();
        let mean = observed.iter().sum::<f64>() / observed.len() as f64;
        let var = observed
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / observed.len() as f64;
        let std = var.sqrt().max(1e-9);
        let bounds = (
            observed.iter().cloned().fold(f64::INFINITY, f64::min),
            observed.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        );

        // Top-K PCC neighbors, weights normalized to sum 1 per user.
        let profiles = ProfileSet::from_rows(matrix);
        let neighbor_weights: Vec<Vec<(usize, f64)>> = profiles
            .top_k_neighbors(&config.neighborhood)
            .into_iter()
            .map(|list| {
                let total: f64 = list.iter().map(|&(_, s)| s).sum();
                if total <= 0.0 {
                    Vec::new()
                } else {
                    list.into_iter().map(|(k, s)| (k, s / total)).collect()
                }
            })
            .collect();

        let mut rng = StdRng::seed_from_u64(config.seed);
        let d = config.dimension;
        let mut user_factors: Vec<Vec<f64>> = (0..matrix.rows())
            .map(|_| normal_vec(&mut rng, d, 0.0, 0.1))
            .collect();
        let mut service_factors: Vec<Vec<f64>> = (0..matrix.cols())
            .map(|_| normal_vec(&mut rng, d, 0.0, 0.1))
            .collect();

        let mut entries: Vec<Entry> = matrix.iter().copied().collect();
        let mut eta = config.learning_rate;
        let mut prev_loss = f64::INFINITY;
        let rho = config.rho;

        for _ in 0..config.max_epochs {
            shuffle(&mut rng, &mut entries);
            let mut sq_err_sum = 0.0;
            for e in &entries {
                let z = (e.value - mean) / std;
                let neighbors = &neighbor_weights[e.row];
                let s = &service_factors[e.col];

                let own = qos_linalg::vector::dot(&user_factors[e.row], s);
                let mut hood = 0.0;
                for &(k, w) in neighbors {
                    hood += w * qos_linalg::vector::dot(&user_factors[k], s);
                }
                // With no usable neighbors, fall back to pure MF for this
                // sample (rho effectively 1).
                let (rho_eff, blended) = if neighbors.is_empty() {
                    (1.0, own)
                } else {
                    (rho, rho * own + (1.0 - rho) * hood)
                };
                let err = (blended - z).clamp(-5.0, 5.0);
                sq_err_sum += err * err;

                // Gradient for S_j uses the blended user direction.
                let mut user_dir = vec![0.0; d];
                for k in 0..d {
                    user_dir[k] = rho_eff * user_factors[e.row][k];
                }
                for &(n, w) in neighbors {
                    for k in 0..d {
                        user_dir[k] += (1.0 - rho_eff) * w * user_factors[n][k];
                    }
                }

                // Update the owning user.
                for k in 0..d {
                    let uk = user_factors[e.row][k];
                    user_factors[e.row][k] = uk - eta * (err * rho_eff * s[k] + config.lambda * uk);
                }
                // Update the contributing neighbors (small steps).
                for &(n, w) in neighbors {
                    for k in 0..d {
                        let nk = user_factors[n][k];
                        user_factors[n][k] =
                            nk - eta * (err * (1.0 - rho_eff) * w * s[k] + config.lambda * nk);
                    }
                }
                // Update the service.
                for k in 0..d {
                    let sk = service_factors[e.col][k];
                    service_factors[e.col][k] = sk - eta * (err * user_dir[k] + config.lambda * sk);
                }
            }
            let loss = sq_err_sum / entries.len() as f64;
            if prev_loss.is_finite() {
                let improvement = (prev_loss - loss) / prev_loss.max(f64::MIN_POSITIVE);
                if improvement.abs() < config.tolerance {
                    break;
                }
            }
            prev_loss = loss;
            eta *= config.learning_rate_decay;
        }

        Ok((
            Self {
                user_factors,
                service_factors,
                neighbor_weights,
                rho,
                mean,
                std,
                bounds,
            },
            start.elapsed(),
        ))
    }

    /// The normalized neighbor weights of a user.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn neighbors(&self, user: usize) -> &[(usize, f64)] {
        &self.neighbor_weights[user]
    }
}

impl QosPredictor for Nimf {
    fn predict(&self, user: usize, service: usize) -> f64 {
        assert!(user < self.user_factors.len(), "user out of range");
        assert!(service < self.service_factors.len(), "service out of range");
        let s = &self.service_factors[service];
        let own = qos_linalg::vector::dot(&self.user_factors[user], s);
        let neighbors = &self.neighbor_weights[user];
        let z = if neighbors.is_empty() {
            own
        } else {
            let mut hood = 0.0;
            for &(k, w) in neighbors {
                hood += w * qos_linalg::vector::dot(&self.user_factors[k], s);
            }
            self.rho * own + (1.0 - self.rho) * hood
        };
        (self.mean + self.std * z).clamp(self.bounds.0, self.bounds.1)
    }

    fn name(&self) -> &'static str {
        "NIMF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn structured_matrix() -> (SparseMatrix, Vec<(usize, usize, f64)>) {
        // Two user groups with shared structure; NIMF's neighborhood term
        // should help group members cover each other's holes.
        let mut m = SparseMatrix::new(8, 10);
        let mut held_out = Vec::new();
        for u in 0..8 {
            let group_base = if u < 4 { 1.0 } else { 3.0 };
            for s in 0..10 {
                let v = group_base * (1.0 + 0.3 * s as f64) + 0.05 * u as f64;
                if (u * 10 + s) % 9 == 0 {
                    held_out.push((u, s, v));
                } else {
                    m.insert(u, s, v);
                }
            }
        }
        (m, held_out)
    }

    #[test]
    fn learns_structured_data() {
        let (m, held_out) = structured_matrix();
        let (nimf, elapsed) = Nimf::train(&m, NimfConfig::default()).unwrap();
        assert!(elapsed.as_nanos() > 0);
        // Squared-loss models are judged on the absolute scale; additionally
        // require relative accuracy away from the extrapolation corners.
        for (u, s, actual) in held_out {
            let pred = nimf.predict(u, s);
            let abs = (pred - actual).abs();
            assert!(abs < 1.6, "({u},{s}): predicted {pred}, actual {actual}");
            if actual > 2.0 {
                assert!(
                    abs / actual < 0.5,
                    "({u},{s}): predicted {pred}, actual {actual}"
                );
            }
        }
    }

    #[test]
    fn rho_one_matches_pure_mf_family() {
        // With rho = 1 the neighborhood term vanishes; predictions must be
        // finite and within bounds like PMF's.
        let (m, _) = structured_matrix();
        let config = NimfConfig {
            rho: 1.0,
            ..Default::default()
        };
        let (nimf, _) = Nimf::train(&m, config).unwrap();
        let (lo, hi) = (nimf.bounds.0, nimf.bounds.1);
        for u in 0..8 {
            for s in 0..10 {
                let p = nimf.predict(u, s);
                assert!((lo..=hi).contains(&p));
            }
        }
    }

    #[test]
    fn neighbor_weights_normalized() {
        let (m, _) = structured_matrix();
        let (nimf, _) = Nimf::train(&m, NimfConfig::default()).unwrap();
        for u in 0..8 {
            let total: f64 = nimf.neighbors(u).iter().map(|&(_, w)| w).sum();
            assert!(
                nimf.neighbors(u).is_empty() || (total - 1.0).abs() < 1e-9,
                "user {u}: weights sum to {total}"
            );
        }
    }

    #[test]
    fn same_group_users_are_neighbors() {
        let (m, _) = structured_matrix();
        let (nimf, _) = Nimf::train(&m, NimfConfig::default()).unwrap();
        // User 0's strongest neighbor should come from its own group (users
        // 1-3): group members are nearly perfectly correlated.
        if let Some(&(best, _)) = nimf.neighbors(0).first() {
            assert!((1..=3).contains(&best), "user 0's top neighbor is {best}");
        }
    }

    #[test]
    fn deterministic() {
        let (m, _) = structured_matrix();
        let (a, _) = Nimf::train(&m, NimfConfig::default()).unwrap();
        let (b, _) = Nimf::train(&m, NimfConfig::default()).unwrap();
        assert_eq!(a.predict(0, 0), b.predict(0, 0));
    }

    #[test]
    fn rejects_invalid_config_and_empty_data() {
        let (m, _) = structured_matrix();
        let bad = NimfConfig {
            rho: 1.5,
            ..Default::default()
        };
        assert!(Nimf::train(&m, bad).is_err());
        let bad = NimfConfig {
            dimension: 0,
            ..Default::default()
        };
        assert!(Nimf::train(&m, bad).is_err());
        assert!(matches!(
            Nimf::train(&SparseMatrix::new(2, 2), NimfConfig::default()),
            Err(BaselineError::EmptyTrainingData)
        ));
    }

    #[test]
    fn name_is_nimf() {
        let (m, _) = structured_matrix();
        let (nimf, _) = Nimf::train(&m, NimfConfig::default()).unwrap();
        assert_eq!(nimf.name(), "NIMF");
    }
}
