//! Improvement percentages (the "Improve.(%)" rows of paper Table I).

use crate::AccuracySummary;

/// Relative improvement of `ours` over `best_other`, in percent:
/// `100 · (best_other − ours) / best_other`.
///
/// Positive means `ours` is better (smaller error); negative means worse —
/// the paper's Table I contains one such negative cell (−0.2% MAE at RT
/// density 40%).
///
/// Returns `None` when `best_other` is zero or either input is NaN.
///
/// # Examples
///
/// ```
/// use qos_metrics::improvement_percent;
/// let imp = improvement_percent(0.478, 0.593).unwrap();
/// assert!((imp - 19.4).abs() < 0.1); // the paper's RT density-10% MRE row
/// ```
pub fn improvement_percent(ours: f64, best_other: f64) -> Option<f64> {
    if best_other == 0.0 || ours.is_nan() || best_other.is_nan() {
        return None;
    }
    Some(100.0 * (best_other - ours) / best_other)
}

/// Per-metric improvement of `ours` over the most competitive of `others`
/// (the minimum per metric), exactly as the paper computes its table rows:
/// "all improvements are computed as the percentage of how much AMF
/// outperforms the other most competitive approach".
///
/// Returns `None` when `others` is empty.
pub fn improvement_over_best(
    ours: &AccuracySummary,
    others: &[AccuracySummary],
) -> Option<MetricImprovement> {
    if others.is_empty() {
        return None;
    }
    let best = |f: fn(&AccuracySummary) -> f64| others.iter().map(f).fold(f64::INFINITY, f64::min);
    Some(MetricImprovement {
        mae: improvement_percent(ours.mae, best(|s| s.mae))?,
        mre: improvement_percent(ours.mre, best(|s| s.mre))?,
        npre: improvement_percent(ours.npre, best(|s| s.npre))?,
    })
}

/// Improvement percentages for the three paper metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricImprovement {
    /// MAE improvement in percent.
    pub mae: f64,
    /// MRE improvement in percent.
    pub mre: f64,
    /// NPRE improvement in percent.
    pub npre: f64,
}

impl std::fmt::Display for MetricImprovement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:+.1}% MAE, {:+.1}% MRE, {:+.1}% NPRE",
            self.mae, self.mre, self.npre
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(mae: f64, mre: f64, npre: f64) -> AccuracySummary {
        AccuracySummary {
            mae,
            mre,
            npre,
            rmse: mae * 1.5,
            count: 100,
        }
    }

    #[test]
    fn improvement_signs() {
        assert!(improvement_percent(0.5, 1.0).unwrap() > 0.0);
        assert!(improvement_percent(2.0, 1.0).unwrap() < 0.0);
        assert_eq!(improvement_percent(1.0, 1.0), Some(0.0));
    }

    #[test]
    fn improvement_undefined_cases() {
        assert_eq!(improvement_percent(1.0, 0.0), None);
        assert_eq!(improvement_percent(f64::NAN, 1.0), None);
    }

    #[test]
    fn table1_rt_density10_row() {
        // Table I RT density 10%: AMF MRE 0.478 vs best-other PMF 0.593 -> 19.4%
        let imp = improvement_percent(0.478, 0.593).unwrap();
        assert!((imp - 19.4).abs() < 0.1);
        // NPRE: AMF 1.765 vs best-other PMF 3.017 -> 41.5%
        let imp = improvement_percent(1.765, 3.017).unwrap();
        assert!((imp - 41.5).abs() < 0.1);
    }

    #[test]
    fn best_other_is_per_metric_minimum() {
        let ours = summary(1.0, 0.3, 1.0);
        // Different baselines are best on different metrics.
        let a = summary(1.1, 0.9, 9.0); // best MAE
        let b = summary(5.0, 0.6, 3.0); // best MRE and NPRE
        let imp = improvement_over_best(&ours, &[a, b]).unwrap();
        assert!((imp.mae - improvement_percent(1.0, 1.1).unwrap()).abs() < 1e-12);
        assert!((imp.mre - improvement_percent(0.3, 0.6).unwrap()).abs() < 1e-12);
        assert!((imp.npre - improvement_percent(1.0, 3.0).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn empty_others_is_none() {
        assert_eq!(improvement_over_best(&summary(1.0, 1.0, 1.0), &[]), None);
    }

    #[test]
    fn display_has_signs() {
        let imp = MetricImprovement {
            mae: -0.2,
            mre: 39.0,
            npre: 71.8,
        };
        let text = imp.to_string();
        assert!(text.contains("-0.2%"));
        assert!(text.contains("+39.0%"));
    }
}
