//! Per-sample error vectors.
//!
//! All three paper metrics are statistics of these vectors: MAE is the mean of
//! [`absolute_errors`], MRE the median and NPRE the 90th percentile of
//! [`relative_errors`]. Fig. 10 plots the distribution of [`signed_errors`].

use crate::MetricsError;

/// Validates that the two slices are the same length.
fn check_lengths(actual: &[f64], predicted: &[f64]) -> Result<(), MetricsError> {
    if actual.len() != predicted.len() {
        return Err(MetricsError::LengthMismatch {
            actual: actual.len(),
            predicted: predicted.len(),
        });
    }
    Ok(())
}

/// Absolute errors `|R̂_ij − R_ij|` (the summand of MAE, Eq. 18).
///
/// NaN pairs are skipped.
///
/// # Errors
///
/// Returns [`MetricsError::LengthMismatch`] if the slices differ in length.
pub fn absolute_errors(actual: &[f64], predicted: &[f64]) -> Result<Vec<f64>, MetricsError> {
    check_lengths(actual, predicted)?;
    Ok(actual
        .iter()
        .zip(predicted)
        .filter(|(a, p)| !a.is_nan() && !p.is_nan())
        .map(|(a, p)| (p - a).abs())
        .collect())
}

/// Relative errors `|R̂_ij − R_ij| / R_ij` (the summand of MRE/NPRE, Eq. 19).
///
/// Pairs where the actual value is zero, negative, or NaN are skipped — the
/// relative error is undefined there. (QoS values are positive by
/// construction; zeros only arise from degenerate synthetic configs.)
///
/// # Errors
///
/// Returns [`MetricsError::LengthMismatch`] if the slices differ in length.
pub fn relative_errors(actual: &[f64], predicted: &[f64]) -> Result<Vec<f64>, MetricsError> {
    check_lengths(actual, predicted)?;
    Ok(actual
        .iter()
        .zip(predicted)
        .filter(|(a, p)| **a > 0.0 && !p.is_nan())
        .map(|(a, p)| (p - a).abs() / a)
        .collect())
}

/// Signed errors `R̂_ij − R_ij`, the x-axis of the paper's Fig. 10.
///
/// NaN pairs are skipped.
///
/// # Errors
///
/// Returns [`MetricsError::LengthMismatch`] if the slices differ in length.
pub fn signed_errors(actual: &[f64], predicted: &[f64]) -> Result<Vec<f64>, MetricsError> {
    check_lengths(actual, predicted)?;
    Ok(actual
        .iter()
        .zip(predicted)
        .filter(|(a, p)| !a.is_nan() && !p.is_nan())
        .map(|(a, p)| p - a)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn absolute_basic() {
        let e = absolute_errors(&[1.0, 2.0], &[1.5, 1.0]).unwrap();
        assert_eq!(e, vec![0.5, 1.0]);
    }

    #[test]
    fn relative_basic() {
        let e = relative_errors(&[2.0, 10.0], &[1.0, 11.0]).unwrap();
        assert_eq!(e, vec![0.5, 0.1]);
    }

    #[test]
    fn signed_keeps_direction() {
        let e = signed_errors(&[2.0, 2.0], &[1.0, 3.0]).unwrap();
        assert_eq!(e, vec![-1.0, 1.0]);
    }

    #[test]
    fn relative_skips_nonpositive_actuals() {
        let e = relative_errors(&[0.0, -1.0, 4.0], &[1.0, 1.0, 5.0]).unwrap();
        assert_eq!(e, vec![0.25]);
    }

    #[test]
    fn nan_pairs_skipped() {
        let e = absolute_errors(&[f64::NAN, 2.0], &[1.0, f64::NAN]).unwrap();
        assert!(e.is_empty());
        let e = signed_errors(&[1.0, f64::NAN], &[2.0, 3.0]).unwrap();
        assert_eq!(e, vec![1.0]);
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(matches!(
            absolute_errors(&[1.0], &[1.0, 2.0]),
            Err(MetricsError::LengthMismatch { .. })
        ));
        assert!(relative_errors(&[1.0], &[]).is_err());
        assert!(signed_errors(&[], &[1.0]).is_err());
    }

    #[test]
    fn empty_inputs_give_empty_vectors() {
        assert!(absolute_errors(&[], &[]).unwrap().is_empty());
        assert!(relative_errors(&[], &[]).unwrap().is_empty());
    }

    proptest! {
        #[test]
        fn absolute_errors_nonnegative(pairs in proptest::collection::vec((0.001..100.0f64, -100.0..100.0f64), 0..50)) {
            let (a, p): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
            prop_assert!(absolute_errors(&a, &p).unwrap().iter().all(|&e| e >= 0.0));
            prop_assert!(relative_errors(&a, &p).unwrap().iter().all(|&e| e >= 0.0));
        }

        #[test]
        fn perfect_prediction_zero_error(a in proptest::collection::vec(0.001..100.0f64, 1..50)) {
            let abs = absolute_errors(&a, &a).unwrap();
            let rel = relative_errors(&a, &a).unwrap();
            prop_assert!(abs.iter().all(|&e| e == 0.0));
            prop_assert!(rel.iter().all(|&e| e == 0.0));
        }

        #[test]
        fn scaling_both_preserves_relative_error(pairs in proptest::collection::vec((0.001..100.0f64, 0.001..100.0f64), 1..30), k in 0.1..100.0f64) {
            let (a, p): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
            let a2: Vec<f64> = a.iter().map(|x| x * k).collect();
            let p2: Vec<f64> = p.iter().map(|x| x * k).collect();
            let r1 = relative_errors(&a, &p).unwrap();
            let r2 = relative_errors(&a2, &p2).unwrap();
            for (x, y) in r1.iter().zip(&r2) {
                prop_assert!((x - y).abs() < 1e-9 * (1.0 + x.abs()));
            }
        }
    }
}
