//! The MAE / MRE / NPRE accuracy summary (paper Table I columns).

use crate::error::{absolute_errors, relative_errors};
use crate::MetricsError;
use qos_linalg::stats;
use serde::{Deserialize, Serialize};

/// The three paper metrics for one prediction run.
///
/// # Examples
///
/// ```
/// use qos_metrics::AccuracySummary;
///
/// // A prediction 10% high on every sample has MRE = NPRE = 0.1.
/// let actual = [1.0, 5.0, 20.0];
/// let predicted = [1.1, 5.5, 22.0];
/// let acc = AccuracySummary::evaluate(&actual, &predicted)?;
/// assert!((acc.mre - 0.1).abs() < 1e-9);
/// assert!((acc.npre - 0.1).abs() < 1e-9);
/// # Ok::<(), qos_metrics::MetricsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracySummary {
    /// Mean absolute error (Eq. 18).
    pub mae: f64,
    /// Median relative error (Eq. 19).
    pub mre: f64,
    /// Ninety-percentile relative error.
    pub npre: f64,
    /// Root-mean-square error (not in the paper's table; included because
    /// PMF-style models optimize squared loss and it is useful in ablations).
    pub rmse: f64,
    /// Number of samples MAE/RMSE were computed over.
    pub count: usize,
}

impl AccuracySummary {
    /// Evaluates predictions against ground truth.
    ///
    /// MAE/RMSE use all non-NaN pairs; MRE/NPRE use the pairs with positive
    /// actual values (relative error is undefined otherwise).
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::LengthMismatch`] when slice lengths differ and
    /// [`MetricsError::NoSamples`] when no valid pair remains.
    pub fn evaluate(actual: &[f64], predicted: &[f64]) -> Result<Self, MetricsError> {
        let abs = absolute_errors(actual, predicted)?;
        let mut rel = relative_errors(actual, predicted)?;
        if abs.is_empty() || rel.is_empty() {
            return Err(MetricsError::NoSamples);
        }
        let mae = stats::mean(&abs).ok_or(MetricsError::NoSamples)?;
        let rmse = (abs.iter().map(|e| e * e).sum::<f64>() / abs.len() as f64).sqrt();
        rel.sort_by(|a, b| a.partial_cmp(b).expect("relative errors are finite"));
        let mre = stats::percentile_of_sorted(&rel, 50.0);
        let npre = stats::percentile_of_sorted(&rel, 90.0);
        Ok(Self {
            mae,
            mre,
            npre,
            rmse,
            count: abs.len(),
        })
    }

    /// Averages several summaries (e.g. the paper's 20 repetitions per
    /// density), weighting each run equally.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::NoSamples`] for an empty input.
    pub fn mean_of(runs: &[AccuracySummary]) -> Result<Self, MetricsError> {
        if runs.is_empty() {
            return Err(MetricsError::NoSamples);
        }
        let n = runs.len() as f64;
        Ok(Self {
            mae: runs.iter().map(|r| r.mae).sum::<f64>() / n,
            mre: runs.iter().map(|r| r.mre).sum::<f64>() / n,
            npre: runs.iter().map(|r| r.npre).sum::<f64>() / n,
            rmse: runs.iter().map(|r| r.rmse).sum::<f64>() / n,
            count: (runs.iter().map(|r| r.count).sum::<usize>() as f64 / n).round() as usize,
        })
    }
}

impl std::fmt::Display for AccuracySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MAE={:.3} MRE={:.3} NPRE={:.3} (RMSE={:.3}, n={})",
            self.mae, self.mre, self.npre, self.rmse, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_prediction_is_all_zero() {
        let a = [1.0, 2.0, 3.0];
        let s = AccuracySummary::evaluate(&a, &a).unwrap();
        assert_eq!(s.mae, 0.0);
        assert_eq!(s.mre, 0.0);
        assert_eq!(s.npre, 0.0);
        assert_eq!(s.rmse, 0.0);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn known_values() {
        let actual = [1.0, 2.0, 4.0, 8.0];
        let predicted = [2.0, 2.0, 4.0, 8.0];
        // abs errors: 1,0,0,0 -> MAE 0.25; rel errors: 1,0,0,0
        let s = AccuracySummary::evaluate(&actual, &predicted).unwrap();
        assert!((s.mae - 0.25).abs() < 1e-12);
        assert_eq!(s.rmse, 0.5);
        assert!(s.mre < 1e-12); // median of [0,0,0,1]
        assert!(s.npre > 0.5); // 90th percentile near 1
    }

    #[test]
    fn paper_motivating_example_prefers_relative_metrics() {
        // Section IV-C.1: s1=1, s2=100; prediction (a)=(8, 99) has better MAE
        // but worse relative error than (b)=(0.9, 92).
        let actual = [1.0, 100.0];
        let a = AccuracySummary::evaluate(&actual, &[8.0, 99.0]).unwrap();
        let b = AccuracySummary::evaluate(&actual, &[0.9, 92.0]).unwrap();
        assert!(a.mae < b.mae, "MAE misleadingly prefers (a)");
        assert!(b.mre < a.mre, "MRE correctly prefers (b)");
    }

    #[test]
    fn npre_at_least_mre() {
        let actual = [1.0, 2.0, 3.0, 4.0, 5.0];
        let predicted = [1.2, 1.9, 3.5, 4.1, 4.0];
        let s = AccuracySummary::evaluate(&actual, &predicted).unwrap();
        assert!(s.npre >= s.mre);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(matches!(
            AccuracySummary::evaluate(&[1.0], &[1.0, 2.0]),
            Err(MetricsError::LengthMismatch { .. })
        ));
        assert_eq!(
            AccuracySummary::evaluate(&[], &[]),
            Err(MetricsError::NoSamples)
        );
        // All actuals zero: MAE defined but MRE not -> NoSamples
        assert_eq!(
            AccuracySummary::evaluate(&[0.0, 0.0], &[1.0, 1.0]),
            Err(MetricsError::NoSamples)
        );
    }

    #[test]
    fn mean_of_averages_fields() {
        let r1 = AccuracySummary {
            mae: 1.0,
            mre: 0.2,
            npre: 1.0,
            rmse: 2.0,
            count: 10,
        };
        let r2 = AccuracySummary {
            mae: 3.0,
            mre: 0.4,
            npre: 2.0,
            rmse: 4.0,
            count: 20,
        };
        let m = AccuracySummary::mean_of(&[r1, r2]).unwrap();
        assert_eq!(m.mae, 2.0);
        assert!((m.mre - 0.3).abs() < 1e-12);
        assert_eq!(m.npre, 1.5);
        assert_eq!(m.count, 15);
        assert!(AccuracySummary::mean_of(&[]).is_err());
    }

    #[test]
    fn display_contains_all_metrics() {
        let s = AccuracySummary::evaluate(&[1.0, 2.0], &[1.5, 2.5]).unwrap();
        let text = s.to_string();
        assert!(text.contains("MAE") && text.contains("MRE") && text.contains("NPRE"));
    }

    proptest! {
        #[test]
        fn metrics_nonnegative(pairs in proptest::collection::vec((0.01..100.0f64, 0.0..100.0f64), 1..50)) {
            let (a, p): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
            let s = AccuracySummary::evaluate(&a, &p).unwrap();
            prop_assert!(s.mae >= 0.0 && s.mre >= 0.0 && s.npre >= 0.0 && s.rmse >= 0.0);
            prop_assert!(s.npre >= s.mre - 1e-12);
            prop_assert!(s.rmse >= s.mae - 1e-12); // RMSE >= MAE always
        }

        #[test]
        fn uniform_relative_offset(scale in 0.01..2.0f64, a in proptest::collection::vec(0.1..50.0f64, 1..40)) {
            // predicted = actual * (1 + scale) everywhere -> MRE = NPRE = scale
            let p: Vec<f64> = a.iter().map(|x| x * (1.0 + scale)).collect();
            let s = AccuracySummary::evaluate(&a, &p).unwrap();
            prop_assert!((s.mre - scale).abs() < 1e-9);
            prop_assert!((s.npre - scale).abs() < 1e-9);
        }
    }
}
