//! Prediction-error distributions (paper Fig. 10).
//!
//! Fig. 10 compares UIPCC, PMF and AMF by plotting the distribution of signed
//! prediction errors `R̂ − R`: a better model has more mass concentrated
//! around zero. [`ErrorDistribution`] wraps a histogram over a symmetric
//! interval with the summary statistics used to compare peakedness.

use crate::error::signed_errors;
use crate::MetricsError;
use qos_linalg::{stats, Histogram};
use serde::{Deserialize, Serialize};

/// Distribution of signed prediction errors over `[-limit, limit]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorDistribution {
    histogram: Histogram,
    mean: f64,
    std_dev: f64,
    /// Fraction of all errors that fall within ±`center_band`.
    central_mass: f64,
    center_band: f64,
}

impl ErrorDistribution {
    /// Builds the distribution of `predicted − actual` over `[-limit, limit)`
    /// with `bins` bins; `center_band` defines the "close to zero" band used
    /// by [`ErrorDistribution::central_mass`] (the paper eyeballs ±0.5 s).
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::LengthMismatch`] when slice lengths differ and
    /// [`MetricsError::NoSamples`] when no valid pair remains or the
    /// histogram parameters are degenerate.
    pub fn evaluate(
        actual: &[f64],
        predicted: &[f64],
        limit: f64,
        bins: usize,
        center_band: f64,
    ) -> Result<Self, MetricsError> {
        let errors = signed_errors(actual, predicted)?;
        if errors.is_empty() {
            return Err(MetricsError::NoSamples);
        }
        let mut histogram = Histogram::new(-limit, limit, bins).ok_or(MetricsError::NoSamples)?;
        histogram.extend(errors.iter().copied());
        let central = errors.iter().filter(|e| e.abs() <= center_band).count();
        Ok(Self {
            histogram,
            mean: stats::mean(&errors).ok_or(MetricsError::NoSamples)?,
            std_dev: stats::std_dev(&errors).ok_or(MetricsError::NoSamples)?,
            central_mass: central as f64 / errors.len() as f64,
            center_band,
        })
    }

    /// The underlying histogram (x-axis: signed error; y: counts).
    pub fn histogram(&self) -> &Histogram {
        &self.histogram
    }

    /// Mean signed error (bias).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of the signed error.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Fraction of errors within the configured center band — the paper's
    /// "denser distribution around the center 0" criterion, quantified.
    pub fn central_mass(&self) -> f64 {
        self.central_mass
    }

    /// Width of the center band used for [`ErrorDistribution::central_mass`].
    pub fn center_band(&self) -> f64 {
        self.center_band
    }

    /// `(bin_center, fraction)` series for plotting, mirroring Fig. 10 axes.
    pub fn series(&self) -> Vec<(f64, f64)> {
        self.histogram.points().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tight_predictions_have_high_central_mass() {
        let actual: Vec<f64> = (1..=100).map(|i| i as f64 / 10.0).collect();
        let tight: Vec<f64> = actual.iter().map(|v| v + 0.01).collect();
        let loose: Vec<f64> = actual
            .iter()
            .enumerate()
            .map(|(i, v)| v + if i % 2 == 0 { 2.0 } else { -2.0 })
            .collect();
        let d_tight = ErrorDistribution::evaluate(&actual, &tight, 3.0, 30, 0.5).unwrap();
        let d_loose = ErrorDistribution::evaluate(&actual, &loose, 3.0, 30, 0.5).unwrap();
        assert!(d_tight.central_mass() > d_loose.central_mass());
        assert_eq!(d_tight.central_mass(), 1.0);
        assert_eq!(d_loose.central_mass(), 0.0);
    }

    #[test]
    fn bias_is_reported() {
        let actual = [1.0, 2.0, 3.0];
        let over: Vec<f64> = actual.iter().map(|v| v + 0.5).collect();
        let d = ErrorDistribution::evaluate(&actual, &over, 2.0, 10, 0.1).unwrap();
        assert!((d.mean() - 0.5).abs() < 1e-12);
        assert!(d.std_dev() < 1e-12);
    }

    #[test]
    fn series_length_matches_bins() {
        let actual = [1.0, 2.0, 3.0, 4.0];
        let predicted = [1.1, 2.2, 2.9, 3.5];
        let d = ErrorDistribution::evaluate(&actual, &predicted, 1.0, 20, 0.25).unwrap();
        assert_eq!(d.series().len(), 20);
        assert_eq!(d.histogram().bins(), 20);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(ErrorDistribution::evaluate(&[], &[], 1.0, 10, 0.1).is_err());
        assert!(ErrorDistribution::evaluate(&[1.0], &[1.0, 2.0], 1.0, 10, 0.1).is_err());
        // zero bins is degenerate
        assert!(ErrorDistribution::evaluate(&[1.0], &[1.0], 1.0, 0, 0.1).is_err());
    }
}
