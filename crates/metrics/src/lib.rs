//! Accuracy metrics for QoS prediction (paper Section V-B).
//!
//! The paper evaluates predictions with three metrics:
//!
//! * **MAE** (mean absolute error, Eq. 18) — included "for comparison purposes"
//!   because most CF papers report it;
//! * **MRE** (median relative error, Eq. 19) — the headline metric: the median
//!   of `|R̂ − R| / R` over all test entries;
//! * **NPRE** (ninety-percentile relative error) — the 90th percentile of the
//!   same relative-error distribution, capturing tail quality.
//!
//! The paper argues relative metrics are the right ones for QoS data because
//! value ranges are huge (its s₁/s₂ adaptation-threshold example in
//! Section IV-C.1), so [`AccuracySummary`] always carries all three.
//!
//! # Examples
//!
//! ```
//! use qos_metrics::AccuracySummary;
//!
//! let actual = [1.0, 2.0, 4.0, 10.0];
//! let predicted = [1.1, 1.8, 4.4, 9.0];
//! let acc = AccuracySummary::evaluate(&actual, &predicted)?;
//! assert!(acc.mae > 0.0 && acc.mre > 0.0 && acc.npre >= acc.mre);
//! # Ok::<(), qos_metrics::MetricsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distribution;
pub mod error;
pub mod improvement;
pub mod summary;

pub use distribution::ErrorDistribution;
pub use error::{absolute_errors, relative_errors, signed_errors};
pub use improvement::improvement_percent;
pub use summary::AccuracySummary;

/// Error type for metric computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricsError {
    /// `actual` and `predicted` had different lengths.
    LengthMismatch {
        /// Length of the actual-values slice.
        actual: usize,
        /// Length of the predicted-values slice.
        predicted: usize,
    },
    /// No valid samples remained after filtering (empty input, or every
    /// actual value was zero/NaN so no relative error is defined).
    NoSamples,
}

impl std::fmt::Display for MetricsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricsError::LengthMismatch { actual, predicted } => write!(
                f,
                "length mismatch: {actual} actual values vs {predicted} predictions"
            ),
            MetricsError::NoSamples => write!(f, "no valid samples to evaluate"),
        }
    }
}

impl std::error::Error for MetricsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = MetricsError::LengthMismatch {
            actual: 3,
            predicted: 5,
        };
        assert!(e.to_string().contains("3"));
        assert!(MetricsError::NoSamples.to_string().contains("no valid"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MetricsError>();
    }
}
