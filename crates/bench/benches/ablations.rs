//! Regenerates the **ablation artifacts** (E-ABL1 adaptive weights, E-ABL2
//! loss function — DESIGN.md extensions beyond the paper's Fig. 11) and
//! times the update kernel across the ablated configurations.

use amf_bench::{emit, scale};
use amf_core::{AmfConfig, AmfModel, LossKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qos_eval::experiments::ablation;
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    emit(
        "ablation_adaptive_weights.txt",
        &ablation::run_weights(&scale()).render(),
    );
    emit("ablation_loss.txt", &ablation::run_loss(&scale()).render());
    emit(
        "ablation_alpha.txt",
        &ablation::run_alpha(&scale()).render(),
    );
    emit(
        "ablation_sampling.txt",
        &ablation::run_sampling(&scale()).render(),
    );

    let mut group = c.benchmark_group("ablation/online_update_variant");
    let variants = [
        ("paper", AmfConfig::response_time()),
        (
            "fixed_weights",
            AmfConfig {
                adaptive_weights: false,
                ..AmfConfig::response_time()
            },
        ),
        (
            "squared_loss",
            AmfConfig {
                loss: LossKind::Squared,
                ..AmfConfig::response_time()
            },
        ),
    ];
    for (label, config) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, config| {
            let mut model = AmfModel::new(*config).expect("valid config");
            let mut k = 0usize;
            b.iter(|| {
                k = k.wrapping_add(3);
                black_box(model.observe(k % 60, k % 150, 0.2 + (k % 11) as f64 * 0.5))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
