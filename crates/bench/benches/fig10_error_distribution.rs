//! Regenerates **Fig. 10** (prediction-error distributions of UIPCC, PMF
//! and AMF) and times the error-distribution evaluation itself.

use amf_bench::{emit, scale};
use criterion::{criterion_group, criterion_main, Criterion};
use qos_eval::experiments::fig10;
use qos_metrics::ErrorDistribution;
use std::hint::black_box;

fn bench_error_distribution(c: &mut Criterion) {
    emit(
        "fig10_error_distribution.txt",
        &fig10::run(&scale()).render(),
    );

    let actual: Vec<f64> = (0..10_000).map(|k| 0.1 + (k % 700) as f64 * 0.01).collect();
    let predicted: Vec<f64> = actual.iter().map(|v| v * 1.1 - 0.05).collect();
    c.bench_function("fig10/error_distribution_10k", |b| {
        b.iter(|| {
            black_box(
                ErrorDistribution::evaluate(&actual, &predicted, 3.0, 60, 0.5)
                    .expect("valid inputs"),
            )
        })
    });
}

criterion_group!(benches, bench_error_distribution);
criterion_main!(benches);
