//! Regenerates **Fig. 14** (scalability under churn: 80% existing entities,
//! 20% joining mid-run) and times the cold-start registration path for new
//! users and services.

use amf_bench::{emit, scale};
use amf_core::{AmfConfig, AmfModel};
use criterion::{criterion_group, criterion_main, Criterion};
use qos_eval::experiments::fig14;
use std::hint::black_box;

fn bench_scalability(c: &mut Criterion) {
    emit("fig14_scalability.txt", &fig14::run(&scale()).render());

    c.bench_function("fig14/register_new_user", |b| {
        b.iter_with_setup(
            || AmfModel::new(AmfConfig::response_time()).expect("valid config"),
            |mut model| {
                black_box(model.add_user());
                model
            },
        )
    });
    c.bench_function("fig14/first_observation_of_new_pair", |b| {
        let mut model = AmfModel::new(AmfConfig::response_time()).expect("valid config");
        let mut k = 0usize;
        b.iter(|| {
            k += 1;
            // Every iteration touches a brand-new user and service id.
            black_box(model.observe(k, k, 1.0))
        })
    });
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
