//! Regenerates **Fig. 12** (AMF error vs matrix density, 5%–50%) and times
//! the split/sparsification machinery the sweep is built on.

use amf_bench::{emit, scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qos_dataset::sampling::split_matrix;
use qos_dataset::{Attribute, QosDataset};
use qos_eval::experiments::fig12;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_density(c: &mut Criterion) {
    emit("fig12_density.txt", &fig12::run(&scale()).render());

    let dataset = QosDataset::generate(&scale().dataset_config());
    let matrix = dataset.slice_matrix(Attribute::ResponseTime, 0);
    let mut group = c.benchmark_group("fig12/split_matrix");
    group.sample_size(10);
    for density in [0.05, 0.25, 0.50] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{:.0}%", density * 100.0)),
            &density,
            |b, &density| {
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| black_box(split_matrix(&matrix, density, &mut rng)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_density);
criterion_main!(benches);
