//! Regenerates **Fig. 13** (convergence time per time slice: UIPCC and PMF
//! retraining vs AMF's incremental updates — this artifact *is* a timing
//! experiment) and additionally times the individual AMF online-update and
//! prediction kernels, the per-sample costs behind the figure.

use amf_bench::{emit, scale};
use amf_core::{AmfConfig, AmfModel};
use criterion::{criterion_group, criterion_main, Criterion};
use qos_eval::experiments::fig13;
use std::hint::black_box;

fn bench_efficiency(c: &mut Criterion) {
    emit("fig13_efficiency.txt", &fig13::run(&scale()).render());

    let mut model = AmfModel::new(AmfConfig::response_time()).expect("valid config");
    for k in 0..5_000 {
        model.observe(k % 100, k % 400, 0.1 + (k % 13) as f64 * 0.4);
    }

    c.bench_function("fig13/amf_single_online_update", |b| {
        let mut k = 0usize;
        b.iter(|| {
            k = k.wrapping_add(7);
            black_box(model.observe(k % 100, k % 400, 0.1 + (k % 13) as f64 * 0.4))
        })
    });
    c.bench_function("fig13/amf_single_prediction", |b| {
        let mut k = 0usize;
        b.iter(|| {
            k = k.wrapping_add(11);
            black_box(model.predict(k % 100, k % 400))
        })
    });
}

criterion_group!(benches, bench_efficiency);
criterion_main!(benches);
