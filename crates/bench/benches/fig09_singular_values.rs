//! Regenerates **Fig. 9** (sorted normalized singular values) and times the
//! Jacobi-based singular-value computation.

use amf_bench::{emit, scale};
use criterion::{criterion_group, criterion_main, Criterion};
use qos_dataset::{Attribute, QosDataset};
use qos_eval::experiments::fig9;
use qos_linalg::svd::singular_values;
use std::hint::black_box;

fn bench_svd(c: &mut Criterion) {
    emit("fig09_singular_values.txt", &fig9::run(&scale()).render());

    let dataset = QosDataset::generate(&scale().dataset_config());
    let matrix = dataset.slice_matrix(Attribute::ResponseTime, 0);
    let mut group = c.benchmark_group("fig09");
    group.sample_size(10);
    group.bench_function(format!("svd_{}x{}", matrix.rows(), matrix.cols()), |b| {
        b.iter(|| black_box(singular_values(&matrix).expect("svd converges")))
    });
    group.finish();
}

criterion_group!(benches, bench_svd);
criterion_main!(benches);
