//! Online-update ingestion throughput: sequential [`amf_core::AmfModel`]
//! versus the sharded concurrent engine at K ∈ {1, 2, 4, 8} shards, in both
//! parity (bitwise-exact) and relaxed (lock-free fast lane) consistency.
//!
//! Reports samples/sec per configuration (printed directly, since that is
//! the quantity the scalability claim is about) and times one full
//! feed+drain pass per K under Criterion.
//!
//! The speedup is bounded by the physical core count: on a single-core host
//! every K degenerates to sequential throughput minus coordination overhead;
//! K=4 reaching ≥2× the K=1 rate requires ≥4 cores. The parity tests
//! (`tests/engine_parity.rs`) guarantee parity-mode *results* are identical
//! at every K, and `tests/relaxed_parity.rs` bounds the relaxed lane's
//! accuracy gap, so this bench is purely about wall-clock.

use amf_core::{AmfConfig, AmfModel, Consistency, EngineOptions, ShardedEngine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qos_dataset::{DatasetConfig, QosDataset};
use std::hint::black_box;
use std::time::Instant;

/// Workload: one dense slice of a synthetic WS-DREAM-like matrix, in
/// row-major stream order.
fn workload() -> Vec<(usize, usize, f64)> {
    let dataset = QosDataset::generate(&DatasetConfig {
        users: 60,
        services: 200,
        time_slices: 1,
        ..DatasetConfig::small()
    });
    let matrix = dataset.slice_matrix(qos_dataset::Attribute::ResponseTime, 0);
    let mut samples = Vec::with_capacity(matrix.rows() * matrix.cols());
    for u in 0..matrix.rows() {
        for s in 0..matrix.cols() {
            samples.push((u, s, matrix.get(u, s)));
        }
    }
    samples
}

fn run_sharded(samples: &[(usize, usize, f64)], shards: usize) -> AmfModel {
    run_with(samples, EngineOptions::with_shards(shards))
}

fn run_relaxed(samples: &[(usize, usize, f64)], shards: usize) -> AmfModel {
    run_with(
        samples,
        EngineOptions::with_consistency(shards, Consistency::Relaxed),
    )
}

fn run_with(samples: &[(usize, usize, f64)], options: EngineOptions) -> AmfModel {
    let mut engine =
        ShardedEngine::new(AmfConfig::response_time(), options).expect("valid engine options");
    engine.feed_batch(samples.iter().copied());
    engine.into_model()
}

fn run_sequential(samples: &[(usize, usize, f64)]) -> AmfModel {
    let mut model = AmfModel::new(AmfConfig::response_time()).expect("valid config");
    for &(u, s, v) in samples {
        model.observe(u, s, v);
    }
    model
}

fn bench_throughput(c: &mut Criterion) {
    let samples = workload();
    let n = samples.len();
    println!(
        "throughput_sharded: {} samples/pass, {} cores available",
        n,
        std::thread::available_parallelism().map_or(1, |p| p.get())
    );

    // Samples/sec summary (best of 3 passes per configuration).
    let rate = |f: &dyn Fn() -> AmfModel| -> f64 {
        (0..3)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                n as f64 / start.elapsed().as_secs_f64()
            })
            .fold(0.0, f64::max)
    };
    let base = rate(&|| run_sequential(&samples));
    println!("  sequential      : {base:>12.0} samples/sec (1.00x)");
    for shards in [1usize, 2, 4, 8] {
        let r = rate(&|| run_sharded(&samples, shards));
        println!(
            "  sharded K={shards:<2}    : {r:>12.0} samples/sec ({:.2}x)",
            r / base
        );
    }
    for shards in [1usize, 2, 4, 8] {
        let r = rate(&|| run_relaxed(&samples, shards));
        println!(
            "  relaxed K={shards:<2}    : {r:>12.0} samples/sec ({:.2}x)",
            r / base
        );
    }

    let mut group = c.benchmark_group("throughput_sharded");
    group.sample_size(10);
    group.bench_function("sequential", |b| b.iter(|| run_sequential(&samples)));
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("sharded", shards),
            &shards,
            |b, &shards| b.iter(|| run_sharded(&samples, shards)),
        );
        group.bench_with_input(
            BenchmarkId::new("relaxed", shards),
            &shards,
            |b, &shards| b.iter(|| run_relaxed(&samples, shards)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
