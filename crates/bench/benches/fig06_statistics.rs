//! Regenerates **Fig. 6** (dataset statistics table) and times the
//! statistics computation over one slice.

use amf_bench::{emit, scale};
use criterion::{criterion_group, criterion_main, Criterion};
use qos_dataset::{DatasetStatistics, QosDataset};
use qos_eval::experiments::fig6;
use std::hint::black_box;

fn bench_statistics(c: &mut Criterion) {
    emit("fig06_statistics.txt", &fig6::run(&scale()).to_table());

    let dataset = QosDataset::generate(&scale().dataset_config());
    let mut group = c.benchmark_group("fig06");
    group.sample_size(10);
    group.bench_function("dataset_statistics_1_slice", |b| {
        b.iter(|| black_box(DatasetStatistics::compute(&dataset, 1)))
    });
    group.finish();
}

criterion_group!(benches, bench_statistics);
criterion_main!(benches);
