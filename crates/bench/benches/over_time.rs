//! Regenerates **E-SUPP** (accuracy over all time slices — the paper's
//! supplementary-report experiment) and times one warm-started AMF slice
//! ingest.

use amf_bench::{emit, scale};
use criterion::{criterion_group, criterion_main, Criterion};
use qos_eval::experiments::over_time;
use std::hint::black_box;

fn bench_over_time(c: &mut Criterion) {
    emit("supp_over_time.txt", &over_time::run(&scale()).render());

    let mut group = c.benchmark_group("over_time");
    group.sample_size(10);
    group.bench_function("amf_two_slice_track_small", |b| {
        b.iter(|| {
            let r = over_time::run_with(
                &amf_bench::Scale {
                    users: 30,
                    services: 60,
                    time_slices: 2,
                    repetitions: 1,
                    seed: 1,
                },
                0.2,
                2,
            );
            black_box(r.mean_mres())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_over_time);
criterion_main!(benches);
