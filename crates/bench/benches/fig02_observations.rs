//! Regenerates **Fig. 2** (QoS dynamics and user-specificity) and times the
//! dataset generator's random-access and slice paths.

use amf_bench::{emit, scale};
use criterion::{criterion_group, criterion_main, Criterion};
use qos_dataset::{Attribute, QosDataset};
use qos_eval::experiments::fig2;
use std::hint::black_box;

fn bench_dataset_access(c: &mut Criterion) {
    emit("fig02_observations.txt", &fig2::run(&scale()).render());

    let dataset = QosDataset::generate(&scale().dataset_config());
    c.bench_function("fig02/value_random_access", |b| {
        let mut k = 0usize;
        b.iter(|| {
            k = k.wrapping_add(101);
            black_box(dataset.value(
                Attribute::ResponseTime,
                k % dataset.users(),
                (k / 7) % dataset.services(),
                k % dataset.time_slices(),
            ))
        })
    });
    c.bench_function("fig02/pair_series", |b| {
        b.iter(|| black_box(dataset.pair_series(Attribute::ResponseTime, 1, 2)))
    });
}

criterion_group!(benches, bench_dataset_access);
criterion_main!(benches);
