//! Regenerates **Table I** (accuracy comparison across densities) and times
//! each approach's train+predict cycle at density 10%.

use amf_bench::{emit, scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qos_dataset::sampling::split_matrix;
use qos_dataset::{Attribute, QosDataset};
use qos_eval::experiments::table1;
use qos_eval::methods::Approach;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn regenerate() {
    let result = table1::run(&scale());
    emit("table1_accuracy.txt", &result.render());
}

fn bench_approaches(c: &mut Criterion) {
    regenerate();

    let s = scale();
    let dataset = QosDataset::generate(&s.dataset_config());
    let matrix = dataset.slice_matrix(Attribute::ResponseTime, 0);
    let mut rng = StdRng::seed_from_u64(s.seed);
    let split = split_matrix(&matrix, 0.10, &mut rng);

    let mut group = c.benchmark_group("table1/train_predict@10%");
    group.sample_size(10);
    for approach in Approach::PAPER_SET {
        group.bench_with_input(
            BenchmarkId::from_parameter(approach.name()),
            &approach,
            |b, &approach| {
                b.iter(|| {
                    let trained = approach.train(&split, Attribute::ResponseTime, 1, 0, 900);
                    black_box(trained.predict_split(&split))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_approaches);
criterion_main!(benches);
