//! Regenerates **Fig. 11** (PMF vs AMF(α=1) vs AMF across densities) and
//! times the AMF online-update kernel with and without the Box–Cox stage.

use amf_bench::{emit, scale};
use amf_core::{AmfConfig, AmfModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qos_eval::experiments::fig11;
use std::hint::black_box;

fn bench_transformation(c: &mut Criterion) {
    emit("fig11_transformation.txt", &fig11::run(&scale()).render());

    let mut group = c.benchmark_group("fig11/online_update");
    for (label, config) in [
        ("alpha=-0.007", AmfConfig::response_time()),
        (
            "alpha=1",
            AmfConfig::response_time().with_linear_transform(),
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, config| {
            let mut model = AmfModel::new(*config).expect("valid config");
            let mut k = 0usize;
            b.iter(|| {
                k = k.wrapping_add(1);
                black_box(model.observe(k % 50, k % 200, 0.1 + (k % 17) as f64 * 0.3))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transformation);
criterion_main!(benches);
