//! Regenerates **Figs. 7/8** (raw vs transformed QoS distributions) and
//! times the Box–Cox pipeline's forward and backward maps.

use amf_bench::{emit, scale};
use criterion::{criterion_group, criterion_main, Criterion};
use qos_eval::experiments::fig7_8;
use qos_transform::QosTransform;
use std::hint::black_box;

fn bench_transform(c: &mut Criterion) {
    emit(
        "fig07_08_distributions.txt",
        &fig7_8::run(&scale()).render(),
    );

    let transform = QosTransform::new(-0.007, 0.0, 20.0).expect("paper transform");
    let values: Vec<f64> = (0..4096).map(|k| 0.01 + (k % 2000) as f64 * 0.01).collect();

    c.bench_function("fig07/boxcox_forward_4096", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &v in &values {
                acc += transform.to_normalized(v);
            }
            black_box(acc)
        })
    });
    c.bench_function("fig08/boxcox_backward_4096", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for k in 0..4096 {
                acc += transform.from_normalized((k % 1000) as f64 / 1000.0);
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_transform);
criterion_main!(benches);
