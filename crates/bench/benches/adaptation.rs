//! Regenerates **E-SIM** (the Section III end-to-end adaptation loop) and
//! times one policy-decision step of the execution middleware.

use amf_bench::{emit, scale};
use criterion::{criterion_group, criterion_main, Criterion};
use qos_eval::experiments::adaptation;
use qos_service::policy::{AdaptationPolicy, PolicyContext, ThresholdPolicy};
use std::hint::black_box;

fn bench_adaptation(c: &mut Criterion) {
    emit("sim_adaptation.txt", &adaptation::run(&scale()).render());

    let policy = ThresholdPolicy::new(2.0);
    let predictions: Vec<Option<f64>> = (0..8).map(|k| Some(0.5 + 0.3 * k as f64)).collect();
    c.bench_function("adaptation/policy_decision_8_candidates", |b| {
        b.iter(|| {
            let ctx = PolicyContext {
                observed_current: Some(3.0),
                predicted: &predictions,
                bound: 3,
            };
            black_box(policy.decide(&ctx))
        })
    });
}

criterion_group!(benches, bench_adaptation);
criterion_main!(benches);
