//! Shared helpers for the paper-artifact benches.
//!
//! Every bench in this crate does two things:
//!
//! 1. **Regenerates its paper artifact** (table or figure data) at the scale
//!    selected by `AMF_SCALE` (`small` default / `medium` / `full`) and
//!    writes it under `target/reports/`;
//! 2. **Times the hot kernels** behind that artifact with Criterion.
//!
//! Run everything with `cargo bench`, or a single artifact with e.g.
//! `cargo bench --bench table1_accuracy`.

pub use qos_eval::Scale;

/// The benchmark scale from `AMF_SCALE` (defaults to `small`).
pub fn scale() -> Scale {
    Scale::from_env()
}

/// Writes a regenerated artifact and prints where it went.
pub fn emit(name: &str, content: &str) {
    match qos_eval::report::write_report(name, content) {
        Ok(path) => println!("[artifact] wrote {}", path.display()),
        Err(e) => eprintln!("[artifact] failed to write {name}: {e}"),
    }
}
