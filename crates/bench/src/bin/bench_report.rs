//! `bench-report` — the core performance trajectory, machine-readable.
//!
//! Unlike the Criterion benches (which regenerate paper artifacts), this
//! binary measures the three hot paths the runtime-adaptation framework
//! actually exercises, on a synthetic WSDream-shaped workload
//! (339 users × 5825 services, the scale of the paper's dataset #1):
//!
//! 1. **Feed throughput** — online updates per second, sequential
//!    (`AmfModel::observe`) and through the [`ShardedEngine`] at
//!    K ∈ {1, 4, 8} in both parity (bitwise-exact) and relaxed (lock-free
//!    fast lane) consistency modes;
//! 2. **Single-pair predict latency** — `AmfModel::predict` over a scan of
//!    all pairs;
//! 3. **Candidate ranking** — the adaptation framework's per-task query:
//!    score every service for one user and keep the top-k
//!    (`AmfModel::rank_candidates` vs. the naive per-pair `predict` scan).
//!
//! Output is a JSON document (default `BENCH_CORE.json` in the working
//! directory) with a stable schema (`amf-bench-core/v2`) so CI can check it
//! with `jq` without gating on absolute numbers. The document embeds the
//! run's own `amf-obs/v1` observability snapshot under `"obs"` — the timed
//! sections exercise the real instrumented paths, so the snapshot carries a
//! stage-level latency breakdown (sampled `model.observe_ns`, per-shard
//! `engine.chunk_apply_ns`, `engine.drain_ns`) alongside the aggregate
//! rates:
//!
//! ```text
//! bench-report [--quick] [--out PATH] [--label NAME] [--merge-before PATH]
//! ```
//!
//! `--quick` shrinks the workload for smoke runs; `--merge-before` embeds a
//! previously captured report under `"before"` so a single file carries the
//! before/after trajectory of a change.

use amf_core::{AmfConfig, AmfModel, Consistency, EngineOptions, ShardedEngine};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Workload shape: WSDream dataset #1 proportions.
struct Workload {
    users: usize,
    services: usize,
    feed_samples: usize,
    sharded_samples: usize,
    rank_queries: usize,
    top_k: usize,
}

impl Workload {
    fn full() -> Self {
        Self {
            users: 339,
            services: 5825,
            feed_samples: 1_000_000,
            sharded_samples: 200_000,
            rank_queries: 339,
            top_k: 10,
        }
    }

    fn quick() -> Self {
        Self {
            users: 64,
            services: 512,
            feed_samples: 120_000,
            sharded_samples: 30_000,
            rank_queries: 64,
            top_k: 10,
        }
    }
}

/// Deterministic LCG stream of `(user, service, raw)` samples in (0.1, 10.1).
fn qos_stream(n: usize, users: usize, services: usize) -> Vec<(usize, usize, f64)> {
    let mut state = 0x0005_DEEC_E66D_u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state
    };
    (0..n)
        .map(|_| {
            let u = (next() >> 33) as usize % users;
            let s = (next() >> 33) as usize % services;
            let v = 0.1 + ((next() >> 11) as f64 / (1u64 << 53) as f64) * 10.0;
            (u, s, v)
        })
        .collect()
}

/// A model with every entity registered and lightly warmed, so timed
/// sections measure steady-state updates, not entity registration.
fn warmed_model(w: &Workload) -> AmfModel {
    let mut model = AmfModel::new(AmfConfig::response_time()).expect("valid config");
    model.ensure_user(w.users - 1);
    model.ensure_service(w.services - 1);
    for (u, s, v) in qos_stream(50_000.min(w.feed_samples), w.users, w.services) {
        model.observe(u, s, v);
    }
    model
}

fn feed_sequential(w: &Workload, out: &mut String) {
    let mut model = warmed_model(w);
    let stream = qos_stream(w.feed_samples, w.users, w.services);
    let start = Instant::now();
    for &(u, s, v) in &stream {
        black_box(model.observe(u, s, v));
    }
    let secs = start.elapsed().as_secs_f64();
    let rate = w.feed_samples as f64 / secs;
    println!(
        "feed_sequential        {:>9} samples  {:>8.3} s  {:>12.0} samples/s",
        w.feed_samples, secs, rate
    );
    let _ = writeln!(
        out,
        "    \"feed_sequential\": {{\"samples\": {}, \"secs\": {:.6}, \"samples_per_sec\": {:.1}}},",
        w.feed_samples, secs, rate
    );
}

fn feed_sharded(w: &Workload, out: &mut String) {
    let stream = qos_stream(w.sharded_samples, w.users, w.services);
    let mut entries = Vec::new();
    for shards in [1usize, 4, 8] {
        let mut engine = ShardedEngine::from_model(
            warmed_model(w),
            EngineOptions {
                shards,
                ..EngineOptions::default()
            },
        )
        .expect("valid options");
        let start = Instant::now();
        engine.feed_batch(stream.iter().copied());
        engine.drain();
        let secs = start.elapsed().as_secs_f64();
        let rate = w.sharded_samples as f64 / secs;
        println!(
            "feed_sharded (K={shards})     {:>9} samples  {:>8.3} s  {:>12.0} samples/s",
            w.sharded_samples, secs, rate
        );
        entries.push(format!(
            "{{\"shards\": {shards}, \"samples\": {}, \"secs\": {:.6}, \"samples_per_sec\": {:.1}}}",
            w.sharded_samples, secs, rate
        ));
    }
    let _ = writeln!(out, "    \"feed_sharded\": [{}],", entries.join(", "));
}

fn feed_relaxed(w: &Workload, out: &mut String) {
    let stream = qos_stream(w.sharded_samples, w.users, w.services);
    let mut entries = Vec::new();
    for shards in [1usize, 4, 8] {
        let mut engine = ShardedEngine::from_model(
            warmed_model(w),
            EngineOptions::with_consistency(shards, Consistency::Relaxed),
        )
        .expect("valid options");
        let start = Instant::now();
        engine.feed_batch(stream.iter().copied());
        engine.drain();
        let secs = start.elapsed().as_secs_f64();
        let rate = w.sharded_samples as f64 / secs;
        println!(
            "feed_relaxed (K={shards})     {:>9} samples  {:>8.3} s  {:>12.0} samples/s",
            w.sharded_samples, secs, rate
        );
        entries.push(format!(
            "{{\"shards\": {shards}, \"samples\": {}, \"secs\": {:.6}, \"samples_per_sec\": {:.1}}}",
            w.sharded_samples, secs, rate
        ));
    }
    let _ = writeln!(out, "    \"feed_relaxed\": [{}],", entries.join(", "));
}

fn predict_and_rank(w: &Workload, out: &mut String) {
    let model = warmed_model(w);

    // Single-pair predict latency over a full scan.
    let pairs = w.users * w.services;
    let start = Instant::now();
    let mut acc = 0.0;
    for u in 0..w.users {
        for s in 0..w.services {
            acc += model.predict(u, s).unwrap_or(0.0);
        }
    }
    black_box(acc);
    let secs = start.elapsed().as_secs_f64();
    let ns_per_pair = secs * 1e9 / pairs as f64;
    println!(
        "predict_single         {:>9} pairs    {:>8.3} s  {:>9.1} ns/pair",
        pairs, secs, ns_per_pair
    );
    let _ = writeln!(
        out,
        "    \"predict_single\": {{\"pairs\": {}, \"secs\": {:.6}, \"ns_per_pair\": {:.2}}},",
        pairs, secs, ns_per_pair
    );

    // Per-pair baseline for candidate ranking: predict every service for one
    // user and argsort-select the top-k. This is what the adaptation loop
    // would do without a batch kernel.
    let start = Instant::now();
    let mut keep = 0usize;
    for q in 0..w.rank_queries {
        let user = q % w.users;
        let mut scored: Vec<(usize, f64)> = (0..w.services)
            .map(|s| (s, model.predict(user, s).unwrap_or(f64::INFINITY)))
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        scored.truncate(w.top_k);
        keep += black_box(&scored).len();
    }
    let naive_secs = start.elapsed().as_secs_f64();
    let naive_rate = w.rank_queries as f64 / naive_secs;
    println!(
        "rank_naive_per_pair    {:>9} queries  {:>8.3} s  {:>12.1} queries/s",
        w.rank_queries, naive_secs, naive_rate
    );
    let _ = writeln!(
        out,
        "    \"rank_naive_per_pair\": {{\"queries\": {}, \"services\": {}, \"k\": {}, \"secs\": {:.6}, \"queries_per_sec\": {:.2}}},",
        w.rank_queries, w.services, w.top_k, naive_secs, naive_rate
    );

    // Batch candidate-ranking kernel.
    let start = Instant::now();
    for q in 0..w.rank_queries {
        let user = q % w.users;
        let ranked = rank_candidates(&model, user, w.top_k);
        keep += black_box(&ranked).len();
    }
    let rank_secs = start.elapsed().as_secs_f64();
    let rank_rate = w.rank_queries as f64 / rank_secs;
    black_box(keep);
    let speedup = naive_secs / rank_secs;
    println!(
        "rank_candidates        {:>9} queries  {:>8.3} s  {:>12.1} queries/s  ({speedup:.2}x vs per-pair)",
        w.rank_queries, rank_secs, rank_rate
    );
    let _ = writeln!(
        out,
        "    \"rank_candidates\": {{\"queries\": {}, \"services\": {}, \"k\": {}, \"secs\": {:.6}, \"queries_per_sec\": {:.2}, \"speedup_vs_per_pair\": {:.3}}}",
        w.rank_queries, w.services, w.top_k, rank_secs, rank_rate, speedup
    );
}

/// The batch ranking path under measurement: the model's slab kernel (one
/// streaming pass over the contiguous service factors, bounded top-k heap).
fn rank_candidates(model: &AmfModel, user: usize, k: usize) -> Vec<(usize, f64)> {
    model.rank_candidates(user, k)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_path = "BENCH_CORE.json".to_string();
    let mut label = String::new();
    let mut merge_before: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = iter.next().expect("--out needs a path").clone(),
            "--label" => label = iter.next().expect("--label needs a value").clone(),
            "--merge-before" => {
                merge_before = Some(iter.next().expect("--merge-before needs a path").clone());
            }
            other => {
                eprintln!("unknown flag {other}");
                eprintln!("usage: bench-report [--quick] [--out PATH] [--label NAME] [--merge-before PATH]");
                std::process::exit(2);
            }
        }
    }
    let w = if quick {
        Workload::quick()
    } else {
        Workload::full()
    };
    println!(
        "bench-report: {} users x {} services, dimension {}{}",
        w.users,
        w.services,
        AmfConfig::response_time().dimension,
        if quick { " (quick)" } else { "" }
    );

    let mut results = String::new();
    feed_sequential(&w, &mut results);
    feed_sharded(&w, &mut results);
    feed_relaxed(&w, &mut results);
    predict_and_rank(&w, &mut results);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"amf-bench-core/v2\",");
    if !label.is_empty() {
        let _ = writeln!(json, "  \"label\": \"{label}\",");
    }
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"users\": {}, \"services\": {}, \"dimension\": {}}},",
        w.users,
        w.services,
        AmfConfig::response_time().dimension
    );
    let _ = write!(json, "  \"results\": {{\n{results}  }},");
    // Observability snapshot of the run itself: the timed sections above
    // executed real `observe`/engine/guard paths, so the global `amf-obs/v1`
    // registry now carries their sampled latency histograms and counters.
    // Embedding it gives every BENCH_CORE.json a stage-level latency
    // breakdown alongside the aggregate rates.
    let _ = write!(
        json,
        "\n  \"obs\": {}",
        qos_obs::global().snapshot_json(false).to_string_compact()
    );
    if let Some(path) = merge_before {
        match std::fs::read_to_string(&path) {
            Ok(before) => {
                let _ = write!(json, ",\n  \"before\": {}", before.trim_end());
            }
            Err(e) => eprintln!("warning: could not read --merge-before {path}: {e}"),
        }
    }
    json.push_str("\n}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: could not write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
