//! The sigmoid link function and its derivative (paper Eq. 5, 8–9).

/// Logistic sigmoid `g(x) = 1 / (1 + e^{-x})`.
///
/// Maps the model's raw inner products `U_i^T S_j` into `(0, 1)` so they are
/// comparable with the normalized QoS data `r_ij` (paper Eq. 5). The
/// implementation is numerically stable for large `|x|`.
///
/// # Examples
///
/// ```
/// use qos_transform::sigmoid;
/// assert_eq!(sigmoid(0.0), 0.5);
/// assert!(sigmoid(40.0) > 0.999_999);
/// assert!(sigmoid(-40.0) < 1e-6);
/// ```
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Derivative of the sigmoid, `g'(x) = e^x / (e^x + 1)^2 = g(x)(1 − g(x))`.
///
/// Appears in every SGD update of the paper (Eq. 8–9, 16–17).
///
/// # Examples
///
/// ```
/// use qos_transform::sigmoid_derivative;
/// assert_eq!(sigmoid_derivative(0.0), 0.25);
/// ```
#[inline]
pub fn sigmoid_derivative(x: f64) -> f64 {
    let g = sigmoid(x);
    g * (1.0 - g)
}

/// Inverse sigmoid (logit): `logit(p) = ln(p / (1 − p))`.
///
/// Returns `-inf` / `+inf` at the boundary values 0 and 1, and NaN outside
/// `[0, 1]` — callers should clamp first if their input may stray.
#[inline]
pub fn logit(p: f64) -> f64 {
    (p / (1.0 - p)).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn midpoint_and_symmetry() {
        assert_eq!(sigmoid(0.0), 0.5);
        for &x in &[0.5, 1.0, 3.0, 10.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn saturates_without_overflow() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert!(sigmoid(-1000.0) >= 0.0);
    }

    #[test]
    fn derivative_peaks_at_zero() {
        assert_eq!(sigmoid_derivative(0.0), 0.25);
        assert!(sigmoid_derivative(1.0) < 0.25);
        assert!(sigmoid_derivative(-1.0) < 0.25);
        assert!((sigmoid_derivative(1.0) - sigmoid_derivative(-1.0)).abs() < 1e-12);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let h = 1e-6;
        for &x in &[-3.0, -1.0, 0.0, 0.7, 2.5] {
            let fd = (sigmoid(x + h) - sigmoid(x - h)) / (2.0 * h);
            assert!((sigmoid_derivative(x) - fd).abs() < 1e-8, "at x={x}");
        }
    }

    #[test]
    fn logit_inverts_sigmoid() {
        for &x in &[-5.0, -0.3, 0.0, 1.7, 4.0] {
            assert!((logit(sigmoid(x)) - x).abs() < 1e-9);
        }
        assert_eq!(logit(0.0), f64::NEG_INFINITY);
        assert_eq!(logit(1.0), f64::INFINITY);
    }

    proptest! {
        #[test]
        fn output_in_unit_interval(x in -1e6..1e6f64) {
            let g = sigmoid(x);
            prop_assert!((0.0..=1.0).contains(&g));
        }

        #[test]
        // Beyond |x| ≈ 36 the sigmoid saturates in f64, so strictness only
        // holds in the representable region.
        fn strictly_increasing(a in -30.0..20.0f64, delta in 0.001..10.0f64) {
            prop_assert!(sigmoid(a + delta) > sigmoid(a));
        }

        #[test]
        fn derivative_nonnegative(x in -1e3..1e3f64) {
            prop_assert!(sigmoid_derivative(x) >= 0.0);
            prop_assert!(sigmoid_derivative(x) <= 0.25 + 1e-12);
        }
    }
}
