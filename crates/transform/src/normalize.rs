//! Linear normalization onto `[0, 1]` (paper Eq. 4).

use crate::TransformError;
use serde::{Deserialize, Serialize};

/// An inclusive value range `[min, max]` with linear maps to and from `[0, 1]`:
///
/// ```text
/// r = (x − min) / (max − min)        (Eq. 4)
/// ```
///
/// # Examples
///
/// ```
/// use qos_transform::Range;
///
/// let range = Range::new(0.0, 20.0)?;
/// assert_eq!(range.normalize(5.0), 0.25);
/// assert_eq!(range.denormalize(0.25), 5.0);
/// # Ok::<(), qos_transform::TransformError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Range {
    min: f64,
    max: f64,
}

impl Range {
    /// Creates a range.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::InvalidRange`] when `min >= max` and
    /// [`TransformError::NotFinite`] when either bound is not finite.
    pub fn new(min: f64, max: f64) -> Result<Self, TransformError> {
        if !min.is_finite() {
            return Err(TransformError::NotFinite {
                name: "min",
                value: min,
            });
        }
        if !max.is_finite() {
            return Err(TransformError::NotFinite {
                name: "max",
                value: max,
            });
        }
        if min >= max {
            return Err(TransformError::InvalidRange { min, max });
        }
        Ok(Self { min, max })
    }

    /// Computes the range spanned by a sample (ignoring NaNs).
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::EmptyInput`] when no finite values exist and
    /// [`TransformError::InvalidRange`] when all values are equal.
    pub fn from_data(values: &[f64]) -> Result<Self, TransformError> {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            if v.is_nan() {
                continue;
            }
            min = min.min(v);
            max = max.max(v);
        }
        if min == f64::INFINITY {
            return Err(TransformError::EmptyInput);
        }
        Self::new(min, max)
    }

    /// Lower bound.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Width `max - min` (always positive).
    pub fn width(&self) -> f64 {
        self.max - self.min
    }

    /// Maps `x` linearly so that `min -> 0` and `max -> 1`. Values outside
    /// the range extrapolate linearly (use [`Range::normalize_clamped`] to
    /// clamp instead).
    #[inline]
    pub fn normalize(&self, x: f64) -> f64 {
        (x - self.min) / self.width()
    }

    /// Like [`Range::normalize`] but clamps the result into `[0, 1]`.
    #[inline]
    pub fn normalize_clamped(&self, x: f64) -> f64 {
        self.normalize(x).clamp(0.0, 1.0)
    }

    /// Inverse of [`Range::normalize`]: maps `0 -> min` and `1 -> max`.
    #[inline]
    pub fn denormalize(&self, r: f64) -> f64 {
        self.min + r * self.width()
    }

    /// Whether `x` lies within `[min, max]`.
    pub fn contains(&self, x: f64) -> bool {
        (self.min..=self.max).contains(&x)
    }

    /// Clamps `x` into `[min, max]`.
    #[inline]
    pub fn clamp(&self, x: f64) -> f64 {
        x.clamp(self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn endpoints_map_to_unit_interval() {
        let r = Range::new(2.0, 10.0).unwrap();
        assert_eq!(r.normalize(2.0), 0.0);
        assert_eq!(r.normalize(10.0), 1.0);
        assert_eq!(r.denormalize(0.0), 2.0);
        assert_eq!(r.denormalize(1.0), 10.0);
    }

    #[test]
    fn rejects_degenerate_ranges() {
        assert!(matches!(
            Range::new(1.0, 1.0),
            Err(TransformError::InvalidRange { .. })
        ));
        assert!(Range::new(5.0, 1.0).is_err());
        assert!(Range::new(f64::NAN, 1.0).is_err());
        assert!(Range::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn from_data_spans_sample() {
        let r = Range::from_data(&[3.0, f64::NAN, -1.0, 7.0]).unwrap();
        assert_eq!(r.min(), -1.0);
        assert_eq!(r.max(), 7.0);
        assert_eq!(
            Range::from_data(&[]).unwrap_err(),
            TransformError::EmptyInput
        );
        assert!(Range::from_data(&[2.0, 2.0]).is_err());
    }

    #[test]
    fn normalize_extrapolates_clamped_does_not() {
        let r = Range::new(0.0, 10.0).unwrap();
        assert_eq!(r.normalize(20.0), 2.0);
        assert_eq!(r.normalize_clamped(20.0), 1.0);
        assert_eq!(r.normalize_clamped(-5.0), 0.0);
    }

    #[test]
    fn contains_and_clamp() {
        let r = Range::new(0.0, 1.0).unwrap();
        assert!(r.contains(0.5));
        assert!(!r.contains(1.5));
        assert_eq!(r.clamp(1.5), 1.0);
        assert_eq!(r.clamp(-0.5), 0.0);
    }

    proptest! {
        #[test]
        fn roundtrip(min in -1e3..1e3f64, width in 0.001..1e3f64, x in -1e3..1e3f64) {
            let r = Range::new(min, min + width).unwrap();
            let back = r.denormalize(r.normalize(x));
            prop_assert!((back - x).abs() < 1e-6 * (1.0 + x.abs()));
        }

        #[test]
        fn normalized_in_unit_interval_for_contained(min in -1e3..1e3f64, width in 0.001..1e3f64, frac in 0.0..1.0f64) {
            let r = Range::new(min, min + width).unwrap();
            let x = min + frac * width;
            let n = r.normalize(x);
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&n));
        }
    }
}
