//! Data transformation for skewed QoS values (paper Section IV-C.1).
//!
//! The AMF paper observes that raw QoS distributions are highly skewed with
//! large variances (Fig. 7), which "mismatches with the probabilistic
//! assumption for matrix factorization". Its fix — reproduced here — is a
//! three-stage, invertible pipeline:
//!
//! 1. **Box–Cox power transform** (Eq. 3): `boxcox(x) = (x^α − 1)/α`, or
//!    `ln x` when `α = 0`. Rank-preserving; `α` tunes how aggressively the
//!    long right tail is compressed (the paper uses `α = −0.007` for response
//!    time and `α = −0.05` for throughput).
//! 2. **Linear normalization** (Eq. 4) mapping the transformed range onto
//!    `[0, 1]`.
//! 3. A **sigmoid link** `g(x) = 1/(1 + e^{-x})` mapping the model's inner
//!    products `U_i^T S_j` into `[0, 1]` so they are comparable with the
//!    normalized data.
//!
//! [`QosTransform`] packages stages 1–2 with their exact inverses, and
//! [`mod@sigmoid`] provides stage 3 together with the derivative `g'` used by the
//! SGD updates (Eq. 8–9). The [`estimate`] module adds an `α` estimator (a
//! small extension: the paper hand-tunes `α`, we also support choosing it by
//! maximum profile likelihood or by skewness minimization).
//!
//! # Examples
//!
//! ```
//! use qos_transform::QosTransform;
//!
//! // Response-time pipeline from the paper: α = −0.007, RT ∈ [0, 20] s.
//! let t = QosTransform::new(-0.007, 0.0, 20.0)?;
//! let r = t.to_normalized(1.33); // average RT of the dataset
//! assert!((0.0..=1.0).contains(&r));
//! let back = t.from_normalized(r);
//! assert!((back - 1.33).abs() < 1e-9);
//! # Ok::<(), qos_transform::TransformError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boxcox;
pub mod estimate;
pub mod normalize;
pub mod pipeline;
pub mod sigmoid;

pub use boxcox::BoxCox;
pub use normalize::Range;
pub use pipeline::QosTransform;
pub use sigmoid::{sigmoid, sigmoid_derivative};

/// Error type for invalid transform configuration or out-of-domain input.
#[derive(Debug, Clone, PartialEq)]
pub enum TransformError {
    /// The configured range was empty or inverted (`min >= max`).
    InvalidRange {
        /// Configured minimum.
        min: f64,
        /// Configured maximum.
        max: f64,
    },
    /// A parameter was not finite.
    NotFinite {
        /// Name of the offending parameter.
        name: &'static str,
        /// The value received.
        value: f64,
    },
    /// The input sample set was empty or had no positive values.
    EmptyInput,
}

impl std::fmt::Display for TransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransformError::InvalidRange { min, max } => {
                write!(f, "invalid range: min {min} must be below max {max}")
            }
            TransformError::NotFinite { name, value } => {
                write!(f, "parameter {name} must be finite, got {value}")
            }
            TransformError::EmptyInput => write!(f, "input sample set was empty"),
        }
    }
}

impl std::error::Error for TransformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = TransformError::InvalidRange { min: 5.0, max: 1.0 };
        assert!(e.to_string().contains("min 5"));
        let e = TransformError::NotFinite {
            name: "alpha",
            value: f64::NAN,
        };
        assert!(e.to_string().contains("alpha"));
        assert!(TransformError::EmptyInput.to_string().contains("empty"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TransformError>();
    }
}
