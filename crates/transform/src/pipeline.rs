//! The full forward/backward QoS transformation pipeline.
//!
//! Chains [`BoxCox`] (Eq. 3) and [`Range`] normalization (Eq. 4) with exact
//! inverses. The model side of the pipeline — the sigmoid link — lives in
//! [`mod@crate::sigmoid`] because it is applied to *inner products*, not data; the
//! convenience method [`QosTransform::prediction_to_raw`] stitches all three
//! stages together for producing final QoS predictions (the "backward data
//! transformation" of Section IV-C.3).

use crate::boxcox::BoxCox;
use crate::normalize::Range;
use crate::sigmoid::sigmoid;
use crate::TransformError;
use serde::{Deserialize, Serialize};

/// Invertible map between raw QoS values and the normalized `[0, 1]` domain
/// the AMF model is trained in.
///
/// Constructed from the Box–Cox parameter `α` and the raw QoS bounds
/// `[R_min, R_max]` ("which can be specified by users, e.g. `R_max = 20 s`
/// and `R_min = 0` for response time" — paper Section IV-C.1). The bounds are
/// carried through the transform using its monotonicity:
/// `R̃_max = boxcox(R_max)`.
///
/// # Examples
///
/// ```
/// use qos_transform::QosTransform;
///
/// let rt = QosTransform::new(-0.007, 0.0, 20.0)?;
/// // Normalized values live in [0, 1]:
/// assert_eq!(rt.to_normalized(0.0), 0.0);
/// assert!((rt.to_normalized(20.0) - 1.0).abs() < 1e-12);
/// # Ok::<(), qos_transform::TransformError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosTransform {
    boxcox: BoxCox,
    /// Range in the *transformed* domain.
    transformed: Range,
    /// Raw QoS bounds as configured.
    raw: Range,
}

impl QosTransform {
    /// Creates a pipeline with Box–Cox parameter `alpha` over raw QoS values
    /// in `[r_min, r_max]`.
    ///
    /// `r_min` below the Box–Cox floor (1 ms) is clamped to the floor, exactly
    /// as raw samples are.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::NotFinite`] for a non-finite `alpha` and
    /// [`TransformError::InvalidRange`] when `r_min >= r_max`.
    pub fn new(alpha: f64, r_min: f64, r_max: f64) -> Result<Self, TransformError> {
        let boxcox = BoxCox::new(alpha)?;
        Self::with_boxcox(boxcox, r_min, r_max)
    }

    /// Creates a pipeline from an existing [`BoxCox`] transform and raw bounds.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::InvalidRange`] when `r_min >= r_max` (after
    /// flooring) or the transformed range is degenerate.
    pub fn with_boxcox(boxcox: BoxCox, r_min: f64, r_max: f64) -> Result<Self, TransformError> {
        let raw = Range::new(r_min.max(boxcox.floor()), r_max)?;
        let transformed = Range::new(boxcox.transform(raw.min()), boxcox.transform(raw.max()))?;
        Ok(Self {
            boxcox,
            transformed,
            raw,
        })
    }

    /// Identity-style pipeline (`α = 1`): pure linear normalization, the
    /// "AMF(α = 1)" configuration of the paper's Fig. 11 ablation.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::InvalidRange`] when `r_min >= r_max`.
    pub fn linear(r_min: f64, r_max: f64) -> Result<Self, TransformError> {
        Self::new(1.0, r_min, r_max)
    }

    /// The Box–Cox stage.
    pub fn boxcox(&self) -> &BoxCox {
        &self.boxcox
    }

    /// The raw QoS bounds.
    pub fn raw_range(&self) -> &Range {
        &self.raw
    }

    /// The bounds in the Box–Cox-transformed domain.
    pub fn transformed_range(&self) -> &Range {
        &self.transformed
    }

    /// Forward map: raw QoS value → normalized `r ∈ [0, 1]` (Eq. 3 + Eq. 4).
    ///
    /// Raw values outside the configured bounds are clamped, so the result is
    /// always in `[0, 1]`.
    #[inline]
    pub fn to_normalized(&self, raw: f64) -> f64 {
        self.transformed
            .normalize_clamped(self.boxcox.transform(self.raw.clamp(raw)))
    }

    /// Backward map: normalized `r` → raw QoS value.
    ///
    /// `r` is clamped into `[0, 1]` first and the result is clamped into the
    /// raw bounds (the inverse Box–Cox roundtrip can otherwise overshoot
    /// `R_max` by a few ulps).
    #[inline]
    pub fn from_normalized(&self, r: f64) -> f64 {
        self.raw.clamp(
            self.boxcox
                .inverse(self.transformed.denormalize(r.clamp(0.0, 1.0))),
        )
    }

    /// Full model-output map: latent inner product `U_i^T S_j` → predicted raw
    /// QoS value, i.e. `inverse_transform(g(x))` (Section IV-C.3).
    #[inline]
    pub fn prediction_to_raw(&self, inner_product: f64) -> f64 {
        self.from_normalized(sigmoid(inner_product))
    }

    /// Applies the forward map to every element.
    pub fn to_normalized_all(&self, raws: &[f64]) -> Vec<f64> {
        raws.iter().map(|&x| self.to_normalized(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rt_pipeline() -> QosTransform {
        QosTransform::new(-0.007, 0.0, 20.0).unwrap()
    }

    fn tp_pipeline() -> QosTransform {
        QosTransform::new(-0.05, 0.0, 7000.0).unwrap()
    }

    #[test]
    fn endpoints_hit_zero_and_one() {
        let t = rt_pipeline();
        assert_eq!(t.to_normalized(0.0), 0.0);
        assert!((t.to_normalized(20.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_interior_values() {
        for t in [rt_pipeline(), tp_pipeline()] {
            for frac in [0.001, 0.05, 0.25, 0.5, 0.9, 1.0] {
                let raw = t.raw_range().min() + frac * t.raw_range().width();
                let r = t.to_normalized(raw);
                let back = t.from_normalized(r);
                assert!(
                    (back - raw).abs() / raw.max(1e-9) < 1e-6,
                    "roundtrip {raw} -> {r} -> {back}"
                );
            }
        }
    }

    #[test]
    fn out_of_range_inputs_clamp() {
        let t = rt_pipeline();
        assert_eq!(t.to_normalized(-5.0), 0.0);
        assert!((t.to_normalized(100.0) - 1.0).abs() < 1e-12);
        assert!(t.from_normalized(2.0) <= 20.0 + 1e-9);
        assert!(t.from_normalized(-1.0) >= t.boxcox().floor() - 1e-12);
    }

    #[test]
    fn linear_pipeline_is_plain_normalization() {
        let t = QosTransform::linear(0.0, 10.0).unwrap();
        // With alpha=1 the boxcox is x-1; normalization undoes the shift.
        assert!((t.to_normalized(5.0) - 0.5).abs() < 1e-4);
    }

    #[test]
    fn prediction_to_raw_uses_sigmoid() {
        let t = rt_pipeline();
        // inner product 0 -> sigmoid 0.5 -> mid-range in transformed domain
        let mid = t.prediction_to_raw(0.0);
        assert!(mid > 0.0 && mid < 20.0);
        // huge positive inner product saturates at the max
        assert!((t.prediction_to_raw(100.0) - 20.0).abs() < 1e-6);
        // huge negative saturates at the floor
        assert!(t.prediction_to_raw(-100.0) <= t.boxcox().floor() + 1e-9);
    }

    #[test]
    fn rejects_bad_configuration() {
        assert!(QosTransform::new(f64::NAN, 0.0, 1.0).is_err());
        assert!(QosTransform::new(-0.007, 5.0, 5.0).is_err());
        assert!(QosTransform::new(-0.007, 5.0, 1.0).is_err());
    }

    #[test]
    fn negative_alpha_deskews_lognormal_data() {
        // Log-normal samples are right-skewed; after the paper's transform the
        // skewness should shrink substantially (Fig. 7 vs Fig. 8).
        use qos_linalg_free::skewness;
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        let raw: Vec<f64> = (0..5000)
            .map(|_| {
                // crude Box-Muller
                let u1: f64 = 1.0 - rng.random::<f64>();
                let u2: f64 = rng.random::<f64>();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (0.3 + 0.9 * z).exp().min(19.9)
            })
            .collect();
        let t = QosTransform::new(0.0, 0.0, 20.0).unwrap(); // log transform
        let transformed = t.to_normalized_all(&raw);
        let raw_skew = skewness(&raw).abs();
        let new_skew = skewness(&transformed).abs();
        assert!(
            new_skew < raw_skew / 2.0,
            "transform should de-skew: {raw_skew} -> {new_skew}"
        );
    }

    // Minimal local skewness to avoid a circular dev-dependency on qos-linalg.
    mod qos_linalg_free {
        pub fn skewness(values: &[f64]) -> f64 {
            let n = values.len() as f64;
            let mean = values.iter().sum::<f64>() / n;
            let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
            let sd = var.sqrt();
            values
                .iter()
                .map(|v| ((v - mean) / sd).powi(3))
                .sum::<f64>()
                / n
        }
    }

    proptest! {
        #[test]
        fn forward_always_in_unit_interval(alpha in -1.0..1.0f64, raw in -10.0..30.0f64) {
            let t = QosTransform::new(alpha, 0.0, 20.0).unwrap();
            let r = t.to_normalized(raw);
            prop_assert!((0.0..=1.0).contains(&r));
        }

        #[test]
        fn backward_always_in_raw_range(alpha in -1.0..1.0f64, r in -0.5..1.5f64) {
            let t = QosTransform::new(alpha, 0.0, 20.0).unwrap();
            let raw = t.from_normalized(r);
            prop_assert!(raw >= t.boxcox().floor() - 1e-9);
            prop_assert!(raw <= 20.0 + 1e-9);
        }

        #[test]
        fn forward_is_monotone(alpha in -1.0..1.0f64, a in 0.01..20.0f64, b in 0.01..20.0f64) {
            let t = QosTransform::new(alpha, 0.0, 20.0).unwrap();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(t.to_normalized(lo) <= t.to_normalized(hi) + 1e-12);
        }

        #[test]
        fn boxcox_normalize_roundtrips_within_1e9(
            alpha in -1.0..1.0f64,
            frac in 0.0..1.0f64,
        ) {
            // Box–Cox -> range-normalize -> inverse is an identity on the
            // configured raw range, to 1e-9, for any α.
            let t = QosTransform::new(alpha, 0.0, 20.0).unwrap();
            let raw = t.raw_range().min() + frac * t.raw_range().width();
            let back = t.from_normalized(t.to_normalized(raw));
            prop_assert!(
                (back - raw).abs() < 1e-9 * (1.0 + raw.abs()),
                "alpha {} raw {} -> {}", alpha, raw, back
            );
        }

        #[test]
        fn sigmoid_link_inverse_roundtrips_within_1e9(
            alpha in -1.0..1.0f64,
            r in 0.001..0.999f64,
        ) {
            // prediction_to_raw(logit(r)) must agree with from_normalized(r):
            // the sigmoid link composed with its inverse vanishes from the
            // backward pipeline.
            let t = QosTransform::new(alpha, 0.0, 20.0).unwrap();
            let logit = (r / (1.0 - r)).ln();
            let via_link = t.prediction_to_raw(logit);
            let direct = t.from_normalized(r);
            prop_assert!(
                (via_link - direct).abs() < 1e-9 * (1.0 + direct.abs()),
                "alpha {} r {}: {} vs {}", alpha, r, via_link, direct
            );
        }

        #[test]
        fn throughput_range_roundtrips_within_1e9(
            alpha in -1.0..1.0f64,
            frac in 0.0..1.0f64,
        ) {
            // Same identity on the throughput-style range (paper: R_max = 7000).
            let t = QosTransform::new(alpha, 0.0, 7000.0).unwrap();
            let raw = t.raw_range().min() + frac * t.raw_range().width();
            let back = t.from_normalized(t.to_normalized(raw));
            prop_assert!(
                (back - raw).abs() < 1e-9 * (1.0 + raw.abs()),
                "alpha {} raw {} -> {}", alpha, raw, back
            );
        }
    }
}
