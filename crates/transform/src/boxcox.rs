//! The Box–Cox power transform (paper Eq. 3).

use crate::TransformError;
use serde::{Deserialize, Serialize};

/// Smallest raw value fed into the transform; inputs below it are clamped.
///
/// The paper sets `R_min = 0` for response time, but `boxcox` with `α ≤ 0`
/// diverges at 0, and a real QoS measurement is never exactly zero (the
/// dataset's smallest RT samples are on the order of milliseconds). Clamping
/// to 1 ms keeps the transform total without affecting any realistic sample.
pub const DEFAULT_FLOOR: f64 = 1e-3;

/// The Box–Cox power transform with parameter `α`:
///
/// ```text
/// boxcox(x) = (x^α − 1)/α   if α ≠ 0
///             ln x          if α = 0
/// ```
///
/// Monotonically non-decreasing in `x` for every `α`, hence rank-preserving —
/// the property the paper relies on to carry min/max bounds through the
/// transform (`R̃_max = boxcox(R_max)`).
///
/// # Examples
///
/// ```
/// use qos_transform::BoxCox;
///
/// let bc = BoxCox::new(-0.007)?; // the paper's response-time α
/// let y = bc.transform(1.33);
/// assert!((bc.inverse(y) - 1.33).abs() < 1e-9);
///
/// // α = 1 is an affine map: the transform is "masked" (paper Section V-D).
/// let linear = BoxCox::new(1.0)?;
/// assert_eq!(linear.transform(3.0), 2.0);
/// # Ok::<(), qos_transform::TransformError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxCox {
    alpha: f64,
    floor: f64,
}

impl BoxCox {
    /// Creates a transform with the given `α` and the default input floor.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::NotFinite`] if `alpha` is NaN or infinite.
    pub fn new(alpha: f64) -> Result<Self, TransformError> {
        Self::with_floor(alpha, DEFAULT_FLOOR)
    }

    /// Creates a transform with an explicit input floor.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::NotFinite`] if `alpha` or `floor` is not
    /// finite or if `floor` is not positive.
    pub fn with_floor(alpha: f64, floor: f64) -> Result<Self, TransformError> {
        if !alpha.is_finite() {
            return Err(TransformError::NotFinite {
                name: "alpha",
                value: alpha,
            });
        }
        if !floor.is_finite() || floor <= 0.0 {
            return Err(TransformError::NotFinite {
                name: "floor",
                value: floor,
            });
        }
        Ok(Self { alpha, floor })
    }

    /// The transform parameter `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The input floor: values below it are clamped before transforming.
    pub fn floor(&self) -> f64 {
        self.floor
    }

    /// Applies the transform. Inputs at or below the floor are clamped to it.
    #[inline]
    pub fn transform(&self, x: f64) -> f64 {
        let x = x.max(self.floor);
        if self.alpha == 0.0 {
            x.ln()
        } else {
            (x.powf(self.alpha) - 1.0) / self.alpha
        }
    }

    /// Inverts the transform. Outputs are floored at [`BoxCox::floor`], so
    /// `inverse(transform(x)) == x` holds for all `x >= floor`.
    #[inline]
    pub fn inverse(&self, y: f64) -> f64 {
        let x = if self.alpha == 0.0 {
            y.exp()
        } else {
            let base = self.alpha * y + 1.0;
            if base <= 0.0 {
                // Out of the transform's image; the nearest valid input is the
                // domain boundary.
                return self.floor;
            }
            base.powf(1.0 / self.alpha)
        };
        x.max(self.floor)
    }

    /// Applies the transform to every element of a slice.
    pub fn transform_all(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.transform(x)).collect()
    }
}

impl Default for BoxCox {
    /// The identity-like `α = 1` transform (pure affine shift).
    fn default() -> Self {
        Self {
            alpha: 1.0,
            floor: DEFAULT_FLOOR,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn alpha_zero_is_log() {
        let bc = BoxCox::new(0.0).unwrap();
        assert!((bc.transform(std::f64::consts::E) - 1.0).abs() < 1e-12);
        assert!((bc.inverse(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alpha_one_is_affine() {
        let bc = BoxCox::new(1.0).unwrap();
        assert_eq!(bc.transform(5.0), 4.0);
        assert_eq!(bc.inverse(4.0), 5.0);
    }

    #[test]
    fn paper_alphas_roundtrip() {
        for &alpha in &[-0.007, -0.05] {
            let bc = BoxCox::new(alpha).unwrap();
            for &x in &[0.001, 0.1, 1.33, 11.35, 20.0, 7000.0] {
                let y = bc.transform(x);
                assert!(
                    (bc.inverse(y) - x).abs() / x < 1e-9,
                    "roundtrip failed for alpha={alpha}, x={x}"
                );
            }
        }
    }

    #[test]
    fn rejects_non_finite_alpha() {
        assert!(BoxCox::new(f64::NAN).is_err());
        assert!(BoxCox::new(f64::INFINITY).is_err());
    }

    #[test]
    fn rejects_bad_floor() {
        assert!(BoxCox::with_floor(1.0, 0.0).is_err());
        assert!(BoxCox::with_floor(1.0, -1.0).is_err());
        assert!(BoxCox::with_floor(1.0, f64::NAN).is_err());
    }

    #[test]
    fn clamps_below_floor() {
        let bc = BoxCox::new(-0.007).unwrap();
        assert_eq!(bc.transform(0.0), bc.transform(DEFAULT_FLOOR));
        assert_eq!(bc.transform(-5.0), bc.transform(DEFAULT_FLOOR));
    }

    #[test]
    fn inverse_of_out_of_image_value_is_floor() {
        let bc = BoxCox::new(-0.5).unwrap();
        // For negative alpha the image is bounded above by -1/alpha = 2.
        assert_eq!(bc.inverse(10.0), bc.floor());
    }

    #[test]
    fn negative_alpha_compresses_tail() {
        let bc = BoxCox::new(-0.5).unwrap();
        // Spacing between large values shrinks relative to small values.
        let small_gap = bc.transform(2.0) - bc.transform(1.0);
        let large_gap = bc.transform(101.0) - bc.transform(100.0);
        assert!(large_gap < small_gap);
    }

    #[test]
    fn default_is_alpha_one() {
        assert_eq!(BoxCox::default().alpha(), 1.0);
    }

    #[test]
    fn transform_all_matches_pointwise() {
        let bc = BoxCox::new(0.5).unwrap();
        let xs = [1.0, 4.0, 9.0];
        let ys = bc.transform_all(&xs);
        for (x, y) in xs.iter().zip(&ys) {
            assert_eq!(bc.transform(*x), *y);
        }
    }

    proptest! {
        #[test]
        fn monotone_nondecreasing(alpha in -2.0..2.0f64, a in 0.001..1e4f64, b in 0.001..1e4f64) {
            let bc = BoxCox::new(alpha).unwrap();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(bc.transform(lo) <= bc.transform(hi) + 1e-12);
        }

        #[test]
        fn roundtrip_above_floor(alpha in -1.0..1.0f64, x in 0.01..1e3f64) {
            let bc = BoxCox::new(alpha).unwrap();
            let y = bc.transform(x);
            prop_assert!((bc.inverse(y) - x).abs() / x < 1e-6);
        }

        #[test]
        fn small_alpha_approximates_log(x in 0.1..100.0f64) {
            // boxcox(x) -> ln x as alpha -> 0
            let bc = BoxCox::new(1e-9).unwrap();
            prop_assert!((bc.transform(x) - x.ln()).abs() < 1e-5);
        }
    }
}
