//! Estimating the Box–Cox parameter `α` from data.
//!
//! The paper hand-tunes `α` (−0.007 for response time, −0.05 for throughput).
//! This module adds two standard automatic estimators as an extension:
//!
//! * [`estimate_mle`] — maximizes the Box–Cox profile log-likelihood, the
//!   classic criterion from Box & Cox (1964) / Sakia (1992), the survey the
//!   paper cites.
//! * [`estimate_min_skewness`] — picks the `α` whose transformed sample has
//!   skewness closest to zero, a pragmatic proxy for "more normal
//!   distribution-like" (the paper's stated goal for the transform).
//!
//! Both are grid searches: the objective is cheap, one-dimensional, and
//! well-behaved, so a fine grid is simpler and more robust than a derivative
//! method.

use crate::boxcox::BoxCox;
use crate::TransformError;

/// Box–Cox profile log-likelihood of `alpha` for the (positive) sample `xs`:
///
/// ```text
/// LL(α) = −n/2 · ln σ̂²(y(α)) + (α − 1) Σ ln x_i
/// ```
///
/// where `y(α)` is the transformed sample.
///
/// # Errors
///
/// Returns [`TransformError::EmptyInput`] when `xs` has no positive values and
/// [`TransformError::NotFinite`] when `alpha` is not finite.
pub fn log_likelihood(xs: &[f64], alpha: f64) -> Result<f64, TransformError> {
    let bc = BoxCox::new(alpha)?;
    let positive: Vec<f64> = xs.iter().copied().filter(|&x| x > 0.0).collect();
    if positive.is_empty() {
        return Err(TransformError::EmptyInput);
    }
    let n = positive.len() as f64;
    let transformed: Vec<f64> = positive.iter().map(|&x| bc.transform(x)).collect();
    let mean = transformed.iter().sum::<f64>() / n;
    let var = transformed
        .iter()
        .map(|y| (y - mean) * (y - mean))
        .sum::<f64>()
        / n;
    if var <= 0.0 {
        return Err(TransformError::EmptyInput);
    }
    let log_sum: f64 = positive.iter().map(|&x| x.ln()).sum();
    Ok(-0.5 * n * var.ln() + (alpha - 1.0) * log_sum)
}

/// Grid-searches `alpha` in `[lo, hi]` maximizing the profile log-likelihood.
///
/// # Errors
///
/// Returns [`TransformError::InvalidRange`] when `lo >= hi` or `steps < 2`,
/// and propagates [`log_likelihood`] errors.
pub fn estimate_mle(xs: &[f64], lo: f64, hi: f64, steps: usize) -> Result<f64, TransformError> {
    grid_search(lo, hi, steps, |alpha| log_likelihood(xs, alpha))
}

/// Grid-searches `alpha` minimizing the absolute skewness of the transformed
/// sample.
///
/// # Errors
///
/// Returns [`TransformError::InvalidRange`] when `lo >= hi` or `steps < 2`,
/// and [`TransformError::EmptyInput`] when `xs` has no positive values.
pub fn estimate_min_skewness(
    xs: &[f64],
    lo: f64,
    hi: f64,
    steps: usize,
) -> Result<f64, TransformError> {
    grid_search(lo, hi, steps, |alpha| {
        let bc = BoxCox::new(alpha)?;
        let positive: Vec<f64> = xs.iter().copied().filter(|&x| x > 0.0).collect();
        if positive.is_empty() {
            return Err(TransformError::EmptyInput);
        }
        let transformed: Vec<f64> = positive.iter().map(|&x| bc.transform(x)).collect();
        let skew = skewness(&transformed).ok_or(TransformError::EmptyInput)?;
        Ok(-skew.abs()) // maximize negative |skew| == minimize |skew|
    })
}

fn grid_search<F>(lo: f64, hi: f64, steps: usize, mut objective: F) -> Result<f64, TransformError>
where
    F: FnMut(f64) -> Result<f64, TransformError>,
{
    if lo.is_nan() || hi.is_nan() || lo >= hi || steps < 2 {
        return Err(TransformError::InvalidRange { min: lo, max: hi });
    }
    let mut best_alpha = lo;
    let mut best_value = f64::NEG_INFINITY;
    for k in 0..steps {
        let alpha = lo + (hi - lo) * k as f64 / (steps - 1) as f64;
        let value = objective(alpha)?;
        if value > best_value {
            best_value = value;
            best_alpha = alpha;
        }
    }
    Ok(best_alpha)
}

fn skewness(values: &[f64]) -> Option<f64> {
    let n = values.len() as f64;
    if values.len() < 2 {
        return None;
    }
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    if var == 0.0 {
        return None;
    }
    let sd = var.sqrt();
    Some(
        values
            .iter()
            .map(|v| ((v - mean) / sd).powi(3))
            .sum::<f64>()
            / n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn lognormal_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u1: f64 = 1.0 - rng.random::<f64>();
                let u2: f64 = rng.random::<f64>();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (0.5 * z).exp()
            })
            .collect()
    }

    #[test]
    fn mle_recovers_log_for_lognormal_data() {
        // For exactly log-normal data the MLE of alpha is ~0.
        let xs = lognormal_sample(4000, 21);
        let alpha = estimate_mle(&xs, -1.0, 1.0, 81).unwrap();
        assert!(alpha.abs() < 0.15, "estimated alpha {alpha}");
    }

    #[test]
    fn min_skewness_recovers_log_for_lognormal_data() {
        let xs = lognormal_sample(4000, 22);
        let alpha = estimate_min_skewness(&xs, -1.0, 1.0, 81).unwrap();
        assert!(alpha.abs() < 0.15, "estimated alpha {alpha}");
    }

    #[test]
    fn mle_prefers_identity_for_normal_data() {
        // Already-normal positive data should prefer alpha near 1.
        let mut rng = StdRng::seed_from_u64(5);
        let xs: Vec<f64> = (0..4000)
            .map(|_| {
                let u1: f64 = 1.0 - rng.random::<f64>();
                let u2: f64 = rng.random::<f64>();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                10.0 + z // mean 10 so essentially all positive
            })
            .collect();
        let alpha = estimate_mle(&xs, -2.0, 3.0, 101).unwrap();
        assert!((alpha - 1.0).abs() < 0.6, "estimated alpha {alpha}");
    }

    #[test]
    fn log_likelihood_errors() {
        assert_eq!(
            log_likelihood(&[], 0.5).unwrap_err(),
            TransformError::EmptyInput
        );
        assert_eq!(
            log_likelihood(&[-1.0, -2.0], 0.5).unwrap_err(),
            TransformError::EmptyInput
        );
        assert!(log_likelihood(&[1.0, 2.0], f64::NAN).is_err());
    }

    #[test]
    fn grid_rejects_bad_bounds() {
        let xs = [1.0, 2.0, 3.0];
        assert!(estimate_mle(&xs, 1.0, 0.0, 10).is_err());
        assert!(estimate_mle(&xs, 0.0, 1.0, 1).is_err());
    }

    #[test]
    fn estimators_are_deterministic() {
        let xs = lognormal_sample(500, 3);
        let a1 = estimate_mle(&xs, -1.0, 1.0, 41).unwrap();
        let a2 = estimate_mle(&xs, -1.0, 1.0, 41).unwrap();
        assert_eq!(a1, a2);
    }
}
