//! Free functions on `&[f64]` slices used throughout the workspace.
//!
//! The latent factor vectors of the MF/AMF models (`U_i`, `S_j` in the paper)
//! are plain `Vec<f64>` of dimensionality `d` (the paper uses `d = 10`), so the
//! hot inner loops of training are expressed with these slice helpers instead
//! of a heavier vector type.

/// Dot product of two equally sized slices.
///
/// The inner product `U_i^T S_j` is the model's raw prediction before the
/// sigmoid link is applied (paper Eq. 5).
///
/// # Panics
///
/// Panics in debug builds if the slices differ in length; in release builds
/// the shorter length wins (standard `zip` semantics).
///
/// # Examples
///
/// ```
/// assert_eq!(qos_linalg::vector::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm of a slice.
///
/// # Examples
///
/// ```
/// assert_eq!(qos_linalg::vector::norm2(&[3.0, 4.0]), 5.0);
/// ```
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean norm, used by the regularization terms `||U_i||_2^2`.
#[inline]
pub fn norm2_sq(a: &[f64]) -> f64 {
    dot(a, a)
}

/// In-place `a += alpha * b` (the classic `axpy` kernel).
///
/// SGD updates of the form `U_i <- U_i - eta * grad` are expressed as
/// `axpy(-eta, grad, &mut u)`.
///
/// # Panics
///
/// Panics in debug builds if the slices differ in length.
#[inline]
pub fn axpy(alpha: f64, b: &[f64], a: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len(), "axpy: length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += alpha * y;
    }
}

/// In-place scaling `a *= alpha`.
#[inline]
pub fn scale(alpha: f64, a: &mut [f64]) {
    for x in a.iter_mut() {
        *x *= alpha;
    }
}

/// Elementwise difference `a - b` as a new vector.
///
/// # Panics
///
/// Panics in debug builds if the slices differ in length.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Squared Euclidean distance between two slices.
///
/// # Panics
///
/// Panics in debug builds if the slices differ in length.
pub fn distance_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "distance_sq: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_of_orthogonal_vectors_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
    }

    #[test]
    fn dot_of_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn norm2_of_zero_vector_is_zero() {
        assert_eq!(norm2(&[0.0; 8]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = vec![1.0, 2.0, 3.0];
        axpy(2.0, &[10.0, 20.0, 30.0], &mut a);
        assert_eq!(a, vec![21.0, 42.0, 63.0]);
    }

    #[test]
    fn scale_by_zero_clears() {
        let mut a = vec![5.0, -3.0];
        scale(0.0, &mut a);
        assert_eq!(a, vec![0.0, 0.0]);
    }

    #[test]
    fn sub_elementwise() {
        assert_eq!(sub(&[3.0, 5.0], &[1.0, 7.0]), vec![2.0, -2.0]);
    }

    #[test]
    fn distance_sq_matches_norm_of_difference() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 6.0, 3.0];
        assert_eq!(distance_sq(&a, &b), norm2_sq(&sub(&a, &b)));
    }

    proptest! {
        #[test]
        fn dot_is_commutative(a in proptest::collection::vec(-1e3..1e3f64, 0..32)) {
            let b: Vec<f64> = a.iter().map(|x| x * 0.5 + 1.0).collect();
            prop_assert!((dot(&a, &b) - dot(&b, &a)).abs() < 1e-9);
        }

        #[test]
        fn cauchy_schwarz(a in proptest::collection::vec(-1e2..1e2f64, 1..16)) {
            let b: Vec<f64> = a.iter().rev().cloned().collect();
            prop_assert!(dot(&a, &b).abs() <= norm2(&a) * norm2(&b) + 1e-6);
        }

        #[test]
        fn axpy_with_zero_alpha_is_identity(a in proptest::collection::vec(-1e3..1e3f64, 1..16)) {
            let mut c = a.clone();
            let b = vec![1.0; a.len()];
            axpy(0.0, &b, &mut c);
            prop_assert_eq!(c, a);
        }

        #[test]
        fn norm_is_nonnegative(a in proptest::collection::vec(-1e3..1e3f64, 0..32)) {
            prop_assert!(norm2(&a) >= 0.0);
        }
    }
}
