//! Row-major dense matrix.
//!
//! A full user–service QoS slice (142 × 4500 in the paper's dataset) is a
//! [`DenseMatrix`]; sparse *observed* views of it live in
//! [`crate::sparse::SparseMatrix`].

use crate::LinalgError;
use serde::{Deserialize, Serialize};

/// A row-major dense matrix of `f64`.
///
/// # Examples
///
/// ```
/// use qos_linalg::DenseMatrix;
///
/// let mut m = DenseMatrix::zeros(2, 2);
/// m.set(0, 1, 3.5);
/// assert_eq!(m.get(0, 1), 3.5);
/// assert_eq!(m.shape(), (2, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every cell.
    ///
    /// # Examples
    ///
    /// ```
    /// use qos_linalg::DenseMatrix;
    /// let ident = DenseMatrix::from_fn(3, 3, |i, j| if i == j { 1.0 } else { 0.0 });
    /// assert_eq!(ident.get(2, 2), 1.0);
    /// ```
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                left: (rows, cols),
                right: (data.len(), 1),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the rows are ragged, and
    /// [`LinalgError::EmptyInput`] if no rows are given.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, LinalgError> {
        let first = rows.first().ok_or(LinalgError::EmptyInput)?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(LinalgError::DimensionMismatch {
                    left: (1, cols),
                    right: (1, r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Value at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows` or `j >= cols`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i * self.cols + j]
    }

    /// Checked access; `None` when out of bounds.
    #[inline]
    pub fn try_get(&self, i: usize, j: usize) -> Option<f64> {
        if i < self.rows && j < self.cols {
            Some(self.data[i * self.cols + j])
        } else {
            None
        }
    }

    /// Sets the value at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows` or `j >= cols`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i * self.cols + j] = value;
    }

    /// Borrow of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` copied into a new `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index out of bounds");
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// All values in row-major order.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: FnMut(f64) -> f64>(&mut self, mut f: F) {
        for v in self.data.iter_mut() {
            *v = f(*v);
        }
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map<F: FnMut(f64) -> f64>(&self, mut f: F) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Transposed copy of the matrix.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self.cols != other.rows`.
    pub fn matmul(&self, other: &DenseMatrix) -> Result<DenseMatrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.get(k, j);
                }
            }
        }
        Ok(out)
    }

    /// Gram matrix `self * self^T` (square, `rows x rows`).
    ///
    /// Used by the singular-value computation for Fig. 9: the eigenvalues of
    /// the Gram matrix are the squared singular values of `self`.
    pub fn gram(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.rows);
        for i in 0..self.rows {
            for j in i..self.rows {
                let v = crate::vector::dot(self.row(i), self.row(j));
                out.set(i, j, v);
                out.set(j, i, v);
            }
        }
        out
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        (0..self.rows)
            .map(|i| crate::vector::dot(self.row(i), x))
            .collect()
    }

    /// Transposed matrix–vector product `selfᵀ · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t: dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(i)) {
                *o += xi * a;
            }
        }
        out
    }

    /// Frobenius norm `||A||_F`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Consumes the matrix and returns the row-major data vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_has_right_shape_and_values() {
        let m = DenseMatrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let ragged = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(DenseMatrix::from_rows(&ragged).is_err());
        assert_eq!(
            DenseMatrix::from_rows(&[]).unwrap_err(),
            LinalgError::EmptyInput
        );
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = DenseMatrix::zeros(2, 3);
        m.set(1, 2, 7.5);
        assert_eq!(m.get(1, 2), 7.5);
        assert_eq!(m.try_get(1, 2), Some(7.5));
        assert_eq!(m.try_get(2, 0), None);
        assert_eq!(m.try_get(0, 3), None);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn get_out_of_bounds_panics() {
        DenseMatrix::zeros(2, 2).get(2, 0);
    }

    #[test]
    fn row_and_col_access() {
        let m = DenseMatrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
        assert_eq!(m.col(2), vec![2.0, 12.0]);
    }

    #[test]
    fn transpose_involutive() {
        let m = DenseMatrix::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity() {
        let m = DenseMatrix::from_fn(2, 2, |i, j| (i * 2 + j + 1) as f64);
        let ident = DenseMatrix::from_fn(2, 2, |i, j| if i == j { 1.0 } else { 0.0 });
        assert_eq!(m.matmul(&ident).unwrap(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = DenseMatrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.values(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_mismatch() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = DenseMatrix::from_fn(3, 4, |i, j| ((i + 1) * (j + 2)) as f64);
        let explicit = a.matmul(&a.transpose()).unwrap();
        let gram = a.gram();
        for i in 0..3 {
            for j in 0..3 {
                assert!((gram.get(i, j) - explicit.get(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn frobenius_norm_known_value() {
        let m = DenseMatrix::from_vec(1, 2, vec![3.0, 4.0]).unwrap();
        assert_eq!(m.frobenius_norm(), 5.0);
    }

    #[test]
    fn map_preserves_shape() {
        let m = DenseMatrix::filled(2, 2, 2.0);
        let doubled = m.map(|v| v * 2.0);
        assert_eq!(doubled.values(), &[4.0; 4]);
        let mut m2 = m.clone();
        m2.map_inplace(|v| v + 1.0);
        assert_eq!(m2.values(), &[3.0; 4]);
    }

    proptest! {
        #[test]
        fn from_fn_get_agree(rows in 1usize..8, cols in 1usize..8) {
            let m = DenseMatrix::from_fn(rows, cols, |i, j| (i * 100 + j) as f64);
            for i in 0..rows {
                for j in 0..cols {
                    prop_assert_eq!(m.get(i, j), (i * 100 + j) as f64);
                }
            }
        }

        #[test]
        fn transpose_swaps_entries(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
            let m = DenseMatrix::from_fn(rows, cols, |i, j| ((i * 31 + j * 17 + seed as usize) % 97) as f64);
            let t = m.transpose();
            prop_assert_eq!(t.shape(), (cols, rows));
            for i in 0..rows {
                for j in 0..cols {
                    prop_assert_eq!(m.get(i, j), t.get(j, i));
                }
            }
        }

        #[test]
        fn matmul_associative(n in 1usize..4) {
            let a = DenseMatrix::from_fn(n, n, |i, j| (i + 2 * j + 1) as f64);
            let b = DenseMatrix::from_fn(n, n, |i, j| (2 * i + j + 1) as f64);
            let c = DenseMatrix::from_fn(n, n, |i, j| ((i * j) % 5 + 1) as f64);
            let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
            let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
            for i in 0..n {
                for j in 0..n {
                    prop_assert!((left.get(i, j) - right.get(i, j)).abs() < 1e-6);
                }
            }
        }
    }
}
