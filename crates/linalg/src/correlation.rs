//! Pearson correlation coefficient (PCC) over co-observed entries.
//!
//! The UPCC/IPCC/UIPCC baselines (paper Section V-C, following Zheng et al.,
//! "QoS-aware Web service recommendation by collaborative filtering") measure
//! user–user and service–service similarity with PCC computed only on the
//! entries both parties observed. A *significance weight* discounts
//! similarities backed by few common observations.

use crate::sparse::SparseMatrix;

/// Pearson correlation of two paired samples.
///
/// Returns `None` when fewer than two pairs are given or when either sample
/// has zero variance (the correlation is undefined).
///
/// # Examples
///
/// ```
/// let a = [1.0, 2.0, 3.0];
/// let b = [2.0, 4.0, 6.0];
/// assert!((qos_linalg::correlation::pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics in debug builds if the slices differ in length.
pub fn pearson(a: &[f64], b: &[f64]) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len(), "pearson: length mismatch");
    let n = a.len();
    if n < 2 {
        return None;
    }
    let ma = a.iter().sum::<f64>() / n as f64;
    let mb = b.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let dx = x - ma;
        let dy = y - mb;
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va == 0.0 || vb == 0.0 {
        return None;
    }
    // Clamp against floating-point drift just past ±1.
    Some((cov / (va.sqrt() * vb.sqrt())).clamp(-1.0, 1.0))
}

/// Collects the values two rows of a sparse matrix share (co-observed columns).
///
/// Returns `(values_of_row_a, values_of_row_b)` over the intersection of the
/// two rows' observed columns.
pub fn co_observed_rows(m: &SparseMatrix, row_a: usize, row_b: usize) -> (Vec<f64>, Vec<f64>) {
    let mut a = Vec::new();
    let mut b = Vec::new();
    // Index the smaller row for the lookup.
    let lookup: std::collections::HashMap<usize, f64> = m.row_iter(row_b).collect();
    for (col, va) in m.row_iter(row_a) {
        if let Some(&vb) = lookup.get(&col) {
            a.push(va);
            b.push(vb);
        }
    }
    (a, b)
}

/// Collects the values two columns of a sparse matrix share (co-observed rows).
pub fn co_observed_cols(m: &SparseMatrix, col_a: usize, col_b: usize) -> (Vec<f64>, Vec<f64>) {
    let mut a = Vec::new();
    let mut b = Vec::new();
    let lookup: std::collections::HashMap<usize, f64> = m.col_iter(col_b).collect();
    for (row, va) in m.col_iter(col_a) {
        if let Some(&vb) = lookup.get(&row) {
            a.push(va);
            b.push(vb);
        }
    }
    (a, b)
}

/// PCC between two users (rows) of an observed QoS matrix, or `None` when the
/// correlation is undefined (fewer than 2 co-observed services, or zero
/// variance).
pub fn user_similarity(m: &SparseMatrix, user_a: usize, user_b: usize) -> Option<f64> {
    let (a, b) = co_observed_rows(m, user_a, user_b);
    pearson(&a, &b)
}

/// PCC between two services (columns) of an observed QoS matrix.
pub fn item_similarity(m: &SparseMatrix, item_a: usize, item_b: usize) -> Option<f64> {
    let (a, b) = co_observed_cols(m, item_a, item_b);
    pearson(&a, &b)
}

/// Applies the significance weight `min(n, cap) / cap` to a raw similarity,
/// discounting similarities estimated from few co-observations.
///
/// With `cap = 0` the weight is 1 (no discounting).
pub fn significance_weighted(sim: f64, co_observed: usize, cap: usize) -> f64 {
    if cap == 0 {
        sim
    } else {
        sim * (co_observed.min(cap) as f64 / cap as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_positive_and_negative() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let up = [10.0, 20.0, 30.0, 40.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn undefined_cases() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[], &[]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None); // zero variance in a
    }

    #[test]
    fn uncorrelated_is_near_zero() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&a, &b).unwrap().abs() < 0.5);
    }

    fn example() -> SparseMatrix {
        let mut m = SparseMatrix::new(3, 4);
        // user 0 and user 1 agree on cols 0,1; user 2 is inverted
        m.insert(0, 0, 1.0);
        m.insert(0, 1, 2.0);
        m.insert(0, 2, 3.0);
        m.insert(1, 0, 2.0);
        m.insert(1, 1, 4.0);
        m.insert(1, 3, 9.0);
        m.insert(2, 0, 3.0);
        m.insert(2, 1, 1.0);
        m
    }

    #[test]
    fn co_observed_rows_intersects() {
        let m = example();
        let (a, b) = co_observed_rows(&m, 0, 1);
        assert_eq!(a, vec![1.0, 2.0]);
        assert_eq!(b, vec![2.0, 4.0]);
        let (a, _) = co_observed_rows(&m, 0, 2);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn user_similarity_signs() {
        let m = example();
        assert!((user_similarity(&m, 0, 1).unwrap() - 1.0).abs() < 1e-12);
        assert!((user_similarity(&m, 0, 2).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn item_similarity_on_transposed_pattern() {
        let mut m = SparseMatrix::new(4, 2);
        m.insert(0, 0, 1.0);
        m.insert(0, 1, 2.0);
        m.insert(1, 0, 2.0);
        m.insert(1, 1, 4.0);
        m.insert(2, 0, 3.0);
        m.insert(2, 1, 6.0);
        assert!((item_similarity(&m, 0, 1).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn similarity_none_when_no_overlap() {
        let mut m = SparseMatrix::new(2, 4);
        m.insert(0, 0, 1.0);
        m.insert(0, 1, 2.0);
        m.insert(1, 2, 3.0);
        m.insert(1, 3, 4.0);
        assert_eq!(user_similarity(&m, 0, 1), None);
    }

    #[test]
    fn significance_weighting() {
        assert_eq!(significance_weighted(0.8, 10, 0), 0.8);
        assert!((significance_weighted(0.8, 5, 10) - 0.4).abs() < 1e-12);
        assert_eq!(significance_weighted(0.8, 50, 10), 0.8);
    }

    proptest! {
        #[test]
        fn pearson_is_symmetric(pairs in proptest::collection::vec((-1e2..1e2f64, -1e2..1e2f64), 2..32)) {
            let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            match (pearson(&a, &b), pearson(&b, &a)) {
                (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9),
                (None, None) => {}
                _ => prop_assert!(false, "asymmetric definedness"),
            }
        }

        #[test]
        fn pearson_bounded(pairs in proptest::collection::vec((-1e2..1e2f64, -1e2..1e2f64), 2..32)) {
            let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            if let Some(r) = pearson(&a, &b) {
                prop_assert!((-1.0..=1.0).contains(&r));
            }
        }

        #[test]
        fn pearson_invariant_to_affine(pairs in proptest::collection::vec((-1e2..1e2f64, -1e2..1e2f64), 3..16), scale in 0.1..10.0f64, shift in -5.0..5.0f64) {
            let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let a2: Vec<f64> = a.iter().map(|x| x * scale + shift).collect();
            match (pearson(&a, &b), pearson(&a2, &b)) {
                (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-6),
                (None, None) => {}
                _ => prop_assert!(false, "affine transform changed definedness"),
            }
        }
    }
}
