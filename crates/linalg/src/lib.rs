//! Numeric substrate for the AMF QoS-prediction reproduction.
//!
//! This crate provides the small, self-contained linear-algebra and statistics
//! toolkit that the rest of the workspace builds on:
//!
//! * [`DenseMatrix`] — row-major dense matrix used for full user–service QoS
//!   matrices (e.g. 142 × 4500 slices of the dataset).
//! * [`SparseMatrix`] — coordinate-format sparse matrix representing *observed*
//!   QoS entries (the grey cells of Fig. 4(b) in the paper).
//! * [`svd`] — singular values via a symmetric Jacobi eigensolver on the Gram
//!   matrix, used to reproduce Fig. 9 (sorted singular values).
//! * [`correlation`] — Pearson correlation coefficient over co-observed
//!   entries, the similarity measure behind the UPCC/IPCC/UIPCC baselines.
//! * [`stats`] — means, variances, medians and percentiles (MRE and NPRE are a
//!   median and a 90th percentile respectively).
//! * [`histogram`] — fixed-width density histograms for Figs. 7, 8 and 10.
//! * [`random`] — seeded Gaussian sampling (Box–Muller) on top of `rand`,
//!   avoiding any dependency beyond the approved set.
//! * [`slab`] — read-only kernels over contiguous factor slabs: unrolled
//!   dots, batch row scoring, and bounded-heap top-k selection for the
//!   candidate-ranking query.
//! * [`simd`] — portable `f64x4` lane arithmetic (bitwise identical to
//!   per-lane scalar IEEE ops) plus runtime AVX detection, the substrate of
//!   the fused SGD kernel's vector variant.
//!
//! # Examples
//!
//! ```
//! use qos_linalg::{DenseMatrix, stats};
//!
//! let m = DenseMatrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
//! assert_eq!(m.get(1, 2), 5.0);
//! assert_eq!(stats::mean(m.values()).unwrap(), 2.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correlation;
pub mod histogram;
pub mod matrix;
pub mod random;
pub mod simd;
pub mod slab;
pub mod sparse;
pub mod stats;
pub mod svd;
pub mod vector;

pub use histogram::Histogram;
pub use matrix::DenseMatrix;
pub use sparse::{Entry, SparseMatrix};

/// Error type for shape/validation failures in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Two operands had incompatible dimensions.
    DimensionMismatch {
        /// Dimensions of the left operand (rows, cols).
        left: (usize, usize),
        /// Dimensions of the right operand (rows, cols).
        right: (usize, usize),
    },
    /// An index was out of bounds for the matrix shape.
    IndexOutOfBounds {
        /// Offending index (row, col).
        index: (usize, usize),
        /// Matrix shape (rows, cols).
        shape: (usize, usize),
    },
    /// The input was empty where a non-empty input is required.
    EmptyInput,
    /// An iterative algorithm failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch { left, right } => write!(
                f,
                "dimension mismatch: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            LinalgError::EmptyInput => write!(f, "input was empty"),
            LinalgError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = LinalgError::DimensionMismatch {
            left: (2, 3),
            right: (4, 5),
        };
        assert_eq!(
            e.to_string(),
            "dimension mismatch: left is 2x3, right is 4x5"
        );
        let e = LinalgError::IndexOutOfBounds {
            index: (9, 9),
            shape: (3, 3),
        };
        assert!(e.to_string().contains("out of bounds"));
        let e = LinalgError::EmptyInput;
        assert_eq!(e.to_string(), "input was empty");
        let e = LinalgError::NoConvergence { iterations: 100 };
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
