//! Seeded random sampling helpers on top of `rand`.
//!
//! The approved dependency set does not include `rand_distr`, so the Gaussian
//! sampling needed by the dataset generator and by latent-factor
//! initialization is implemented here with the Box–Muller transform.

use rand::Rng;

/// Draws one standard-normal sample (mean 0, variance 1) via Box–Muller.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(1);
/// let x = qos_linalg::random::gaussian(&mut rng);
/// assert!(x.is_finite());
/// ```
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so ln(u1) is finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws one normal sample with the given mean and standard deviation.
///
/// # Panics
///
/// Panics if `std_dev` is negative.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(std_dev >= 0.0, "standard deviation must be non-negative");
    mean + std_dev * gaussian(rng)
}

/// Fills a vector of length `n` with i.i.d. normal samples.
pub fn normal_vec<R: Rng + ?Sized>(rng: &mut R, n: usize, mean: f64, std_dev: f64) -> Vec<f64> {
    (0..n).map(|_| normal(rng, mean, std_dev)).collect()
}

/// Draws one log-normal sample: `exp(N(mu, sigma))`.
///
/// Heavy-tailed QoS quantities (response time, throughput) are modelled as
/// log-normal in the synthetic dataset, matching the skew of the paper's
/// Fig. 7.
///
/// # Panics
///
/// Panics if `sigma` is negative.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Draws one exponential sample with the given rate parameter.
///
/// # Panics
///
/// Panics if `rate` is not positive.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "rate must be positive");
    let u: f64 = 1.0 - rng.random::<f64>();
    -u.ln() / rate
}

/// Reservoir-free sampling of `k` distinct indices from `0..n` (partial
/// Fisher–Yates). Returned indices are in random order.
///
/// Used to "randomly remove entries from the data matrix" when simulating the
/// paper's sparse matrices at a chosen density.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_indices<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} items from {n}");
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.random_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

/// Shuffles a slice in place (Fisher–Yates).
pub fn shuffle<R: Rng + ?Sized, T>(rng: &mut R, items: &mut [T]) {
    let n = items.len();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut r = rng(42);
        let samples: Vec<f64> = (0..20_000).map(|_| gaussian(&mut r)).collect();
        let mean = crate::stats::mean(&samples).unwrap();
        let sd = crate::stats::std_dev(&samples).unwrap();
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((sd - 1.0).abs() < 0.05, "std {sd}");
    }

    #[test]
    fn normal_respects_parameters() {
        let mut r = rng(1);
        let samples: Vec<f64> = (0..20_000).map(|_| normal(&mut r, 5.0, 2.0)).collect();
        assert!((crate::stats::mean(&samples).unwrap() - 5.0).abs() < 0.1);
        assert!((crate::stats::std_dev(&samples).unwrap() - 2.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn normal_rejects_negative_std() {
        normal(&mut rng(0), 0.0, -1.0);
    }

    #[test]
    fn log_normal_is_positive_and_skewed() {
        let mut r = rng(9);
        let samples: Vec<f64> = (0..10_000).map(|_| log_normal(&mut r, 0.0, 1.0)).collect();
        assert!(samples.iter().all(|&v| v > 0.0));
        // Log-normal is right-skewed.
        assert!(crate::stats::skewness(&samples).unwrap() > 1.0);
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut r = rng(5);
        let samples: Vec<f64> = (0..20_000).map(|_| exponential(&mut r, 2.0)).collect();
        assert!((crate::stats::mean(&samples).unwrap() - 0.5).abs() < 0.02);
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = rng(3);
        let sample = sample_indices(&mut r, 100, 30);
        assert_eq!(sample.len(), 30);
        let set: std::collections::HashSet<usize> = sample.iter().copied().collect();
        assert_eq!(set.len(), 30);
        assert!(sample.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_indices_full_population() {
        let mut r = rng(3);
        let mut sample = sample_indices(&mut r, 10, 10);
        sample.sort_unstable();
        assert_eq!(sample, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_indices_rejects_oversample() {
        sample_indices(&mut rng(0), 3, 4);
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut r = rng(8);
        let mut v: Vec<u32> = (0..50).collect();
        shuffle(&mut r, &mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let a: Vec<f64> = {
            let mut r = rng(77);
            (0..10).map(|_| gaussian(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = rng(77);
            (0..10).map(|_| gaussian(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
