//! Portable `f64x4` lane arithmetic for the training fast path.
//!
//! The fused SGD kernel's element-wise update loop is lane-parallel: each
//! factor component's step depends only on that component of the two
//! vectors. This module provides a four-wide value type whose operations are
//! written as straight per-lane scalar IEEE operations — no fused
//! multiply-add, no reassociation — so a lane kernel built on it is
//! **bit-for-bit identical** to the scalar loop it replaces, while LLVM's
//! vectorizer lowers the lane bodies to packed SSE2/AVX instructions.
//!
//! # Why not `std::arch` intrinsics?
//!
//! The workspace forbids `unsafe` (`#![forbid(unsafe_code)]` across crates),
//! and explicit `_mm256_*` intrinsics require it. The per-lane formulation
//! keeps the safety guarantee and the bitwise contract: Rust never contracts
//! separate `*` and `+` into an FMA (contraction changes rounding), and each
//! lane op is the *same* scalar operation the fallback performs, so the two
//! paths cannot diverge. The property tests in `amf-core::online` pin this.
//!
//! # Runtime dispatch
//!
//! [`f64x4_runtime`] reports whether the host has 256-bit vector units
//! (AVX). Callers use it to pick between a lane-structured kernel and the
//! plain scalar loop; because both are bitwise identical, the choice affects
//! only speed, never results — which is what lets the bitwise-parity engine
//! and the relaxed fast lane share one dispatch decision.

use std::sync::OnceLock;

/// Four `f64` lanes, operated on element-wise.
///
/// All operations are per-lane scalar IEEE arithmetic in a fixed order:
/// `F64x4` math is bitwise identical to running the scalar equivalent on
/// each lane independently.
///
/// # Examples
///
/// ```
/// use qos_linalg::simd::F64x4;
///
/// let a = F64x4::load(&[1.0, 2.0, 3.0, 4.0]);
/// let b = F64x4::splat(0.5);
/// let mut out = [0.0; 4];
/// a.mul(b).store(&mut out);
/// assert_eq!(out, [0.5, 1.0, 1.5, 2.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F64x4([f64; 4]);

// Inherent `add`/`sub`/`mul` rather than the std ops traits: operator
// syntax would read as ordinary arithmetic, while the method-call form
// (matching `std::simd`) keeps lane-wise semantics visible at call sites.
#[allow(clippy::should_implement_trait)]
impl F64x4 {
    /// Loads four lanes from the first four elements of `src`.
    ///
    /// # Panics
    ///
    /// Panics if `src` has fewer than four elements.
    #[inline(always)]
    pub fn load(src: &[f64]) -> Self {
        Self([src[0], src[1], src[2], src[3]])
    }

    /// All four lanes set to `value`.
    #[inline(always)]
    pub fn splat(value: f64) -> Self {
        Self([value; 4])
    }

    /// Writes the four lanes into the first four elements of `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` has fewer than four elements.
    #[inline(always)]
    pub fn store(self, dst: &mut [f64]) {
        dst[..4].copy_from_slice(&self.0);
    }

    /// Lane-wise addition.
    #[inline(always)]
    #[must_use]
    pub fn add(self, rhs: Self) -> Self {
        Self(std::array::from_fn(|k| self.0[k] + rhs.0[k]))
    }

    /// Lane-wise subtraction.
    #[inline(always)]
    #[must_use]
    pub fn sub(self, rhs: Self) -> Self {
        Self(std::array::from_fn(|k| self.0[k] - rhs.0[k]))
    }

    /// Lane-wise multiplication.
    #[inline(always)]
    #[must_use]
    pub fn mul(self, rhs: Self) -> Self {
        Self(std::array::from_fn(|k| self.0[k] * rhs.0[k]))
    }

    /// Lane-wise `self * b + c` as **two** rounded operations (multiply,
    /// then add) — deliberately not an FMA, whose single rounding would
    /// break bitwise agreement with the scalar kernel.
    #[inline(always)]
    #[must_use]
    pub fn mul_add_unfused(self, b: Self, c: Self) -> Self {
        Self(std::array::from_fn(|k| self.0[k] * b.0[k] + c.0[k]))
    }

    /// Lane-wise [`f64::clamp`] — identical NaN propagation and edge
    /// behaviour to the scalar call.
    #[inline(always)]
    #[must_use]
    pub fn clamp(self, lo: f64, hi: f64) -> Self {
        Self(std::array::from_fn(|k| self.0[k].clamp(lo, hi)))
    }

    /// The lanes as an array.
    #[inline(always)]
    pub fn to_array(self) -> [f64; 4] {
        self.0
    }
}

/// Whether the host CPU has 256-bit vector units (AVX on x86-64), making
/// the four-wide lane kernel worth dispatching to. Detected once and cached.
///
/// On non-x86-64 targets this returns `false` and callers fall back to the
/// scalar loop; the lane kernel itself is portable safe Rust either way, so
/// the flag gates *profitability*, not correctness.
pub fn f64x4_runtime() -> bool {
    static DETECTED: OnceLock<bool> = OnceLock::new();
    *DETECTED.get_or_init(detect)
}

#[cfg(target_arch = "x86_64")]
fn detect() -> bool {
    std::arch::is_x86_feature_detected!("avx")
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn load_store_roundtrip() {
        let src = [1.5, -2.25, 0.0, f64::MAX];
        let mut dst = [0.0; 4];
        F64x4::load(&src).store(&mut dst);
        assert_eq!(src, dst);
    }

    #[test]
    fn detection_is_stable() {
        assert_eq!(f64x4_runtime(), f64x4_runtime());
    }

    #[test]
    fn clamp_propagates_nan_like_scalar() {
        let v = F64x4::load(&[f64::NAN, 2.0, -2.0, 0.5]).clamp(-1.0, 1.0);
        let got = v.to_array();
        assert!(got[0].is_nan());
        assert_eq!(&got[1..], &[1.0, -1.0, 0.5]);
    }

    proptest! {
        #[test]
        fn every_op_is_bitwise_identical_to_per_lane_scalar(
            at in (-1e6..1e6f64, -1e6..1e6f64, -1e6..1e6f64, -1e6..1e6f64),
            bt in (-1e6..1e6f64, -1e6..1e6f64, -1e6..1e6f64, -1e6..1e6f64),
            ct in (-1e6..1e6f64, -1e6..1e6f64, -1e6..1e6f64, -1e6..1e6f64),
        ) {
            let a = [at.0, at.1, at.2, at.3];
            let b = [bt.0, bt.1, bt.2, bt.3];
            let c = [ct.0, ct.1, ct.2, ct.3];
            let (va, vb, vc) = (F64x4(a), F64x4(b), F64x4(c));
            for k in 0..4 {
                prop_assert_eq!(va.add(vb).0[k].to_bits(), (a[k] + b[k]).to_bits());
                prop_assert_eq!(va.sub(vb).0[k].to_bits(), (a[k] - b[k]).to_bits());
                prop_assert_eq!(va.mul(vb).0[k].to_bits(), (a[k] * b[k]).to_bits());
                prop_assert_eq!(
                    va.mul_add_unfused(vb, vc).0[k].to_bits(),
                    (a[k] * b[k] + c[k]).to_bits()
                );
                prop_assert_eq!(
                    va.clamp(-0.25, 0.25).0[k].to_bits(),
                    a[k].clamp(-0.25, 0.25).to_bits()
                );
            }
        }
    }
}
