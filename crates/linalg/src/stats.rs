//! Scalar statistics: means, variances, medians, percentiles.
//!
//! The paper's headline metrics are order statistics of the relative-error
//! distribution — MRE is a median and NPRE is a 90th percentile — so the
//! percentile implementation here is the foundation of `qos-metrics`.

/// Arithmetic mean, or `None` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(qos_linalg::stats::mean(&[1.0, 2.0, 3.0]), Some(2.0));
/// assert_eq!(qos_linalg::stats::mean(&[]), None);
/// ```
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Population variance, or `None` for an empty slice.
pub fn variance(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    Some(values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64)
}

/// Population standard deviation, or `None` for an empty slice.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    variance(values).map(f64::sqrt)
}

/// Minimum value, ignoring NaNs; `None` when no finite value exists.
pub fn min(values: &[f64]) -> Option<f64> {
    values
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
}

/// Maximum value, ignoring NaNs; `None` when no finite value exists.
pub fn max(values: &[f64]) -> Option<f64> {
    values
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
}

/// `p`-th percentile (0.0 ..= 100.0) with linear interpolation between ranks,
/// matching the common "exclusive of NaN, inclusive of endpoints" definition.
///
/// Returns `None` for empty input. Input need not be sorted.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
///
/// # Examples
///
/// ```
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(qos_linalg::stats::percentile(&xs, 0.0), Some(1.0));
/// assert_eq!(qos_linalg::stats::percentile(&xs, 100.0), Some(4.0));
/// assert_eq!(qos_linalg::stats::percentile(&xs, 50.0), Some(2.5));
/// ```
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered"));
    Some(percentile_of_sorted(&sorted, p))
}

/// `p`-th percentile of a pre-sorted, NaN-free, non-empty slice.
///
/// Useful when multiple percentiles are needed from the same data (e.g. MRE
/// and NPRE of one error vector): sort once, query many times.
///
/// # Panics
///
/// Panics if `sorted` is empty or if `p` is outside `[0, 100]`.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty input");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile), or `None` for empty input.
pub fn median(values: &[f64]) -> Option<f64> {
    percentile(values, 50.0)
}

/// Exponential moving average step: `new = factor * sample + (1 - factor) * old`.
///
/// This is the update the paper applies to the per-user and per-service error
/// trackers `e_u`, `e_s` (Eq. 13–14), with `factor = beta * w`.
///
/// # Examples
///
/// ```
/// let e = qos_linalg::stats::ema_step(1.0, 0.0, 0.3);
/// assert!((e - 0.3).abs() < 1e-12);
/// ```
#[inline]
pub fn ema_step(sample: f64, old: f64, factor: f64) -> f64 {
    factor * sample + (1.0 - factor) * old
}

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of (non-NaN) samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes a summary, or `None` when no finite samples exist.
    pub fn of(values: &[f64]) -> Option<Self> {
        let clean: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        if clean.is_empty() {
            return None;
        }
        Some(Self {
            count: clean.len(),
            mean: mean(&clean)?,
            std_dev: std_dev(&clean)?,
            min: min(&clean)?,
            median: median(&clean)?,
            max: max(&clean)?,
        })
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4} min={:.4} median={:.4} max={:.4}",
            self.count, self.mean, self.std_dev, self.min, self.median, self.max
        )
    }
}

/// Skewness (third standardized moment) of a sample; `None` if fewer than two
/// distinct values. Positive skew indicates a long right tail — the paper's
/// raw QoS distributions (Fig. 7) are strongly right-skewed, and the Box–Cox
/// transform is judged by how much it shrinks this quantity (Fig. 8).
pub fn skewness(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    let sd = std_dev(values)?;
    if sd == 0.0 {
        return None;
    }
    let n = values.len() as f64;
    Some(values.iter().map(|v| ((v - m) / sd).powi(3)).sum::<f64>() / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_empty_is_none() {
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[4.0; 10]), Some(0.0));
    }

    #[test]
    fn std_dev_known() {
        // population std of [2, 4, 4, 4, 5, 5, 7, 9] is 2
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_ignore_nan() {
        let xs = [f64::NAN, 3.0, -1.0, f64::NAN];
        assert_eq!(min(&xs), Some(-1.0));
        assert_eq!(max(&xs), Some(3.0));
        assert_eq!(min(&[f64::NAN]), None);
    }

    #[test]
    fn percentile_endpoints_and_median() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(5.0));
        assert_eq!(median(&xs), Some(3.0));
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0];
        assert_eq!(percentile(&xs, 25.0), Some(12.5));
        assert_eq!(percentile(&xs, 90.0), Some(19.0));
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 90.0), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0, 100]")]
    fn percentile_rejects_out_of_range() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn ninety_percentile_matches_paper_usage() {
        // 10 equally likely relative errors; NPRE is the 90th percentile.
        let errs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let npre = percentile(&errs, 90.0).unwrap();
        assert!((npre - 9.1).abs() < 1e-12);
    }

    #[test]
    fn ema_step_moves_towards_sample() {
        let old = 1.0;
        let updated = ema_step(0.0, old, 0.3);
        assert!(updated < old && updated > 0.0);
        assert_eq!(ema_step(5.0, 1.0, 1.0), 5.0);
        assert_eq!(ema_step(5.0, 1.0, 0.0), 1.0);
    }

    #[test]
    fn summary_display_and_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.median, 2.0);
        assert!(s.to_string().contains("n=3"));
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn skewness_signs() {
        // right-skewed: long right tail
        let right = [1.0, 1.0, 1.0, 1.0, 10.0];
        assert!(skewness(&right).unwrap() > 0.0);
        let left = [10.0, 10.0, 10.0, 10.0, 1.0];
        assert!(skewness(&left).unwrap() < 0.0);
        let sym = [1.0, 2.0, 3.0];
        assert!(skewness(&sym).unwrap().abs() < 1e-12);
        assert_eq!(skewness(&[2.0, 2.0]), None);
    }

    proptest! {
        #[test]
        fn percentile_is_monotone(xs in proptest::collection::vec(-1e3..1e3f64, 1..64), p1 in 0.0..100.0f64, p2 in 0.0..100.0f64) {
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let a = percentile(&xs, lo).unwrap();
            let b = percentile(&xs, hi).unwrap();
            prop_assert!(a <= b + 1e-9);
        }

        #[test]
        fn percentile_within_minmax(xs in proptest::collection::vec(-1e3..1e3f64, 1..64), p in 0.0..100.0f64) {
            let v = percentile(&xs, p).unwrap();
            prop_assert!(v >= min(&xs).unwrap() - 1e-9);
            prop_assert!(v <= max(&xs).unwrap() + 1e-9);
        }

        #[test]
        fn mean_within_minmax(xs in proptest::collection::vec(-1e3..1e3f64, 1..64)) {
            let m = mean(&xs).unwrap();
            prop_assert!(m >= min(&xs).unwrap() - 1e-9 && m <= max(&xs).unwrap() + 1e-9);
        }

        #[test]
        fn ema_stays_within_bounds(sample in 0.0..10.0f64, old in 0.0..10.0f64, factor in 0.0..1.0f64) {
            let v = ema_step(sample, old, factor);
            let lo = sample.min(old);
            let hi = sample.max(old);
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
        }
    }
}
