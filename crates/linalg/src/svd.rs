//! Singular values via a symmetric Jacobi eigensolver on the Gram matrix.
//!
//! Fig. 9 of the paper sorts the normalized singular values of the 142 × 4500
//! user–service QoS matrices to show they are approximately low-rank. For a
//! matrix `A` with `rows ≤ cols` the eigenvalues of the Gram matrix
//! `G = A Aᵀ` (only `rows × rows`) are the squared singular values of `A`,
//! so we diagonalize `G` with the classical cyclic Jacobi method — simple,
//! numerically robust for symmetric matrices, and entirely dependency-free.

use crate::{DenseMatrix, LinalgError};

/// Default maximum number of Jacobi sweeps.
pub const DEFAULT_MAX_SWEEPS: usize = 64;

/// Computes all singular values of `a`, sorted in descending order.
///
/// Cost is `O(min(m, n)^3)` plus one `O(m n min(m, n))` Gram product, which is
/// ideal for the paper's short-and-wide QoS matrices.
///
/// # Errors
///
/// Returns [`LinalgError::EmptyInput`] for an empty matrix and
/// [`LinalgError::NoConvergence`] if the Jacobi sweeps fail to drive the
/// off-diagonal mass below tolerance (practically unreachable for finite
/// input).
///
/// # Examples
///
/// ```
/// use qos_linalg::{DenseMatrix, svd::singular_values};
///
/// // A rank-1 matrix has exactly one non-zero singular value.
/// let a = DenseMatrix::from_fn(3, 4, |i, j| ((i + 1) * (j + 1)) as f64);
/// let sv = singular_values(&a).unwrap();
/// assert!(sv[0] > 1.0);
/// assert!(sv[1] < 1e-9);
/// ```
pub fn singular_values(a: &DenseMatrix) -> Result<Vec<f64>, LinalgError> {
    if a.rows() == 0 || a.cols() == 0 {
        return Err(LinalgError::EmptyInput);
    }
    // Work on the smaller Gram matrix.
    let gram = if a.rows() <= a.cols() {
        a.gram()
    } else {
        a.transpose().gram()
    };
    let mut eig = symmetric_eigenvalues(&gram, DEFAULT_MAX_SWEEPS)?;
    // Numerical noise can push tiny eigenvalues slightly negative.
    for v in eig.iter_mut() {
        *v = v.max(0.0).sqrt();
    }
    eig.sort_by(|x, y| y.partial_cmp(x).expect("finite singular values"));
    Ok(eig)
}

/// Singular values normalized so the largest equals 1, sorted descending —
/// exactly the y-axis of the paper's Fig. 9.
///
/// # Errors
///
/// Propagates the errors of [`singular_values`]; additionally returns
/// [`LinalgError::EmptyInput`] if all singular values are zero.
pub fn normalized_singular_values(a: &DenseMatrix) -> Result<Vec<f64>, LinalgError> {
    let sv = singular_values(a)?;
    let largest = sv[0];
    if largest == 0.0 {
        return Err(LinalgError::EmptyInput);
    }
    Ok(sv.into_iter().map(|v| v / largest).collect())
}

/// Effective rank: the number of normalized singular values above `threshold`.
///
/// The paper observes that "except the first few largest singular values, most
/// of them are close to 0"; this helper quantifies that claim.
///
/// # Errors
///
/// Propagates the errors of [`normalized_singular_values`].
pub fn effective_rank(a: &DenseMatrix, threshold: f64) -> Result<usize, LinalgError> {
    Ok(normalized_singular_values(a)?
        .into_iter()
        .filter(|&v| v > threshold)
        .count())
}

/// Eigenvalues of a symmetric matrix via cyclic Jacobi rotations.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] if the matrix is not square,
/// [`LinalgError::EmptyInput`] if it is empty, and
/// [`LinalgError::NoConvergence`] if `max_sweeps` is exhausted.
pub fn symmetric_eigenvalues(m: &DenseMatrix, max_sweeps: usize) -> Result<Vec<f64>, LinalgError> {
    if m.rows() != m.cols() {
        return Err(LinalgError::DimensionMismatch {
            left: m.shape(),
            right: (m.cols(), m.rows()),
        });
    }
    let n = m.rows();
    if n == 0 {
        return Err(LinalgError::EmptyInput);
    }
    if n == 1 {
        return Ok(vec![m.get(0, 0)]);
    }

    let mut a = m.clone();
    // Tolerance scales with the matrix magnitude.
    let scale = a.frobenius_norm().max(f64::MIN_POSITIVE);
    let tol = 1e-14 * scale;

    for sweep in 0..max_sweeps {
        let off = off_diagonal_norm(&a);
        if off <= tol {
            let _ = sweep;
            return Ok((0..n).map(|i| a.get(i, i)).collect());
        }
        for p in 0..n - 1 {
            for q in p + 1..n {
                let apq = a.get(p, q);
                if apq.abs() <= tol / (n * n) as f64 {
                    continue;
                }
                let app = a.get(p, p);
                let aqq = a.get(q, q);
                // Classic Jacobi rotation computation.
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply rotation to rows/cols p and q.
                for k in 0..n {
                    let akp = a.get(k, p);
                    let akq = a.get(k, q);
                    a.set(k, p, c * akp - s * akq);
                    a.set(k, q, s * akp + c * akq);
                }
                for k in 0..n {
                    let apk = a.get(p, k);
                    let aqk = a.get(q, k);
                    a.set(p, k, c * apk - s * aqk);
                    a.set(q, k, s * apk + c * aqk);
                }
            }
        }
    }
    if off_diagonal_norm(&a) <= tol {
        Ok((0..n).map(|i| a.get(i, i)).collect())
    } else {
        Err(LinalgError::NoConvergence {
            iterations: max_sweeps,
        })
    }
}

/// A rank-`k` truncated singular value decomposition `A ≈ U·diag(σ)·Vᵀ`.
#[derive(Debug, Clone)]
pub struct TruncatedSvd {
    /// Left singular vectors, `rows × k` (columns orthonormal to the
    /// iteration tolerance, ~1e-6).
    pub u: DenseMatrix,
    /// Singular values in descending order (length `k`).
    pub singular_values: Vec<f64>,
    /// Right singular vectors, `cols × k` (columns are orthonormal).
    pub v: DenseMatrix,
}

impl TruncatedSvd {
    /// Reconstructs the rank-`k` approximation `U·diag(σ)·Vᵀ`.
    pub fn reconstruct(&self) -> DenseMatrix {
        let k = self.singular_values.len();
        DenseMatrix::from_fn(self.u.rows(), self.v.rows(), |i, j| {
            (0..k)
                .map(|r| self.u.get(i, r) * self.singular_values[r] * self.v.get(j, r))
                .sum()
        })
    }
}

/// Computes the top-`k` singular triplets of `a` by subspace (orthogonal)
/// iteration on `AᵀA`, touching `A` only through matrix–vector products.
///
/// Deterministic given `seed`. The extension beyond Fig. 9's needs: singular
/// *vectors* enable low-rank reconstruction (SVD imputation) and subspace
/// analysis of the QoS matrix.
///
/// # Errors
///
/// Returns [`LinalgError::EmptyInput`] for an empty matrix or `k = 0`, and
/// [`LinalgError::DimensionMismatch`] when `k > min(rows, cols)`.
pub fn truncated(a: &DenseMatrix, k: usize, seed: u64) -> Result<TruncatedSvd, LinalgError> {
    let (n, m) = a.shape();
    if n == 0 || m == 0 || k == 0 {
        return Err(LinalgError::EmptyInput);
    }
    if k > n.min(m) {
        return Err(LinalgError::DimensionMismatch {
            left: (k, k),
            right: (n.min(m), n.min(m)),
        });
    }

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);

    // Random start, orthonormalized: V is m × k stored as k column vectors.
    let mut v: Vec<Vec<f64>> = (0..k)
        .map(|_| crate::random::normal_vec(&mut rng, m, 0.0, 1.0))
        .collect();
    gram_schmidt(&mut v);

    let sweeps = 100;
    let tol = 1e-12;
    let mut prev_sigmas = vec![0.0; k];
    for _ in 0..sweeps {
        // W = Aᵀ (A V), column by column.
        let mut w: Vec<Vec<f64>> = v.iter().map(|col| a.matvec_t(&a.matvec(col))).collect();
        gram_schmidt(&mut w);
        v = w;

        // Rayleigh estimates of the singular values.
        let sigmas: Vec<f64> = v
            .iter()
            .map(|col| crate::vector::norm2(&a.matvec(col)))
            .collect();
        let moved = sigmas
            .iter()
            .zip(&prev_sigmas)
            .map(|(s, p)| (s - p).abs())
            .fold(0.0, f64::max);
        prev_sigmas = sigmas;
        if moved < tol * (1.0 + prev_sigmas[0]) {
            break;
        }
    }

    // Assemble U, sigma, V sorted by descending sigma.
    let mut triplets: Vec<(f64, Vec<f64>, Vec<f64>)> = v
        .into_iter()
        .map(|col| {
            let av = a.matvec(&col);
            let sigma = crate::vector::norm2(&av);
            let u = if sigma > 0.0 {
                av.iter().map(|x| x / sigma).collect()
            } else {
                vec![0.0; n]
            };
            (sigma, u, col)
        })
        .collect();
    triplets.sort_by(|x, y| y.0.partial_cmp(&x.0).expect("finite singular values"));

    let singular_values: Vec<f64> = triplets.iter().map(|t| t.0).collect();
    let u = DenseMatrix::from_fn(n, k, |i, j| triplets[j].1[i]);
    let v = DenseMatrix::from_fn(m, k, |i, j| triplets[j].2[i]);
    Ok(TruncatedSvd {
        u,
        singular_values,
        v,
    })
}

/// In-place modified Gram–Schmidt orthonormalization of column vectors.
/// Degenerate (near-zero) columns are replaced by zero vectors.
fn gram_schmidt(columns: &mut [Vec<f64>]) {
    for i in 0..columns.len() {
        for j in 0..i {
            let proj = crate::vector::dot(&columns[i], &columns[j]);
            let other = columns[j].clone();
            crate::vector::axpy(-proj, &other, &mut columns[i]);
        }
        let norm = crate::vector::norm2(&columns[i]);
        if norm > 1e-12 {
            crate::vector::scale(1.0 / norm, &mut columns[i]);
        } else {
            for x in columns[i].iter_mut() {
                *x = 0.0;
            }
        }
    }
}

fn off_diagonal_norm(a: &DenseMatrix) -> f64 {
    let n = a.rows();
    let mut sum = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                sum += a.get(i, j) * a.get(i, j);
            }
        }
    }
    sum.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::gaussian;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn eigenvalues_of_diagonal() {
        let m = DenseMatrix::from_fn(3, 3, |i, j| if i == j { (i + 1) as f64 } else { 0.0 });
        let mut eig = symmetric_eigenvalues(&m, 8).unwrap();
        eig.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((eig[0] - 1.0).abs() < 1e-10);
        assert!((eig[1] - 2.0).abs() < 1e-10);
        assert!((eig[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn eigenvalues_of_known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let m = DenseMatrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let mut eig = symmetric_eigenvalues(&m, 8).unwrap();
        eig.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((eig[0] - 1.0).abs() < 1e-12);
        assert!((eig[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn eigen_rejects_non_square() {
        let m = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            symmetric_eigenvalues(&m, 8),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn singular_values_of_identity() {
        let id = DenseMatrix::from_fn(4, 4, |i, j| if i == j { 1.0 } else { 0.0 });
        let sv = singular_values(&id).unwrap();
        for v in sv {
            assert!((v - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn singular_values_of_rank_one() {
        let a = DenseMatrix::from_fn(3, 5, |i, j| ((i + 1) * (j + 1)) as f64);
        let sv = singular_values(&a).unwrap();
        assert_eq!(sv.len(), 3);
        assert!(sv[0] > 1.0);
        assert!(sv[1].abs() < 1e-8);
        assert!(sv[2].abs() < 1e-8);
    }

    #[test]
    fn singular_values_match_frobenius() {
        // sum of squared singular values == squared Frobenius norm
        let mut rng = StdRng::seed_from_u64(7);
        let a = DenseMatrix::from_fn(6, 9, |_, _| gaussian(&mut rng));
        let sv = singular_values(&a).unwrap();
        let sum_sq: f64 = sv.iter().map(|v| v * v).sum();
        let fro_sq = a.frobenius_norm().powi(2);
        assert!((sum_sq - fro_sq).abs() / fro_sq < 1e-9);
    }

    #[test]
    fn singular_values_invariant_to_transpose() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = DenseMatrix::from_fn(4, 7, |_, _| gaussian(&mut rng));
        let sv1 = singular_values(&a).unwrap();
        let sv2 = singular_values(&a.transpose()).unwrap();
        for (x, y) in sv1.iter().zip(&sv2) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    #[test]
    fn normalized_largest_is_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = DenseMatrix::from_fn(5, 8, |_, _| gaussian(&mut rng) + 1.0);
        let sv = normalized_singular_values(&a).unwrap();
        assert!((sv[0] - 1.0).abs() < 1e-12);
        assert!(sv.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn normalized_rejects_zero_matrix() {
        let z = DenseMatrix::zeros(3, 3);
        assert!(normalized_singular_values(&z).is_err());
    }

    #[test]
    fn effective_rank_of_low_rank_matrix() {
        // rank-2 matrix: sum of two outer products
        let u1 = [1.0, 2.0, 3.0, 4.0];
        let u2 = [1.0, -1.0, 1.0, -1.0];
        let v1 = [2.0, 0.5, 1.0, 3.0, 1.5];
        let v2 = [1.0, 2.0, -1.0, 0.5, 2.5];
        let a = DenseMatrix::from_fn(4, 5, |i, j| u1[i] * v1[j] + u2[i] * v2[j]);
        assert_eq!(effective_rank(&a, 1e-8).unwrap(), 2);
    }

    #[test]
    fn empty_matrix_rejected() {
        let a = DenseMatrix::zeros(0, 5);
        assert_eq!(singular_values(&a).unwrap_err(), LinalgError::EmptyInput);
    }

    #[test]
    fn one_by_one() {
        let a = DenseMatrix::from_vec(1, 1, vec![-4.0]).unwrap();
        let sv = singular_values(&a).unwrap();
        assert!((sv[0] - 4.0).abs() < 1e-12);
    }

    mod truncated_svd {
        use super::super::*;
        use crate::random::gaussian;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        /// Low-rank-plus-noise test matrix.
        fn low_rank_matrix(n: usize, m: usize, rank: usize, noise: f64) -> DenseMatrix {
            let mut rng = StdRng::seed_from_u64(17);
            let u = DenseMatrix::from_fn(n, rank, |_, _| gaussian(&mut rng));
            let v = DenseMatrix::from_fn(m, rank, |_, _| gaussian(&mut rng));
            let mut a = DenseMatrix::from_fn(n, m, |i, j| {
                (0..rank)
                    .map(|r| u.get(i, r) * (rank - r) as f64 * v.get(j, r))
                    .sum()
            });
            if noise > 0.0 {
                a.map_inplace(|x| x + noise * gaussian(&mut rng));
            }
            a
        }

        #[test]
        fn matches_jacobi_singular_values() {
            let a = low_rank_matrix(12, 20, 4, 0.01);
            let full = singular_values(&a).unwrap();
            let trunc = truncated(&a, 4, 1).unwrap();
            for (j, t) in full.iter().zip(&trunc.singular_values) {
                assert!(
                    (j - t).abs() / j.max(1e-9) < 1e-6,
                    "jacobi {j} vs truncated {t}"
                );
            }
        }

        #[test]
        fn reconstructs_exact_low_rank() {
            let a = low_rank_matrix(10, 14, 3, 0.0);
            let svd = truncated(&a, 3, 2).unwrap();
            let approx = svd.reconstruct();
            for i in 0..10 {
                for j in 0..14 {
                    assert!(
                        (approx.get(i, j) - a.get(i, j)).abs() < 1e-8,
                        "({i},{j}): {} vs {}",
                        approx.get(i, j),
                        a.get(i, j)
                    );
                }
            }
        }

        #[test]
        fn singular_vectors_are_orthonormal() {
            let a = low_rank_matrix(9, 15, 5, 0.05);
            let svd = truncated(&a, 5, 3).unwrap();
            for side in [&svd.u, &svd.v] {
                for p in 0..5 {
                    for q in 0..5 {
                        let dot = crate::vector::dot(&side.col(p), &side.col(q));
                        let expected = if p == q { 1.0 } else { 0.0 };
                        // U is orthonormal only to the iteration tolerance.
                        assert!((dot - expected).abs() < 1e-5, "columns {p},{q}: dot {dot}");
                    }
                }
            }
        }

        #[test]
        fn values_descend() {
            let a = low_rank_matrix(8, 8, 4, 0.1);
            let svd = truncated(&a, 4, 4).unwrap();
            assert!(svd.singular_values.windows(2).all(|w| w[0] >= w[1] - 1e-9));
        }

        #[test]
        fn deterministic_given_seed() {
            let a = low_rank_matrix(8, 10, 3, 0.05);
            let s1 = truncated(&a, 3, 7).unwrap();
            let s2 = truncated(&a, 3, 7).unwrap();
            assert_eq!(s1.singular_values, s2.singular_values);
        }

        #[test]
        fn rejects_bad_inputs() {
            let a = low_rank_matrix(4, 6, 2, 0.0);
            assert!(truncated(&a, 0, 1).is_err());
            assert!(truncated(&a, 5, 1).is_err());
            assert!(truncated(&DenseMatrix::zeros(0, 3), 1, 1).is_err());
        }
    }
}
