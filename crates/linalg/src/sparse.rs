//! Coordinate-format sparse matrix of observed QoS entries.
//!
//! In the paper the observed user–service QoS matrix is very sparse ("each
//! user usually only invokes a handful of services"), and both the baselines
//! and AMF train on exactly the observed entries (`I_ij = 1` in Eq. 1). A
//! [`SparseMatrix`] stores those entries plus a row/column index for the
//! neighborhood baselines that need fast row and column scans.

use crate::{DenseMatrix, LinalgError};
use serde::{Deserialize, Serialize};

/// A single observed entry `(row, col, value)` — one user–service QoS sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Entry {
    /// Row (user) index.
    pub row: usize,
    /// Column (service) index.
    pub col: usize,
    /// Observed value (e.g. response time in seconds).
    pub value: f64,
}

impl Entry {
    /// Creates an entry.
    pub fn new(row: usize, col: usize, value: f64) -> Self {
        Self { row, col, value }
    }
}

/// Sparse matrix in coordinate format with per-row and per-column adjacency.
///
/// Duplicate `(row, col)` inserts overwrite the previous value, mirroring how
/// a QoS matrix cell is refreshed by a newer observation.
///
/// # Examples
///
/// ```
/// use qos_linalg::SparseMatrix;
///
/// let mut m = SparseMatrix::new(4, 5);
/// m.insert(0, 0, 1.4);
/// m.insert(0, 2, 1.1);
/// assert_eq!(m.get(0, 0), Some(1.4));
/// assert_eq!(m.get(0, 1), None);
/// assert_eq!(m.nnz(), 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    /// Entry storage; `row_index`/`col_index` point into this vector.
    entries: Vec<Entry>,
    /// For each row, indices into `entries`.
    row_index: Vec<Vec<usize>>,
    /// For each column, indices into `entries`.
    col_index: Vec<Vec<usize>>,
}

impl SparseMatrix {
    /// Creates an empty `rows x cols` sparse matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::new(),
            row_index: vec![Vec::new(); rows],
            col_index: vec![Vec::new(); cols],
        }
    }

    /// Number of rows (users).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (services).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored (observed) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Fraction of cells that are observed — the paper's "matrix density".
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows * self.cols) as f64
        }
    }

    /// Inserts or overwrites the value at `(row, col)`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IndexOutOfBounds`] when outside the shape.
    pub fn try_insert(&mut self, row: usize, col: usize, value: f64) -> Result<(), LinalgError> {
        if row >= self.rows || col >= self.cols {
            return Err(LinalgError::IndexOutOfBounds {
                index: (row, col),
                shape: self.shape(),
            });
        }
        if let Some(&idx) = self.row_index[row]
            .iter()
            .find(|&&i| self.entries[i].col == col)
        {
            self.entries[idx].value = value;
            return Ok(());
        }
        let idx = self.entries.len();
        self.entries.push(Entry::new(row, col, value));
        self.row_index[row].push(idx);
        self.col_index[col].push(idx);
        Ok(())
    }

    /// Inserts or overwrites the value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when `(row, col)` is outside the shape; use
    /// [`SparseMatrix::try_insert`] for a checked variant.
    pub fn insert(&mut self, row: usize, col: usize, value: f64) {
        self.try_insert(row, col, value)
            .expect("insert out of bounds");
    }

    /// Observed value at `(row, col)`, or `None` if the cell is unobserved.
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        if row >= self.rows || col >= self.cols {
            return None;
        }
        self.row_index[row]
            .iter()
            .find(|&&i| self.entries[i].col == col)
            .map(|&i| self.entries[i].value)
    }

    /// Whether `(row, col)` is observed (the indicator `I_ij` of Eq. 1).
    pub fn contains(&self, row: usize, col: usize) -> bool {
        self.get(row, col).is_some()
    }

    /// Iterator over all observed entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Entry> + '_ {
        self.entries.iter()
    }

    /// Iterator over `(col, value)` pairs observed in row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    pub fn row_iter(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(row < self.rows, "row index out of bounds");
        self.row_index[row]
            .iter()
            .map(move |&i| (self.entries[i].col, self.entries[i].value))
    }

    /// Iterator over `(row, value)` pairs observed in column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col >= cols`.
    pub fn col_iter(&self, col: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(col < self.cols, "column index out of bounds");
        self.col_index[col]
            .iter()
            .map(move |&i| (self.entries[i].row, self.entries[i].value))
    }

    /// Number of observed entries in row `row`.
    pub fn row_nnz(&self, row: usize) -> usize {
        self.row_index.get(row).map_or(0, Vec::len)
    }

    /// Number of observed entries in column `col`.
    pub fn col_nnz(&self, col: usize) -> usize {
        self.col_index.get(col).map_or(0, Vec::len)
    }

    /// Mean of the observed values in row `row`, or `None` if the row is empty.
    pub fn row_mean(&self, row: usize) -> Option<f64> {
        let n = self.row_nnz(row);
        if n == 0 {
            return None;
        }
        Some(self.row_iter(row).map(|(_, v)| v).sum::<f64>() / n as f64)
    }

    /// Mean of the observed values in column `col`, or `None` if empty.
    pub fn col_mean(&self, col: usize) -> Option<f64> {
        let n = self.col_nnz(col);
        if n == 0 {
            return None;
        }
        Some(self.col_iter(col).map(|(_, v)| v).sum::<f64>() / n as f64)
    }

    /// Mean over all observed values, or `None` if the matrix is empty.
    pub fn mean(&self) -> Option<f64> {
        if self.entries.is_empty() {
            return None;
        }
        Some(self.entries.iter().map(|e| e.value).sum::<f64>() / self.entries.len() as f64)
    }

    /// Densifies into a [`DenseMatrix`], filling unobserved cells with `fill`.
    pub fn to_dense(&self, fill: f64) -> DenseMatrix {
        let mut m = DenseMatrix::filled(self.rows, self.cols, fill);
        for e in &self.entries {
            m.set(e.row, e.col, e.value);
        }
        m
    }

    /// Returns a new sparse matrix with `f` applied to every stored value.
    pub fn map_values<F: FnMut(f64) -> f64>(&self, mut f: F) -> Self {
        let mut out = self.clone();
        for e in out.entries.iter_mut() {
            e.value = f(e.value);
        }
        out
    }

    /// Collects all observed values into a vector (row-insertion order).
    pub fn observed_values(&self) -> Vec<f64> {
        self.entries.iter().map(|e| e.value).collect()
    }
}

impl FromIterator<Entry> for SparseMatrix {
    /// Builds a sparse matrix sized to fit the maximum indices seen.
    fn from_iter<I: IntoIterator<Item = Entry>>(iter: I) -> Self {
        let entries: Vec<Entry> = iter.into_iter().collect();
        let rows = entries.iter().map(|e| e.row + 1).max().unwrap_or(0);
        let cols = entries.iter().map(|e| e.col + 1).max().unwrap_or(0);
        let mut m = SparseMatrix::new(rows, cols);
        for e in entries {
            m.insert(e.row, e.col, e.value);
        }
        m
    }
}

impl Extend<Entry> for SparseMatrix {
    /// Inserts entries, ignoring those outside the matrix shape.
    fn extend<I: IntoIterator<Item = Entry>>(&mut self, iter: I) {
        for e in iter {
            let _ = self.try_insert(e.row, e.col, e.value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn example() -> SparseMatrix {
        // The observed matrix of paper Fig. 4(b).
        let mut m = SparseMatrix::new(4, 5);
        for &(i, j, v) in &[
            (0usize, 0usize, 1.4),
            (0, 2, 1.1),
            (0, 3, 0.7),
            (1, 1, 0.3),
            (1, 3, 0.7),
            (1, 4, 0.5),
            (2, 0, 0.4),
            (2, 1, 0.3),
            (2, 4, 0.3),
            (3, 0, 1.4),
            (3, 2, 1.2),
            (3, 4, 0.8),
        ] {
            m.insert(i, j, v);
        }
        m
    }

    #[test]
    fn fig4_matrix_shape_and_density() {
        let m = example();
        assert_eq!(m.shape(), (4, 5));
        assert_eq!(m.nnz(), 12);
        assert!((m.density() - 12.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn get_and_contains() {
        let m = example();
        assert_eq!(m.get(0, 0), Some(1.4));
        assert_eq!(m.get(0, 1), None);
        assert!(m.contains(3, 4));
        assert!(!m.contains(3, 3));
        assert_eq!(m.get(10, 10), None);
    }

    #[test]
    fn insert_overwrites() {
        let mut m = example();
        m.insert(0, 0, 9.9);
        assert_eq!(m.get(0, 0), Some(9.9));
        assert_eq!(m.nnz(), 12);
    }

    #[test]
    fn try_insert_rejects_out_of_bounds() {
        let mut m = SparseMatrix::new(2, 2);
        assert!(matches!(
            m.try_insert(2, 0, 1.0),
            Err(LinalgError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn row_and_col_iter() {
        let m = example();
        let row0: Vec<(usize, f64)> = m.row_iter(0).collect();
        assert_eq!(row0, vec![(0, 1.4), (2, 1.1), (3, 0.7)]);
        let col0: Vec<(usize, f64)> = m.col_iter(0).collect();
        assert_eq!(col0, vec![(0, 1.4), (2, 0.4), (3, 1.4)]);
    }

    #[test]
    fn means() {
        let m = example();
        assert!((m.row_mean(0).unwrap() - (1.4 + 1.1 + 0.7) / 3.0).abs() < 1e-12);
        assert!((m.col_mean(1).unwrap() - 0.3).abs() < 1e-12);
        let empty = SparseMatrix::new(2, 2);
        assert_eq!(empty.row_mean(0), None);
        assert_eq!(empty.mean(), None);
    }

    #[test]
    fn to_dense_roundtrip() {
        let m = example();
        let d = m.to_dense(f64::NAN);
        assert_eq!(d.get(0, 0), 1.4);
        assert!(d.get(0, 1).is_nan());
    }

    #[test]
    fn map_values_applies() {
        let m = example().map_values(|v| v * 10.0);
        assert_eq!(m.get(0, 0), Some(14.0));
        assert_eq!(m.nnz(), 12);
    }

    #[test]
    fn from_iterator_sizes_to_fit() {
        let m: SparseMatrix = vec![Entry::new(1, 2, 5.0), Entry::new(3, 0, 7.0)]
            .into_iter()
            .collect();
        assert_eq!(m.shape(), (4, 3));
        assert_eq!(m.get(3, 0), Some(7.0));
    }

    #[test]
    fn extend_ignores_out_of_bounds() {
        let mut m = SparseMatrix::new(2, 2);
        m.extend(vec![Entry::new(0, 0, 1.0), Entry::new(5, 5, 2.0)]);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn empty_matrix_density_is_zero() {
        assert_eq!(SparseMatrix::new(0, 0).density(), 0.0);
        assert_eq!(SparseMatrix::new(3, 3).density(), 0.0);
    }

    proptest! {
        #[test]
        fn insert_then_get(entries in proptest::collection::vec((0usize..10, 0usize..10, -100.0..100.0f64), 0..40)) {
            let mut m = SparseMatrix::new(10, 10);
            let mut reference = std::collections::HashMap::new();
            for (i, j, v) in entries {
                m.insert(i, j, v);
                reference.insert((i, j), v);
            }
            prop_assert_eq!(m.nnz(), reference.len());
            for ((i, j), v) in reference {
                prop_assert_eq!(m.get(i, j), Some(v));
            }
        }

        #[test]
        fn row_nnz_sums_to_nnz(entries in proptest::collection::vec((0usize..8, 0usize..8, 0.0..10.0f64), 0..30)) {
            let mut m = SparseMatrix::new(8, 8);
            for (i, j, v) in entries {
                m.insert(i, j, v);
            }
            let by_rows: usize = (0..8).map(|r| m.row_nnz(r)).sum();
            let by_cols: usize = (0..8).map(|c| m.col_nnz(c)).sum();
            prop_assert_eq!(by_rows, m.nnz());
            prop_assert_eq!(by_cols, m.nnz());
        }
    }
}
