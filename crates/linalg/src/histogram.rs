//! Fixed-width density histograms.
//!
//! Used to regenerate the distribution figures of the paper: Fig. 7 (raw
//! response-time / throughput densities, with the long tails cut off for
//! visualization), Fig. 8 (Box–Cox-transformed distributions), and Fig. 10
//! (prediction-error distributions around zero).

use serde::{Deserialize, Serialize};

/// A fixed-width histogram over `[lo, hi)` with values outside the range
/// discarded (the paper "cuts off" RT > 10 s and TP > 150 kbps in Fig. 7).
///
/// # Examples
///
/// ```
/// use qos_linalg::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
/// h.extend([0.5, 1.5, 1.7, 9.9, 42.0]); // 42.0 is out of range and dropped
/// assert_eq!(h.count(0), 3); // bin [0, 2) holds 0.5, 1.5, 1.7
/// assert_eq!(h.count(4), 1);
/// assert_eq!(h.total(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    discarded: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Errors
    ///
    /// Returns `None` when `bins == 0`, when `lo >= hi`, or when either bound
    /// is not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Option<Self> {
        if bins == 0 || !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return None;
        }
        Some(Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            discarded: 0,
        })
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Lower bound of the histogram range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the histogram range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Adds one observation; values outside `[lo, hi)` or NaN are discarded
    /// (counted in [`Histogram::discarded`]).
    pub fn add(&mut self, value: f64) {
        if value.is_nan() || value < self.lo || value >= self.hi {
            self.discarded += 1;
            return;
        }
        let idx = ((value - self.lo) / self.bin_width()) as usize;
        // Guard against value == hi - epsilon rounding to bins().
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Raw count of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= bins()`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// All raw counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of observations inside the range.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of observations discarded for being out of range or NaN.
    pub fn discarded(&self) -> u64 {
        self.discarded
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= bins()`.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of bounds");
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Fraction of in-range observations in bin `i` (sums to 1 over bins).
    ///
    /// This matches the y-axis of the paper's Figs. 7, 8 and 10, which plot
    /// probability mass per bin rather than a continuous density.
    ///
    /// # Panics
    ///
    /// Panics if `i >= bins()`.
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// Probability density of bin `i` (integrates to 1 over the range).
    ///
    /// # Panics
    ///
    /// Panics if `i >= bins()`.
    pub fn density(&self, i: usize) -> f64 {
        self.fraction(i) / self.bin_width()
    }

    /// Iterator over `(bin_center, fraction)` pairs — one point per plotted bar.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        (0..self.bins()).map(move |i| (self.bin_center(i), self.fraction(i)))
    }

    /// Index of the most populated bin, or `None` when empty.
    pub fn mode_bin(&self) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
    }
}

impl Extend<f64> for Histogram {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.add(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_rejects_degenerate() {
        assert!(Histogram::new(0.0, 1.0, 0).is_none());
        assert!(Histogram::new(1.0, 1.0, 4).is_none());
        assert!(Histogram::new(2.0, 1.0, 4).is_none());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_none());
        assert!(Histogram::new(0.0, f64::INFINITY, 4).is_none());
    }

    #[test]
    fn add_routes_to_correct_bin() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.add(0.0);
        h.add(0.999);
        h.add(5.0);
        h.add(9.999);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(5), 1);
        assert_eq!(h.count(9), 1);
    }

    #[test]
    fn out_of_range_discarded() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(-0.1);
        h.add(1.0); // hi is exclusive
        h.add(f64::NAN);
        assert_eq!(h.total(), 0);
        assert_eq!(h.discarded(), 3);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        h.extend([0.5, 1.5, 2.5, 3.5, 0.1]);
        let sum: f64 = (0..4).map(|i| h.fraction(i)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn density_integrates_to_one() {
        let mut h = Histogram::new(0.0, 8.0, 16).unwrap();
        h.extend((0..100).map(|i| (i % 8) as f64 + 0.25));
        let integral: f64 = (0..16).map(|i| h.density(i) * h.bin_width()).sum();
        assert!((integral - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 10.0, 5).unwrap();
        assert_eq!(h.bin_center(0), 1.0);
        assert_eq!(h.bin_center(4), 9.0);
    }

    #[test]
    fn mode_bin_finds_peak() {
        let mut h = Histogram::new(0.0, 3.0, 3).unwrap();
        h.extend([0.5, 1.5, 1.6, 1.7, 2.5]);
        assert_eq!(h.mode_bin(), Some(1));
        assert_eq!(Histogram::new(0.0, 1.0, 2).unwrap().mode_bin(), None);
    }

    #[test]
    fn points_iterates_all_bins() {
        let mut h = Histogram::new(0.0, 2.0, 2).unwrap();
        h.extend([0.5, 1.5, 1.6]);
        let pts: Vec<(f64, f64)> = h.points().collect();
        assert_eq!(pts.len(), 2);
        assert!((pts[0].0 - 0.5).abs() < 1e-12);
        assert!((pts[1].1 - 2.0 / 3.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn total_plus_discarded_equals_inserted(values in proptest::collection::vec(-5.0..15.0f64, 0..100)) {
            let mut h = Histogram::new(0.0, 10.0, 7).unwrap();
            let n = values.len() as u64;
            h.extend(values);
            prop_assert_eq!(h.total() + h.discarded(), n);
            prop_assert_eq!(h.counts().iter().sum::<u64>(), h.total());
        }

        #[test]
        fn every_in_range_value_lands_in_its_bin(v in 0.0..10.0f64, bins in 1usize..32) {
            let mut h = Histogram::new(0.0, 10.0, bins).unwrap();
            h.add(v);
            let idx = h.counts().iter().position(|&c| c == 1).unwrap();
            let lo = h.lo() + idx as f64 * h.bin_width();
            let hi = lo + h.bin_width();
            prop_assert!(v >= lo - 1e-9 && v < hi + 1e-9);
        }
    }
}
