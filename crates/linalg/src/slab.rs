//! Kernels over contiguous factor slabs.
//!
//! The AMF model stores each side's latent factors as one contiguous
//! `Vec<f64>` (entity `i` occupies `i*dim..(i+1)*dim`). These kernels stream
//! a single query vector against such a slab — the adaptation framework's
//! candidate-ranking query (score every service for one user, keep the best
//! `k`) reduces to one pass over the service slab plus a bounded-heap
//! selection.
//!
//! **Read-only path.** The unrolled dot accumulates in four lanes, which
//! reorders floating-point additions relative to the sequential
//! [`crate::vector::dot`]. That is acceptable only for prediction and
//! ranking; training updates must keep the sequential kernel so that
//! bitwise sequential-vs-sharded parity holds.

/// Dot product with four accumulator lanes (unrolled by 4).
///
/// Numerically equivalent to [`crate::vector::dot`] up to addition
/// reassociation — do **not** substitute it on any path that feeds training
/// state.
///
/// # Panics
///
/// Panics in debug builds if the slices differ in length; in release builds
/// the shorter length wins.
///
/// # Examples
///
/// ```
/// let a = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let b = [5.0, 4.0, 3.0, 2.0, 1.0];
/// assert_eq!(qos_linalg::slab::dot_unrolled4(&a, &b), 35.0);
/// ```
#[inline]
pub fn dot_unrolled4(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot_unrolled4: length mismatch");
    let n = a.len().min(b.len());
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    let chunks = n / 4;
    for i in 0..chunks {
        let k = i * 4;
        s0 += a[k] * b[k];
        s1 += a[k + 1] * b[k + 1];
        s2 += a[k + 2] * b[k + 2];
        s3 += a[k + 3] * b[k + 3];
    }
    let mut tail = 0.0;
    for k in chunks * 4..n {
        tail += a[k] * b[k];
    }
    (s0 + s1) + (s2 + s3) + tail
}

/// Scores a query vector against every row of a contiguous slab:
/// `out[i] = dot(query, slab[i*dim..(i+1)*dim])`.
///
/// `out` is cleared and refilled with `slab.len() / dim` scores; its
/// capacity is reused across calls, so a caller looping over queries incurs
/// at most one allocation. Rows are independent, so the unrolled dot's lane
/// reordering affects each score identically and deterministically.
///
/// # Panics
///
/// Panics if `dim == 0` or `slab.len()` is not a multiple of `dim`, or in
/// debug builds if `query.len() != dim`.
pub fn scores_into(query: &[f64], slab: &[f64], dim: usize, out: &mut Vec<f64>) {
    assert!(dim > 0, "scores_into: dim must be positive");
    assert_eq!(
        slab.len() % dim,
        0,
        "scores_into: slab length {} not a multiple of dim {dim}",
        slab.len()
    );
    debug_assert_eq!(query.len(), dim, "scores_into: query/dim mismatch");
    out.clear();
    out.reserve(slab.len() / dim);
    out.extend(slab.chunks_exact(dim).map(|row| dot_unrolled4(query, row)));
}

/// Selects the `k` smallest `(score, index)` pairs from `scores`, ascending.
///
/// Ordering is total and deterministic: by score under [`f64::total_cmp`],
/// ties broken by index. Uses a bounded max-heap of size `k`, so a top-10
/// query over thousands of scores does no full sort and no allocation beyond
/// the `k`-element result.
///
/// # Examples
///
/// ```
/// let top = qos_linalg::slab::top_k_ascending(&[3.0, 1.0, 2.0, 1.0], 2);
/// assert_eq!(top, vec![(1, 1.0), (3, 1.0)]);
/// ```
pub fn top_k_ascending(scores: &[f64], k: usize) -> Vec<(usize, f64)> {
    let k = k.min(scores.len());
    if k == 0 {
        return Vec::new();
    }
    // `heap` is a max-heap on (score, index): the root is the worst of the
    // current best-k, evicted whenever a strictly better candidate arrives.
    let mut heap: Vec<(usize, f64)> = Vec::with_capacity(k);
    let worse = |x: &(usize, f64), y: &(usize, f64)| {
        x.1.total_cmp(&y.1).then(x.0.cmp(&y.0)) == std::cmp::Ordering::Greater
    };
    for (i, &score) in scores.iter().enumerate() {
        let candidate = (i, score);
        if heap.len() < k {
            heap.push(candidate);
            // Sift up.
            let mut child = heap.len() - 1;
            while child > 0 {
                let parent = (child - 1) / 2;
                if worse(&heap[child], &heap[parent]) {
                    heap.swap(child, parent);
                    child = parent;
                } else {
                    break;
                }
            }
        } else if worse(&heap[0], &candidate) {
            heap[0] = candidate;
            // Sift down.
            let mut parent = 0;
            loop {
                let (l, r) = (2 * parent + 1, 2 * parent + 2);
                let mut largest = parent;
                if l < k && worse(&heap[l], &heap[largest]) {
                    largest = l;
                }
                if r < k && worse(&heap[r], &heap[largest]) {
                    largest = r;
                }
                if largest == parent {
                    break;
                }
                heap.swap(parent, largest);
                parent = largest;
            }
        }
    }
    heap.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    heap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::dot;
    use proptest::prelude::*;

    #[test]
    fn unrolled_dot_matches_sequential_on_exact_cases() {
        // Powers of two keep every intermediate exact, so the reassociated
        // sum must equal the sequential one bit-for-bit.
        let a: Vec<f64> = (0..11).map(|k| (1u64 << k) as f64).collect();
        let b: Vec<f64> = (0..11).map(|k| (1u64 << (10 - k)) as f64).collect();
        assert_eq!(dot_unrolled4(&a, &b), dot(&a, &b));
        assert_eq!(dot_unrolled4(&[], &[]), 0.0);
        assert_eq!(dot_unrolled4(&[2.0], &[3.0]), 6.0);
    }

    #[test]
    fn scores_into_reuses_buffer() {
        let slab = [1.0, 0.0, 0.0, 1.0, 2.0, 2.0];
        let mut out = vec![99.0; 10];
        scores_into(&[3.0, 4.0], &slab, 2, &mut out);
        assert_eq!(out, vec![3.0, 4.0, 14.0]);
        scores_into(&[1.0, 1.0], &slab, 2, &mut out);
        assert_eq!(out, vec![1.0, 1.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn scores_into_rejects_ragged_slab() {
        scores_into(&[1.0, 1.0], &[1.0, 2.0, 3.0], 2, &mut Vec::new());
    }

    #[test]
    fn top_k_breaks_ties_by_index() {
        let top = top_k_ascending(&[5.0, 1.0, 1.0, 1.0, 0.5], 3);
        assert_eq!(top, vec![(4, 0.5), (1, 1.0), (2, 1.0)]);
    }

    #[test]
    fn top_k_handles_degenerate_k() {
        assert_eq!(top_k_ascending(&[1.0, 2.0], 0), vec![]);
        assert_eq!(top_k_ascending(&[], 5), vec![]);
        assert_eq!(top_k_ascending(&[2.0, 1.0], 5), vec![(1, 1.0), (0, 2.0)]);
    }

    proptest! {
        #[test]
        fn unrolled_dot_is_close_to_sequential(
            a in proptest::collection::vec(-1e3..1e3f64, 0..40)
        ) {
            let b: Vec<f64> = a.iter().map(|x| 1.0 - x * 0.25).collect();
            let scale: f64 = a.iter().map(|x| x.abs()).sum::<f64>().max(1.0);
            prop_assert!((dot_unrolled4(&a, &b) - dot(&a, &b)).abs() <= 1e-9 * scale * scale);
        }

        #[test]
        fn top_k_agrees_with_full_argsort(
            scores in proptest::collection::vec(-1e6..1e6f64, 0..200),
            k in 0usize..20
        ) {
            let mut full: Vec<(usize, f64)> =
                scores.iter().copied().enumerate().collect();
            full.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            full.truncate(k.min(scores.len()));
            prop_assert_eq!(top_k_ascending(&scores, k), full);
        }
    }
}
