//! The live-observation store with expiry (Algorithm 1 lines 11–15).
//!
//! AMF keeps the most recent observation per `(user, service)` pair. Between
//! arrivals of new data it *replays* randomly chosen live observations to
//! keep refining the factors; an observation older than the expiry interval
//! is obsolete (the QoS has likely drifted) and is discarded instead of
//! replayed — "we check whether an existing QoS value has become expired,
//! and if so, discard this value (set `I_ij = 0`)".

use std::collections::HashMap;
use std::time::Duration;

use rand::Rng;

/// A stored observation: the latest value and its timestamp for one pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoredObservation {
    /// User (row) id.
    pub user: usize,
    /// Service (column) id.
    pub service: usize,
    /// Observation timestamp (seconds since the simulation epoch).
    pub timestamp: u64,
    /// Observed raw QoS value.
    pub value: f64,
}

/// Keyed store of the latest observation per pair, with O(1) insert, O(1)
/// random sampling, and lazy expiry.
#[derive(Debug, Clone, Default)]
pub struct ObservationStore {
    /// Pair -> index into `entries`.
    index: HashMap<(usize, usize), usize>,
    /// Dense entry list enabling O(1) uniform sampling (swap-remove on expiry).
    entries: Vec<StoredObservation>,
}

impl ObservationStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored (not yet expired) observations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts or refreshes the observation for `(user, service)`.
    pub fn upsert(&mut self, user: usize, service: usize, timestamp: u64, value: f64) {
        let obs = StoredObservation {
            user,
            service,
            timestamp,
            value,
        };
        match self.index.entry((user, service)) {
            std::collections::hash_map::Entry::Occupied(slot) => {
                self.entries[*slot.get()] = obs;
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(self.entries.len());
                self.entries.push(obs);
            }
        }
    }

    /// The current observation for a pair, if present.
    pub fn get(&self, user: usize, service: usize) -> Option<&StoredObservation> {
        self.index.get(&(user, service)).map(|&i| &self.entries[i])
    }

    fn swap_remove(&mut self, idx: usize) -> StoredObservation {
        let removed = self.entries.swap_remove(idx);
        self.index.remove(&(removed.user, removed.service));
        if idx < self.entries.len() {
            let moved = self.entries[idx];
            self.index.insert((moved.user, moved.service), idx);
        }
        removed
    }

    /// Removes and returns the observation for a pair, if present.
    pub fn remove(&mut self, user: usize, service: usize) -> Option<StoredObservation> {
        let idx = self.index.get(&(user, service)).copied()?;
        Some(self.swap_remove(idx))
    }

    /// Draws one uniformly random *live* observation: entries found expired
    /// (older than `expiry` relative to `now`) are discarded on the way, as
    /// in Algorithm 1 lines 11–15. Returns `None` when nothing live remains.
    pub fn sample_live<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        now: u64,
        expiry: Duration,
    ) -> Option<StoredObservation> {
        let horizon = expiry.as_secs();
        while !self.entries.is_empty() {
            let idx = rng.random_range(0..self.entries.len());
            let obs = self.entries[idx];
            if now.saturating_sub(obs.timestamp) < horizon {
                return Some(obs);
            }
            // Obsolete: set I_ij <- 0 (drop it) and try another.
            self.swap_remove(idx);
        }
        None
    }

    /// Eagerly removes every observation older than `expiry` relative to
    /// `now`, returning how many were dropped.
    pub fn purge_expired(&mut self, now: u64, expiry: Duration) -> usize {
        let horizon = expiry.as_secs();
        let mut removed = 0;
        let mut idx = 0;
        while idx < self.entries.len() {
            if now.saturating_sub(self.entries[idx].timestamp) >= horizon {
                self.swap_remove(idx);
                removed += 1;
            } else {
                idx += 1;
            }
        }
        removed
    }

    /// Iterator over all stored observations (live status not checked).
    pub fn iter(&self) -> impl Iterator<Item = &StoredObservation> + '_ {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const EXPIRY: Duration = Duration::from_secs(900);

    #[test]
    fn upsert_and_get() {
        let mut store = ObservationStore::new();
        store.upsert(1, 2, 100, 1.5);
        assert_eq!(store.len(), 1);
        let obs = store.get(1, 2).unwrap();
        assert_eq!(obs.value, 1.5);
        assert_eq!(obs.timestamp, 100);
        assert!(store.get(2, 1).is_none());
    }

    #[test]
    fn upsert_refreshes_in_place() {
        let mut store = ObservationStore::new();
        store.upsert(1, 2, 100, 1.5);
        store.upsert(1, 2, 200, 2.5);
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(1, 2).unwrap().value, 2.5);
    }

    #[test]
    fn remove_maintains_index() {
        let mut store = ObservationStore::new();
        store.upsert(0, 0, 1, 1.0);
        store.upsert(1, 1, 2, 2.0);
        store.upsert(2, 2, 3, 3.0);
        let removed = store.remove(0, 0).unwrap();
        assert_eq!(removed.value, 1.0);
        assert_eq!(store.len(), 2);
        // The swap-moved entry must still be findable.
        assert_eq!(store.get(2, 2).unwrap().value, 3.0);
        assert_eq!(store.get(1, 1).unwrap().value, 2.0);
        assert!(store.remove(0, 0).is_none());
    }

    #[test]
    fn sample_live_returns_fresh_entries() {
        let mut store = ObservationStore::new();
        store.upsert(0, 0, 1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let obs = store.sample_live(&mut rng, 1100, EXPIRY).unwrap();
        assert_eq!(obs.value, 1.0);
        assert_eq!(store.len(), 1, "live entry must not be consumed");
    }

    #[test]
    fn sample_live_discards_expired() {
        let mut store = ObservationStore::new();
        store.upsert(0, 0, 0, 1.0); // will be expired at t=900
        store.upsert(1, 1, 950, 2.0); // live
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let obs = store.sample_live(&mut rng, 1000, EXPIRY).unwrap();
            assert_eq!(obs.value, 2.0);
        }
        assert_eq!(store.len(), 1, "expired entry should have been dropped");
    }

    #[test]
    fn sample_live_empty_when_all_expired() {
        let mut store = ObservationStore::new();
        store.upsert(0, 0, 0, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(store.sample_live(&mut rng, 10_000, EXPIRY).is_none());
        assert!(store.is_empty());
        assert!(store.sample_live(&mut rng, 10_000, EXPIRY).is_none());
    }

    #[test]
    fn exact_expiry_boundary_is_expired() {
        // age == expiry must count as expired ("tnow - tij < TimeInterval"
        // is the liveness condition in Algorithm 1).
        let mut store = ObservationStore::new();
        store.upsert(0, 0, 100, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(store.sample_live(&mut rng, 1000, EXPIRY).is_none());
    }

    #[test]
    fn purge_expired_counts() {
        let mut store = ObservationStore::new();
        store.upsert(0, 0, 0, 1.0);
        store.upsert(1, 1, 100, 2.0);
        store.upsert(2, 2, 950, 3.0);
        let removed = store.purge_expired(1000, EXPIRY);
        assert_eq!(removed, 2);
        assert_eq!(store.len(), 1);
        assert!(store.get(2, 2).is_some());
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let mut store = ObservationStore::new();
        for i in 0..10 {
            store.upsert(i, 0, 1000, i as f64);
        }
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            let obs = store.sample_live(&mut rng, 1000, EXPIRY).unwrap();
            counts[obs.user] += 1;
        }
        for &c in &counts {
            assert!((700..=1300).contains(&c), "count {c} far from uniform");
        }
    }

    #[test]
    fn iter_yields_everything() {
        let mut store = ObservationStore::new();
        store.upsert(0, 1, 10, 1.0);
        store.upsert(2, 3, 20, 2.0);
        let mut pairs: Vec<(usize, usize)> = store.iter().map(|o| (o.user, o.service)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (2, 3)]);
    }
}
