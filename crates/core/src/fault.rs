//! Deterministic fault injection (`FaultPlan`) for the ingestion pipeline.
//!
//! The fault-tolerance claims of [`crate::engine::ShardedEngine`] — a killed
//! shard worker loses no accepted samples, replay preserves per-entity
//! order, mid-update crashes roll back — are only worth anything if they are
//! *provable*. A [`FaultPlan`] is a seed-driven script of faults that tests
//! (and `amf-qos train --fault-plan`) replay deterministically:
//!
//! * **Stream faults** ([`FaultPlan::mutate_stream`]) — drop, duplicate, and
//!   locally reorder samples, simulating a lossy, janky transport between
//!   QoS managers and the prediction service;
//! * **Worker kills** ([`FaultPlan::crash_point`]) — panic shard worker `W`
//!   when it is about to apply its `N`-th job, either *before* it touches
//!   any state ([`KillPhase::Before`], a clean thread death) or *mid-update*
//!   ([`KillPhase::Mid`], after the SGD step mutated factors but before the
//!   ordering tickets committed — the nastiest crash point, which exercises
//!   the engine's in-flight state rollback);
//! * **Stalls** — put a worker to sleep at a given job, forcing queue
//!   backpressure so load-shedding paths can be driven deterministically.
//! * **Network faults** ([`FaultPlan::net_fault`]) — per-request transport
//!   misbehaviour for the serving plane's load harness (`amf-qos loadtest`):
//!   connection resets mid-request, byte-trickled slow reads, and black-hole
//!   connections that open but never speak. These are *client-side* verbs:
//!   the engine ignores them; [`NetFault`] consumers (the loadtest client)
//!   replay them deterministically against a live `amf-qos serve` endpoint.
//!
//! Each kill/stall fires exactly once (consumed atomically), so a respawned
//! worker replaying the same job does not die again — exactly like a real
//! transient fault.
//!
//! Plans parse from a compact spec string (the CLI's `--fault-plan` flag):
//!
//! ```
//! use amf_core::fault::FaultPlan;
//!
//! let plan = FaultPlan::parse("seed=7;kill=1@500;kill=0@900:mid;drop=0.02;dup=0.01;reorder=8")?;
//! assert_eq!(plan.kill_count(), 2);
//! # Ok::<(), String>(())
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Where in the apply path a planned kill fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPhase {
    /// Before the job touches any model state: a clean worker death.
    Before,
    /// After the SGD step mutated the two entities but before their ordering
    /// tickets committed — simulates a crash mid-update, leaving torn state
    /// for the engine's rollback to repair.
    Mid,
}

#[derive(Debug)]
struct Kill {
    worker: usize,
    /// Fires when the worker's applied-job count equals this.
    at_job: u64,
    phase: KillPhase,
    fired: AtomicBool,
}

impl Clone for Kill {
    fn clone(&self) -> Self {
        Self {
            worker: self.worker,
            at_job: self.at_job,
            phase: self.phase,
            fired: AtomicBool::new(self.fired.load(Ordering::Relaxed)),
        }
    }
}

#[derive(Debug)]
struct Stall {
    worker: usize,
    at_job: u64,
    pause: Duration,
    fired: AtomicBool,
}

impl Clone for Stall {
    fn clone(&self) -> Self {
        Self {
            worker: self.worker,
            at_job: self.at_job,
            pause: self.pause,
            fired: AtomicBool::new(self.fired.load(Ordering::Relaxed)),
        }
    }
}

/// Panic payload of an injected worker kill, so recovery code and panic
/// hooks can tell scripted faults from genuine bugs.
#[derive(Debug, Clone, Copy)]
pub struct InjectedCrash {
    /// The worker the plan killed.
    pub worker: usize,
    /// The per-worker job index the kill fired at.
    pub at_job: u64,
    /// The phase it fired in.
    pub phase: KillPhase,
}

/// A network-level fault to inject on one request (client-side verbs used by
/// the serving-plane load harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Abort the connection mid-request: send a partial request, then close
    /// abruptly (the server sees an early FIN / reset inside the request).
    ConnReset,
    /// Trickle the request bytes with delays between tiny chunks, driving
    /// the server's read-timeout and partial-read handling.
    SlowRead,
    /// Open the connection and never send a byte, holding it until the
    /// client's own timeout fires (server-side idle-read timeout exercise).
    Blackhole,
}

impl NetFault {
    /// Short spec-verb label (matches the [`FaultPlan::parse`] keys).
    pub fn label(self) -> &'static str {
        match self {
            NetFault::ConnReset => "conn-reset",
            NetFault::SlowRead => "slow-read",
            NetFault::Blackhole => "blackhole",
        }
    }
}

/// Where a parsed [`FaultPlan`] will be applied — used by
/// [`FaultPlan::parse_in`] to reject verbs that would be silently inert in
/// that context.
///
/// The network verbs (`conn-reset`/`slow-read`/`blackhole`) are client-side:
/// only the serving-plane load harness replays them. Accepting them in a
/// `train` or scenario spec used to succeed and then inject *nothing*, which
/// reads as "the run survived the faults" when no fault ever fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultContext {
    /// Offline/online training ingestion (`amf-qos train`): stream verbs and
    /// worker kill/stall scripts apply; network verbs are inert.
    Training,
    /// Scenario/regime harnesses driving a prediction service in-process:
    /// same engine-side surface as training, no live transport.
    Scenario,
    /// The serving-plane load harness (`amf-qos loadtest`): every verb,
    /// including the client-side network faults, is live.
    Serving,
}

impl FaultContext {
    /// Human-readable context name for error messages.
    pub fn label(self) -> &'static str {
        match self {
            FaultContext::Training => "train",
            FaultContext::Scenario => "scenario",
            FaultContext::Serving => "serving",
        }
    }

    /// Whether network verbs actually fire in this context.
    pub fn allows_network(self) -> bool {
        matches!(self, FaultContext::Serving)
    }
}

/// A deterministic, seed-driven fault script. See the module docs.
#[derive(Debug, Default, Clone)]
pub struct FaultPlan {
    seed: u64,
    kills: Vec<Kill>,
    stalls: Vec<Stall>,
    drop_rate: f64,
    duplicate_rate: f64,
    reorder_window: usize,
    conn_reset_rate: f64,
    slow_read_rate: f64,
    blackhole_rate: f64,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given stream-fault seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Schedules worker `worker` to panic when about to apply its
    /// `at_job`-th job (0-based, counted per worker across respawns).
    pub fn kill_worker(mut self, worker: usize, at_job: u64, phase: KillPhase) -> Self {
        self.kills.push(Kill {
            worker,
            at_job,
            phase,
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Schedules worker `worker` to sleep `pause` before applying its
    /// `at_job`-th job (drives queue backpressure deterministically).
    pub fn stall_worker(mut self, worker: usize, at_job: u64, pause: Duration) -> Self {
        self.stalls.push(Stall {
            worker,
            at_job,
            pause,
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Sets the stream drop probability (each sample independently).
    pub fn drop_rate(mut self, rate: f64) -> Self {
        self.drop_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the stream duplication probability (each sample independently).
    pub fn duplicate_rate(mut self, rate: f64) -> Self {
        self.duplicate_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the local-reorder window: each surviving sample may be delayed
    /// by up to this many positions.
    pub fn reorder_window(mut self, window: usize) -> Self {
        self.reorder_window = window;
        self
    }

    /// Sets the per-request connection-reset probability (network verb).
    pub fn conn_reset_rate(mut self, rate: f64) -> Self {
        self.conn_reset_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-request slow-read (byte-trickle) probability.
    pub fn slow_read_rate(mut self, rate: f64) -> Self {
        self.slow_read_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-request black-hole probability.
    pub fn blackhole_rate(mut self, rate: f64) -> Self {
        self.blackhole_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Whether any network verb (conn-reset/slow-read/blackhole) is
    /// configured.
    pub fn mutates_network(&self) -> bool {
        self.conn_reset_rate > 0.0 || self.slow_read_rate > 0.0 || self.blackhole_rate > 0.0
    }

    /// The network fault (if any) to inject on the `request`-th request.
    /// Deterministic: same plan + same index → same verdict, so a fault-
    /// injected load run is replayable. The three rates partition one
    /// uniform draw (conn-reset first, then slow-read, then blackhole), so
    /// at most one verb fires per request and each fires at its own rate.
    pub fn net_fault(&self, request: u64) -> Option<NetFault> {
        if !self.mutates_network() {
            return None;
        }
        let mut rng = SplitMix64::new(
            self.seed ^ 0x6E65_745F_6661_756C ^ request.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let roll = rng.next_f64();
        if roll < self.conn_reset_rate {
            Some(NetFault::ConnReset)
        } else if roll < self.conn_reset_rate + self.slow_read_rate {
            Some(NetFault::SlowRead)
        } else if roll < self.conn_reset_rate + self.slow_read_rate + self.blackhole_rate {
            Some(NetFault::Blackhole)
        } else {
            None
        }
    }

    /// Number of scheduled kills.
    pub fn kill_count(&self) -> usize {
        self.kills.len()
    }

    /// Number of kills that have fired so far.
    pub fn kills_fired(&self) -> usize {
        self.kills
            .iter()
            .filter(|k| k.fired.load(Ordering::Relaxed))
            .count()
    }

    /// Whether any stream-level fault (drop/duplicate/reorder) is configured.
    pub fn mutates_stream(&self) -> bool {
        self.drop_rate > 0.0 || self.duplicate_rate > 0.0 || self.reorder_window > 0
    }

    /// Engine hook: called by shard worker `worker` around its `job`-th
    /// application. Sleeps on a scheduled stall; panics (with an
    /// [`InjectedCrash`] payload) on a scheduled kill matching `phase`.
    /// Each fault fires at most once.
    pub fn crash_point(&self, worker: usize, job: u64, phase: KillPhase) {
        if phase == KillPhase::Before {
            for stall in &self.stalls {
                if stall.worker == worker
                    && stall.at_job == job
                    && stall
                        .fired
                        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                {
                    std::thread::sleep(stall.pause);
                }
            }
        }
        for kill in &self.kills {
            if kill.worker == worker
                && kill.at_job == job
                && kill.phase == phase
                && kill
                    .fired
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                std::panic::panic_any(InjectedCrash {
                    worker,
                    at_job: job,
                    phase,
                });
            }
        }
    }

    /// Applies the configured stream faults to `samples` deterministically
    /// (same plan + same input → same output): drops, then duplicates, then
    /// locally reorders within `reorder_window`.
    pub fn mutate_stream<T: Clone>(&self, samples: &[T]) -> Vec<T> {
        let mut rng = SplitMix64::new(self.seed ^ 0x6661_756C_7473); // "faults"
        let mut out: Vec<T> = Vec::with_capacity(samples.len());
        for sample in samples {
            if self.drop_rate > 0.0 && rng.next_f64() < self.drop_rate {
                continue;
            }
            out.push(sample.clone());
            if self.duplicate_rate > 0.0 && rng.next_f64() < self.duplicate_rate {
                out.push(sample.clone());
            }
        }
        if self.reorder_window > 0 {
            // Jitter sort: perturb each index by at most `reorder_window`
            // and stably sort by the perturbed key. Any element `i` ends
            // within `reorder_window` of its origin (every `j > i + window`
            // has a strictly larger key; every `j < i - window` a strictly
            // smaller one), so displacement is provably bounded.
            let n = out.len();
            let mut keyed: Vec<(usize, usize)> = (0..n)
                .map(|i| (i + (rng.next_u64() as usize % (self.reorder_window + 1)), i))
                .collect();
            keyed.sort_by_key(|&(key, i)| (key, i));
            let mut reordered = Vec::with_capacity(n);
            for &(_, i) in &keyed {
                reordered.push(out[i].clone());
            }
            out = reordered;
        }
        out
    }

    /// Parses a compact plan spec: `;`- or `,`-separated entries, each
    /// `key=value` — the three network verbs also accept the shorthand
    /// `verb@rate` (e.g. `conn-reset@0.05,slow-read@0.02`).
    ///
    /// | key | value | meaning |
    /// |---|---|---|
    /// | `seed` | integer | stream/network-fault RNG seed |
    /// | `kill` | `W@N` or `W@N:mid` | kill worker `W` at its `N`-th job |
    /// | `stall` | `W@N:MS` | stall worker `W` for `MS` ms at job `N` |
    /// | `drop` | probability | per-sample drop rate |
    /// | `dup` | probability | per-sample duplication rate |
    /// | `reorder` | integer | local reorder window |
    /// | `conn-reset` | probability | per-request connection reset (network) |
    /// | `slow-read` | probability | per-request byte trickle (network) |
    /// | `blackhole` | probability | per-request silent connection (network) |
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending entry.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        for entry in spec
            .split([';', ','])
            .map(str::trim)
            .filter(|e| !e.is_empty())
        {
            // Network verbs allow `verb@rate` shorthand; everything (network
            // verbs included) also parses as `key=value`.
            let (key, value) = match entry.split_once('=') {
                Some((key, value)) => (key, value),
                None => match entry.split_once('@') {
                    Some((key @ ("conn-reset" | "slow-read" | "blackhole"), value)) => (key, value),
                    _ => {
                        return Err(format!(
                            "fault-plan entry '{entry}': expected key=value (or verb@rate \
                             for conn-reset/slow-read/blackhole)"
                        ))
                    }
                },
            };
            match key.trim() {
                "seed" => {
                    plan.seed = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("fault-plan seed '{value}': not an integer"))?;
                }
                "kill" => {
                    let (worker, rest) = value
                        .split_once('@')
                        .ok_or_else(|| format!("fault-plan kill '{value}': expected W@N"))?;
                    let (at, phase) = match rest.split_once(':') {
                        Some((at, "mid")) => (at, KillPhase::Mid),
                        Some((at, "before")) => (at, KillPhase::Before),
                        Some((_, other)) => {
                            return Err(format!(
                                "fault-plan kill phase '{other}': expected before|mid"
                            ))
                        }
                        None => (rest, KillPhase::Before),
                    };
                    plan = plan.kill_worker(
                        worker
                            .trim()
                            .parse()
                            .map_err(|_| format!("fault-plan kill worker '{worker}'"))?,
                        at.trim()
                            .parse()
                            .map_err(|_| format!("fault-plan kill tick '{at}'"))?,
                        phase,
                    );
                }
                "stall" => {
                    let parts: Vec<&str> = value.split(['@', ':']).collect();
                    if parts.len() != 3 {
                        return Err(format!("fault-plan stall '{value}': expected W@N:MS"));
                    }
                    let worker = parts[0]
                        .trim()
                        .parse()
                        .map_err(|_| format!("fault-plan stall worker '{}'", parts[0]))?;
                    let at = parts[1]
                        .trim()
                        .parse()
                        .map_err(|_| format!("fault-plan stall tick '{}'", parts[1]))?;
                    let ms: u64 = parts[2]
                        .trim()
                        .parse()
                        .map_err(|_| format!("fault-plan stall ms '{}'", parts[2]))?;
                    plan = plan.stall_worker(worker, at, Duration::from_millis(ms));
                }
                "drop" => {
                    plan.drop_rate = parse_rate("drop", value)?;
                }
                "dup" => {
                    plan.duplicate_rate = parse_rate("dup", value)?;
                }
                "reorder" => {
                    plan.reorder_window = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("fault-plan reorder '{value}': not an integer"))?;
                }
                "conn-reset" => {
                    plan.conn_reset_rate = parse_rate("conn-reset", value)?;
                }
                "slow-read" => {
                    plan.slow_read_rate = parse_rate("slow-read", value)?;
                }
                "blackhole" => {
                    plan.blackhole_rate = parse_rate("blackhole", value)?;
                }
                other => return Err(format!("fault-plan key '{other}': unknown")),
            }
        }
        Ok(plan)
    }

    /// Like [`FaultPlan::parse`], but validated against the context the plan
    /// will run in: network verbs in a context where they cannot fire are a
    /// hard error naming the offending verbs, not a silent no-op.
    ///
    /// # Errors
    ///
    /// Everything [`FaultPlan::parse`] rejects, plus any of
    /// `conn-reset`/`slow-read`/`blackhole` outside
    /// [`FaultContext::Serving`].
    pub fn parse_in(spec: &str, context: FaultContext) -> Result<Self, String> {
        let plan = Self::parse(spec)?;
        if !context.allows_network() && plan.mutates_network() {
            let offending: Vec<&str> = [
                ("conn-reset", plan.conn_reset_rate),
                ("slow-read", plan.slow_read_rate),
                ("blackhole", plan.blackhole_rate),
            ]
            .iter()
            .filter(|&&(_, rate)| rate > 0.0)
            .map(|&(verb, _)| verb)
            .collect();
            return Err(format!(
                "fault-plan: network verb(s) {} are inert in the {} context — they only \
                 fire in `amf-qos loadtest`'s client-side injection against a live serve \
                 endpoint; remove them or use stream verbs (drop/dup/reorder) and worker \
                 kill/stall scripts instead",
                offending.join(", "),
                context.label()
            ));
        }
        Ok(plan)
    }
}

/// Canonical spec rendering: `;`-separated `key=value` entries that
/// [`FaultPlan::parse`] accepts back — `parse(display(p))` reproduces the
/// plan's configuration exactly (fired-state of kills/stalls is runtime
/// bookkeeping, not configuration, and is not rendered).
impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut sep = "";
        let mut item = |f: &mut std::fmt::Formatter<'_>, text: String| {
            let r = write!(f, "{sep}{text}");
            sep = ";";
            r
        };
        item(f, format!("seed={}", self.seed))?;
        for kill in &self.kills {
            let phase = match kill.phase {
                KillPhase::Before => "",
                KillPhase::Mid => ":mid",
            };
            item(f, format!("kill={}@{}{phase}", kill.worker, kill.at_job))?;
        }
        for stall in &self.stalls {
            item(
                f,
                format!(
                    "stall={}@{}:{}",
                    stall.worker,
                    stall.at_job,
                    stall.pause.as_millis()
                ),
            )?;
        }
        for (key, rate) in [
            ("drop", self.drop_rate),
            ("dup", self.duplicate_rate),
            ("conn-reset", self.conn_reset_rate),
            ("slow-read", self.slow_read_rate),
            ("blackhole", self.blackhole_rate),
        ] {
            if rate > 0.0 {
                item(f, format!("{key}={rate}"))?;
            }
        }
        if self.reorder_window > 0 {
            item(f, format!("reorder={}", self.reorder_window))?;
        }
        Ok(())
    }
}

fn parse_rate(key: &str, value: &str) -> Result<f64, String> {
    let rate: f64 = value
        .trim()
        .parse()
        .map_err(|_| format!("fault-plan {key} '{value}': not a number"))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("fault-plan {key} '{value}': must be in [0, 1]"));
    }
    Ok(rate)
}

/// Minimal deterministic RNG for stream mutation (no ordering dependence on
/// the model's RNGs).
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kills_fire_exactly_once() {
        let plan = FaultPlan::new(0).kill_worker(1, 5, KillPhase::Before);
        // Wrong worker / wrong job / wrong phase: no panic.
        plan.crash_point(0, 5, KillPhase::Before);
        plan.crash_point(1, 4, KillPhase::Before);
        plan.crash_point(1, 5, KillPhase::Mid);
        assert_eq!(plan.kills_fired(), 0);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.crash_point(1, 5, KillPhase::Before)
        }))
        .unwrap_err();
        let crash = err.downcast_ref::<InjectedCrash>().expect("typed payload");
        assert_eq!(crash.worker, 1);
        assert_eq!(plan.kills_fired(), 1);
        // Replay of the same job after respawn: consumed, no second panic.
        plan.crash_point(1, 5, KillPhase::Before);
    }

    #[test]
    fn stream_mutation_is_deterministic() {
        let samples: Vec<u32> = (0..500).collect();
        let plan = FaultPlan::new(9)
            .drop_rate(0.1)
            .duplicate_rate(0.05)
            .reorder_window(4);
        let a = plan.mutate_stream(&samples);
        let b = plan.mutate_stream(&samples);
        assert_eq!(a, b);
        assert_ne!(a, samples);
        // Drops and duplicates roughly cancel; size stays in a sane band.
        assert!(a.len() > 400 && a.len() < 520, "len {}", a.len());
    }

    #[test]
    fn reorder_displacement_is_bounded() {
        let samples: Vec<usize> = (0..200).collect();
        let window = 6;
        let out = FaultPlan::new(3)
            .reorder_window(window)
            .mutate_stream(&samples);
        assert_eq!(out.len(), samples.len());
        for (pos, &v) in out.iter().enumerate() {
            assert!(
                pos.abs_diff(v) <= 2 * window,
                "sample {v} displaced to {pos}"
            );
        }
    }

    #[test]
    fn empty_plan_is_identity() {
        let samples: Vec<u32> = (0..50).collect();
        let plan = FaultPlan::new(1);
        assert!(!plan.mutates_stream());
        assert_eq!(plan.mutate_stream(&samples), samples);
    }

    #[test]
    fn parse_round_trips_the_readme_example() {
        let plan =
            FaultPlan::parse("seed=7; kill=1@500; kill=0@900:mid; drop=0.02; dup=0.01; reorder=8")
                .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.kill_count(), 2);
        assert_eq!(plan.kills[0].phase, KillPhase::Before);
        assert_eq!(plan.kills[1].phase, KillPhase::Mid);
        assert_eq!(plan.drop_rate, 0.02);
        assert_eq!(plan.reorder_window, 8);
        assert!(plan.mutates_stream());
    }

    #[test]
    fn parse_stall() {
        let plan = FaultPlan::parse("stall=2@100:250").unwrap();
        assert_eq!(plan.stalls.len(), 1);
        assert_eq!(plan.stalls[0].pause, Duration::from_millis(250));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "kill=1",
            "kill=x@5",
            "kill=1@5:late",
            "drop=2.0",
            "drop=x",
            "stall=1@2",
            "warp=9",
            "seed",
            "conn-reset@2.0",
            "conn-reset@x",
            "blackhole@-0.1",
            "jitter@0.5",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted: {bad}");
        }
        assert!(FaultPlan::parse("").unwrap().kills.is_empty());
    }

    #[test]
    fn parse_network_verbs_both_spellings() {
        // The `@` shorthand (the loadtest idiom, comma-separated) and the
        // canonical `=` form must agree.
        let short = FaultPlan::parse("conn-reset@0.05,slow-read@0.02,blackhole@0.01").unwrap();
        let long = FaultPlan::parse("conn-reset=0.05;slow-read=0.02;blackhole=0.01").unwrap();
        for plan in [&short, &long] {
            assert_eq!(plan.conn_reset_rate, 0.05);
            assert_eq!(plan.slow_read_rate, 0.02);
            assert_eq!(plan.blackhole_rate, 0.01);
            assert!(plan.mutates_network());
            assert!(!plan.mutates_stream());
        }
        assert_eq!(short.to_string(), long.to_string());
    }

    #[test]
    fn parse_in_rejects_network_verbs_outside_serving() {
        for context in [FaultContext::Training, FaultContext::Scenario] {
            // Engine-side verbs stay accepted.
            let plan =
                FaultPlan::parse_in("seed=7;kill=1@500;drop=0.02;reorder=4", context).unwrap();
            assert_eq!(plan.kill_count(), 1);
            assert!(plan.mutates_stream());
            // Every network verb, alone or mixed in, is a hard error that
            // names the offending verbs and the context.
            for spec in [
                "conn-reset=0.05",
                "slow-read@0.02",
                "blackhole=0.01",
                "seed=7;drop=0.1;conn-reset=0.05;blackhole=0.01",
            ] {
                let err = FaultPlan::parse_in(spec, context).unwrap_err();
                assert!(err.contains("inert"), "{err}");
                assert!(err.contains(context.label()), "{err}");
                for verb in ["conn-reset", "slow-read", "blackhole"] {
                    if spec.contains(verb) {
                        assert!(err.contains(verb), "{err} must name {verb}");
                    }
                }
            }
        }
        // The serving context keeps accepting them unchanged.
        let plan = FaultPlan::parse_in(
            "seed=3;conn-reset=0.05;slow-read=0.02;blackhole=0.01",
            FaultContext::Serving,
        )
        .unwrap();
        assert!(plan.mutates_network());
        assert!(FaultContext::Serving.allows_network());
        assert!(!FaultContext::Training.allows_network());
        assert!(!FaultContext::Scenario.allows_network());
    }

    #[test]
    fn display_parse_round_trips() {
        let specs = [
            "seed=7;kill=1@500;kill=0@900:mid;stall=2@100:250;drop=0.02;dup=0.01;reorder=8",
            "seed=3;conn-reset=0.05;slow-read=0.02;blackhole=0.01",
            "seed=0",
            "seed=9;kill=0@1:mid;conn-reset=0.5",
        ];
        for spec in specs {
            let plan = FaultPlan::parse(spec).unwrap();
            let rendered = plan.to_string();
            let reparsed = FaultPlan::parse(&rendered).unwrap();
            assert_eq!(
                reparsed.to_string(),
                rendered,
                "display must be a fixed point through parse for {spec:?}"
            );
            // And the canonical form equals the input for already-canonical
            // specs (all of the above are written canonically).
            assert_eq!(rendered, spec);
        }
    }

    #[test]
    fn net_fault_is_deterministic_and_rate_accurate() {
        let plan =
            FaultPlan::parse("seed=11;conn-reset=0.05;slow-read=0.02;blackhole=0.01").unwrap();
        let n = 200_000u64;
        let mut counts = [0u64; 3];
        for i in 0..n {
            // Determinism: two draws for the same index agree.
            assert_eq!(plan.net_fault(i), plan.net_fault(i));
            match plan.net_fault(i) {
                Some(NetFault::ConnReset) => counts[0] += 1,
                Some(NetFault::SlowRead) => counts[1] += 1,
                Some(NetFault::Blackhole) => counts[2] += 1,
                None => {}
            }
        }
        let rates: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        assert!((rates[0] - 0.05).abs() < 0.005, "conn-reset rate {rates:?}");
        assert!((rates[1] - 0.02).abs() < 0.005, "slow-read rate {rates:?}");
        assert!((rates[2] - 0.01).abs() < 0.005, "blackhole rate {rates:?}");
        // No network verbs configured → never a fault, regardless of index.
        let clean = FaultPlan::parse("seed=11;drop=0.5").unwrap();
        assert!((0..1000).all(|i| clean.net_fault(i).is_none()));
        // Labels round-trip to the parse keys.
        for (fault, label) in [
            (NetFault::ConnReset, "conn-reset"),
            (NetFault::SlowRead, "slow-read"),
            (NetFault::Blackhole, "blackhole"),
        ] {
            assert_eq!(fault.label(), label);
        }
    }
}
