//! The continuous training loop of Algorithm 1.
//!
//! [`AmfTrainer`] owns an [`AmfModel`] plus the [`ObservationStore`] of live
//! samples and drives the paper's `repeat ... until forever` loop:
//!
//! * when new QoS data arrives ([`AmfTrainer::feed`]) the sample is stored
//!   and immediately applied to the model (lines 3–9);
//! * otherwise random live samples are *replayed* (lines 11–15), discarding
//!   expired ones, until the model converges ([`AmfTrainer::replay_until_converged`],
//!   lines 16–17).

use crate::config::AmfConfig;
use crate::expiry::ObservationStore;
use crate::model::AmfModel;
use crate::AmfError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Stopping parameters for a replay phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplayOptions {
    /// Hard cap on replayed samples.
    pub max_iterations: usize,
    /// Floor on replayed samples before convergence may fire (early windows
    /// are noisy; a single flat window is not convergence).
    pub min_iterations: usize,
    /// Window length (in samples) over which mean error is compared.
    pub window: usize,
    /// A window counts as flat when its relative improvement over the
    /// previous window falls below this.
    pub tolerance: f64,
    /// Number of *consecutive* flat windows required to declare convergence.
    pub patience: usize,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        Self {
            max_iterations: 2_000_000,
            min_iterations: 10_000,
            window: 2_000,
            tolerance: 1e-3,
            patience: 3,
        }
    }
}

/// Outcome of a replay phase (feeds the Fig. 13 efficiency comparison).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Number of replayed samples.
    pub iterations: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Mean per-sample relative error over the final window.
    pub final_error: f64,
    /// Whether the tolerance criterion fired before `max_iterations`.
    pub converged: bool,
}

/// Online AMF training driver (Algorithm 1).
///
/// # Examples
///
/// ```
/// use amf_core::{AmfConfig, AmfTrainer};
///
/// let mut trainer = AmfTrainer::new(AmfConfig::response_time())?;
/// // New observations arrive as a stream:
/// trainer.feed(0, 0, 0, 1.4);
/// trainer.feed(0, 1, 10, 0.9);
/// trainer.feed(1, 0, 20, 1.5);
/// // Idle time: keep refining on live samples until converged.
/// let report = trainer.replay_until_converged(Default::default());
/// assert!(report.iterations > 0);
/// let prediction = trainer.model().predict(1, 1);
/// assert!(prediction.is_some());
/// # Ok::<(), amf_core::AmfError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AmfTrainer {
    model: AmfModel,
    store: ObservationStore,
    rng: StdRng,
    now: u64,
}

impl AmfTrainer {
    /// Creates a trainer with an empty model and store.
    ///
    /// # Errors
    ///
    /// Propagates [`AmfModel::new`] errors.
    pub fn new(config: AmfConfig) -> Result<Self, AmfError> {
        Ok(Self {
            model: AmfModel::new(config)?,
            store: ObservationStore::new(),
            rng: StdRng::seed_from_u64(config.seed ^ 0x7261_7964), // decorrelate from init
            now: 0,
        })
    }

    /// The trained model.
    pub fn model(&self) -> &AmfModel {
        &self.model
    }

    /// Mutable access to the model (e.g. to pre-register churn entities).
    pub fn model_mut(&mut self) -> &mut AmfModel {
        &mut self.model
    }

    /// The live-observation store.
    pub fn store(&self) -> &ObservationStore {
        &self.store
    }

    /// Current simulated wall-clock (max timestamp seen, or manually
    /// advanced).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances the simulated clock (time passing without new observations —
    /// this is what makes stored samples expire).
    pub fn advance_clock(&mut self, now: u64) {
        self.now = self.now.max(now);
    }

    /// Ingests a newly observed sample (Algorithm 1 lines 3–9): stores it
    /// (refreshing `t_ij`, `R_ij`), registers new ids, and applies one online
    /// update.
    pub fn feed(&mut self, user: usize, service: usize, timestamp: u64, value: f64) {
        self.advance_clock(timestamp);
        self.store.upsert(user, service, timestamp, value);
        self.model.observe(user, service, value);
    }

    /// Batch variant of [`AmfTrainer::feed`] that applies the online updates
    /// through a [`crate::engine::ShardedEngine`] with `options.shards`
    /// worker threads. Under the default
    /// [`Consistency::Parity`](crate::engine::Consistency) mode, results are
    /// identical to feeding the samples one by one (the engine preserves
    /// per-entity stream order, which pins down the execution bit-for-bit);
    /// only the wall-clock differs. Under
    /// [`Consistency::Relaxed`](crate::engine::Consistency) the lock-free
    /// fast lane is statistically equivalent instead (windowed accuracy
    /// within the ε pinned by `tests/relaxed_parity.rs`). Returns the number
    /// of samples applied.
    ///
    /// # Errors
    ///
    /// Returns [`AmfError::InvalidConfig`] when `options` are invalid; the
    /// trainer is untouched in that case.
    pub fn feed_batch_sharded<I>(
        &mut self,
        samples: I,
        options: crate::engine::EngineOptions,
    ) -> Result<usize, AmfError>
    where
        I: IntoIterator<Item = (usize, usize, u64, f64)>,
    {
        self.feed_batch_sharded_with(samples, options, None)
            .map(|(n, _)| n)
    }

    /// Like [`AmfTrainer::feed_batch_sharded`], with an optional
    /// [`FaultPlan`](crate::fault::FaultPlan) attached to the engine so the
    /// batch exercises worker kills, stalls, and recovery deterministically.
    /// Also returns the engine's [`FaultStats`](crate::engine::FaultStats)
    /// so callers can report what the run survived.
    ///
    /// # Errors
    ///
    /// Returns [`AmfError::InvalidConfig`] when `options` is invalid; the
    /// trainer's model is untouched in that case.
    pub fn feed_batch_sharded_with<I>(
        &mut self,
        samples: I,
        options: crate::engine::EngineOptions,
        plan: Option<std::sync::Arc<crate::fault::FaultPlan>>,
    ) -> Result<(usize, crate::engine::FaultStats), AmfError>
    where
        I: IntoIterator<Item = (usize, usize, u64, f64)>,
    {
        options.validate()?;
        let samples: Vec<(usize, usize, u64, f64)> = samples.into_iter().collect();
        for &(user, service, timestamp, value) in &samples {
            self.advance_clock(timestamp);
            self.store.upsert(user, service, timestamp, value);
        }
        // The placeholder is cheap (empty entity vectors) and is dropped as
        // soon as the engine hands the trained model back.
        let placeholder = AmfModel::new(*self.model.config())?;
        let model = std::mem::replace(&mut self.model, placeholder);
        let mut engine = crate::engine::ShardedEngine::from_model_with_plan(model, options, plan)?;
        engine.feed_batch(samples.iter().map(|&(u, s, _, v)| (u, s, v)));
        engine.drain();
        let stats = engine.fault_stats();
        self.model = engine.into_model();
        Ok((samples.len(), stats))
    }

    /// Replays one random live sample (Algorithm 1 lines 11–15). Returns the
    /// sample's relative error, or `None` when no live sample remains.
    pub fn replay_one(&mut self) -> Option<f64> {
        let expiry = self.model.config().expiry;
        let obs = self.store.sample_live(&mut self.rng, self.now, expiry)?;
        Some(
            self.model
                .observe(obs.user, obs.service, obs.value)
                .sample_error,
        )
    }

    /// Replays live samples until the windowed mean error stops improving
    /// (Algorithm 1 line 16: "if converged: wait until observing new QoS
    /// data").
    pub fn replay_until_converged(&mut self, options: ReplayOptions) -> TrainReport {
        let start = Instant::now();
        let window = options.window.max(1);
        let patience = options.patience.max(1);
        let mut iterations = 0;
        let mut window_sum = 0.0;
        let mut window_count = 0usize;
        let mut prev_mean = f64::INFINITY;
        let mut flat_streak = 0usize;
        let mut final_error = f64::NAN;
        let mut converged = false;

        while iterations < options.max_iterations {
            match self.replay_one() {
                Some(err) => {
                    iterations += 1;
                    window_sum += err;
                    window_count += 1;
                    if window_count == window {
                        let mean = window_sum / window as f64;
                        final_error = mean;
                        if prev_mean.is_finite() {
                            let improvement = (prev_mean - mean) / prev_mean.max(f64::MIN_POSITIVE);
                            if improvement < options.tolerance {
                                flat_streak += 1;
                            } else {
                                flat_streak = 0;
                            }
                            if flat_streak >= patience && iterations >= options.min_iterations {
                                converged = true;
                                break;
                            }
                        }
                        prev_mean = mean;
                        window_sum = 0.0;
                        window_count = 0;
                    }
                }
                None => break, // nothing live to replay
            }
        }
        if final_error.is_nan() && window_count > 0 {
            final_error = window_sum / window_count as f64;
        }
        TrainReport {
            iterations,
            elapsed: start.elapsed(),
            final_error,
            converged,
        }
    }

    /// Convenience for the slice-oriented experiments: feeds a whole slice of
    /// samples (in the given stream order), then replays to convergence.
    /// Returns the replay report.
    pub fn train_slice<I>(&mut self, samples: I, options: ReplayOptions) -> TrainReport
    where
        I: IntoIterator<Item = (usize, usize, u64, f64)>,
    {
        for (user, service, timestamp, value) in samples {
            self.feed(user, service, timestamp, value);
        }
        self.replay_until_converged(options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_options() -> ReplayOptions {
        ReplayOptions {
            max_iterations: 50_000,
            min_iterations: 1_000,
            window: 200,
            tolerance: 1e-3,
            patience: 3,
        }
    }

    #[test]
    fn feed_advances_clock_and_stores() {
        let mut t = AmfTrainer::new(AmfConfig::response_time()).unwrap();
        t.feed(0, 0, 500, 1.0);
        assert_eq!(t.now(), 500);
        assert_eq!(t.store().len(), 1);
        t.feed(0, 1, 300, 2.0); // older timestamp must not rewind the clock
        assert_eq!(t.now(), 500);
        assert_eq!(t.store().len(), 2);
    }

    #[test]
    fn replay_improves_fit() {
        let mut t = AmfTrainer::new(AmfConfig::response_time()).unwrap();
        // A small rank-friendly set of samples.
        let values = [
            (0, 0, 1.0),
            (0, 1, 2.0),
            (1, 0, 2.0),
            (1, 1, 4.0),
            (2, 0, 0.5),
            (2, 1, 1.0),
        ];
        for (k, &(u, s, v)) in values.iter().enumerate() {
            t.feed(u, s, k as u64, v);
        }
        let report = t.replay_until_converged(quick_options());
        assert!(report.iterations > 0);
        assert!(
            report.final_error < 0.25,
            "final error {}",
            report.final_error
        );
        for &(u, s, v) in &values {
            let p = t.model().predict(u, s).unwrap();
            assert!(
                (p - v).abs() / v < 0.5,
                "({u},{s}): predicted {p}, actual {v}"
            );
        }
    }

    #[test]
    fn replay_stops_when_everything_expired() {
        let mut t = AmfTrainer::new(AmfConfig::response_time()).unwrap();
        t.feed(0, 0, 0, 1.0);
        t.advance_clock(10_000); // sample now far older than 15 min
        let report = t.replay_until_converged(quick_options());
        assert_eq!(report.iterations, 0);
        assert!(!report.converged);
        assert!(t.store().is_empty());
    }

    #[test]
    fn replay_one_on_empty_store() {
        let mut t = AmfTrainer::new(AmfConfig::response_time()).unwrap();
        assert!(t.replay_one().is_none());
    }

    #[test]
    fn max_iterations_caps_work() {
        let mut t = AmfTrainer::new(AmfConfig::response_time()).unwrap();
        for k in 0..20 {
            t.feed(k % 4, k % 5, k as u64, 1.0 + (k % 3) as f64);
        }
        let report = t.replay_until_converged(ReplayOptions {
            max_iterations: 100,
            min_iterations: 0,
            window: 1_000_000, // window never fills -> no convergence check
            tolerance: 0.0,
            patience: 1,
        });
        assert_eq!(report.iterations, 100);
        assert!(!report.converged);
        assert!(report.final_error.is_finite());
    }

    #[test]
    fn train_slice_roundtrip() {
        let mut t = AmfTrainer::new(AmfConfig::response_time()).unwrap();
        let samples: Vec<(usize, usize, u64, f64)> = (0..30)
            .map(|k| (k % 5, k % 6, k as u64, 0.5 + (k % 4) as f64))
            .collect();
        let report = t.train_slice(samples, quick_options());
        assert!(report.iterations > 0);
        assert_eq!(t.store().len(), 30);
        assert_eq!(t.model().num_users(), 5);
        assert_eq!(t.model().num_services(), 6);
    }

    #[test]
    fn second_slice_converges_faster_than_first() {
        // The heart of Fig. 13: warm-started incremental updating needs far
        // fewer iterations than the cold start.
        let mut t = AmfTrainer::new(AmfConfig::response_time()).unwrap();
        let slice = |offset: u64| -> Vec<(usize, usize, u64, f64)> {
            (0..60)
                .map(|k| {
                    (
                        (k % 6) as usize,
                        (k % 10) as usize,
                        offset + k as u64,
                        1.0 + ((k * 7) % 5) as f64 * 0.5,
                    )
                })
                .collect()
        };
        let first = t.train_slice(slice(0), quick_options());
        let second = t.train_slice(slice(900), quick_options());
        assert!(
            second.iterations <= first.iterations,
            "warm start {} should not exceed cold start {}",
            second.iterations,
            first.iterations
        );
    }

    #[test]
    fn sharded_batch_feed_matches_sequential() {
        let samples: Vec<(usize, usize, u64, f64)> = (0..400u64)
            .map(|k| {
                (
                    (k % 7) as usize,
                    (k % 9) as usize,
                    k,
                    0.5 + (k % 5) as f64 * 0.3,
                )
            })
            .collect();
        let mut seq = AmfTrainer::new(AmfConfig::response_time()).unwrap();
        for &(u, s, t, v) in &samples {
            seq.feed(u, s, t, v);
        }
        let mut sharded = AmfTrainer::new(AmfConfig::response_time()).unwrap();
        let n = sharded
            .feed_batch_sharded(
                samples.iter().copied(),
                crate::engine::EngineOptions::with_shards(3),
            )
            .unwrap();
        assert_eq!(n, samples.len());
        assert_eq!(seq.now(), sharded.now());
        assert_eq!(seq.store().len(), sharded.store().len());
        assert_eq!(seq.model().update_count(), sharded.model().update_count());
        for u in 0..7 {
            for s in 0..9 {
                assert_eq!(seq.model().predict(u, s), sharded.model().predict(u, s));
            }
        }
    }

    #[test]
    fn sharded_batch_feed_rejects_bad_options_without_damage() {
        let mut t = AmfTrainer::new(AmfConfig::response_time()).unwrap();
        t.feed(0, 0, 0, 1.0);
        let before = t.model().predict(0, 0);
        let err = t.feed_batch_sharded(
            vec![(1, 1, 1, 2.0)],
            crate::engine::EngineOptions::with_shards(0),
        );
        assert!(err.is_err());
        assert_eq!(t.model().predict(0, 0), before);
        assert_eq!(t.store().len(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut t = AmfTrainer::new(AmfConfig::response_time()).unwrap();
            for k in 0..20 {
                t.feed(k % 3, k % 4, k as u64, 1.0 + (k % 2) as f64);
            }
            t.replay_until_converged(quick_options());
            t.model().predict(0, 0).unwrap()
        };
        assert_eq!(run(), run());
    }
}
