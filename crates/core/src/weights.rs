//! Adaptive weights and EMA error trackers (paper Eq. 12–15).
//!
//! Every user and every service carries an exponential-moving-average of its
//! recent relative prediction error. When a sample `(u, s)` arrives, the two
//! trackers split one unit of step size between them:
//!
//! ```text
//! w_u = e_u / (e_u + e_s),   w_s = e_s / (e_u + e_s)      (Eq. 12)
//! ```
//!
//! so an inaccurate (new, unconverged) entity takes large steps while its
//! accurate partner barely moves — "an accurate user should not move much
//! according to an inaccurate service", which is what makes online AMF
//! robust to churn.

use serde::{Deserialize, Serialize};

/// Initial error assigned to a brand-new user or service (Algorithm 1
/// line 7): maximal, so the newcomer moves fast.
pub const INITIAL_ERROR: f64 = 1.0;

/// EMA tracker of one entity's relative prediction error.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorTracker {
    error: f64,
}

impl ErrorTracker {
    /// A fresh tracker at [`INITIAL_ERROR`].
    pub fn new() -> Self {
        Self {
            error: INITIAL_ERROR,
        }
    }

    /// Restores a tracker from a persisted error value (clamped to ≥ 0).
    pub fn from_error(error: f64) -> Self {
        Self {
            error: error.max(0.0),
        }
    }

    /// Current EMA error.
    pub fn error(&self) -> f64 {
        self.error
    }

    /// Applies the paper's EMA update (Eq. 13/14):
    /// `e ← β·w·e_sample + (1 − β·w)·e`.
    pub fn update(&mut self, sample_error: f64, beta: f64, weight: f64) {
        let factor = beta * weight;
        self.error = qos_linalg::stats::ema_step(sample_error, self.error, factor);
    }
}

impl Default for ErrorTracker {
    fn default() -> Self {
        Self::new()
    }
}

/// The pairwise adaptive weights `(w_u, w_s)` of Eq. 12.
///
/// Degenerate case: when both errors are zero the credence is split evenly.
pub fn adaptive_weights(e_user: f64, e_service: f64) -> (f64, f64) {
    let total = e_user + e_service;
    if total <= 0.0 {
        (0.5, 0.5)
    } else {
        (e_user / total, e_service / total)
    }
}

/// The per-sample relative error `e_ij = |r − g| / r` (Eq. 15), with `r`
/// floored to avoid division blow-up at the normalized range's bottom edge.
pub fn sample_relative_error(r: f64, g: f64) -> f64 {
    (r - g).abs() / r.max(crate::online::NORMALIZED_FLOOR)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_tracker_is_maximally_uncertain() {
        assert_eq!(ErrorTracker::new().error(), 1.0);
        assert_eq!(ErrorTracker::default().error(), 1.0);
    }

    #[test]
    fn from_error_clamps_negative() {
        assert_eq!(ErrorTracker::from_error(-0.5).error(), 0.0);
        assert_eq!(ErrorTracker::from_error(0.25).error(), 0.25);
    }

    #[test]
    fn update_moves_towards_sample() {
        let mut t = ErrorTracker::new();
        t.update(0.0, 0.3, 1.0);
        assert!((t.error() - 0.7).abs() < 1e-12);
        t.update(0.0, 0.3, 1.0);
        assert!((t.error() - 0.49).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_freezes_tracker() {
        let mut t = ErrorTracker::from_error(0.4);
        t.update(1.0, 0.3, 0.0);
        assert_eq!(t.error(), 0.4);
    }

    #[test]
    fn weights_sum_to_one() {
        let (wu, ws) = adaptive_weights(0.8, 0.2);
        assert!((wu + ws - 1.0).abs() < 1e-12);
        assert!((wu - 0.8).abs() < 1e-12);
    }

    #[test]
    fn inaccurate_side_gets_more_weight() {
        // "an inaccurate user need to move a lot with respect to an accurate
        // service" — high e_u -> high w_u -> big user step.
        let (wu, ws) = adaptive_weights(1.0, 0.01);
        assert!(wu > 0.9);
        assert!(ws < 0.1);
    }

    #[test]
    fn both_zero_splits_evenly() {
        assert_eq!(adaptive_weights(0.0, 0.0), (0.5, 0.5));
    }

    #[test]
    fn paper_example_ten_to_one() {
        // Section IV-C.3: service s1 at 10% error, s2 at 1% — a user should
        // move ~10x less towards s1's opinion than s2's... i.e. when paired
        // with the *accurate* s2 the user absorbs more of the step.
        let (w_with_s1, _) = adaptive_weights(0.05, 0.10);
        let (w_with_s2, _) = adaptive_weights(0.05, 0.01);
        assert!(w_with_s2 > w_with_s1);
    }

    #[test]
    fn sample_error_basic() {
        assert!((sample_relative_error(0.5, 0.4) - 0.2).abs() < 1e-12);
        assert_eq!(sample_relative_error(0.5, 0.5), 0.0);
    }

    #[test]
    fn sample_error_floored_near_zero() {
        // r = 0 would divide by zero; the floor keeps it finite.
        let e = sample_relative_error(0.0, 0.5);
        assert!(e.is_finite());
    }

    proptest! {
        #[test]
        fn weights_are_probabilities(eu in 0.0..10.0f64, es in 0.0..10.0f64) {
            let (wu, ws) = adaptive_weights(eu, es);
            prop_assert!((0.0..=1.0).contains(&wu));
            prop_assert!((0.0..=1.0).contains(&ws));
            prop_assert!((wu + ws - 1.0).abs() < 1e-9);
        }

        #[test]
        fn tracker_stays_bounded(samples in proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64), 1..50)) {
            // With sample errors in [0,1] and weights in [0,1], the EMA can
            // never leave [0, 1] starting from 1.
            let mut t = ErrorTracker::new();
            for (e, w) in samples {
                t.update(e, 0.3, w);
                prop_assert!((0.0..=1.0).contains(&t.error()));
            }
        }

        #[test]
        fn ema_converges_to_constant_signal(target in 0.0..1.0f64) {
            let mut t = ErrorTracker::new();
            for _ in 0..500 {
                t.update(target, 0.3, 1.0);
            }
            prop_assert!((t.error() - target).abs() < 1e-6);
        }
    }
}
