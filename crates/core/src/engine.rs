//! Sharded concurrent online-update engine with shard crash containment.
//!
//! [`crate::AmfTrainer::feed`] applies the QoS stream strictly sequentially,
//! which caps ingestion at one core. This module scales the same per-sample
//! update (Eq. 16–17 via [`crate::model::apply_observation`]) across threads
//! while keeping the result *identical* to sequential execution:
//!
//! * The user and service factor matrices are partitioned into `K`
//!   lock-striped shards (`entity id % K`); every shard's entities — feature
//!   vector *and* EMA error tracker — are guarded by one per-shard mutex, so
//!   a sample's SGD step and its two tracker updates (Algorithm 1 lines
//!   21–23) commit atomically with respect to other samples.
//! * Incoming samples are fanned out to `K` std-thread workers over bounded
//!   channels (routing by user stripe), in chunks to amortize channel
//!   overhead.
//! * Per-entity ordering is enforced with tickets: the dispatcher stamps each
//!   sample with its user's and service's next sequence numbers, and a worker
//!   only applies a sample when both entities have reached those tickets,
//!   yielding otherwise. Per-user order comes free (FIFO routing by user);
//!   per-service order is what the tickets buy.
//!
//! **Why this gives exact parity.** One online update reads and writes only
//! the two entities it touches, so updates on disjoint entities commute
//! bit-for-bit. With per-entity order fixed to stream order, the inputs of
//! every update are — by induction along each entity's update chain — the
//! same values sequential execution produces, whatever the cross-entity
//! interleaving. Entity initialization is order-independent too
//! ([`crate::model`]'s per-entity seeding), so a drained engine's snapshot is
//! bitwise equal to the sequential [`crate::AmfModel`] fed the same stream.
//! The parity integration tests assert exactly that.
//!
//! # Crash containment and recovery
//!
//! A runtime-adaptation service cannot afford one panicking shard worker to
//! wedge ingestion or lose accepted samples. The engine therefore treats a
//! worker thread as *disposable*:
//!
//! * Every worker's loop runs under `catch_unwind`; a panic marks the worker
//!   dead, logs a [`FaultEvent`], and wakes the dispatcher. Stripe mutexes
//!   recover from poisoning everywhere.
//! * The dispatcher keeps a **per-worker journal** of stamped jobs that are
//!   dispatched but not yet confirmed applied (workers publish a per-worker
//!   applied watermark after every job). On worker death the dispatcher
//!   respawns the shard thread and **replays the journal** from the
//!   watermark. Replay is idempotent: a job whose ordering tickets have
//!   already committed is skipped, so each accepted sample is applied
//!   exactly once and per-entity order is preserved — the result stays
//!   bitwise equal to the sequential run.
//! * For crashes *mid-update* (state mutated, tickets not yet committed),
//!   workers can snapshot the two touched entities into an in-flight backup
//!   before every SGD step ([`EngineOptions::inflight_backup`], forced on
//!   when a [`FaultPlan`] is attached); recovery rolls the torn entities
//!   back before replaying, restoring exactness even for the nastiest crash
//!   point.
//! * Respawns are budgeted ([`EngineOptions::max_respawns`] per worker); a
//!   worker that keeps dying is abandoned, its unapplied samples counted in
//!   [`FaultStats::samples_lost`] rather than hanging [`ShardedEngine::drain`]
//!   forever.
//!
//! Deterministic fault injection for all of the above lives in
//! [`crate::fault::FaultPlan`] (attach via
//! [`ShardedEngine::from_model_with_plan`]).
//!
//! When losing throughput is preferable to blocking (the service's
//! load-shedding path), [`ShardedEngine::feed_batch_shedding`] bounds how
//! long admission may wait on a full queue and sheds the remainder with
//! exact counts instead of blocking forever.
//!
//! # Examples
//!
//! ```
//! use amf_core::engine::{EngineOptions, ShardedEngine};
//! use amf_core::AmfConfig;
//!
//! let mut engine = ShardedEngine::new(
//!     AmfConfig::response_time(),
//!     EngineOptions { shards: 4, ..EngineOptions::default() },
//! )?;
//! engine.feed_batch([(0, 0, 1.4), (1, 0, 0.9), (0, 1, 2.3)]);
//! engine.drain();
//! let model = engine.snapshot();
//! assert_eq!(model.update_count(), 3);
//! assert!(model.predict(1, 1).is_some());
//! # Ok::<(), amf_core::AmfError>(())
//! ```

use crate::config::AmfConfig;
use crate::fault::{FaultPlan, InjectedCrash, KillPhase};
use crate::model::{apply_observation, AmfModel, EntityKind, EntityState, FactorSlab};
use crate::stream::{AccuracyWindow, DriftSentinel};
use crate::weights::ErrorTracker;
use crate::AmfError;
use qos_transform::QosTransform;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// The engine's consistency contract: what the parallel result is promised
/// to equal (see DESIGN.md §13 for the full spectrum and the test harness
/// that enforces each point on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Consistency {
    /// Bitwise sequential equivalence: tickets pin per-entity stream order,
    /// a journal replays crashed workers, and the drained model is
    /// bit-for-bit equal to feeding the stream to [`AmfModel`] one sample at
    /// a time. The conformance oracle — and the default.
    #[default]
    Parity,
    /// Hogwild-style statistically-bounded equivalence: workers claim
    /// entities with atomic epoch flags and apply samples in whatever order
    /// they arrive, so per-entity *ordering* (not per-entity atomicity) is
    /// relaxed. Every accepted sample is still applied — the update count is
    /// exact — but windowed accuracy is only guaranteed within the ε bound
    /// that `tests/relaxed_parity.rs` enforces against the parity engine.
    /// Crash recovery re-applies the in-flight sample (at-least-once)
    /// instead of journal replay.
    Relaxed,
}

impl std::str::FromStr for Consistency {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "parity" => Ok(Self::Parity),
            "relaxed" => Ok(Self::Relaxed),
            other => Err(format!(
                "unknown consistency '{other}' (expected 'parity' or 'relaxed')"
            )),
        }
    }
}

impl std::fmt::Display for Consistency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Parity => "parity",
            Self::Relaxed => "relaxed",
        })
    }
}

/// Tuning knobs for [`ShardedEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Number of lock stripes *and* worker threads, `K ≥ 1`.
    pub shards: usize,
    /// Bounded per-worker channel depth, in chunks.
    pub queue_capacity: usize,
    /// Samples per dispatched chunk (amortizes channel overhead).
    pub chunk_size: usize,
    /// Record, per entity, the global stream indices of the samples applied
    /// to it — the evidence the parity tests compare against stream order.
    /// Costs one `Vec` push per entity per sample; off by default.
    /// Unsupported in [`Consistency::Relaxed`] mode (there is no global
    /// application order to record).
    pub record_history: bool,
    /// Snapshot the two touched entities before every SGD step so a crash
    /// *mid-update* can be rolled back exactly. Costs two small state clones
    /// per sample; off by default, forced on when a fault plan is attached.
    pub inflight_backup: bool,
    /// Respawn budget per worker before the shard is abandoned and its
    /// unapplied samples are counted as lost instead of retried forever.
    pub max_respawns: u32,
    /// Which equivalence contract the engine runs under; see [`Consistency`].
    pub consistency: Consistency,
    /// Relaxed-mode micro-batch: samples buffered before one scoped
    /// fan-out/fan-in pass over the worker threads. Larger batches amortize
    /// thread startup; smaller ones bound snapshot staleness.
    pub relaxed_batch: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_capacity: 64,
            chunk_size: 256,
            record_history: false,
            inflight_backup: false,
            max_respawns: 8,
            consistency: Consistency::Parity,
            relaxed_batch: 8_192,
        }
    }
}

impl EngineOptions {
    /// Options for `K` shards, other knobs at their defaults.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards,
            ..Self::default()
        }
    }

    /// Options for `K` shards under `consistency`, other knobs at defaults.
    pub fn with_consistency(shards: usize, consistency: Consistency) -> Self {
        Self {
            shards,
            consistency,
            ..Self::default()
        }
    }

    /// Checks the options are usable.
    ///
    /// # Errors
    ///
    /// Returns [`AmfError::InvalidConfig`] when any knob is zero, or when
    /// history recording is requested in relaxed mode (which has no global
    /// application order to record).
    pub fn validate(&self) -> Result<(), AmfError> {
        if self.shards == 0 {
            return Err(AmfError::InvalidConfig("shards must be >= 1".into()));
        }
        if self.chunk_size == 0 || self.queue_capacity == 0 {
            return Err(AmfError::InvalidConfig(
                "chunk_size and queue_capacity must be >= 1".into(),
            ));
        }
        if self.relaxed_batch == 0 {
            return Err(AmfError::InvalidConfig("relaxed_batch must be >= 1".into()));
        }
        if self.consistency == Consistency::Relaxed && self.record_history {
            return Err(AmfError::InvalidConfig(
                "record_history requires the parity engine (relaxed mode has no \
                 global application order)"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// Load-shedding policy for [`ShardedEngine::feed_batch_shedding`]: how hard
/// admission tries before dropping a chunk on a full queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedPolicy {
    /// Attempts per chunk before shedding (1 = a single `try_send`).
    pub max_attempts: u32,
    /// Sleep between attempts.
    pub backoff: Duration,
}

impl Default for ShedPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 16,
            backoff: Duration::from_micros(500),
        }
    }
}

/// Outcome of a shedding feed: every offered sample is either queued or shed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeedOutcome {
    /// Samples queued for application.
    pub queued: u64,
    /// Samples dropped because the target queue stayed full.
    pub shed: u64,
}

/// One recorded worker death.
#[derive(Debug, Clone)]
pub struct FaultEvent {
    /// Which worker died.
    pub worker: usize,
    /// The worker's applied-job watermark at death.
    pub at_job: u64,
    /// Whether the panic was a scripted [`FaultPlan`] kill.
    pub injected: bool,
    /// The panic message (or a description of the injected fault).
    pub message: String,
}

/// Aggregate fault counters for the engine's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Worker panics caught (injected and genuine).
    pub worker_panics: u64,
    /// Of those, scripted [`FaultPlan`] kills.
    pub injected_panics: u64,
    /// Successful worker respawns.
    pub respawns: u64,
    /// Journal jobs replayed to respawned workers (includes already-applied
    /// jobs that replay then skipped).
    pub jobs_replayed: u64,
    /// Accepted samples abandoned because a worker exhausted its respawn
    /// budget (0 in any healthy run).
    pub samples_lost: u64,
    /// Workers currently abandoned.
    pub abandoned_workers: u64,
}

/// One queued observation with its ordering tickets.
///
/// Plain `Copy` data — `(ids, raw value, tickets)` — so journaling a job is a
/// 56-byte memcpy, never a heap clone.
#[derive(Clone, Copy)]
struct Job {
    user: usize,
    service: usize,
    raw: f64,
    /// This sample's position in the user's per-entity sequence.
    user_ticket: u64,
    /// This sample's position in the service's per-entity sequence.
    service_ticket: u64,
    /// Global stream index (history recording only).
    index: u64,
    /// Per-worker dispatch sequence number (journal watermark key).
    seq: u64,
}

/// One lock stripe: the entities whose `id % K` equals the stripe index,
/// stored as a contiguous mini-slab (same layout as the model's
/// [`FactorSlab`]) plus an id → local-slot index. Per-slot metadata
/// (tickets, history) lives in parallel vectors.
struct Stripe {
    dim: usize,
    index: HashMap<usize, usize>,
    factors: Vec<f64>,
    trackers: Vec<ErrorTracker>,
    /// Next per-entity sequence number each slot will accept.
    tickets: Vec<u64>,
    /// Applied global stream indices per slot (filled only when history
    /// recording is on; otherwise the inner vectors stay unallocated).
    histories: Vec<Vec<u64>>,
}

impl Stripe {
    fn new(dim: usize) -> Self {
        Self {
            dim,
            index: HashMap::new(),
            factors: Vec::new(),
            trackers: Vec::new(),
            tickets: Vec::new(),
            histories: Vec::new(),
        }
    }

    /// Appends an entity, copying its factors into the stripe slab.
    fn push_entity(&mut self, id: usize, factors: &[f64], tracker: ErrorTracker) -> usize {
        debug_assert_eq!(factors.len(), self.dim);
        let slot = self.trackers.len();
        self.index.insert(id, slot);
        self.factors.extend_from_slice(factors);
        self.trackers.push(tracker);
        self.tickets.push(0);
        self.histories.push(Vec::new());
        slot
    }

    fn factors_at(&self, slot: usize) -> &[f64] {
        &self.factors[slot * self.dim..(slot + 1) * self.dim]
    }

    /// Simultaneous mutable access to one slot's factors and tracker
    /// (distinct backing vectors, so the split borrow is free).
    fn entity_mut(&mut self, slot: usize) -> (&mut [f64], &mut ErrorTracker) {
        (
            &mut self.factors[slot * self.dim..(slot + 1) * self.dim],
            &mut self.trackers[slot],
        )
    }
}

/// Reusable pre-update snapshot of the two entities an in-flight job
/// touches. The factor buffers are allocated once per worker at engine
/// construction (fixed `d`); arming the backup is two `copy_from_slice`
/// calls and two `Copy` tracker reads — no per-sample allocation.
struct InflightScratch {
    /// Whether the scratch currently holds a live (uncommitted) snapshot.
    armed: bool,
    user: usize,
    service: usize,
    user_ticket: u64,
    service_ticket: u64,
    user_factors: Vec<f64>,
    service_factors: Vec<f64>,
    user_tracker: ErrorTracker,
    service_tracker: ErrorTracker,
}

impl InflightScratch {
    fn new(dim: usize) -> Self {
        Self {
            armed: false,
            user: 0,
            service: 0,
            user_ticket: 0,
            service_ticket: 0,
            user_factors: vec![0.0; dim],
            service_factors: vec![0.0; dim],
            user_tracker: ErrorTracker::new(),
            service_tracker: ErrorTracker::new(),
        }
    }
}

/// Shared per-worker health and progress cell.
struct WorkerCell {
    /// False once the worker's loop has panicked (until respawn).
    alive: AtomicBool,
    /// Jobs completed (applied, or skipped as already-applied on replay):
    /// the journal GC and drain watermark.
    applied: AtomicU64,
    /// The reusable snapshot recovery rolls torn state back from.
    inflight: Mutex<InflightScratch>,
    /// This worker's streaming-accuracy state. Only worker `w` pushes to
    /// cell `w` (the dispatcher reads at merge time), so the lock is
    /// uncontended on the apply path.
    telemetry: Mutex<ShardTelemetry>,
}

/// Per-worker accuracy window and drift sentinel, folded into the model's
/// base telemetry at [`ShardedEngine::snapshot`]/[`ShardedEngine::into_model`]
/// in worker order (deterministic given the routing). Pushed only *after* a
/// job's tickets commit, so replayed-and-skipped jobs are never counted
/// twice; a crash between apply and push loses at most that one in-flight
/// sample's telemetry (best-effort, the model state itself is exact).
struct ShardTelemetry {
    window: AccuracyWindow,
    sentinel: DriftSentinel,
}

struct Shared {
    config: AmfConfig,
    transform: QosTransform,
    users: Vec<Mutex<Stripe>>,
    services: Vec<Mutex<Stripe>>,
    record_history: bool,
    backup_enabled: bool,
    cells: Vec<WorkerCell>,
    /// Caught worker panics, oldest first.
    faults: Mutex<Vec<FaultEvent>>,
    /// Sleep/wake pair for [`ShardedEngine::drain`]; all state it waits on
    /// lives in the atomics above, so the mutex guards nothing but the wait.
    progress: Mutex<()>,
    drained: Condvar,
    fault_plan: Option<Arc<FaultPlan>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A panicking worker must not wedge every other worker on poison errors;
    // recovery restores any state a panic could have torn mid-update.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    /// Local slot of `id` in `stripe`, creating its deterministic fresh
    /// state on first touch.
    fn slot(&self, stripe: &mut Stripe, kind: EntityKind, id: usize) -> usize {
        if let Some(&slot) = stripe.index.get(&id) {
            return slot;
        }
        let fresh = EntityState::fresh(&self.config, kind, id);
        stripe.push_entity(id, &fresh.factors, fresh.tracker)
    }

    fn apply(&self, w: usize, job: &Job, telemetry: &mut ShardTelemetry) {
        let (u_stripe, s_stripe) = (
            job.user % self.users.len(),
            job.service % self.services.len(),
        );
        loop {
            // Lock order is always user stripe then service stripe; the two
            // stripe arrays are disjoint, so this cannot deadlock.
            let mut users = lock(&self.users[u_stripe]);
            let ui = self.slot(&mut users, EntityKind::User, job.user);
            if users.tickets[ui] > job.user_ticket {
                // Already applied before a crash: this is a journal replay
                // of a completed job — skipping keeps replay idempotent.
                return;
            }
            if users.tickets[ui] == job.user_ticket {
                let mut services = lock(&self.services[s_stripe]);
                let si = self.slot(&mut services, EntityKind::Service, job.service);
                if services.tickets[si] > job.service_ticket {
                    // Tickets commit together, so this mirrors the user-side
                    // skip; defensive (unreachable when the user ticket
                    // still matches).
                    return;
                }
                if services.tickets[si] == job.service_ticket {
                    if let Some(plan) = &self.fault_plan {
                        // Scripted clean worker death: fires before any
                        // state is touched.
                        plan.crash_point(w, job.seq, KillPhase::Before);
                    }
                    if self.backup_enabled {
                        let mut scratch = lock(&self.cells[w].inflight);
                        scratch.user = job.user;
                        scratch.service = job.service;
                        scratch.user_ticket = job.user_ticket;
                        scratch.service_ticket = job.service_ticket;
                        scratch.user_factors.copy_from_slice(users.factors_at(ui));
                        scratch
                            .service_factors
                            .copy_from_slice(services.factors_at(si));
                        scratch.user_tracker = users.trackers[ui];
                        scratch.service_tracker = services.trackers[si];
                        scratch.armed = true;
                    }
                    let (user_factors, user_tracker) = users.entity_mut(ui);
                    let (service_factors, service_tracker) = services.entity_mut(si);
                    let outcome = apply_observation(
                        &self.config,
                        &self.transform,
                        user_factors,
                        user_tracker,
                        service_factors,
                        service_tracker,
                        job.raw,
                    );
                    if let Some(plan) = &self.fault_plan {
                        // Scripted mid-update death: factors mutated, tickets
                        // not yet committed — recovery must roll back.
                        plan.crash_point(w, job.seq, KillPhase::Mid);
                    }
                    users.tickets[ui] += 1;
                    services.tickets[si] += 1;
                    if self.record_history {
                        users.histories[ui].push(job.index);
                        services.histories[si].push(job.index);
                    }
                    // Post-commit: the job is now definitively applied, so
                    // it is safe to count it exactly once (replay skips exit
                    // above, before this point).
                    let e_u = users.trackers[ui].error();
                    let e_s = services.trackers[si].error();
                    drop(services);
                    drop(users);
                    telemetry
                        .window
                        .push(outcome.r, outcome.g, outcome.sample_error);
                    let verdict = telemetry.sentinel.observe(e_u, e_s);
                    if verdict.any() {
                        let metrics = crate::obs::model_metrics();
                        if verdict.user_alarm {
                            metrics.drift_alarms_user.inc();
                        }
                        if verdict.service_alarm {
                            metrics.drift_alarms_service.inc();
                        }
                        metrics.drift_healthy.set(0.0);
                        qos_obs::global().trace().event("drift_alarm", "");
                    }
                    if self.backup_enabled {
                        lock(&self.cells[w].inflight).armed = false;
                    }
                    return;
                }
            }
            // An earlier sample of one of the two entities is still in
            // flight on another worker; it is queued (or being replayed
            // after a crash) and will run, so back off and retry.
            drop(users);
            std::thread::yield_now();
        }
    }

    /// The worker loop: applies chunks and publishes the per-job watermark.
    /// Any panic is contained here — recorded, health flag dropped, and the
    /// dispatcher woken to respawn.
    fn worker(&self, w: usize, jobs: &Receiver<Vec<Job>>) {
        // Per-shard chunk-apply latency; registered once per worker spawn
        // (the format! and registry lock happen here, never per chunk).
        let apply_ns =
            qos_obs::global().histogram_labeled("engine.chunk_apply_ns", &format!("shard-{w}"));
        let caught = catch_unwind(AssertUnwindSafe(|| {
            while let Ok(chunk) = jobs.recv() {
                let started = std::time::Instant::now();
                // One telemetry lock per chunk, not per sample: only worker
                // `w` ever locks cell `w` on this path, but even an
                // uncontended lock/unlock pair is measurable at per-sample
                // frequency. Held across apply's stripe locks — safe, since
                // no other thread takes this cell's lock while the worker is
                // mid-chunk (the dispatcher merges only after a drain).
                let mut telemetry = lock(&self.cells[w].telemetry);
                for job in &chunk {
                    self.apply(w, job, &mut telemetry);
                    self.cells[w].applied.store(job.seq + 1, Ordering::Release);
                }
                drop(telemetry);
                apply_ns.record_duration(started.elapsed());
                self.drained.notify_all();
            }
        }));
        if let Err(payload) = caught {
            let injected = payload.downcast_ref::<InjectedCrash>();
            let message = if let Some(crash) = injected {
                format!("injected {:?} kill at job {}", crash.phase, crash.at_job)
            } else if let Some(text) = payload.downcast_ref::<&str>() {
                (*text).to_string()
            } else if let Some(text) = payload.downcast_ref::<String>() {
                text.clone()
            } else {
                "worker panicked".to_string()
            };
            self.cells[w].alive.store(false, Ordering::Release);
            crate::obs::engine_metrics().worker_panics.inc();
            qos_obs::global()
                .trace()
                .event("engine_worker_panic", message.clone());
            lock(&self.faults).push(FaultEvent {
                worker: w,
                at_job: self.cells[w].applied.load(Ordering::Acquire),
                injected: injected.is_some(),
                message,
            });
            self.drained.notify_all();
        }
    }

    /// Attempts to cancel a lost job's ordering tickets (abandoned-worker
    /// path): bumps each touched entity's ticket past the job *as if* it had
    /// been applied, without touching factors, so live workers sharing a
    /// service with the lost job stop waiting for it. Returns `false` while
    /// a predecessor sample is still in flight — retry after other workers
    /// make progress. Each side's bump is idempotent (equality-gated), so a
    /// partially-cancelled job can be retried safely.
    fn try_cancel(&self, job: &Job) -> bool {
        {
            let mut users = lock(&self.users[job.user % self.users.len()]);
            let slot = self.slot(&mut users, EntityKind::User, job.user);
            if users.tickets[slot] < job.user_ticket {
                return false;
            }
            if users.tickets[slot] == job.user_ticket {
                users.tickets[slot] += 1;
            }
        }
        let mut services = lock(&self.services[job.service % self.services.len()]);
        let slot = self.slot(&mut services, EntityKind::Service, job.service);
        if services.tickets[slot] < job.service_ticket {
            return false;
        }
        if services.tickets[slot] == job.service_ticket {
            services.tickets[slot] += 1;
        }
        true
    }

    /// Rolls back the torn state of `w`'s in-flight job, if its tickets
    /// never committed. Disarms the scratch either way.
    fn rollback_inflight(&self, w: usize) {
        let mut scratch = lock(&self.cells[w].inflight);
        if !scratch.armed {
            return;
        }
        scratch.armed = false;
        let mut users = lock(&self.users[scratch.user % self.users.len()]);
        if let Some(&slot) = users.index.get(&scratch.user) {
            if users.tickets[slot] == scratch.user_ticket {
                let (factors, tracker) = users.entity_mut(slot);
                factors.copy_from_slice(&scratch.user_factors);
                *tracker = scratch.user_tracker;
            }
        }
        drop(users);
        let mut services = lock(&self.services[scratch.service % self.services.len()]);
        if let Some(&slot) = services.index.get(&scratch.service) {
            if services.tickets[slot] == scratch.service_ticket {
                let (factors, tracker) = services.entity_mut(slot);
                factors.copy_from_slice(&scratch.service_factors);
                *tracker = scratch.service_tracker;
            }
        }
    }
}

/// The bitwise-parity threaded core: ingests a QoS stream with `K` worker
/// threads while guaranteeing sequential-equivalent results, and survives
/// worker crashes without losing accepted samples (see the module docs for
/// the recovery protocol).
///
/// The core is a *dispatcher* handle: `feed_batch` stamps tickets and
/// routes, workers own the hot loop. [`ShardedEngine`] wraps it (alongside
/// the in-thread fast path and the relaxed lane) and routes based on
/// [`EngineOptions::consistency`].
pub(crate) struct ParityCore {
    shared: Arc<Shared>,
    senders: Vec<SyncSender<Vec<Job>>>,
    workers: Vec<Option<JoinHandle<()>>>,
    /// Per-worker chunk under construction (exact/blocking path).
    pending: Vec<Vec<Job>>,
    /// Per-worker chunks stamped but not yet accepted by the channel. The
    /// dispatcher never blocks on a channel send — chunks wait here and
    /// [`ShardedEngine::pump`] moves them with `try_send`, so recovery and
    /// ticket cancellation keep making progress even when a queue is full.
    outbox: Vec<VecDeque<Vec<Job>>>,
    /// Stamped-but-unconfirmed jobs per worker, oldest first — the replay
    /// source after a worker death (a superset of the outbox's jobs).
    journal: Vec<VecDeque<Job>>,
    /// Lost jobs (abandoned workers) whose ordering tickets still need
    /// cancelling; retried in [`ShardedEngine::pump`] until empty.
    cancel_backlog: Vec<Job>,
    /// Per-worker dispatch sequence counters (`journal` watermark space).
    dispatched: Vec<u64>,
    /// Per-worker respawn budget consumed.
    respawns: Vec<u32>,
    /// Workers whose respawn budget ran out.
    abandoned: Vec<bool>,
    /// Dispatcher-side per-entity ticket counters.
    user_tickets: HashMap<usize, u64>,
    service_tickets: HashMap<usize, u64>,
    /// Entity-count watermarks (mirror the sequential model's dense
    /// registration: ids up to the maximum seen exist after a snapshot).
    num_users: usize,
    num_services: usize,
    submitted: u64,
    shed: u64,
    replayed: u64,
    lost: u64,
    /// Update count carried over from a pre-trained source model.
    base_updates: u64,
    /// Accuracy window carried over from the source model; per-worker
    /// windows fold into a clone of this at snapshot time, keeping windowed
    /// MRE/NMAE continuous across sequential → sharded transitions.
    base_accuracy: AccuracyWindow,
    /// Drift sentinel carried over from the source model (alarm counts
    /// accumulate across engine generations; detector state restarts per
    /// worker stream).
    base_sentinel: DriftSentinel,
    /// Per-shard outbox backlog gauges, registered once at construction so
    /// the pump never touches the registry lock.
    backlog_gauges: Vec<Arc<qos_obs::Gauge>>,
    /// Lifetime high-watermark of the summed outbox depth.
    outbox_hwm: usize,
    options: EngineOptions,
}

impl ParityCore {
    /// Wraps an existing (possibly trained) model with a deterministic fault
    /// script attached: shard workers consult `plan` at every apply and
    /// crash or stall where scripted. Attaching a plan forces
    /// [`EngineOptions::inflight_backup`] on, so mid-update kills recover
    /// exactly. Options are assumed validated by the caller.
    fn from_model_with_plan(
        model: AmfModel,
        mut options: EngineOptions,
        plan: Option<Arc<FaultPlan>>,
    ) -> Result<Self, AmfError> {
        if plan.is_some() {
            options.inflight_backup = true;
        }
        let k = options.shards;
        let config = *model.config();
        let transform = *model.transform();
        let base_updates = model.update_count();
        let dim = config.dimension;
        let (users, services, base_accuracy, base_sentinel) = model.into_parts();
        let (num_users, num_services) = (users.len(), services.len());
        let sentinel_config = *base_sentinel.config();

        let mut user_stripes: Vec<Stripe> = (0..k).map(|_| Stripe::new(dim)).collect();
        let mut service_stripes: Vec<Stripe> = (0..k).map(|_| Stripe::new(dim)).collect();
        for id in 0..num_users {
            user_stripes[id % k].push_entity(id, users.factors(id), *users.tracker(id));
        }
        for id in 0..num_services {
            service_stripes[id % k].push_entity(id, services.factors(id), *services.tracker(id));
        }

        let shared = Arc::new(Shared {
            config,
            transform,
            users: user_stripes.into_iter().map(Mutex::new).collect(),
            services: service_stripes.into_iter().map(Mutex::new).collect(),
            record_history: options.record_history,
            backup_enabled: options.inflight_backup,
            cells: (0..k)
                .map(|_| WorkerCell {
                    alive: AtomicBool::new(true),
                    applied: AtomicU64::new(0),
                    inflight: Mutex::new(InflightScratch::new(dim)),
                    telemetry: Mutex::new(ShardTelemetry {
                        window: AccuracyWindow::default(),
                        sentinel: DriftSentinel::new(sentinel_config),
                    }),
                })
                .collect(),
            faults: Mutex::new(Vec::new()),
            progress: Mutex::new(()),
            drained: Condvar::new(),
            fault_plan: plan,
        });

        let mut engine = Self {
            shared,
            senders: Vec::with_capacity(k),
            workers: (0..k).map(|_| None).collect(),
            pending: (0..k).map(|_| Vec::new()).collect(),
            outbox: (0..k).map(|_| VecDeque::new()).collect(),
            journal: (0..k).map(|_| VecDeque::new()).collect(),
            cancel_backlog: Vec::new(),
            dispatched: vec![0; k],
            respawns: vec![0; k],
            abandoned: vec![false; k],
            user_tickets: HashMap::new(),
            service_tickets: HashMap::new(),
            num_users,
            num_services,
            submitted: 0,
            shed: 0,
            replayed: 0,
            lost: 0,
            base_updates,
            base_accuracy,
            base_sentinel,
            backlog_gauges: (0..k)
                .map(|w| {
                    qos_obs::global().gauge_labeled("engine.shard_backlog", &format!("shard-{w}"))
                })
                .collect(),
            outbox_hwm: 0,
            options,
        };
        for w in 0..k {
            let (tx, handle) = engine.spawn_worker(w, 0)?;
            engine.senders.push(tx);
            engine.workers[w] = Some(handle);
        }
        Ok(engine)
    }

    fn spawn_worker(
        &self,
        w: usize,
        generation: u32,
    ) -> Result<(SyncSender<Vec<Job>>, JoinHandle<()>), AmfError> {
        let (tx, rx) = std::sync::mpsc::sync_channel::<Vec<Job>>(self.options.queue_capacity);
        let shared = Arc::clone(&self.shared);
        let name = if generation == 0 {
            format!("amf-shard-{w}")
        } else {
            format!("amf-shard-{w}-r{generation}")
        };
        let handle = std::thread::Builder::new()
            .name(name)
            .spawn(move || shared.worker(w, &rx))
            .map_err(AmfError::Io)?;
        Ok((tx, handle))
    }

    /// The engine's tuning options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// The model hyperparameters.
    pub fn config(&self) -> &AmfConfig {
        &self.shared.config
    }

    /// Number of samples accepted by [`ShardedEngine::feed_batch`] /
    /// queued by [`ShardedEngine::feed_batch_shedding`] so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Number of samples workers have fully applied so far.
    pub fn processed(&self) -> u64 {
        self.shared
            .cells
            .iter()
            .map(|c| c.applied.load(Ordering::Acquire))
            .sum()
    }

    /// Aggregate fault counters (all zero in a fault-free run).
    pub fn fault_stats(&self) -> FaultStats {
        let faults = lock(&self.shared.faults);
        FaultStats {
            worker_panics: faults.len() as u64,
            injected_panics: faults.iter().filter(|f| f.injected).count() as u64,
            respawns: self.respawns.iter().map(|&r| u64::from(r)).sum(),
            jobs_replayed: self.replayed,
            samples_lost: self.lost,
            abandoned_workers: self.abandoned.iter().filter(|&&a| a).count() as u64,
        }
    }

    /// The recorded worker deaths, oldest first.
    pub fn fault_events(&self) -> Vec<FaultEvent> {
        lock(&self.shared.faults).clone()
    }

    /// Whether any shard is currently dead or abandoned — predictions served
    /// meanwhile should be treated as degraded.
    pub fn is_degraded(&self) -> bool {
        self.abandoned.iter().any(|&a| a)
            || self
                .shared
                .cells
                .iter()
                .any(|c| !c.alive.load(Ordering::Acquire))
    }

    /// Stamps a sample with its ordering tickets and bookkeeping. Must be
    /// called in global stream order — the tickets *are* the per-entity
    /// stream order. The per-worker `seq` is assigned later, when the job
    /// is actually committed for dispatch (shed jobs never consume seq
    /// space, which is what keeps the applied watermark gapless).
    fn stamp(&mut self, user: usize, service: usize, raw: f64) -> Job {
        let user_ticket = self.user_tickets.entry(user).or_insert(0);
        let service_ticket = self.service_tickets.entry(service).or_insert(0);
        let job = Job {
            user,
            service,
            raw,
            user_ticket: *user_ticket,
            service_ticket: *service_ticket,
            index: self.submitted,
            seq: 0,
        };
        *user_ticket += 1;
        *service_ticket += 1;
        self.submitted += 1;
        self.num_users = self.num_users.max(user + 1);
        self.num_services = self.num_services.max(service + 1);
        job
    }

    /// Queues a batch of `(user, service, raw QoS)` observations, fanning
    /// them out to the shard workers. Returns once every sample is *queued*
    /// (bounded queues apply backpressure); use [`ShardedEngine::drain`] to
    /// wait for application. Worker deaths encountered while queuing are
    /// recovered transparently.
    pub fn feed_batch<I>(&mut self, samples: I)
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        let k = self.options.shards;
        for (user, service, raw) in samples {
            let w = user % k;
            let job = self.stamp(user, service, raw);
            self.pending[w].push(job);
            if self.pending[w].len() >= self.options.chunk_size {
                let chunk = std::mem::take(&mut self.pending[w]);
                self.dispatch(w, chunk);
            }
        }
        self.flush();
    }

    /// Load-shedding admission: like [`ShardedEngine::feed_batch`] but a
    /// chunk that cannot be queued within `policy`'s attempt budget is
    /// dropped (before its tickets commit) instead of blocking. Returns the
    /// exact queued/shed split. Per-entity ordering of *queued* samples is
    /// preserved; global parity with the unshed stream is, by construction,
    /// not (samples are missing).
    pub fn feed_batch_shedding<I>(&mut self, samples: I, policy: ShedPolicy) -> FeedOutcome
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        let k = self.options.shards;
        let mut outcome = FeedOutcome::default();
        let mut buf: Vec<Vec<Job>> = (0..k).map(|_| Vec::new()).collect();
        for (user, service, raw) in samples {
            let w = user % k;
            let job = self.stamp(user, service, raw);
            buf[w].push(job);
            if buf[w].len() >= self.options.chunk_size {
                let chunk = std::mem::take(&mut buf[w]);
                self.offer_chunk(w, chunk, policy, &mut outcome);
            }
        }
        for (w, chunk) in buf.into_iter().enumerate() {
            if !chunk.is_empty() {
                self.offer_chunk(w, chunk, policy, &mut outcome);
            }
        }
        outcome
    }

    /// Offers one stamped chunk with bounded retries, shedding on a
    /// persistently full queue. A shed chunk's ordering tickets are
    /// *cancelled* (bumped past, like an abandoned worker's lost jobs)
    /// rather than rolled back — later samples of the same entities were
    /// already stamped relative to them, so cancellation is what keeps the
    /// admitted stream's per-entity order gapless.
    fn offer_chunk(
        &mut self,
        w: usize,
        mut chunk: Vec<Job>,
        policy: ShedPolicy,
        outcome: &mut FeedOutcome,
    ) {
        let n = chunk.len() as u64;
        if self.abandoned[w] {
            self.shed += n;
            crate::obs::engine_metrics().samples_shed.add(n);
            outcome.shed += n;
            self.cancel_backlog.extend(chunk);
            self.cancel_pass();
            return;
        }
        // Seqs are provisional until the channel accepts the chunk; nothing
        // else consumes this worker's seq space between attempts, so they
        // stay stable across retries and shed chunks leave no seq gap.
        for (i, job) in chunk.iter_mut().enumerate() {
            job.seq = self.dispatched[w] + i as u64;
        }
        let mut attempts = 0u32;
        loop {
            // Keep recovery, replay, and cancellation moving while we wait.
            self.pump();
            if self.abandoned[w] {
                self.shed += n;
                crate::obs::engine_metrics().samples_shed.add(n);
                outcome.shed += n;
                self.cancel_backlog.extend(chunk);
                self.cancel_pass();
                return;
            }
            // Only send directly when no replay chunks are queued ahead of
            // us — overtaking them would break per-worker seq order.
            if self.outbox[w].is_empty() && self.shared.cells[w].alive.load(Ordering::Acquire) {
                match self.senders[w].try_send(chunk.clone()) {
                    Ok(()) => {
                        let metrics = crate::obs::engine_metrics();
                        metrics.chunks_dispatched.inc();
                        metrics.jobs_dispatched.add(n);
                        self.dispatched[w] += n;
                        for job in chunk {
                            self.journal[w].push_back(job);
                        }
                        self.gc_journal(w);
                        outcome.queued += n;
                        return;
                    }
                    Err(TrySendError::Full(_)) => {
                        crate::obs::engine_metrics().queue_full.inc();
                    }
                    Err(TrySendError::Disconnected(_)) => {}
                }
            }
            attempts += 1;
            if attempts >= policy.max_attempts.max(1) {
                self.shed += n;
                crate::obs::engine_metrics().samples_shed.add(n);
                outcome.shed += n;
                self.cancel_backlog.extend(chunk);
                self.cancel_pass();
                return;
            }
            std::thread::sleep(policy.backoff);
        }
    }

    /// Registers a user eagerly (id and factors exist before any sample).
    /// Safe while workers are mid-stream: creation takes the stripe lock.
    pub fn ensure_user(&mut self, user: usize) {
        self.num_users = self.num_users.max(user + 1);
        let stripe = user % self.options.shards;
        let mut guard = lock(&self.shared.users[stripe]);
        self.shared.slot(&mut guard, EntityKind::User, user);
    }

    /// Registers a service eagerly; see [`ShardedEngine::ensure_user`].
    pub fn ensure_service(&mut self, service: usize) {
        self.num_services = self.num_services.max(service + 1);
        let stripe = service % self.options.shards;
        let mut guard = lock(&self.shared.services[stripe]);
        self.shared.slot(&mut guard, EntityKind::Service, service);
    }

    /// Blocks until every queued sample has been applied, respawning and
    /// replaying any workers that die along the way. Returns early only if
    /// a worker exhausts its respawn budget (see
    /// [`FaultStats::samples_lost`]).
    pub fn drain(&mut self) {
        let drain_ns = qos_obs::global().histogram("engine.drain_ns");
        let _span = qos_obs::global()
            .trace()
            .span("engine_drain")
            .with_histogram(&drain_ns);
        self.flush();
        loop {
            self.pump();
            let done = self.cancel_backlog.is_empty()
                && (0..self.options.shards).all(|w| {
                    self.abandoned[w]
                        || (self.outbox[w].is_empty()
                            && self.shared.cells[w].applied.load(Ordering::Acquire)
                                >= self.dispatched[w])
                });
            if done {
                return;
            }
            let guard = lock(&self.shared.progress);
            // Timed wait: worker death can race the notify, and the pump
            // above must re-run regardless.
            let _ = self
                .shared
                .drained
                .wait_timeout(guard, Duration::from_millis(2));
        }
    }

    /// Drains, then assembles the current state into a standalone
    /// [`AmfModel`] (cloning entity state; the engine keeps running).
    ///
    /// Ids never touched but below a touched id are materialized with their
    /// deterministic initial state, matching the sequential model's dense
    /// registration.
    pub fn snapshot(&mut self) -> AmfModel {
        self.drain();
        let users = self.collect_slab(EntityKind::User, self.num_users);
        let services = self.collect_slab(EntityKind::Service, self.num_services);
        let updates = self.base_updates + self.processed();
        let (accuracy, sentinel) = self.merged_telemetry();
        AmfModel::restore_parts(
            self.shared.config,
            self.shared.transform,
            users,
            services,
            updates,
            accuracy,
            sentinel,
        )
    }

    /// Folds the per-worker accuracy windows and sentinel alarm counts into
    /// clones of the carried-over base telemetry, in worker order 0..K —
    /// deterministic given the stream's shard routing. Call after
    /// [`ShardedEngine::drain`] for a complete view.
    fn merged_telemetry(&self) -> (AccuracyWindow, DriftSentinel) {
        let mut window = self.base_accuracy.clone();
        let mut sentinel = self.base_sentinel.clone();
        for cell in &self.shared.cells {
            let telemetry = lock(&cell.telemetry);
            window.absorb(&telemetry.window);
            sentinel.merge_counts(&telemetry.sentinel);
        }
        (window, sentinel)
    }

    /// Drains, stops the workers, and returns the final model (entity state
    /// is copied out of the stripe slabs — a flat memcpy per stripe visit,
    /// no per-entity heap traffic).
    pub fn into_model(mut self) -> AmfModel {
        self.drain();
        let updates = self.base_updates + self.processed();
        let (accuracy, sentinel) = self.merged_telemetry();
        self.shutdown();
        let users = self.collect_slab(EntityKind::User, self.num_users);
        let services = self.collect_slab(EntityKind::Service, self.num_services);
        AmfModel::restore_parts(
            self.shared.config,
            self.shared.transform,
            users,
            services,
            updates,
            accuracy,
            sentinel,
        )
    }

    /// Copies the global stream indices applied to `user` (in application
    /// order) into `out`, replacing its contents and reusing its capacity.
    /// Returns `false` — with `out` cleared — unless
    /// [`EngineOptions::record_history`] is on and the user has a slot.
    /// Call [`ShardedEngine::drain`] first for a complete log.
    pub fn user_history_into(&self, user: usize, out: &mut Vec<u64>) -> bool {
        out.clear();
        if !self.options.record_history {
            return false;
        }
        let guard = lock(&self.shared.users[user % self.options.shards]);
        match guard.index.get(&user) {
            Some(&slot) => {
                out.extend_from_slice(&guard.histories[slot]);
                true
            }
            None => false,
        }
    }

    /// Like [`ShardedEngine::user_history_into`] for a service.
    pub fn service_history_into(&self, service: usize, out: &mut Vec<u64>) -> bool {
        out.clear();
        if !self.options.record_history {
            return false;
        }
        let guard = lock(&self.shared.services[service % self.options.shards]);
        match guard.index.get(&service) {
            Some(&slot) => {
                out.extend_from_slice(&guard.histories[slot]);
                true
            }
            None => false,
        }
    }

    /// Journals a stamped chunk and hands it to the pump. Never blocks: a
    /// full channel leaves the chunk in the outbox, and the backpressure
    /// loop keeps pumping (recovery, cancellation) while it waits for the
    /// worker to catch up — so a worker stalled on a ticket the dispatcher
    /// must cancel can never deadlock the dispatcher.
    fn dispatch(&mut self, w: usize, mut chunk: Vec<Job>) {
        if self.abandoned[w] {
            // Routed to a dead shard: count as lost, and release the jobs'
            // ordering tickets so co-routed services on live shards proceed.
            self.lost += chunk.len() as u64;
            crate::obs::engine_metrics()
                .samples_lost
                .add(chunk.len() as u64);
            self.cancel_backlog.extend(chunk);
            self.cancel_pass();
            return;
        }
        let metrics = crate::obs::engine_metrics();
        metrics.chunks_dispatched.inc();
        metrics.jobs_dispatched.add(chunk.len() as u64);
        for job in &mut chunk {
            job.seq = self.dispatched[w];
            self.dispatched[w] += 1;
            self.journal[w].push_back(*job);
        }
        self.outbox[w].push_back(chunk);
        self.pump();
        while self.outbox[w].len() > self.options.queue_capacity && !self.abandoned[w] {
            std::thread::sleep(Duration::from_micros(50));
            self.pump();
        }
    }

    /// Drops journal entries the worker has confirmed applied.
    fn gc_journal(&mut self, w: usize) {
        let applied = self.shared.cells[w].applied.load(Ordering::Acquire);
        while self.journal[w].front().is_some_and(|job| job.seq < applied) {
            self.journal[w].pop_front();
        }
    }

    /// Retries ticket cancellation for lost jobs; each pass is non-blocking
    /// (a job whose predecessors are still in flight stays in the backlog).
    fn cancel_pass(&mut self) {
        if self.cancel_backlog.is_empty() {
            return;
        }
        let shared = Arc::clone(&self.shared);
        self.cancel_backlog.retain(|job| !shared.try_cancel(job));
    }

    /// One non-blocking maintenance sweep: cancel lost tickets, respawn (or
    /// abandon) dead workers, and move outbox chunks into worker queues with
    /// `try_send`. Every dispatcher-side wait loops over this, which is what
    /// makes the recovery protocol deadlock-free — no step here can block on
    /// a worker, and workers only ever wait on tickets that a future pump
    /// releases (via apply, replay, or cancellation).
    fn pump(&mut self) {
        self.cancel_pass();
        let metrics = crate::obs::engine_metrics();
        let depth = self.outbox.iter().map(VecDeque::len).sum::<usize>();
        metrics.outbox_depth.set(depth as f64);
        if depth > self.outbox_hwm {
            self.outbox_hwm = depth;
            metrics.outbox_depth_hwm.set(depth as f64);
        }
        // Per-shard backlog plus the load-imbalance ratio (max applied /
        // mean applied): pre-registered gauge handles and relaxed atomic
        // loads only — the pump runs in every dispatcher wait loop.
        let mut max_applied = 0u64;
        let mut sum_applied = 0u64;
        for w in 0..self.options.shards {
            self.backlog_gauges[w].set(self.outbox[w].len() as f64);
            let applied = self.shared.cells[w].applied.load(Ordering::Acquire);
            max_applied = max_applied.max(applied);
            sum_applied += applied;
        }
        if sum_applied > 0 {
            let mean = sum_applied as f64 / self.options.shards as f64;
            metrics.shard_imbalance.set(max_applied as f64 / mean);
        }
        for w in 0..self.options.shards {
            if self.abandoned[w] {
                continue;
            }
            if !self.shared.cells[w].alive.load(Ordering::Acquire) {
                self.respawn_or_abandon(w);
                if self.abandoned[w] || !self.shared.cells[w].alive.load(Ordering::Acquire) {
                    continue;
                }
            }
            self.gc_journal(w);
            while let Some(chunk) = self.outbox[w].pop_front() {
                match self.senders[w].try_send(chunk) {
                    Ok(()) => {}
                    Err(TrySendError::Full(back)) => {
                        crate::obs::engine_metrics().queue_full.inc();
                        self.outbox[w].push_front(back);
                        break;
                    }
                    Err(TrySendError::Disconnected(back)) => {
                        // Died between the health check and the send; the
                        // next pump respawns and rebuilds the outbox.
                        self.outbox[w].push_front(back);
                        break;
                    }
                }
            }
        }
    }

    /// Recovers a dead worker: roll back torn in-flight state, respawn the
    /// thread on a fresh channel, and stage the unapplied journal suffix
    /// for replay. Once the respawn budget is exhausted the worker is
    /// abandoned instead (unapplied jobs counted lost, tickets cancelled).
    fn respawn_or_abandon(&mut self, w: usize) {
        // A crash mid-update left the two touched entities torn; restore
        // their pre-update snapshot (no-op if the job's tickets committed).
        self.shared.rollback_inflight(w);
        if self.respawns[w] >= self.options.max_respawns {
            self.abandon_worker(w);
            return;
        }
        self.respawns[w] += 1;
        if let Some(handle) = self.workers[w].take() {
            let _ = handle.join();
        }
        match self.spawn_worker(w, self.respawns[w]) {
            Ok((tx, handle)) => {
                crate::obs::engine_metrics().respawns.inc();
                self.senders[w] = tx;
                self.workers[w] = Some(handle);
                self.shared.cells[w].alive.store(true, Ordering::Release);
                // Rebuild the outbox as the unapplied journal suffix. Jobs
                // the dead incarnation applied without confirming are
                // skipped by the ticket check on replay, so each accepted
                // sample still applies exactly once.
                self.gc_journal(w);
                self.outbox[w].clear();
                self.replayed += self.journal[w].len() as u64;
                crate::obs::engine_metrics()
                    .jobs_replayed
                    .add(self.journal[w].len() as u64);
                qos_obs::global().trace().event(
                    "engine_respawn",
                    format!("worker {w} replaying {} jobs", self.journal[w].len()),
                );
                let chunk_size = self.options.chunk_size.max(1);
                let mut chunk: Vec<Job> = Vec::new();
                for job in &self.journal[w] {
                    chunk.push(*job);
                    if chunk.len() >= chunk_size {
                        self.outbox[w].push_back(std::mem::take(&mut chunk));
                    }
                }
                if !chunk.is_empty() {
                    self.outbox[w].push_back(chunk);
                }
            }
            Err(_) => {
                // OS refused a thread; the worker stays dead and the next
                // pump retries, bounded by the respawn budget.
            }
        }
    }

    /// Gives up on worker `w`: counts its unapplied jobs as lost, releases
    /// their ordering tickets, and stops routing to it — so `drain`
    /// completes (degraded) instead of hanging forever.
    fn abandon_worker(&mut self, w: usize) {
        if self.abandoned[w] {
            return;
        }
        self.abandoned[w] = true;
        self.gc_journal(w);
        self.outbox[w].clear();
        let lost = std::mem::take(&mut self.journal[w]);
        let metrics = crate::obs::engine_metrics();
        metrics.workers_abandoned.inc();
        metrics.samples_lost.add(lost.len() as u64);
        qos_obs::global().trace().event(
            "engine_abandon",
            format!("worker {w} lost {} jobs", lost.len()),
        );
        self.lost += lost.len() as u64;
        self.cancel_backlog.extend(lost);
        self.cancel_pass();
    }

    fn flush(&mut self) {
        for w in 0..self.pending.len() {
            if !self.pending[w].is_empty() {
                let chunk = std::mem::take(&mut self.pending[w]);
                self.dispatch(w, chunk);
            }
        }
    }

    fn shutdown(&mut self) {
        self.senders.clear(); // closes every channel
        for handle in self.workers.iter_mut().filter_map(Option::take) {
            let _ = handle.join();
        }
    }

    /// Assembles one side's state into a dense model slab, materializing
    /// never-touched ids below the watermark with their deterministic fresh
    /// state (matching the sequential model's dense registration).
    fn collect_slab(&self, kind: EntityKind, count: usize) -> FactorSlab {
        let stripes = match kind {
            EntityKind::User => &self.shared.users,
            EntityKind::Service => &self.shared.services,
        };
        let mut slab = FactorSlab::with_capacity(self.shared.config.dimension, count);
        for id in 0..count {
            let guard = lock(&stripes[id % self.options.shards]);
            match guard.index.get(&id) {
                Some(&slot) => slab.push_copied(guard.factors_at(slot), guard.trackers[slot]),
                None => slab.push_fresh(&self.shared.config, kind, id),
            }
        }
        slab
    }
}

impl Drop for ParityCore {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// In-thread fast path for `K = 1` under [`Consistency::Parity`]: a single
/// shard has no cross-thread parallelism to win, so routing samples through
/// a channel, a ticket check, and a stripe mutex only taxes the sequential
/// kernel (~4× in `BENCH_CORE.json` before this path existed). The fast lane
/// applies samples directly on the calling thread via [`AmfModel::observe`]
/// — which *is* the sequential reference, so parity holds by definition.
struct FastLane {
    model: AmfModel,
    /// Samples applied by this engine (excludes the wrapped model's
    /// pre-existing updates).
    applied: u64,
    /// Per-entity applied stream indices, kept only under
    /// [`EngineOptions::record_history`].
    user_histories: Vec<Vec<u64>>,
    service_histories: Vec<Vec<u64>>,
    options: EngineOptions,
}

impl FastLane {
    fn from_model(model: AmfModel, options: EngineOptions) -> Self {
        Self {
            model,
            applied: 0,
            user_histories: Vec::new(),
            service_histories: Vec::new(),
            options,
        }
    }

    fn feed_batch<I>(&mut self, samples: I)
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        let mut n = 0u64;
        for (user, service, raw) in samples {
            if self.options.record_history {
                let index = self.applied + n;
                if self.user_histories.len() <= user {
                    self.user_histories.resize_with(user + 1, Vec::new);
                }
                if self.service_histories.len() <= service {
                    self.service_histories.resize_with(service + 1, Vec::new);
                }
                self.user_histories[user].push(index);
                self.service_histories[service].push(index);
            }
            self.model.observe(user, service, raw);
            n += 1;
        }
        self.applied += n;
        if n > 0 {
            // The fast lane has no dispatcher, but its ingestion still shows
            // up on the engine counters (one "chunk" per feed call) so
            // obs-level invariants — samples in means jobs dispatched — hold
            // across every lane.
            let metrics = crate::obs::engine_metrics();
            metrics.chunks_dispatched.inc();
            metrics.jobs_dispatched.add(n);
        }
    }

    fn history_of(histories: &[Vec<u64>], id: usize, out: &mut Vec<u64>) -> bool {
        match histories.get(id) {
            Some(h) => {
                out.extend_from_slice(h);
                true
            }
            None => false,
        }
    }
}

/// The lane a [`ShardedEngine`] routed to at construction.
enum Lane {
    /// `K = 1`, parity, no fault plan: in-thread sequential fast path.
    Fast(FastLane),
    /// `K ≥ 2` (or any fault plan) under [`Consistency::Parity`]: the
    /// ticketed, journaled, bitwise-exact threaded core.
    Parity(ParityCore),
    /// [`Consistency::Relaxed`]: the Hogwild-style epoch-claim lane.
    Relaxed(crate::relaxed::RelaxedLane),
}

/// Concurrent wrapper around the AMF model state: ingests a QoS stream
/// across `K` shards under a selectable [`Consistency`] contract, and
/// survives worker crashes (see the module docs for the parity recovery
/// protocol, and DESIGN.md §13 for the relaxed lane's weaker guarantee).
///
/// Construction routes to one of three lanes:
///
/// * [`Consistency::Parity`] with `shards == 1` and no fault plan — the
///   in-thread fast lane: samples run through [`AmfModel::observe`] on the
///   calling thread, which is bitwise-equal to sequential by definition and
///   skips the channel/ticket/mutex tax entirely.
/// * [`Consistency::Parity`] otherwise — the ticketed threaded core with
///   journal replay and bitwise sequential equivalence.
/// * [`Consistency::Relaxed`] — the lock-free fast lane: entity-striped
///   atomic epoch claims, no ordering tickets, statistical (not bitwise)
///   equivalence, enforced by `tests/relaxed_parity.rs`.
///
/// Reads go through [`ShardedEngine::snapshot`] (drains first), or
/// [`ShardedEngine::into_model`] to finish ingestion and take the model out
/// without cloning.
pub struct ShardedEngine {
    lane: Lane,
}

impl ShardedEngine {
    /// Creates an empty engine.
    ///
    /// # Errors
    ///
    /// Returns [`AmfError::InvalidConfig`] for invalid hyperparameters or
    /// invalid options (see [`EngineOptions::validate`]).
    pub fn new(config: AmfConfig, options: EngineOptions) -> Result<Self, AmfError> {
        Self::from_model(AmfModel::new(config)?, options)
    }

    /// Wraps an existing (possibly trained) model, taking ownership of its
    /// entity state.
    ///
    /// # Errors
    ///
    /// Returns [`AmfError::InvalidConfig`] for invalid options.
    pub fn from_model(model: AmfModel, options: EngineOptions) -> Result<Self, AmfError> {
        Self::from_model_with_plan(model, options, None)
    }

    /// Like [`ShardedEngine::from_model`], with a deterministic fault script
    /// attached: workers consult `plan` at every apply and crash or stall
    /// where scripted. In parity mode a plan forces
    /// [`EngineOptions::inflight_backup`] on (mid-update kills roll back
    /// exactly); in relaxed mode recovery re-applies the in-flight sample
    /// instead (at-least-once — see [`Consistency::Relaxed`]).
    ///
    /// # Errors
    ///
    /// Returns [`AmfError::InvalidConfig`] for invalid options.
    pub fn from_model_with_plan(
        model: AmfModel,
        options: EngineOptions,
        plan: Option<Arc<FaultPlan>>,
    ) -> Result<Self, AmfError> {
        options.validate()?;
        let lane = match options.consistency {
            Consistency::Relaxed => Lane::Relaxed(crate::relaxed::RelaxedLane::from_model(
                model, options, plan,
            )),
            // A fault plan needs a worker thread to kill: keep K = 1 on the
            // threaded core when one is attached (the fault suites depend on
            // it); collapse to the in-thread path otherwise.
            Consistency::Parity if options.shards == 1 && plan.is_none() => {
                Lane::Fast(FastLane::from_model(model, options))
            }
            Consistency::Parity => {
                Lane::Parity(ParityCore::from_model_with_plan(model, options, plan)?)
            }
        };
        Ok(Self { lane })
    }

    /// The engine's tuning options.
    pub fn options(&self) -> &EngineOptions {
        match &self.lane {
            Lane::Fast(fast) => &fast.options,
            Lane::Parity(core) => core.options(),
            Lane::Relaxed(lane) => lane.options(),
        }
    }

    /// The model hyperparameters.
    pub fn config(&self) -> &AmfConfig {
        match &self.lane {
            Lane::Fast(fast) => fast.model.config(),
            Lane::Parity(core) => core.config(),
            Lane::Relaxed(lane) => lane.config(),
        }
    }

    /// The consistency contract this engine runs under.
    pub fn consistency(&self) -> Consistency {
        self.options().consistency
    }

    /// Number of samples accepted by [`ShardedEngine::feed_batch`] /
    /// queued by [`ShardedEngine::feed_batch_shedding`] so far.
    pub fn submitted(&self) -> u64 {
        match &self.lane {
            Lane::Fast(fast) => fast.applied,
            Lane::Parity(core) => core.submitted(),
            Lane::Relaxed(lane) => lane.submitted(),
        }
    }

    /// Number of samples fully applied so far.
    pub fn processed(&self) -> u64 {
        match &self.lane {
            Lane::Fast(fast) => fast.applied,
            Lane::Parity(core) => core.processed(),
            Lane::Relaxed(lane) => lane.processed(),
        }
    }

    /// Aggregate fault counters (all zero in a fault-free run).
    pub fn fault_stats(&self) -> FaultStats {
        match &self.lane {
            Lane::Fast(_) => FaultStats::default(),
            Lane::Parity(core) => core.fault_stats(),
            Lane::Relaxed(lane) => lane.fault_stats(),
        }
    }

    /// The recorded worker deaths, oldest first.
    pub fn fault_events(&self) -> Vec<FaultEvent> {
        match &self.lane {
            Lane::Fast(_) => Vec::new(),
            Lane::Parity(core) => core.fault_events(),
            Lane::Relaxed(lane) => lane.fault_events(),
        }
    }

    /// Whether any shard is currently dead or abandoned — predictions served
    /// meanwhile should be treated as degraded.
    pub fn is_degraded(&self) -> bool {
        match &self.lane {
            Lane::Fast(_) => false,
            Lane::Parity(core) => core.is_degraded(),
            Lane::Relaxed(lane) => lane.is_degraded(),
        }
    }

    /// Queues one observation. Prefer [`ShardedEngine::feed_batch`] for
    /// streams: single samples still flush a whole chunk dispatch.
    pub fn feed(&mut self, user: usize, service: usize, raw: f64) {
        self.feed_batch([(user, service, raw)]);
    }

    /// Queues a batch of `(user, service, raw QoS)` observations. Parity
    /// lanes return once every sample is *queued* (bounded queues apply
    /// backpressure); the relaxed lane returns once every buffered
    /// micro-batch it filled has been applied. Use
    /// [`ShardedEngine::drain`] to wait for full application.
    pub fn feed_batch<I>(&mut self, samples: I)
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        match &mut self.lane {
            Lane::Fast(fast) => fast.feed_batch(samples),
            Lane::Parity(core) => core.feed_batch(samples),
            Lane::Relaxed(lane) => lane.feed_batch(samples),
        }
    }

    /// Load-shedding admission: like [`ShardedEngine::feed_batch`] but a
    /// chunk that cannot be queued within `policy`'s attempt budget is
    /// dropped instead of blocking, with exact queued/shed counts. The fast
    /// and relaxed lanes apply samples synchronously and never shed.
    pub fn feed_batch_shedding<I>(&mut self, samples: I, policy: ShedPolicy) -> FeedOutcome
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        match &mut self.lane {
            Lane::Fast(fast) => {
                let before = fast.applied;
                fast.feed_batch(samples);
                FeedOutcome {
                    queued: fast.applied - before,
                    shed: 0,
                }
            }
            Lane::Parity(core) => core.feed_batch_shedding(samples, policy),
            Lane::Relaxed(lane) => lane.feed_batch_shedding(samples),
        }
    }

    /// Registers a user eagerly (id and factors exist before any sample).
    pub fn ensure_user(&mut self, user: usize) {
        match &mut self.lane {
            Lane::Fast(fast) => fast.model.ensure_user(user),
            Lane::Parity(core) => core.ensure_user(user),
            Lane::Relaxed(lane) => lane.ensure_user(user),
        }
    }

    /// Registers a service eagerly; see [`ShardedEngine::ensure_user`].
    pub fn ensure_service(&mut self, service: usize) {
        match &mut self.lane {
            Lane::Fast(fast) => fast.model.ensure_service(service),
            Lane::Parity(core) => core.ensure_service(service),
            Lane::Relaxed(lane) => lane.ensure_service(service),
        }
    }

    /// Blocks until every queued sample has been applied, recovering any
    /// workers that die along the way. Returns early only if a parity worker
    /// exhausts its respawn budget (see [`FaultStats::samples_lost`]).
    pub fn drain(&mut self) {
        match &mut self.lane {
            Lane::Fast(_) => {}
            Lane::Parity(core) => core.drain(),
            Lane::Relaxed(lane) => lane.drain(),
        }
    }

    /// Drains, then assembles the current state into a standalone
    /// [`AmfModel`] (cloning entity state; the engine keeps running).
    pub fn snapshot(&mut self) -> AmfModel {
        match &mut self.lane {
            Lane::Fast(fast) => fast.model.clone(),
            Lane::Parity(core) => core.snapshot(),
            Lane::Relaxed(lane) => lane.snapshot(),
        }
    }

    /// Drains, stops any workers, and returns the final model.
    pub fn into_model(self) -> AmfModel {
        match self.lane {
            Lane::Fast(fast) => fast.model,
            Lane::Parity(core) => core.into_model(),
            Lane::Relaxed(lane) => lane.into_model(),
        }
    }

    /// Copies the global stream indices applied to `user` (in application
    /// order) into `out`, replacing its contents and reusing its capacity.
    /// Returns `false` — with `out` cleared — unless
    /// [`EngineOptions::record_history`] is on and the user has a slot.
    /// Call [`ShardedEngine::drain`] first for a complete log.
    pub fn user_history_into(&self, user: usize, out: &mut Vec<u64>) -> bool {
        out.clear();
        if !self.options().record_history {
            return false;
        }
        match &self.lane {
            Lane::Fast(fast) => FastLane::history_of(&fast.user_histories, user, out),
            Lane::Parity(core) => core.user_history_into(user, out),
            Lane::Relaxed(_) => false, // rejected by validate()
        }
    }

    /// Like [`ShardedEngine::user_history_into`] for a service.
    pub fn service_history_into(&self, service: usize, out: &mut Vec<u64>) -> bool {
        out.clear();
        if !self.options().record_history {
            return false;
        }
        match &self.lane {
            Lane::Fast(fast) => FastLane::history_of(&fast.service_histories, service, out),
            Lane::Parity(core) => core.service_history_into(service, out),
            Lane::Relaxed(_) => false,
        }
    }

    /// Global stream indices applied to `user`, as an owned vector; see
    /// [`ShardedEngine::user_history_into`] for the allocation-free variant.
    pub fn user_history(&self, user: usize) -> Option<Vec<u64>> {
        let mut out = Vec::new();
        self.user_history_into(user, &mut out).then_some(out)
    }

    /// Global stream indices applied to `service`; see
    /// [`ShardedEngine::user_history`].
    pub fn service_history(&self, service: usize) -> Option<Vec<u64>> {
        let mut out = Vec::new();
        self.service_history_into(service, &mut out).then_some(out)
    }
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("consistency", &self.consistency())
            .field("shards", &self.options().shards)
            .field("submitted", &self.submitted())
            .field("degraded", &self.is_degraded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: usize, users: usize, services: usize) -> Vec<(usize, usize, f64)> {
        // Small deterministic LCG stream; values in (0.1, 10.1).
        let mut state = 0x1234_5678_u64;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = (state >> 33) as usize % users;
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let s = (state >> 33) as usize % services;
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = 0.1 + ((state >> 11) as f64 / (1u64 << 53) as f64) * 10.0;
                (u, s, v)
            })
            .collect()
    }

    fn sequential(samples: &[(usize, usize, f64)]) -> AmfModel {
        let mut model = AmfModel::new(AmfConfig::response_time()).unwrap();
        for &(u, s, v) in samples {
            model.observe(u, s, v);
        }
        model
    }

    fn factors_equal(a: &AmfModel, b: &AmfModel) -> bool {
        a.num_users() == b.num_users()
            && a.num_services() == b.num_services()
            && (0..a.num_users()).all(|u| a.user_factors(u) == b.user_factors(u))
            && (0..a.num_services()).all(|s| a.service_factors(s) == b.service_factors(s))
    }

    #[test]
    fn single_shard_matches_sequential_bitwise() {
        let samples = stream(2_000, 12, 30);
        let expected = sequential(&samples);
        let mut engine = ShardedEngine::new(
            AmfConfig::response_time(),
            EngineOptions {
                shards: 1,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        engine.feed_batch(samples.iter().copied());
        let got = engine.into_model();
        assert!(factors_equal(&expected, &got));
        assert_eq!(got.update_count(), 2_000);
    }

    #[test]
    fn multi_shard_matches_sequential_bitwise() {
        let samples = stream(5_000, 17, 41);
        let expected = sequential(&samples);
        for shards in [2, 3, 4] {
            let mut engine = ShardedEngine::new(
                AmfConfig::response_time(),
                EngineOptions {
                    shards,
                    chunk_size: 32,
                    ..EngineOptions::default()
                },
            )
            .unwrap();
            engine.feed_batch(samples.iter().copied());
            let got = engine.into_model();
            assert!(
                factors_equal(&expected, &got),
                "parity broke at {shards} shards"
            );
        }
    }

    #[test]
    fn backup_mode_keeps_bitwise_parity() {
        // The in-flight backup path must not perturb results when nothing
        // crashes.
        let samples = stream(3_000, 11, 23);
        let expected = sequential(&samples);
        let mut engine = ShardedEngine::new(
            AmfConfig::response_time(),
            EngineOptions {
                shards: 3,
                chunk_size: 64,
                inflight_backup: true,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        engine.feed_batch(samples.iter().copied());
        let got = engine.into_model();
        assert!(factors_equal(&expected, &got));
    }

    #[test]
    fn snapshot_is_reusable_mid_stream() {
        let samples = stream(1_000, 8, 20);
        let mut engine =
            ShardedEngine::new(AmfConfig::response_time(), EngineOptions::default()).unwrap();
        engine.feed_batch(samples[..500].iter().copied());
        let mid = engine.snapshot();
        assert_eq!(mid.update_count(), 500);
        engine.feed_batch(samples[500..].iter().copied());
        let done = engine.into_model();
        assert_eq!(done.update_count(), 1_000);
        // The mid-stream snapshot equals a sequential run of the prefix.
        assert!(factors_equal(&mid, &sequential(&samples[..500])));
    }

    #[test]
    fn from_model_continues_training() {
        let samples = stream(800, 6, 12);
        let warm = sequential(&samples[..400]);
        let mut engine = ShardedEngine::from_model(
            warm,
            EngineOptions {
                shards: 2,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        engine.feed_batch(samples[400..].iter().copied());
        let got = engine.into_model();
        assert!(factors_equal(&got, &sequential(&samples)));
        assert_eq!(got.update_count(), 800);
    }

    #[test]
    fn history_matches_stream_order() {
        let samples = stream(600, 5, 9);
        let mut engine = ShardedEngine::new(
            AmfConfig::response_time(),
            EngineOptions {
                shards: 3,
                chunk_size: 16,
                record_history: true,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        engine.feed_batch(samples.iter().copied());
        engine.drain();
        for u in 0..5 {
            let expected: Vec<u64> = samples
                .iter()
                .enumerate()
                .filter(|(_, &(user, _, _))| user == u)
                .map(|(i, _)| i as u64)
                .collect();
            assert_eq!(engine.user_history(u).unwrap(), expected, "user {u}");
        }
        for s in 0..9 {
            let expected: Vec<u64> = samples
                .iter()
                .enumerate()
                .filter(|(_, &(_, service, _))| service == s)
                .map(|(i, _)| i as u64)
                .collect();
            assert_eq!(engine.service_history(s).unwrap(), expected, "service {s}");
        }
    }

    #[test]
    fn zero_shards_rejected() {
        assert!(matches!(
            ShardedEngine::new(
                AmfConfig::response_time(),
                EngineOptions {
                    shards: 0,
                    ..EngineOptions::default()
                }
            ),
            Err(AmfError::InvalidConfig(_))
        ));
    }

    #[test]
    fn drain_on_empty_engine_is_immediate() {
        let mut engine =
            ShardedEngine::new(AmfConfig::response_time(), EngineOptions::default()).unwrap();
        engine.drain();
        assert_eq!(engine.processed(), 0);
        assert_eq!(engine.fault_stats(), FaultStats::default());
        let model = engine.into_model();
        assert_eq!(model.num_users(), 0);
    }

    #[test]
    fn injected_kill_recovers_with_parity() {
        let samples = stream(2_000, 9, 15);
        let expected = sequential(&samples);
        let plan = Arc::new(FaultPlan::new(0).kill_worker(1, 40, KillPhase::Before));
        let mut engine = ShardedEngine::from_model_with_plan(
            AmfModel::new(AmfConfig::response_time()).unwrap(),
            EngineOptions {
                shards: 3,
                chunk_size: 16,
                ..EngineOptions::default()
            },
            Some(plan),
        )
        .unwrap();
        engine.feed_batch(samples.iter().copied());
        engine.drain();
        let stats = engine.fault_stats();
        assert_eq!(stats.worker_panics, 1);
        assert_eq!(stats.injected_panics, 1);
        assert_eq!(stats.respawns, 1);
        assert_eq!(stats.samples_lost, 0);
        assert!(stats.jobs_replayed > 0);
        let got = engine.into_model();
        assert!(factors_equal(&expected, &got), "kill recovery broke parity");
        assert_eq!(got.update_count(), samples.len() as u64);
    }

    #[test]
    fn mid_update_kill_rolls_back_and_recovers() {
        let samples = stream(1_500, 7, 13);
        let expected = sequential(&samples);
        let plan = Arc::new(FaultPlan::new(0).kill_worker(0, 25, KillPhase::Mid));
        let mut engine = ShardedEngine::from_model_with_plan(
            AmfModel::new(AmfConfig::response_time()).unwrap(),
            EngineOptions {
                shards: 2,
                chunk_size: 8,
                ..EngineOptions::default()
            },
            Some(plan),
        )
        .unwrap();
        engine.feed_batch(samples.iter().copied());
        let got = engine.into_model();
        assert!(
            factors_equal(&expected, &got),
            "mid-update rollback broke parity"
        );
    }

    #[test]
    fn respawn_budget_abandons_instead_of_hanging() {
        let mut plan = FaultPlan::new(0);
        // Kill worker 0 on every respawn attempt at the same job.
        for _ in 0..50 {
            plan = plan.kill_worker(0, 10, KillPhase::Before);
        }
        // All kills share (worker, job, phase); each fires once, so each
        // respawned incarnation dies again at job 10 until the budget runs
        // out.
        let plan = Arc::new(plan);
        let samples = stream(400, 4, 6);
        let mut engine = ShardedEngine::from_model_with_plan(
            AmfModel::new(AmfConfig::response_time()).unwrap(),
            EngineOptions {
                shards: 2,
                chunk_size: 8,
                max_respawns: 3,
                ..EngineOptions::default()
            },
            Some(plan),
        )
        .unwrap();
        engine.feed_batch(samples.iter().copied());
        engine.drain(); // must terminate
        let stats = engine.fault_stats();
        assert_eq!(stats.abandoned_workers, 1);
        assert!(stats.samples_lost > 0);
        assert!(engine.is_degraded());
        // The surviving shard's work is intact and the model is usable.
        let model = engine.into_model();
        assert!(model.update_count() > 0);
        assert!(model.update_count() < samples.len() as u64);
    }

    #[test]
    fn shedding_on_stalled_worker_drops_with_exact_counts() {
        // Stall worker 0 long enough that its 1-chunk queue stays full.
        let plan = Arc::new(FaultPlan::new(0).stall_worker(0, 0, Duration::from_millis(150)));
        let mut engine = ShardedEngine::from_model_with_plan(
            AmfModel::new(AmfConfig::response_time()).unwrap(),
            EngineOptions {
                shards: 1,
                chunk_size: 4,
                queue_capacity: 1,
                ..EngineOptions::default()
            },
            Some(plan),
        )
        .unwrap();
        let samples = stream(200, 3, 5);
        let outcome = engine.feed_batch_shedding(
            samples.iter().copied(),
            ShedPolicy {
                max_attempts: 2,
                backoff: Duration::from_micros(100),
            },
        );
        assert_eq!(outcome.queued + outcome.shed, 200);
        assert!(outcome.shed > 0, "stall should force shedding");
        assert!(outcome.queued > 0, "first chunks fit the queue");
        let model = engine.into_model();
        assert_eq!(model.update_count(), outcome.queued);
    }

    #[test]
    fn shedding_without_pressure_queues_everything() {
        let samples = stream(1_000, 6, 9);
        let expected = sequential(&samples);
        let mut engine = ShardedEngine::new(
            AmfConfig::response_time(),
            EngineOptions {
                shards: 2,
                chunk_size: 32,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        let outcome = engine.feed_batch_shedding(samples.iter().copied(), ShedPolicy::default());
        assert_eq!(outcome.shed, 0);
        assert_eq!(outcome.queued, 1_000);
        let got = engine.into_model();
        assert!(
            factors_equal(&expected, &got),
            "unshed run must keep parity"
        );
    }

    #[test]
    fn consistency_parses_and_displays() {
        assert_eq!(
            "parity".parse::<Consistency>().unwrap(),
            Consistency::Parity
        );
        assert_eq!(
            "relaxed".parse::<Consistency>().unwrap(),
            Consistency::Relaxed
        );
        assert_eq!(Consistency::Parity.to_string(), "parity");
        assert_eq!(Consistency::Relaxed.to_string(), "relaxed");
        let err = "eventual".parse::<Consistency>().unwrap_err();
        assert!(err.contains("eventual"), "{err}");
        assert_eq!(Consistency::default(), Consistency::Parity);
    }

    #[test]
    fn relaxed_options_reject_history_and_zero_batch() {
        let history = EngineOptions {
            record_history: true,
            ..EngineOptions::with_consistency(2, Consistency::Relaxed)
        };
        assert!(matches!(
            ShardedEngine::new(AmfConfig::response_time(), history),
            Err(AmfError::InvalidConfig(_))
        ));
        let zero_batch = EngineOptions {
            relaxed_batch: 0,
            ..EngineOptions::with_consistency(2, Consistency::Relaxed)
        };
        assert!(matches!(
            ShardedEngine::new(AmfConfig::response_time(), zero_batch),
            Err(AmfError::InvalidConfig(_))
        ));
    }

    #[test]
    fn fast_lane_records_history_at_single_shard() {
        // K=1 without a plan routes to the in-thread fast lane, which must
        // honor the history contract the threaded core provides.
        let samples = stream(300, 4, 7);
        let mut engine = ShardedEngine::new(
            AmfConfig::response_time(),
            EngineOptions {
                shards: 1,
                record_history: true,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        engine.feed_batch(samples.iter().copied());
        for u in 0..4 {
            let expected: Vec<u64> = samples
                .iter()
                .enumerate()
                .filter(|(_, &(user, _, _))| user == u)
                .map(|(i, _)| i as u64)
                .collect();
            assert_eq!(engine.user_history(u).unwrap(), expected, "user {u}");
        }
        let expected: Vec<u64> = samples
            .iter()
            .enumerate()
            .filter(|(_, &(_, service, _))| service == 2)
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(engine.service_history(2).unwrap(), expected);
    }

    #[test]
    fn relaxed_single_worker_matches_sequential_bitwise() {
        // With one worker the relaxed lane applies the stream in order
        // through the same kernel, so even the *bitwise* contract holds —
        // the relaxation only starts to bite at K >= 2.
        let samples = stream(2_000, 12, 30);
        let expected = sequential(&samples);
        let mut engine = ShardedEngine::new(
            AmfConfig::response_time(),
            EngineOptions {
                relaxed_batch: 256, // exercise several micro-batch flushes
                ..EngineOptions::with_consistency(1, Consistency::Relaxed)
            },
        )
        .unwrap();
        engine.feed_batch(samples.iter().copied());
        let got = engine.into_model();
        assert!(factors_equal(&expected, &got));
        assert_eq!(got.update_count(), 2_000);
    }

    #[test]
    fn relaxed_multi_shard_loses_nothing_and_stays_finite() {
        let samples = stream(4_000, 16, 33);
        let mut engine = ShardedEngine::new(
            AmfConfig::response_time(),
            EngineOptions {
                relaxed_batch: 512,
                ..EngineOptions::with_consistency(4, Consistency::Relaxed)
            },
        )
        .unwrap();
        engine.feed_batch(samples[..2_500].iter().copied());
        let mid = engine.snapshot();
        assert_eq!(mid.update_count(), 2_500, "snapshot must flush and count");
        engine.feed_batch(samples[2_500..].iter().copied());
        let got = engine.into_model();
        // No lost updates: every accepted sample is counted exactly once.
        assert_eq!(got.update_count(), 4_000);
        assert!(engine_stats_finite(&got));
        // And the model actually learned: predictions exist for seen pairs.
        assert!(got.predict(0, 0).is_some());
    }

    fn engine_stats_finite(model: &AmfModel) -> bool {
        (0..model.num_users()).all(|u| {
            model
                .user_factors(u)
                .is_some_and(|f| f.iter().all(|x| x.is_finite()))
        }) && (0..model.num_services()).all(|s| {
            model
                .service_factors(s)
                .is_some_and(|f| f.iter().all(|x| x.is_finite()))
        })
    }

    #[test]
    fn relaxed_injected_kill_reapplies_and_counts_once() {
        let samples = stream(2_000, 9, 15);
        let plan = Arc::new(FaultPlan::new(0).kill_worker(1, 40, KillPhase::Mid));
        let mut engine = ShardedEngine::from_model_with_plan(
            AmfModel::new(AmfConfig::response_time()).unwrap(),
            EngineOptions {
                relaxed_batch: 512,
                ..EngineOptions::with_consistency(3, Consistency::Relaxed)
            },
            Some(plan),
        )
        .unwrap();
        engine.feed_batch(samples.iter().copied());
        engine.drain();
        let stats = engine.fault_stats();
        assert_eq!(stats.worker_panics, 1);
        assert_eq!(stats.injected_panics, 1);
        assert_eq!(stats.respawns, 1);
        assert_eq!(stats.samples_lost, 0);
        assert!(!engine.is_degraded());
        let events = engine.fault_events();
        assert_eq!(events.len(), 1);
        assert!(events[0].injected);
        let got = engine.into_model();
        // At-least-once application, exactly-once *counting*.
        assert_eq!(got.update_count(), samples.len() as u64);
        assert!(engine_stats_finite(&got));
    }

    #[test]
    fn relaxed_respawn_budget_degrades_instead_of_hanging() {
        let mut plan = FaultPlan::new(0);
        for _ in 0..50 {
            plan = plan.kill_worker(0, 10, KillPhase::Before);
        }
        let plan = Arc::new(plan);
        let samples = stream(400, 4, 6);
        let mut engine = ShardedEngine::from_model_with_plan(
            AmfModel::new(AmfConfig::response_time()).unwrap(),
            EngineOptions {
                relaxed_batch: 128,
                max_respawns: 3,
                ..EngineOptions::with_consistency(2, Consistency::Relaxed)
            },
            Some(plan),
        )
        .unwrap();
        engine.feed_batch(samples.iter().copied());
        engine.drain(); // must terminate
        let stats = engine.fault_stats();
        assert!(stats.samples_lost > 0);
        assert!(engine.is_degraded());
        let model = engine.into_model();
        assert!(model.update_count() > 0);
        assert!(model.update_count() < samples.len() as u64);
        assert!(engine_stats_finite(&model));
    }
}
