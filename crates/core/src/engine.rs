//! Sharded concurrent online-update engine.
//!
//! [`crate::AmfTrainer::feed`] applies the QoS stream strictly sequentially,
//! which caps ingestion at one core. This module scales the same per-sample
//! update (Eq. 16–17 via [`crate::model::apply_observation`]) across threads
//! while keeping the result *identical* to sequential execution:
//!
//! * The user and service factor matrices are partitioned into `K`
//!   lock-striped shards (`entity id % K`); every shard's entities — feature
//!   vector *and* EMA error tracker — are guarded by one per-shard mutex, so
//!   a sample's SGD step and its two tracker updates (Algorithm 1 lines
//!   21–23) commit atomically with respect to other samples.
//! * Incoming samples are fanned out to `K` std-thread workers over bounded
//!   channels (routing by user stripe), in chunks to amortize channel
//!   overhead.
//! * Per-entity ordering is enforced with tickets: the dispatcher stamps each
//!   sample with its user's and service's next sequence numbers, and a worker
//!   only applies a sample when both entities have reached those tickets,
//!   yielding otherwise. Per-user order comes free (FIFO routing by user);
//!   per-service order is what the tickets buy.
//!
//! **Why this gives exact parity.** One online update reads and writes only
//! the two entities it touches, so updates on disjoint entities commute
//! bit-for-bit. With per-entity order fixed to stream order, the inputs of
//! every update are — by induction along each entity's update chain — the
//! same values sequential execution produces, whatever the cross-entity
//! interleaving. Entity initialization is order-independent too
//! ([`crate::model`]'s per-entity seeding), so a drained engine's snapshot is
//! bitwise equal to the sequential [`crate::AmfModel`] fed the same stream.
//! The parity integration tests assert exactly that.
//!
//! # Examples
//!
//! ```
//! use amf_core::engine::{EngineOptions, ShardedEngine};
//! use amf_core::AmfConfig;
//!
//! let mut engine = ShardedEngine::new(
//!     AmfConfig::response_time(),
//!     EngineOptions { shards: 4, ..EngineOptions::default() },
//! )?;
//! engine.feed_batch([(0, 0, 1.4), (1, 0, 0.9), (0, 1, 2.3)]);
//! engine.drain();
//! let model = engine.snapshot();
//! assert_eq!(model.update_count(), 3);
//! assert!(model.predict(1, 1).is_some());
//! # Ok::<(), amf_core::AmfError>(())
//! ```

use crate::config::AmfConfig;
use crate::model::{apply_observation, AmfModel, EntityKind, EntityState};
use crate::AmfError;
use qos_transform::QosTransform;
use std::collections::HashMap;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// Tuning knobs for [`ShardedEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Number of lock stripes *and* worker threads, `K ≥ 1`.
    pub shards: usize,
    /// Bounded per-worker channel depth, in chunks.
    pub queue_capacity: usize,
    /// Samples per dispatched chunk (amortizes channel overhead).
    pub chunk_size: usize,
    /// Record, per entity, the global stream indices of the samples applied
    /// to it — the evidence the parity tests compare against stream order.
    /// Costs one `Vec` push per entity per sample; off by default.
    pub record_history: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_capacity: 64,
            chunk_size: 256,
            record_history: false,
        }
    }
}

impl EngineOptions {
    /// Options for `K` shards, other knobs at their defaults.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards,
            ..Self::default()
        }
    }

    /// Checks the options are usable.
    ///
    /// # Errors
    ///
    /// Returns [`AmfError::InvalidConfig`] when any knob is zero.
    pub fn validate(&self) -> Result<(), AmfError> {
        if self.shards == 0 {
            return Err(AmfError::InvalidConfig("shards must be >= 1".into()));
        }
        if self.chunk_size == 0 || self.queue_capacity == 0 {
            return Err(AmfError::InvalidConfig(
                "chunk_size and queue_capacity must be >= 1".into(),
            ));
        }
        Ok(())
    }
}

/// One queued observation with its ordering tickets.
struct Job {
    user: usize,
    service: usize,
    raw: f64,
    /// This sample's position in the user's per-entity sequence.
    user_ticket: u64,
    /// This sample's position in the service's per-entity sequence.
    service_ticket: u64,
    /// Global stream index (history recording only).
    index: u64,
}

/// One entity's sharded state.
struct Slot {
    state: EntityState,
    /// Next per-entity sequence number this entity will accept.
    next_ticket: u64,
    /// Applied global stream indices (when history recording is on).
    history: Vec<u64>,
}

/// One lock stripe: the entities whose `id % K` equals the stripe index.
#[derive(Default)]
struct Stripe {
    slots: HashMap<usize, Slot>,
}

struct Shared {
    config: AmfConfig,
    transform: QosTransform,
    users: Vec<Mutex<Stripe>>,
    services: Vec<Mutex<Stripe>>,
    record_history: bool,
    /// Applied-sample count, paired with a condvar so [`ShardedEngine::drain`]
    /// can sleep instead of spinning.
    processed: Mutex<u64>,
    drained: Condvar,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A panicking worker must not wedge every other worker on poison errors;
    // per-sample updates keep the stripe consistent at every await point.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    fn slot<'a>(
        &self,
        stripe: &'a mut Stripe,
        kind: EntityKind,
        id: usize,
    ) -> &'a mut Slot {
        stripe.slots.entry(id).or_insert_with(|| Slot {
            state: EntityState::fresh(&self.config, kind, id),
            next_ticket: 0,
            history: Vec::new(),
        })
    }

    fn apply(&self, job: &Job) {
        let (u_stripe, s_stripe) = (
            job.user % self.users.len(),
            job.service % self.services.len(),
        );
        loop {
            // Lock order is always user stripe then service stripe; the two
            // stripe arrays are disjoint, so this cannot deadlock.
            let mut users = lock(&self.users[u_stripe]);
            let user_ready =
                self.slot(&mut users, EntityKind::User, job.user).next_ticket == job.user_ticket;
            if user_ready {
                let mut services = lock(&self.services[s_stripe]);
                let service_ready = self
                    .slot(&mut services, EntityKind::Service, job.service)
                    .next_ticket
                    == job.service_ticket;
                if service_ready {
                    let user_slot = users.slots.get_mut(&job.user).expect("just ensured");
                    let service_slot =
                        services.slots.get_mut(&job.service).expect("just ensured");
                    apply_observation(
                        &self.config,
                        &self.transform,
                        &mut user_slot.state,
                        &mut service_slot.state,
                        job.raw,
                    );
                    user_slot.next_ticket += 1;
                    service_slot.next_ticket += 1;
                    if self.record_history {
                        user_slot.history.push(job.index);
                        service_slot.history.push(job.index);
                    }
                    return;
                }
            }
            // An earlier sample of one of the two entities is still in
            // flight on another worker; it is queued and will run, so back
            // off and retry.
            drop(users);
            std::thread::yield_now();
        }
    }

    fn worker(&self, jobs: &Receiver<Vec<Job>>) {
        while let Ok(chunk) = jobs.recv() {
            let n = chunk.len() as u64;
            for job in &chunk {
                self.apply(job);
            }
            *lock(&self.processed) += n;
            self.drained.notify_all();
        }
    }
}

/// Concurrent wrapper around the AMF model state: ingests a QoS stream with
/// `K` worker threads while guaranteeing sequential-equivalent results.
///
/// The engine is a *dispatcher* handle: [`ShardedEngine::feed_batch`] stamps
/// tickets and routes, workers own the hot loop. Reads go through
/// [`ShardedEngine::snapshot`] (drains first), or [`ShardedEngine::into_model`]
/// to finish ingestion and take the model out without cloning.
pub struct ShardedEngine {
    shared: Arc<Shared>,
    senders: Vec<SyncSender<Vec<Job>>>,
    workers: Vec<JoinHandle<()>>,
    /// Per-worker chunk under construction.
    pending: Vec<Vec<Job>>,
    /// Dispatcher-side per-entity ticket counters.
    user_tickets: HashMap<usize, u64>,
    service_tickets: HashMap<usize, u64>,
    /// Entity-count watermarks (mirror the sequential model's dense
    /// registration: ids up to the maximum seen exist after a snapshot).
    num_users: usize,
    num_services: usize,
    submitted: u64,
    /// Update count carried over from a pre-trained source model.
    base_updates: u64,
    options: EngineOptions,
}

impl ShardedEngine {
    /// Creates an empty engine.
    ///
    /// # Errors
    ///
    /// Returns [`AmfError::InvalidConfig`] for invalid hyperparameters or an
    /// invalid `options.shards == 0`.
    pub fn new(config: AmfConfig, options: EngineOptions) -> Result<Self, AmfError> {
        Self::from_model(AmfModel::new(config)?, options)
    }

    /// Wraps an existing (possibly trained) model, taking ownership of its
    /// entity state.
    ///
    /// # Errors
    ///
    /// Returns [`AmfError::InvalidConfig`] when `options.shards == 0` or the
    /// chunk/queue sizes are zero.
    pub fn from_model(model: AmfModel, options: EngineOptions) -> Result<Self, AmfError> {
        options.validate()?;
        let k = options.shards;
        let config = *model.config();
        let transform = *model.transform();
        let base_updates = model.update_count();
        let (users, services) = model.into_entities();
        let (num_users, num_services) = (users.len(), services.len());

        let mut user_stripes: Vec<Stripe> = (0..k).map(|_| Stripe::default()).collect();
        let mut service_stripes: Vec<Stripe> = (0..k).map(|_| Stripe::default()).collect();
        for (id, state) in users.into_iter().enumerate() {
            user_stripes[id % k].slots.insert(
                id,
                Slot {
                    state,
                    next_ticket: 0,
                    history: Vec::new(),
                },
            );
        }
        for (id, state) in services.into_iter().enumerate() {
            service_stripes[id % k].slots.insert(
                id,
                Slot {
                    state,
                    next_ticket: 0,
                    history: Vec::new(),
                },
            );
        }

        let shared = Arc::new(Shared {
            config,
            transform,
            users: user_stripes.into_iter().map(Mutex::new).collect(),
            services: service_stripes.into_iter().map(Mutex::new).collect(),
            record_history: options.record_history,
            processed: Mutex::new(0),
            drained: Condvar::new(),
        });

        let mut senders = Vec::with_capacity(k);
        let mut workers = Vec::with_capacity(k);
        for w in 0..k {
            let (tx, rx) = std::sync::mpsc::sync_channel::<Vec<Job>>(options.queue_capacity);
            let shared_w = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("amf-shard-{w}"))
                    .spawn(move || shared_w.worker(&rx))
                    .map_err(AmfError::Io)?,
            );
            senders.push(tx);
        }

        Ok(Self {
            shared,
            senders,
            workers,
            pending: (0..k).map(|_| Vec::new()).collect(),
            user_tickets: HashMap::new(),
            service_tickets: HashMap::new(),
            num_users,
            num_services,
            submitted: 0,
            base_updates,
            options,
        })
    }

    /// The engine's tuning options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// The model hyperparameters.
    pub fn config(&self) -> &AmfConfig {
        &self.shared.config
    }

    /// Number of samples accepted by [`ShardedEngine::feed_batch`] so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Number of samples workers have fully applied so far.
    pub fn processed(&self) -> u64 {
        *lock(&self.shared.processed)
    }

    /// Queues one observation. Prefer [`ShardedEngine::feed_batch`] for
    /// streams: single samples still flush a whole chunk dispatch.
    pub fn feed(&mut self, user: usize, service: usize, raw: f64) {
        self.feed_batch([(user, service, raw)]);
    }

    /// Queues a batch of `(user, service, raw QoS)` observations, fanning
    /// them out to the shard workers. Returns once every sample is *queued*
    /// (bounded queues apply backpressure); use [`ShardedEngine::drain`] to
    /// wait for application.
    pub fn feed_batch<I>(&mut self, samples: I)
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        let k = self.options.shards;
        for (user, service, raw) in samples {
            let user_ticket = self.user_tickets.entry(user).or_insert(0);
            let service_ticket = self.service_tickets.entry(service).or_insert(0);
            let job = Job {
                user,
                service,
                raw,
                user_ticket: *user_ticket,
                service_ticket: *service_ticket,
                index: self.submitted,
            };
            *user_ticket += 1;
            *service_ticket += 1;
            self.submitted += 1;
            self.num_users = self.num_users.max(user + 1);
            self.num_services = self.num_services.max(service + 1);

            let w = user % k;
            self.pending[w].push(job);
            if self.pending[w].len() >= self.options.chunk_size {
                let chunk = std::mem::take(&mut self.pending[w]);
                self.send(w, chunk);
            }
        }
        self.flush();
    }

    /// Registers a user eagerly (id and factors exist before any sample).
    /// Safe while workers are mid-stream: creation takes the stripe lock.
    pub fn ensure_user(&mut self, user: usize) {
        self.num_users = self.num_users.max(user + 1);
        let stripe = user % self.options.shards;
        let mut guard = lock(&self.shared.users[stripe]);
        self.shared.slot(&mut guard, EntityKind::User, user);
    }

    /// Registers a service eagerly; see [`ShardedEngine::ensure_user`].
    pub fn ensure_service(&mut self, service: usize) {
        self.num_services = self.num_services.max(service + 1);
        let stripe = service % self.options.shards;
        let mut guard = lock(&self.shared.services[stripe]);
        self.shared.slot(&mut guard, EntityKind::Service, service);
    }

    /// Blocks until every queued sample has been applied.
    pub fn drain(&mut self) {
        self.flush();
        let target = self.submitted;
        let mut processed = lock(&self.shared.processed);
        while *processed < target {
            processed = self
                .shared
                .drained
                .wait(processed)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Drains, then assembles the current state into a standalone
    /// [`AmfModel`] (cloning entity state; the engine keeps running).
    ///
    /// Ids never touched but below a touched id are materialized with their
    /// deterministic initial state, matching the sequential model's dense
    /// registration.
    pub fn snapshot(&mut self) -> AmfModel {
        self.drain();
        let users = self.collect_entities(EntityKind::User, self.num_users);
        let services = self.collect_entities(EntityKind::Service, self.num_services);
        let updates = self.base_updates + self.submitted;
        AmfModel::restore(self.shared.config, users, services, updates)
            .expect("config was validated at engine construction")
    }

    /// Drains, stops the workers, and returns the final model without
    /// cloning entity state.
    pub fn into_model(mut self) -> AmfModel {
        self.drain();
        self.shutdown();
        let users = self.take_entities(EntityKind::User, self.num_users);
        let services = self.take_entities(EntityKind::Service, self.num_services);
        let updates = self.base_updates + self.submitted;
        AmfModel::restore(self.shared.config, users, services, updates)
            .expect("config was validated at engine construction")
    }

    /// Global stream indices applied to `user`, in application order.
    /// `None` unless [`EngineOptions::record_history`] is on and the user has
    /// a slot. Call [`ShardedEngine::drain`] first for a complete log.
    pub fn user_history(&self, user: usize) -> Option<Vec<u64>> {
        if !self.options.record_history {
            return None;
        }
        let guard = lock(&self.shared.users[user % self.options.shards]);
        guard.slots.get(&user).map(|s| s.history.clone())
    }

    /// Global stream indices applied to `service`; see
    /// [`ShardedEngine::user_history`].
    pub fn service_history(&self, service: usize) -> Option<Vec<u64>> {
        if !self.options.record_history {
            return None;
        }
        let guard = lock(&self.shared.services[service % self.options.shards]);
        guard.slots.get(&service).map(|s| s.history.clone())
    }

    fn send(&self, worker: usize, chunk: Vec<Job>) {
        // The receiver outlives the senders by construction; a send error
        // would mean a worker died, which only happens at shutdown.
        self.senders[worker]
            .send(chunk)
            .expect("shard worker terminated before its sender");
    }

    fn flush(&mut self) {
        for w in 0..self.pending.len() {
            if !self.pending[w].is_empty() {
                let chunk = std::mem::take(&mut self.pending[w]);
                self.send(w, chunk);
            }
        }
    }

    fn shutdown(&mut self) {
        self.senders.clear(); // closes every channel
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    fn collect_entities(&self, kind: EntityKind, count: usize) -> Vec<EntityState> {
        let stripes = match kind {
            EntityKind::User => &self.shared.users,
            EntityKind::Service => &self.shared.services,
        };
        (0..count)
            .map(|id| {
                let guard = lock(&stripes[id % self.options.shards]);
                guard
                    .slots
                    .get(&id)
                    .map(|slot| slot.state.clone())
                    .unwrap_or_else(|| EntityState::fresh(&self.shared.config, kind, id))
            })
            .collect()
    }

    fn take_entities(&mut self, kind: EntityKind, count: usize) -> Vec<EntityState> {
        let stripes = match kind {
            EntityKind::User => &self.shared.users,
            EntityKind::Service => &self.shared.services,
        };
        (0..count)
            .map(|id| {
                let mut guard = lock(&stripes[id % self.options.shards]);
                guard
                    .slots
                    .remove(&id)
                    .map(|slot| slot.state)
                    .unwrap_or_else(|| EntityState::fresh(&self.shared.config, kind, id))
            })
            .collect()
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.options.shards)
            .field("submitted", &self.submitted)
            .field("users", &self.num_users)
            .field("services", &self.num_services)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: usize, users: usize, services: usize) -> Vec<(usize, usize, f64)> {
        // Small deterministic LCG stream; values in (0.1, 10.1).
        let mut state = 0x1234_5678_u64;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let u = (state >> 33) as usize % users;
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let s = (state >> 33) as usize % services;
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = 0.1 + ((state >> 11) as f64 / (1u64 << 53) as f64) * 10.0;
                (u, s, v)
            })
            .collect()
    }

    fn sequential(samples: &[(usize, usize, f64)]) -> AmfModel {
        let mut model = AmfModel::new(AmfConfig::response_time()).unwrap();
        for &(u, s, v) in samples {
            model.observe(u, s, v);
        }
        model
    }

    fn factors_equal(a: &AmfModel, b: &AmfModel) -> bool {
        a.num_users() == b.num_users()
            && a.num_services() == b.num_services()
            && (0..a.num_users()).all(|u| a.user_factors(u) == b.user_factors(u))
            && (0..a.num_services()).all(|s| a.service_factors(s) == b.service_factors(s))
    }

    #[test]
    fn single_shard_matches_sequential_bitwise() {
        let samples = stream(2_000, 12, 30);
        let expected = sequential(&samples);
        let mut engine = ShardedEngine::new(
            AmfConfig::response_time(),
            EngineOptions {
                shards: 1,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        engine.feed_batch(samples.iter().copied());
        let got = engine.into_model();
        assert!(factors_equal(&expected, &got));
        assert_eq!(got.update_count(), 2_000);
    }

    #[test]
    fn multi_shard_matches_sequential_bitwise() {
        let samples = stream(5_000, 17, 41);
        let expected = sequential(&samples);
        for shards in [2, 3, 4] {
            let mut engine = ShardedEngine::new(
                AmfConfig::response_time(),
                EngineOptions {
                    shards,
                    chunk_size: 32,
                    ..EngineOptions::default()
                },
            )
            .unwrap();
            engine.feed_batch(samples.iter().copied());
            let got = engine.into_model();
            assert!(
                factors_equal(&expected, &got),
                "parity broke at {shards} shards"
            );
        }
    }

    #[test]
    fn snapshot_is_reusable_mid_stream() {
        let samples = stream(1_000, 8, 20);
        let mut engine = ShardedEngine::new(
            AmfConfig::response_time(),
            EngineOptions::default(),
        )
        .unwrap();
        engine.feed_batch(samples[..500].iter().copied());
        let mid = engine.snapshot();
        assert_eq!(mid.update_count(), 500);
        engine.feed_batch(samples[500..].iter().copied());
        let done = engine.into_model();
        assert_eq!(done.update_count(), 1_000);
        // The mid-stream snapshot equals a sequential run of the prefix.
        assert!(factors_equal(&mid, &sequential(&samples[..500])));
    }

    #[test]
    fn from_model_continues_training() {
        let samples = stream(800, 6, 12);
        let warm = sequential(&samples[..400]);
        let mut engine = ShardedEngine::from_model(
            warm,
            EngineOptions {
                shards: 2,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        engine.feed_batch(samples[400..].iter().copied());
        let got = engine.into_model();
        assert!(factors_equal(&got, &sequential(&samples)));
        assert_eq!(got.update_count(), 800);
    }

    #[test]
    fn history_matches_stream_order(){
        let samples = stream(600, 5, 9);
        let mut engine = ShardedEngine::new(
            AmfConfig::response_time(),
            EngineOptions {
                shards: 3,
                chunk_size: 16,
                record_history: true,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        engine.feed_batch(samples.iter().copied());
        engine.drain();
        for u in 0..5 {
            let expected: Vec<u64> = samples
                .iter()
                .enumerate()
                .filter(|(_, &(user, _, _))| user == u)
                .map(|(i, _)| i as u64)
                .collect();
            assert_eq!(engine.user_history(u).unwrap(), expected, "user {u}");
        }
        for s in 0..9 {
            let expected: Vec<u64> = samples
                .iter()
                .enumerate()
                .filter(|(_, &(_, service, _))| service == s)
                .map(|(i, _)| i as u64)
                .collect();
            assert_eq!(engine.service_history(s).unwrap(), expected, "service {s}");
        }
    }

    #[test]
    fn zero_shards_rejected() {
        assert!(matches!(
            ShardedEngine::new(
                AmfConfig::response_time(),
                EngineOptions {
                    shards: 0,
                    ..EngineOptions::default()
                }
            ),
            Err(AmfError::InvalidConfig(_))
        ));
    }

    #[test]
    fn drain_on_empty_engine_is_immediate() {
        let mut engine =
            ShardedEngine::new(AmfConfig::response_time(), EngineOptions::default()).unwrap();
        engine.drain();
        assert_eq!(engine.processed(), 0);
        let model = engine.into_model();
        assert_eq!(model.num_users(), 0);
    }
}
