//! Streaming accuracy estimators and the drift sentinel.
//!
//! The paper evaluates AMF by plotting accuracy *over time* (Fig. 7–10):
//! the model must not only adapt to QoS drift, an operator must be able to
//! *see* it adapting. This module provides the two runtime estimators that
//! make that continuous story observable:
//!
//! * [`AccuracyWindow`] — a fixed-size sliding window over the per-sample
//!   relative errors the update path already computes (Eq. 6), yielding
//!   windowed **MRE** (median relative error, the paper's headline metric)
//!   and **NMAE** (`Σ|r − g| / Σr` over the window). Pushing is three array
//!   stores into pre-allocated rings — no allocation, so it can ride the
//!   zero-alloc `observe` hot path.
//! * [`DriftSentinel`] — a per-side (user/service) Page–Hinkley test fed by
//!   the EMA error trackers of Eq. 13–15 (each tracker *is* an
//!   exponentially-windowed relative error). When the error distribution
//!   shifts upward — the churn scenario the adaptive weights of Eq. 12
//!   exist for — the sentinel raises an alarm so the serving layer can flip
//!   a health gauge and emit a trace event instead of silently degrading.
//!
//! Both types are deterministic: identical input sequences produce
//! identical windows, statistics, and alarm counts, which is what lets the
//! golden-trace suite pin windowed MRE/NMAE to 1e-12 and assert zero false
//! alarms on a stationary stream.

/// Default [`AccuracyWindow`] capacity (samples).
pub const ACCURACY_WINDOW: usize = 512;

/// Sliding window of recent per-sample prediction errors.
///
/// Stores, per sample, the relative error (with the floored denominator of
/// [`crate::online::NORMALIZED_FLOOR`]), the absolute error `|r − g|`, and
/// the normalized actual `r` — enough to compute windowed MRE and NMAE on
/// demand. All storage is allocated up front; [`AccuracyWindow::push`]
/// never touches the heap.
#[derive(Debug, Clone)]
pub struct AccuracyWindow {
    rel: Vec<f64>,
    abs: Vec<f64>,
    act: Vec<f64>,
    /// Next write slot.
    next: usize,
    /// Live samples (≤ capacity).
    len: usize,
    /// Samples ever pushed (incl. those already evicted).
    total: u64,
    /// Median scratch for the allocation-free refresh path.
    scratch: Vec<f64>,
}

impl Default for AccuracyWindow {
    fn default() -> Self {
        Self::new(ACCURACY_WINDOW)
    }
}

impl AccuracyWindow {
    /// A window holding the last `capacity` samples (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            rel: vec![0.0; capacity],
            abs: vec![0.0; capacity],
            act: vec![0.0; capacity],
            next: 0,
            len: 0,
            total: 0,
            scratch: Vec::with_capacity(capacity),
        }
    }

    /// Records one sample: normalized actual `r`, model output `g`, and the
    /// relative error the update computed for it (Eq. 6). Evicts the oldest
    /// sample once full. Allocation-free.
    #[inline]
    pub fn push(&mut self, r: f64, g: f64, relative_error: f64) {
        let i = self.next;
        self.rel[i] = relative_error;
        self.abs[i] = (r - g).abs();
        self.act[i] = r;
        self.next = if i + 1 == self.rel.len() { 0 } else { i + 1 };
        if self.len < self.rel.len() {
            self.len += 1;
        }
        self.total += 1;
    }

    /// Samples currently in the window.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Window capacity.
    pub fn capacity(&self) -> usize {
        self.rel.len()
    }

    /// Samples ever pushed (including evicted ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Windowed median relative error (the paper's MRE, over the window).
    /// `None` while the window is empty. Allocates a scratch copy; use
    /// [`AccuracyWindow::mre_refresh`] on paths that must stay off the heap.
    pub fn mre(&self) -> Option<f64> {
        let mut scratch = self.rel[..self.len].to_vec();
        median_in_place(&mut scratch)
    }

    /// Like [`AccuracyWindow::mre`], but reusing the pre-allocated internal
    /// scratch — zero allocation, for the sampled hot-path gauge refresh.
    /// Produces exactly the same value as [`AccuracyWindow::mre`].
    pub fn mre_refresh(&mut self) -> Option<f64> {
        self.scratch.clear();
        self.scratch.extend_from_slice(&self.rel[..self.len]);
        median_in_place(&mut self.scratch)
    }

    /// Windowed NMAE: `Σ|r − g| / Σr` over the window (normalized domain).
    /// `None` while the window is empty or the actuals sum to zero.
    pub fn nmae(&self) -> Option<f64> {
        if self.len == 0 {
            return None;
        }
        let sum_abs: f64 = self.abs[..self.len].iter().sum();
        let sum_act: f64 = self.act[..self.len].iter().sum();
        (sum_act > 0.0).then(|| sum_abs / sum_act)
    }

    /// Visits the window's samples oldest-first as
    /// `(r, g_reconstructed_is_not_stored, …)` — internal merge order.
    fn for_each_ordered(&self, mut f: impl FnMut(f64, f64, f64)) {
        let cap = self.rel.len();
        let start = if self.len < cap { 0 } else { self.next };
        for k in 0..self.len {
            let i = (start + k) % cap;
            f(self.rel[i], self.abs[i], self.act[i]);
        }
    }

    /// Appends `other`'s samples (oldest-first) into this window — the
    /// deterministic merge the sharded engine uses to fold per-worker
    /// windows back into the model's. Later pushes evict earlier ones as
    /// usual.
    pub fn absorb(&mut self, other: &AccuracyWindow) {
        other.for_each_ordered(|rel, abs, act| {
            // `push` recomputes |r − g| from (r, g); here we only have the
            // stored pair, so write the triple directly.
            let i = self.next;
            self.rel[i] = rel;
            self.abs[i] = abs;
            self.act[i] = act;
            self.next = if i + 1 == self.rel.len() { 0 } else { i + 1 };
            if self.len < self.rel.len() {
                self.len += 1;
            }
            self.total += 1;
        });
    }
}

/// In-place median: exact, deterministic, no allocation beyond `values`.
/// Even-length windows average the two middle elements (matching
/// `qos-metrics`' offline MRE definition).
fn median_in_place(values: &mut [f64]) -> Option<f64> {
    let n = values.len();
    if n == 0 {
        return None;
    }
    let mid = n / 2;
    let (low, pivot, _) = values.select_nth_unstable_by(mid, f64::total_cmp);
    let upper = *pivot;
    if n % 2 == 1 {
        Some(upper)
    } else {
        // Lower middle = max of the left partition.
        let lower = low.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(0.5 * (lower + upper))
    }
}

/// Point-in-time view of an [`AccuracyWindow`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowedAccuracy {
    /// Windowed median relative error, `None` before the first sample.
    pub mre: Option<f64>,
    /// Windowed NMAE, `None` before the first sample.
    pub nmae: Option<f64>,
    /// Samples currently in the window.
    pub window_len: usize,
    /// Samples ever pushed through the window.
    pub samples: u64,
}

/// Tuning for the [`DriftSentinel`]'s Page–Hinkley tests.
///
/// The test sees one *offer* every [`DriftConfig::stride`] model updates;
/// `min_offers` and the drift/threshold parameters are in offer units. The
/// defaults are deliberately conservative: the EMA inputs on a stationary
/// stream wander with the entity mix, and the sentinel must stay silent
/// there (pinned by the golden-trace suite) while still firing within a few
/// hundred samples of a genuine distribution shift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Magnitude tolerance `δ`: per-offer drift subtracted from the
    /// deviation, so sustained increases smaller than this never alarm.
    pub delta: f64,
    /// Alarm threshold `λ` on the accumulated deviation.
    pub lambda: f64,
    /// Offers required after a reset before the test may alarm.
    pub min_offers: u64,
    /// Model updates per offer (the per-sample cost gate: between offers
    /// the sentinel only increments a counter).
    pub stride: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            delta: 0.05,
            lambda: 5.0,
            min_offers: 64,
            stride: 8,
        }
    }
}

/// One-sided (increase-only) Page–Hinkley change detector.
///
/// Tracks the running mean of its inputs and the cumulative deviation
/// `m_T = Σ (x_t − x̄_t − δ)`; an alarm fires when `m_T − min_t m_t > λ`,
/// i.e. when the input has run persistently above its historical mean by
/// more than the tolerance. Detecting *increases* only is deliberate: a
/// model converging (error decreasing) is healthy, a model whose error
/// climbs is drifting.
#[derive(Debug, Clone, PartialEq)]
pub struct PageHinkley {
    config: DriftConfig,
    offers: u64,
    mean: f64,
    cum: f64,
    cum_min: f64,
}

impl PageHinkley {
    /// A fresh detector.
    pub fn new(config: DriftConfig) -> Self {
        Self {
            config,
            offers: 0,
            mean: 0.0,
            cum: 0.0,
            cum_min: 0.0,
        }
    }

    /// Offers one value; returns `true` when the alarm fires (the detector
    /// resets itself so it can re-learn the post-shift distribution).
    pub fn offer(&mut self, x: f64) -> bool {
        self.offers += 1;
        self.mean += (x - self.mean) / self.offers as f64;
        self.cum += x - self.mean - self.config.delta;
        if self.cum < self.cum_min {
            self.cum_min = self.cum;
        }
        if self.offers >= self.config.min_offers && self.cum - self.cum_min > self.config.lambda {
            self.reset();
            return true;
        }
        false
    }

    /// Offers accepted since the last reset.
    pub fn offers(&self) -> u64 {
        self.offers
    }

    fn reset(&mut self) {
        self.offers = 0;
        self.mean = 0.0;
        self.cum = 0.0;
        self.cum_min = 0.0;
    }
}

/// What one [`DriftSentinel::observe`] call concluded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriftVerdict {
    /// The user-side detector alarmed on this sample.
    pub user_alarm: bool,
    /// The service-side detector alarmed on this sample.
    pub service_alarm: bool,
}

impl DriftVerdict {
    /// Whether either side alarmed.
    pub fn any(self) -> bool {
        self.user_alarm || self.service_alarm
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Side {
    ph: PageHinkley,
    alarms: u64,
    offers_since_alarm: u64,
}

impl Side {
    fn new(config: DriftConfig) -> Self {
        Self {
            ph: PageHinkley::new(config),
            alarms: 0,
            offers_since_alarm: 0,
        }
    }

    fn offer(&mut self, x: f64) -> bool {
        if self.ph.offer(x) {
            self.alarms += 1;
            self.offers_since_alarm = 0;
            true
        } else {
            self.offers_since_alarm = self.offers_since_alarm.saturating_add(1);
            false
        }
    }

    fn healthy(&self, config: &DriftConfig) -> bool {
        self.alarms == 0 || self.offers_since_alarm >= config.min_offers
    }
}

/// Per-side drift sentinel: two [`PageHinkley`] detectors fed with the
/// touched entities' post-update EMA errors (`e_u`, `e_s` of Eq. 13–15).
///
/// Call [`DriftSentinel::observe`] once per model update; all but every
/// `stride`-th call is a counter increment, so the sentinel is cheap enough
/// for the per-sample hot path and allocation-free throughout.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftSentinel {
    config: DriftConfig,
    tick: u64,
    user: Side,
    service: Side,
}

impl Default for DriftSentinel {
    fn default() -> Self {
        Self::new(DriftConfig::default())
    }
}

impl DriftSentinel {
    /// A sentinel with the given tuning.
    pub fn new(config: DriftConfig) -> Self {
        Self {
            config,
            tick: 0,
            user: Side::new(config),
            service: Side::new(config),
        }
    }

    /// The sentinel's tuning.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Feeds one update's post-update EMA errors. Returns which sides (if
    /// any) alarmed on this call.
    #[inline]
    pub fn observe(&mut self, e_user: f64, e_service: f64) -> DriftVerdict {
        self.tick += 1;
        if !self.tick.is_multiple_of(self.config.stride.max(1)) {
            return DriftVerdict::default();
        }
        DriftVerdict {
            user_alarm: self.user.offer(e_user),
            service_alarm: self.service.offer(e_service),
        }
    }

    /// Lifetime alarm counts, `(user, service)`.
    pub fn alarms(&self) -> (u64, u64) {
        (self.user.alarms, self.service.alarms)
    }

    /// Whether the error distribution currently looks stable: no alarm
    /// ever, or at least `min_offers` clean offers since the last one on
    /// both sides.
    pub fn healthy(&self) -> bool {
        self.user.healthy(&self.config) && self.service.healthy(&self.config)
    }

    /// Folds another sentinel's alarm *counts* into this one (the engine's
    /// per-worker sentinels aggregate this way at merge time; detector
    /// state itself is per-stream and is not merged).
    pub fn merge_counts(&mut self, other: &DriftSentinel) {
        self.user.alarms += other.user.alarms;
        self.service.alarms += other.service.alarms;
    }

    /// Clears all detector state *and* the alarm counters, returning the
    /// sentinel to its freshly-constructed state (tuning is kept).
    ///
    /// The engine merges per-shard alarm counts into the model's sentinel in
    /// worker order, so a long-lived sentinel accumulates history across
    /// runs. Scenario harnesses that replay several regimes back to back
    /// must call this between runs — otherwise the second scenario starts
    /// with the first one's alarms and a half-charged Page–Hinkley
    /// accumulator, and its planner reacts to drift that never happened.
    pub fn reset(&mut self) {
        self.tick = 0;
        self.user = Side::new(self.config);
        self.service = Side::new(self.config);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_mre_and_nmae_match_direct_computation() {
        let mut w = AccuracyWindow::new(8);
        let samples = [(0.5, 0.4), (0.8, 0.6), (0.3, 0.35), (0.9, 0.2)];
        for &(r, g) in &samples {
            w.push(r, g, (r - g).abs() / r);
        }
        let mut rels: Vec<f64> = samples.iter().map(|(r, g)| (r - g).abs() / r).collect();
        rels.sort_by(f64::total_cmp);
        let expected_mre = 0.5 * (rels[1] + rels[2]);
        let expected_nmae = samples.iter().map(|(r, g)| (r - g).abs()).sum::<f64>()
            / samples.iter().map(|(r, _)| r).sum::<f64>();
        assert!((w.mre().unwrap() - expected_mre).abs() < 1e-15);
        assert!((w.nmae().unwrap() - expected_nmae).abs() < 1e-15);
        assert_eq!(w.len(), 4);
        assert_eq!(w.total(), 4);
    }

    #[test]
    fn mre_refresh_is_identical_and_reusable() {
        let mut w = AccuracyWindow::new(16);
        let mut state = 1u64;
        for _ in 0..100 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = 0.1 + (state >> 40) as f64 / (1u64 << 25) as f64;
            let g = 0.1 + (state >> 20) as f64 % 1.0;
            w.push(r, g, (r - g).abs() / r.max(0.01));
        }
        assert_eq!(w.mre(), w.mre_refresh());
        assert_eq!(w.mre(), w.mre_refresh()); // idempotent
        assert_eq!(w.len(), 16);
        assert_eq!(w.total(), 100);
    }

    #[test]
    fn empty_window_has_no_estimates() {
        let mut w = AccuracyWindow::new(4);
        assert_eq!(w.mre(), None);
        assert_eq!(w.mre_refresh(), None);
        assert_eq!(w.nmae(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn eviction_keeps_only_the_newest_samples() {
        let mut w = AccuracyWindow::new(3);
        for i in 0..10u32 {
            let rel = f64::from(i);
            w.push(1.0, 1.0 - rel, rel);
        }
        // Window holds rels {7, 8, 9}.
        assert_eq!(w.mre(), Some(8.0));
        assert_eq!(w.len(), 3);
        assert_eq!(w.total(), 10);
    }

    #[test]
    fn absorb_replays_oldest_first() {
        let mut a = AccuracyWindow::new(8);
        let mut b = AccuracyWindow::new(2);
        for i in 0..5u32 {
            b.push(1.0, 0.0, f64::from(i)); // b retains rels {3, 4}
        }
        a.push(1.0, 0.0, 100.0);
        a.absorb(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.total(), 3);
        assert_eq!(a.mre(), Some(4.0)); // {100, 3, 4} → median 4
    }

    #[test]
    fn absorb_order_is_deterministic_and_merge_matches_sequential() {
        // Merging [w0, w1] into a fresh window reproduces pushing their
        // contents in that order directly.
        let mut w0 = AccuracyWindow::new(4);
        let mut w1 = AccuracyWindow::new(4);
        for i in 0..6 {
            w0.push(0.5 + 0.01 * f64::from(i), 0.4, 0.1 * f64::from(i));
            w1.push(0.7, 0.2 + 0.05 * f64::from(i), 0.2 * f64::from(i));
        }
        let mut merged = AccuracyWindow::new(8);
        merged.absorb(&w0);
        merged.absorb(&w1);
        let again = {
            let mut m = AccuracyWindow::new(8);
            m.absorb(&w0);
            m.absorb(&w1);
            m
        };
        assert_eq!(merged.mre(), again.mre());
        assert_eq!(merged.nmae(), again.nmae());
        assert_eq!(merged.len(), 8);
    }

    #[test]
    fn page_hinkley_fires_on_level_shift_and_not_on_stationary() {
        let config = DriftConfig::default();
        let mut stationary = PageHinkley::new(config);
        let mut shifted = PageHinkley::new(config);
        let mut state = 42u64;
        let mut noise = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 40) as f64 / (1u64 << 24) as f64 - 0.5) * 0.1
        };
        let mut false_alarms = 0;
        for _ in 0..10_000 {
            if stationary.offer(0.2 + noise()) {
                false_alarms += 1;
            }
        }
        assert_eq!(false_alarms, 0, "stationary stream must not alarm");

        let mut fired_at = None;
        for t in 0..10_000 {
            let level = if t < 500 { 0.2 } else { 0.6 };
            if shifted.offer(level + noise()) {
                fired_at = Some(t);
                break;
            }
        }
        let fired_at = fired_at.expect("level shift must alarm");
        assert!(
            (500..1_000).contains(&fired_at),
            "alarm at offer {fired_at}, expected shortly after the shift"
        );
    }

    #[test]
    fn sentinel_strides_and_counts_per_side() {
        let config = DriftConfig {
            stride: 4,
            min_offers: 2,
            delta: 0.0,
            lambda: 0.5,
        };
        let mut sentinel = DriftSentinel::new(config);
        assert!(sentinel.healthy());
        // User-side errors climb steeply; service side stays flat.
        let mut alarms = (0u64, 0u64);
        for t in 0..400 {
            let e_u = 0.1 + f64::from(t) * 0.01;
            let verdict = sentinel.observe(e_u, 0.1);
            if verdict.user_alarm {
                alarms.0 += 1;
                assert!(!sentinel.healthy(), "a fresh alarm must flip health");
            }
            if verdict.service_alarm {
                alarms.1 += 1;
            }
        }
        assert!(alarms.0 >= 1, "climbing user errors must alarm");
        assert_eq!(alarms.1, 0, "flat service errors must not alarm");
        assert_eq!(sentinel.alarms(), alarms);
    }

    #[test]
    fn sentinel_recovers_health_after_quiet_period() {
        let config = DriftConfig {
            stride: 1,
            min_offers: 4,
            delta: 0.0,
            lambda: 0.2,
        };
        let mut sentinel = DriftSentinel::new(config);
        for t in 0..200 {
            let e = if t < 100 { 0.001 * f64::from(t) } else { 0.05 };
            sentinel.observe(e, 0.05);
        }
        assert!(sentinel.alarms().0 >= 1);
        assert!(
            sentinel.healthy(),
            "stable tail must restore health: {sentinel:?}"
        );
    }

    #[test]
    fn reset_clears_alarms_and_detector_state() {
        let config = DriftConfig {
            stride: 1,
            min_offers: 4,
            delta: 0.0,
            lambda: 0.2,
        };
        let mut sentinel = DriftSentinel::new(config);
        // Drive both sides into alarm, then poison the running means.
        for t in 0..100 {
            let e = 0.01 * f64::from(t);
            sentinel.observe(e, e);
        }
        assert!(sentinel.alarms().0 >= 1);
        // Merged-in shard counts accumulate too (the engine idiom).
        let mut shard = DriftSentinel::new(config);
        shard.user.alarms = 2;
        sentinel.merge_counts(&shard);

        sentinel.reset();
        assert_eq!(sentinel.alarms(), (0, 0), "counters must clear");
        assert!(sentinel.healthy(), "fresh sentinel is healthy");
        assert_eq!(sentinel.tick, 0);
        // Back-to-back runs do not inherit state: a reset sentinel behaves
        // bit-for-bit like a new one on the same stream.
        let mut fresh = DriftSentinel::new(config);
        for t in 0..200 {
            let e = if t < 150 { 0.05 } else { 0.5 };
            assert_eq!(sentinel.observe(e, 0.05), fresh.observe(e, 0.05));
        }
        assert_eq!(sentinel.alarms(), fresh.alarms());
        assert_eq!(sentinel, fresh);
    }

    #[test]
    fn merge_counts_sums_alarms_only() {
        let mut a = DriftSentinel::default();
        let mut b = DriftSentinel::default();
        b.user.alarms = 3;
        b.service.alarms = 1;
        a.merge_counts(&b);
        a.merge_counts(&b);
        assert_eq!(a.alarms(), (6, 2));
        assert_eq!(a.tick, 0, "detector state is not merged");
    }
}
