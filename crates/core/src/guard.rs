//! Input validation and quarantine for the QoS stream (`SampleGuard`).
//!
//! The prediction service trains online on whatever the network delivers;
//! "Outlier-Resilient Web Service QoS Prediction" (Ye et al.) shows that
//! unfiltered garbage directly corrupts MF factors. This module is the
//! admission gate in front of every online update:
//!
//! * **Hard validity rules** — NaN/inf, non-positive, and out-of-range
//!   values are rejected outright (a response time of `-3 s` is a
//!   measurement bug, not information);
//! * **Online outlier gate** — per service, a rolling window of recently
//!   *accepted* values maintains a median and a MAD (median absolute
//!   deviation) estimate; a sample further than `outlier_sigmas` robust
//!   standard deviations from the median is flagged. The gate only
//!   activates after `outlier_warmup` accepted samples per service, so cold
//!   services are never starved.
//!
//! Rejected samples never reach the model. They are routed to a *bounded*
//! quarantine log (newest kept) with per-reason and per-service counters,
//! so every reject is accounted for and an operator can see which services
//! emit garbage — see [`crate::diagnostics::QuarantineDiagnostics`].
//!
//! # Examples
//!
//! ```
//! use amf_core::guard::{GuardConfig, RejectReason, SampleGuard};
//!
//! let mut guard = SampleGuard::new(GuardConfig::default());
//! assert!(guard.admit(0, 0, 1.4).is_ok());
//! assert_eq!(guard.admit(0, 0, f64::NAN), Err(RejectReason::NotFinite));
//! assert_eq!(guard.admit(0, 0, -2.0), Err(RejectReason::NonPositive));
//! let stats = guard.stats();
//! assert_eq!(stats.accepted, 1);
//! assert_eq!(stats.rejected(), 2);
//! ```

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Scale factor turning a MAD into a robust standard-deviation estimate
/// (exact for normal data).
const MAD_TO_SIGMA: f64 = 1.4826;

/// Admission-gate configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GuardConfig {
    /// Values below this are rejected as out of range (exclusive lower
    /// bound; non-positive values are rejected regardless).
    pub r_min: f64,
    /// Values above this are rejected as out of range.
    pub r_max: f64,
    /// Whether the rolling median/MAD outlier gate is active at all.
    pub outlier_gate: bool,
    /// Per-service rolling window length of accepted values the outlier
    /// statistics are computed over.
    pub outlier_window: usize,
    /// Robust-sigma multiplier: a sample further than this many robust
    /// standard deviations from the service's rolling median is an outlier.
    pub outlier_sigmas: f64,
    /// Accepted samples a service must accumulate before its outlier gate
    /// activates (early windows are too noisy to judge by).
    pub outlier_warmup: usize,
    /// Maximum quarantined samples retained for inspection (newest kept;
    /// counters are never truncated).
    pub quarantine_cap: usize,
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self {
            r_min: 0.0,
            r_max: 20.0,
            outlier_gate: true,
            outlier_window: 64,
            outlier_sigmas: 6.0,
            outlier_warmup: 16,
            quarantine_cap: 256,
        }
    }
}

impl GuardConfig {
    /// A guard matching an AMF model's configured QoS range.
    pub fn for_amf(config: &crate::AmfConfig) -> Self {
        Self {
            r_min: config.r_min,
            r_max: config.r_max,
            ..Self::default()
        }
    }

    /// Checks the configuration is usable.
    ///
    /// # Errors
    ///
    /// Returns [`crate::AmfError::InvalidConfig`] naming the offending knob.
    pub fn validate(&self) -> Result<(), crate::AmfError> {
        let bad = |msg: &str| Err(crate::AmfError::InvalidConfig(msg.to_string()));
        if self.r_min.is_nan() || !self.r_max.is_finite() || self.r_min >= self.r_max {
            return bad("guard range must satisfy r_min < r_max (finite)");
        }
        if self.outlier_gate {
            if self.outlier_window < 2 {
                return bad("outlier_window must be >= 2");
            }
            if self.outlier_sigmas.is_nan() || self.outlier_sigmas <= 0.0 {
                return bad("outlier_sigmas must be positive");
            }
        }
        Ok(())
    }
}

/// Why a sample was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// NaN or infinite.
    NotFinite,
    /// Zero or negative (QoS measurements are strictly positive).
    NonPositive,
    /// Outside the configured `[r_min, r_max]` range.
    OutOfRange,
    /// Statistical outlier relative to the service's rolling median/MAD.
    Outlier,
}

impl RejectReason {
    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::NotFinite => "not-finite",
            RejectReason::NonPositive => "non-positive",
            RejectReason::OutOfRange => "out-of-range",
            RejectReason::Outlier => "outlier",
        }
    }
}

/// One quarantined sample, as retained in the bounded log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuarantinedSample {
    /// Admission sequence number (position in the guarded stream).
    pub seq: u64,
    /// User id of the rejected observation.
    pub user: usize,
    /// Service id of the rejected observation.
    pub service: usize,
    /// The offending raw value (NaN survives the trip for inspection).
    pub raw: f64,
    /// Why it was rejected.
    pub reason: RejectReason,
}

/// Monotonic admission counters. Every sample offered to the guard lands in
/// exactly one bucket, so `accepted + rejected() == seen`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuardStats {
    /// Samples admitted to training.
    pub accepted: u64,
    /// Rejected: NaN or infinite.
    pub not_finite: u64,
    /// Rejected: zero or negative.
    pub non_positive: u64,
    /// Rejected: outside the configured range.
    pub out_of_range: u64,
    /// Rejected: statistical outlier.
    pub outlier: u64,
}

impl GuardStats {
    /// Total rejects across all reasons.
    pub fn rejected(&self) -> u64 {
        self.not_finite + self.non_positive + self.out_of_range + self.outlier
    }

    /// Total samples offered.
    pub fn seen(&self) -> u64 {
        self.accepted + self.rejected()
    }

    /// Fraction of offered samples that were rejected (0 when none seen).
    pub fn reject_rate(&self) -> f64 {
        let seen = self.seen();
        if seen == 0 {
            0.0
        } else {
            self.rejected() as f64 / seen as f64
        }
    }

    fn bump(&mut self, reason: RejectReason) {
        match reason {
            RejectReason::NotFinite => self.not_finite += 1,
            RejectReason::NonPositive => self.non_positive += 1,
            RejectReason::OutOfRange => self.out_of_range += 1,
            RejectReason::Outlier => self.outlier += 1,
        }
    }
}

/// Rolling window of one service's accepted values with median/MAD queries.
#[derive(Debug, Clone, Default)]
struct ServiceWindow {
    values: VecDeque<f64>,
    /// Scratch buffer reused across median computations.
    scratch: Vec<f64>,
}

impl ServiceWindow {
    fn push(&mut self, value: f64, cap: usize) {
        if self.values.len() >= cap {
            self.values.pop_front();
        }
        self.values.push_back(value);
    }

    /// `(median, robust sigma)` of the window, or `None` when empty.
    fn robust_stats(&mut self) -> Option<(f64, f64)> {
        if self.values.is_empty() {
            return None;
        }
        self.scratch.clear();
        self.scratch.extend(self.values.iter().copied());
        let median = median_in_place(&mut self.scratch);
        for v in &mut self.scratch {
            *v = (*v - median).abs();
        }
        let mad = median_in_place(&mut self.scratch);
        Some((median, mad * MAD_TO_SIGMA))
    }
}

/// Median of a scratch slice via linear-time selection (reorders it). The
/// slice is non-empty by contract of the single caller.
///
/// `select_nth_unstable_by` partitions around the nth element in O(n)
/// instead of the O(n log n) full sort; the guard recomputes the median
/// twice per accepted sample (median, then MAD), so this is on the
/// ingestion hot path whenever outlier screening is enabled. For the even
/// case the lower middle is the maximum of the left partition, which
/// selection guarantees holds every element `<=` the nth. The window holds
/// only positive finite values (and their absolute deviations), so
/// `total_cmp` ordering agrees with `<=` and there are no NaN/-0.0 edge
/// cases to distinguish from the sorting implementation.
fn median_in_place(values: &mut [f64]) -> f64 {
    let n = values.len();
    let (left, mid, _) = values.select_nth_unstable_by(n / 2, f64::total_cmp);
    if n % 2 == 1 {
        *mid
    } else {
        let lower = left
            .iter()
            .copied()
            .max_by(f64::total_cmp)
            .expect("even-length slice has a non-empty left partition");
        (lower + *mid) / 2.0
    }
}

/// The admission gate: validates and outlier-screens a QoS stream, routing
/// rejects to a bounded quarantine with exact counters.
///
/// Not internally synchronized — wrap in a lock to share across threads
/// (the prediction service keeps it next to its ingestion path).
#[derive(Debug, Clone, Default)]
pub struct SampleGuard {
    config: GuardConfig,
    windows: HashMap<usize, ServiceWindow>,
    quarantine: VecDeque<QuarantinedSample>,
    per_service_rejects: HashMap<usize, u64>,
    per_service_seen: HashMap<usize, u64>,
    stats: GuardStats,
    seq: u64,
}

impl SampleGuard {
    /// Creates a guard. Invalid configurations are clamped to usable values
    /// rather than panicking (the guard must never take the pipeline down);
    /// use [`GuardConfig::validate`] to surface configuration mistakes.
    pub fn new(mut config: GuardConfig) -> Self {
        if config.validate().is_err() {
            let fallback = GuardConfig::default();
            if config.r_min.is_nan() || !config.r_max.is_finite() || config.r_min >= config.r_max {
                config.r_min = fallback.r_min;
                config.r_max = fallback.r_max;
            }
            config.outlier_window = config.outlier_window.max(2);
            if config.outlier_sigmas.is_nan() || config.outlier_sigmas <= 0.0 {
                config.outlier_sigmas = fallback.outlier_sigmas;
            }
        }
        Self {
            config,
            ..Self::default()
        }
    }

    /// The guard's configuration (post-clamping).
    pub fn config(&self) -> &GuardConfig {
        &self.config
    }

    /// Screens one observation. `Ok(())` admits it to training (and folds
    /// the value into the service's rolling statistics); `Err` names the
    /// reject reason, and the sample has been quarantined and counted.
    pub fn admit(&mut self, user: usize, service: usize, raw: f64) -> Result<(), RejectReason> {
        let seq = self.seq;
        self.seq += 1;
        *self.per_service_seen.entry(service).or_insert(0) += 1;
        if let Err(reason) = self.screen(service, raw) {
            self.stats.bump(reason);
            crate::obs::guard_metrics().rejected(reason).inc();
            // Quarantine verdicts feed the global trace ring so a flight
            // dump taken after an alarm shows *which* samples the guard
            // was rejecting in the moments before (rejects only — the
            // admit path stays off the ring).
            qos_obs::global().trace().event(
                "guard_quarantine",
                format!(
                    "user={user} service={service} value={raw} reason={}",
                    reason.label()
                ),
            );
            *self.per_service_rejects.entry(service).or_insert(0) += 1;
            if self.config.quarantine_cap > 0 {
                if self.quarantine.len() >= self.config.quarantine_cap {
                    self.quarantine.pop_front();
                }
                self.quarantine.push_back(QuarantinedSample {
                    seq,
                    user,
                    service,
                    raw,
                    reason,
                });
            }
            return Err(reason);
        }
        self.stats.accepted += 1;
        crate::obs::guard_metrics().admitted.inc();
        if self.config.outlier_gate {
            self.windows
                .entry(service)
                .or_default()
                .push(raw, self.config.outlier_window);
        }
        Ok(())
    }

    fn screen(&mut self, service: usize, raw: f64) -> Result<(), RejectReason> {
        if !raw.is_finite() {
            return Err(RejectReason::NotFinite);
        }
        if raw <= 0.0 {
            return Err(RejectReason::NonPositive);
        }
        if raw < self.config.r_min || raw > self.config.r_max {
            return Err(RejectReason::OutOfRange);
        }
        if self.config.outlier_gate {
            if let Some(window) = self.windows.get_mut(&service) {
                if window.values.len() >= self.config.outlier_warmup {
                    if let Some((median, sigma)) = window.robust_stats() {
                        // Floor the scale so a perfectly flat window (MAD 0)
                        // does not reject benign jitter.
                        let scale = sigma.max(0.05 * median.abs()).max(1e-9);
                        if (raw - median).abs() > self.config.outlier_sigmas * scale {
                            return Err(RejectReason::Outlier);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The admission counters.
    pub fn stats(&self) -> GuardStats {
        self.stats
    }

    /// The retained quarantined samples, oldest first (bounded by
    /// [`GuardConfig::quarantine_cap`]; counters cover the rest).
    pub fn quarantined(&self) -> impl Iterator<Item = &QuarantinedSample> {
        self.quarantine.iter()
    }

    /// Number of samples currently retained in the quarantine log.
    pub fn quarantine_len(&self) -> usize {
        self.quarantine.len()
    }

    /// Total rejects per service id (all reasons), for reject-rate reports.
    pub fn per_service_rejects(&self) -> &HashMap<usize, u64> {
        &self.per_service_rejects
    }

    /// Total samples screened per service id (accepted + rejected).
    pub fn per_service_seen(&self) -> &HashMap<usize, u64> {
        &self.per_service_seen
    }

    /// Rolling median of a service's accepted values, if it has any.
    pub fn service_median(&mut self, service: usize) -> Option<f64> {
        self.windows
            .get_mut(&service)
            .and_then(|w| w.robust_stats())
            .map(|(median, _)| median)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guard() -> SampleGuard {
        SampleGuard::new(GuardConfig::default())
    }

    #[test]
    fn accepts_clean_values() {
        let mut g = guard();
        for k in 0..50 {
            assert!(g.admit(0, 0, 1.0 + 0.01 * (k % 5) as f64).is_ok());
        }
        assert_eq!(g.stats().accepted, 50);
        assert_eq!(g.stats().rejected(), 0);
        assert_eq!(g.quarantine_len(), 0);
    }

    #[test]
    fn hard_rules_fire_in_order() {
        let mut g = guard();
        assert_eq!(g.admit(0, 0, f64::NAN), Err(RejectReason::NotFinite));
        assert_eq!(g.admit(0, 0, f64::INFINITY), Err(RejectReason::NotFinite));
        assert_eq!(g.admit(0, 0, 0.0), Err(RejectReason::NonPositive));
        assert_eq!(g.admit(0, 0, -1.5), Err(RejectReason::NonPositive));
        assert_eq!(g.admit(0, 0, 25.0), Err(RejectReason::OutOfRange));
        let s = g.stats();
        assert_eq!(s.not_finite, 2);
        assert_eq!(s.non_positive, 2);
        assert_eq!(s.out_of_range, 1);
        assert_eq!(s.seen(), 5);
        assert!((s.reject_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn outlier_gate_needs_warmup() {
        let mut g = guard();
        // First sample is wild but there is no history to judge by.
        assert!(g.admit(0, 3, 18.0).is_ok());
        let mut g = guard();
        for k in 0..20 {
            g.admit(0, 3, 1.0 + 0.02 * (k % 3) as f64).unwrap();
        }
        // 18 s against a ~1 s median is far past 6 robust sigmas.
        assert_eq!(g.admit(0, 3, 18.0), Err(RejectReason::Outlier));
        // ...and the reject did NOT pollute the window.
        assert!(g.service_median(3).unwrap() < 1.2);
        assert_eq!(g.admit(0, 3, 1.05), Ok(()));
    }

    #[test]
    fn outlier_gate_is_per_service() {
        let mut g = guard();
        for k in 0..20 {
            g.admit(0, 0, 1.0 + 0.01 * (k % 2) as f64).unwrap();
        }
        // Service 1 has no history; the same extreme value is admitted.
        assert!(g.admit(0, 1, 15.0).is_ok());
        assert_eq!(g.admit(0, 0, 15.0), Err(RejectReason::Outlier));
    }

    #[test]
    fn selection_median_matches_sort_median() {
        // Reference implementation: the full sort the guard used before
        // switching to linear-time selection. Decisions must be identical.
        fn sort_median(values: &mut [f64]) -> f64 {
            values.sort_by(f64::total_cmp);
            let n = values.len();
            if n % 2 == 1 {
                values[n / 2]
            } else {
                (values[n / 2 - 1] + values[n / 2]) / 2.0
            }
        }
        let mut state = 0x9e37_79b9_7f4a_7c15_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Positive finite values in (0, 20] — the only shapes the window
            // ever holds (plus their absolute deviations, also >= 0).
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 20.0 + 1e-9
        };
        for len in 1..=33 {
            for _ in 0..8 {
                let base: Vec<f64> = (0..len).map(|_| next()).collect();
                let mut a = base.clone();
                let mut b = base;
                assert_eq!(
                    median_in_place(&mut a).to_bits(),
                    sort_median(&mut b).to_bits(),
                    "median mismatch at window length {len}"
                );
            }
        }
    }

    #[test]
    fn selection_median_pins_guard_decisions_on_fixed_stream() {
        // A deterministic stream with injected spikes; the exact admit /
        // reject sequence is pinned so any change to the median kernel that
        // alters a single gating decision fails loudly here.
        let mut g = SampleGuard::new(GuardConfig {
            outlier_window: 16,
            outlier_warmup: 8,
            outlier_sigmas: 4.0,
            ..GuardConfig::default()
        });
        let mut state = 42_u64;
        let mut decisions = Vec::new();
        for k in 0..200_u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            let value = if k % 23 == 7 {
                12.0 + noise // injected spike
            } else {
                1.0 + 0.2 * noise // steady regime
            };
            decisions.push(g.admit((k % 5) as usize, (k % 3) as usize, value).is_ok());
        }
        let rejected: Vec<usize> = decisions
            .iter()
            .enumerate()
            .filter(|(_, ok)| !**ok)
            .map(|(i, _)| i)
            .collect();
        // Every spike after per-service warmup (samples land on 3 services,
        // so warmup completes around global index 24) is rejected; nothing
        // else is.
        assert_eq!(
            rejected,
            vec![30, 53, 76, 99, 122, 145, 168, 191],
            "gating decisions shifted"
        );
        assert_eq!(g.stats().outlier, 8);
        assert_eq!(g.stats().accepted, 192);
    }

    #[test]
    fn level_shift_reopens_after_window_turnover() {
        let mut g = SampleGuard::new(GuardConfig {
            outlier_window: 8,
            outlier_warmup: 4,
            outlier_sigmas: 4.0,
            ..GuardConfig::default()
        });
        for _ in 0..8 {
            g.admit(0, 0, 1.0).unwrap();
        }
        // A genuine regime change: first samples rejected, but values just
        // inside the gate keep refreshing the window until the new level is
        // normal. (The gate bounds how fast "normal" can move — by design.)
        assert!(g.admit(0, 0, 9.0).is_err());
        for _ in 0..12 {
            let _ = g.admit(0, 0, 1.18);
        }
        assert!(g.admit(0, 0, 1.2).is_ok());
    }

    #[test]
    fn quarantine_is_bounded_counters_are_not() {
        let mut g = SampleGuard::new(GuardConfig {
            quarantine_cap: 4,
            ..GuardConfig::default()
        });
        for k in 0..10 {
            assert!(g.admit(k, 0, f64::NAN).is_err());
        }
        assert_eq!(g.quarantine_len(), 4);
        assert_eq!(g.stats().not_finite, 10);
        // Newest retained.
        let seqs: Vec<u64> = g.quarantined().map(|q| q.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(g.per_service_rejects()[&0], 10);
    }

    #[test]
    fn nan_survives_quarantine_for_inspection() {
        let mut g = guard();
        g.admit(2, 5, f64::NAN).unwrap_err();
        let q: Vec<_> = g.quarantined().collect();
        assert_eq!(q.len(), 1);
        assert_eq!((q[0].user, q[0].service), (2, 5));
        assert!(q[0].raw.is_nan());
        assert_eq!(q[0].reason, RejectReason::NotFinite);
    }

    #[test]
    fn quarantine_verdicts_land_in_the_trace_ring() {
        let mut g = guard();
        g.admit(41, 17, f64::INFINITY).unwrap_err();
        let events = qos_obs::global().trace().events();
        assert!(
            events.iter().any(|e| e.name == "guard_quarantine"
                && e.detail.contains("user=41")
                && e.detail.contains("service=17")
                && e.detail.contains("reason=not-finite")),
            "quarantine verdict traced: {events:?}"
        );
    }

    #[test]
    fn invalid_config_is_clamped_not_fatal() {
        let g = SampleGuard::new(GuardConfig {
            r_min: f64::NAN,
            r_max: f64::NAN,
            outlier_window: 0,
            outlier_sigmas: -1.0,
            ..GuardConfig::default()
        });
        assert!(g.config().r_min < g.config().r_max);
        assert!(g.config().outlier_window >= 2);
        assert!(g.config().outlier_sigmas > 0.0);
    }

    #[test]
    fn for_amf_matches_model_range() {
        let c = GuardConfig::for_amf(&crate::AmfConfig::throughput());
        assert_eq!(c.r_max, 7000.0);
        c.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        assert!(GuardConfig {
            r_min: 5.0,
            r_max: 1.0,
            ..GuardConfig::default()
        }
        .validate()
        .is_err());
        assert!(GuardConfig {
            outlier_sigmas: 0.0,
            ..GuardConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn five_percent_garbage_is_fully_accounted() {
        let mut g = guard();
        let mut accepted = 0u64;
        for k in 0..2_000u64 {
            let (service, value) = match k % 20 {
                7 => (3, f64::NAN),
                13 => (4, -0.5),
                _ => ((k % 5) as usize, 0.8 + (k % 7) as f64 * 0.1),
            };
            if g.admit((k % 11) as usize, service, value).is_ok() {
                accepted += 1;
            }
        }
        let s = g.stats();
        assert_eq!(s.seen(), 2_000);
        assert_eq!(s.accepted, accepted);
        assert_eq!(s.rejected(), 200);
        assert_eq!(s.not_finite, 100);
        assert_eq!(s.non_positive, 100);
    }
}
