//! The relaxed-consistency (Hogwild-style) parallel fast lane.
//!
//! The bitwise-parity engine ([`crate::engine`]) buys sequential equivalence
//! with ordering tickets, bounded channels, and per-chunk stripe mutexes —
//! and `BENCH_CORE.json` showed that tax clearly: sequential feed ran ~4×
//! faster than any sharded configuration. This module trades *bitwise* for
//! *statistically bounded* equivalence, the property incremental SGD
//! actually needs: small reorderings of commuting updates perturb the final
//! factors, but windowed MRE/NMAE stays within an ε of the parity engine
//! (enforced by `tests/relaxed_parity.rs` against the golden stream).
//!
//! # Design
//!
//! * Entity state lives in an [`AtomicSlab`]: the same contiguous layout as
//!   the model's `FactorSlab`, but every `f64` (factors and EMA tracker) is
//!   stored as the bit pattern in an `AtomicU64`. Word-level atomicity means
//!   *no torn reads by construction* — any load observes a value some store
//!   actually wrote.
//! * Writers serialize per entity with an **epoch claim**: one `AtomicU64`
//!   per entity, even = free, odd = claimed. A worker CASes the epoch odd,
//!   copies the entity into a thread-local buffer, runs the ordinary
//!   [`apply_observation`] kernel, writes the result back, and releases the
//!   epoch (+1, even again). Claiming both touched entities makes each
//!   sample's read-modify-write atomic *per entity pair* — so no update is
//!   ever lost; only the global *order* of updates is left to the scheduler.
//!   Claim order is fixed (user side, then service side) and the two sides
//!   are distinct slabs, so claim cycles — and thus deadlock — are
//!   impossible. The epoch doubles as a seqlock for concurrent readers
//!   ([`AtomicSlab::read_consistent`]).
//! * Ingestion micro-batches: samples buffer in the lane until
//!   [`crate::engine::EngineOptions::relaxed_batch`] is reached, then one
//!   scoped fan-out applies the batch with `K` workers partitioned by
//!   `user % K`. Per-user order within a batch is therefore preserved;
//!   per-service order is not — that is the relaxation.
//!
//! # Fault tolerance: at-least-once, no journal
//!
//! A panicking worker releases its epoch claims via the [`EpochClaim`] drop
//! guard (no other worker wedges) and the fan-in records a
//! [`FaultEvent`]. Recovery restarts the dead worker's partition from its
//! progress watermark, *re-applying the in-flight sample* — at-least-once,
//! versus the parity engine's journal-replay exactly-once. The weaker
//! guarantee is deliberate: a duplicated SGD micro-step is statistically
//! invisible (the ε harness runs under fault injection to prove it), and
//! dropping the journal is part of what makes this lane fast. The
//! *update count* still counts each accepted sample exactly once, so the
//! no-lost-update invariant remains exact. A worker that keeps dying past
//! [`crate::engine::EngineOptions::max_respawns`] rounds forfeits the rest
//! of its partition (`samples_lost`, engine degraded) instead of looping
//! forever.

use crate::config::AmfConfig;
use crate::engine::{Consistency, EngineOptions, FaultEvent, FaultStats, FeedOutcome};
use crate::fault::{FaultPlan, InjectedCrash, KillPhase};
use crate::model::{apply_observation, AmfModel, EntityKind, EntityState, FactorSlab};
use crate::online::UpdateOutcome;
use crate::stream::{AccuracyWindow, DriftSentinel};
use crate::weights::ErrorTracker;
use qos_transform::QosTransform;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Contiguous entity arena shared lock-free between workers: entity `i`'s
/// factors occupy words `i*dim..(i+1)*dim`, its EMA tracker word `i`, and
/// its epoch word `i`. All `f64` state is stored as bit patterns in
/// `AtomicU64`s, so every load/store is word-atomic — a reader can observe a
/// *stale* or *mixed-age* vector, never a torn word.
///
/// Growth is owner-only (`&mut self`, between fan-outs); workers share
/// `&AtomicSlab` and only load/store existing words.
pub(crate) struct AtomicSlab {
    dim: usize,
    factors: Vec<AtomicU64>,
    trackers: Vec<AtomicU64>,
    /// Per-entity claim/version word: even = free, odd = claimed. Bumped
    /// once on claim and once on release, so it also versions the entity
    /// for seqlock readers.
    epochs: Vec<AtomicU64>,
}

/// RAII epoch claim on one entity: holding it gives exclusive write access;
/// dropping it — including during a panic unwind — releases the entity, so
/// a crashed worker can never wedge the others.
pub(crate) struct EpochClaim<'a> {
    epoch: &'a AtomicU64,
    odd: u64,
}

impl Drop for EpochClaim<'_> {
    fn drop(&mut self) {
        self.epoch
            .store(self.odd.wrapping_add(1), Ordering::Release);
    }
}

impl AtomicSlab {
    pub(crate) fn new(dim: usize) -> Self {
        Self {
            dim,
            factors: Vec::new(),
            trackers: Vec::new(),
            epochs: Vec::new(),
        }
    }

    /// Number of entities stored.
    pub(crate) fn len(&self) -> usize {
        self.epochs.len()
    }

    /// Appends an entity (owner-only; never races workers).
    pub(crate) fn push_state(&mut self, state: &EntityState) {
        debug_assert_eq!(state.factors.len(), self.dim);
        self.factors
            .extend(state.factors.iter().map(|f| AtomicU64::new(f.to_bits())));
        self.trackers
            .push(AtomicU64::new(state.tracker.error().to_bits()));
        self.epochs.push(AtomicU64::new(0));
    }

    /// Claims entity `i` for exclusive writing, spinning until the current
    /// holder releases. The returned guard releases on drop (panic-safe).
    pub(crate) fn claim(&self, i: usize) -> EpochClaim<'_> {
        let epoch = &self.epochs[i];
        let mut spins = 0u32;
        loop {
            let e = epoch.load(Ordering::Relaxed);
            if e & 1 == 0
                && epoch
                    .compare_exchange_weak(e, e + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return EpochClaim { epoch, odd: e + 1 };
            }
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Copies entity `i`'s factors into `buf` and returns its tracker.
    /// Caller must hold the entity's claim for a stable snapshot.
    pub(crate) fn load_entity(&self, i: usize, buf: &mut [f64]) -> ErrorTracker {
        let words = &self.factors[i * self.dim..(i + 1) * self.dim];
        for (dst, word) in buf.iter_mut().zip(words) {
            *dst = f64::from_bits(word.load(Ordering::Acquire));
        }
        ErrorTracker::from_error(f64::from_bits(self.trackers[i].load(Ordering::Acquire)))
    }

    /// Writes entity `i`'s factors and tracker back. Caller must hold the
    /// entity's claim.
    pub(crate) fn store_entity(&self, i: usize, buf: &[f64], tracker: ErrorTracker) {
        let words = &self.factors[i * self.dim..(i + 1) * self.dim];
        for (src, word) in buf.iter().zip(words) {
            word.store(src.to_bits(), Ordering::Release);
        }
        self.trackers[i].store(tracker.error().to_bits(), Ordering::Release);
    }

    /// Seqlock read of entity `i` *without* claiming it: retries until a
    /// whole-vector snapshot is observed with no writer in between (epoch
    /// unchanged and even across the reads). This is what concurrent
    /// readers (snapshot paths, the no-torn-read property test) use while
    /// workers are writing.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn read_consistent(&self, i: usize, buf: &mut [f64]) -> ErrorTracker {
        let epoch = &self.epochs[i];
        loop {
            let before = epoch.load(Ordering::Acquire);
            if before & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let tracker = self.load_entity(i, buf);
            if epoch.load(Ordering::Acquire) == before {
                return tracker;
            }
        }
    }

    /// Drains the slab into a plain `FactorSlab` (owner-only, quiescent).
    fn to_factor_slab(&self) -> FactorSlab {
        let mut slab = FactorSlab::with_capacity(self.dim, self.len());
        let mut buf = vec![0.0; self.dim];
        for i in 0..self.len() {
            let tracker = self.load_entity(i, &mut buf);
            slab.push_copied(&buf, tracker);
        }
        slab
    }
}

/// Per-worker streaming telemetry, folded into the base at snapshot time in
/// worker order (same merge rule as the parity engine). Re-applied samples
/// after a crash push twice — telemetry is best-effort in relaxed mode,
/// matching the at-least-once application contract.
struct WorkerTelemetry {
    window: AccuracyWindow,
    sentinel: DriftSentinel,
}

impl WorkerTelemetry {
    fn push(&mut self, outcome: &UpdateOutcome, e_user: f64, e_service: f64) {
        self.window.push(outcome.r, outcome.g, outcome.sample_error);
        let verdict = self.sentinel.observe(e_user, e_service);
        if verdict.any() {
            let metrics = crate::obs::model_metrics();
            if verdict.user_alarm {
                metrics.drift_alarms_user.inc();
            }
            if verdict.service_alarm {
                metrics.drift_alarms_service.inc();
            }
            metrics.drift_healthy.set(0.0);
            qos_obs::global().trace().event("drift_alarm", "");
        }
    }
}

/// Applies one sample under epoch claims. The claims make the pair update
/// atomic (no lost updates); the buffers keep the SGD kernel itself running
/// on plain `&mut [f64]` — the *same* fused/SIMD kernel every other lane
/// uses. Returns the outcome plus post-update tracker errors for telemetry.
#[allow(clippy::too_many_arguments)]
fn apply_relaxed(
    config: &AmfConfig,
    transform: &QosTransform,
    users: &AtomicSlab,
    services: &AtomicSlab,
    user: usize,
    service: usize,
    raw: f64,
    plan: Option<&FaultPlan>,
    w: usize,
    seq: u64,
    ubuf: &mut [f64],
    sbuf: &mut [f64],
) -> (UpdateOutcome, f64, f64) {
    let _user_claim = users.claim(user);
    let _service_claim = services.claim(service);
    let mut user_tracker = users.load_entity(user, ubuf);
    let mut service_tracker = services.load_entity(service, sbuf);
    let outcome = apply_observation(
        config,
        transform,
        ubuf,
        &mut user_tracker,
        sbuf,
        &mut service_tracker,
        raw,
    );
    users.store_entity(user, ubuf, user_tracker);
    if let Some(plan) = plan {
        // Scripted mid-update death: the user side is committed, the
        // service side is not — a genuinely partial sample. Recovery
        // re-applies the whole sample (at-least-once).
        plan.crash_point(w, seq, KillPhase::Mid);
    }
    services.store_entity(service, sbuf, service_tracker);
    (outcome, user_tracker.error(), service_tracker.error())
}

/// The relaxed-consistency engine lane; see the module docs. Constructed by
/// [`crate::engine::ShardedEngine`] when
/// [`EngineOptions::consistency`] is [`Consistency::Relaxed`].
pub(crate) struct RelaxedLane {
    config: AmfConfig,
    transform: QosTransform,
    users: AtomicSlab,
    services: AtomicSlab,
    /// Samples buffered until the next micro-batch flush.
    pending: Vec<(usize, usize, f64)>,
    /// Dense entity-count watermarks (ids below these exist after a flush).
    num_users: usize,
    num_services: usize,
    submitted: u64,
    /// Samples applied at least once (each counted exactly once).
    applied: u64,
    /// Samples forfeited after a worker exhausted the respawn budget.
    lost: u64,
    /// Samples re-applied after a crash (the at-least-once duplicates).
    replayed: u64,
    /// Resume rounds run after worker deaths.
    respawns: u64,
    degraded: bool,
    faults: Vec<FaultEvent>,
    /// Per-worker lifetime sample counters — the `at_job` coordinate space
    /// fault scripts address, stable across micro-batches and resumes.
    worker_seq: Vec<u64>,
    telemetry: Vec<WorkerTelemetry>,
    base_updates: u64,
    base_accuracy: AccuracyWindow,
    base_sentinel: DriftSentinel,
    fault_plan: Option<Arc<FaultPlan>>,
    options: EngineOptions,
}

impl RelaxedLane {
    pub(crate) fn from_model(
        model: AmfModel,
        options: EngineOptions,
        plan: Option<Arc<FaultPlan>>,
    ) -> Self {
        debug_assert_eq!(options.consistency, Consistency::Relaxed);
        let config = *model.config();
        let transform = *model.transform();
        let base_updates = model.update_count();
        let dim = config.dimension;
        let k = options.shards;
        let (user_slab, service_slab, base_accuracy, base_sentinel) = model.into_parts();
        let sentinel_config = *base_sentinel.config();

        let mut users = AtomicSlab::new(dim);
        let mut services = AtomicSlab::new(dim);
        let mut buf = vec![0.0; dim];
        for i in 0..user_slab.len() {
            buf.copy_from_slice(user_slab.factors(i));
            users.push_state(&EntityState {
                factors: buf.clone(),
                tracker: *user_slab.tracker(i),
            });
        }
        for i in 0..service_slab.len() {
            buf.copy_from_slice(service_slab.factors(i));
            services.push_state(&EntityState {
                factors: buf.clone(),
                tracker: *service_slab.tracker(i),
            });
        }

        Self {
            config,
            transform,
            num_users: users.len(),
            num_services: services.len(),
            users,
            services,
            pending: Vec::new(),
            submitted: 0,
            applied: 0,
            lost: 0,
            replayed: 0,
            respawns: 0,
            degraded: false,
            faults: Vec::new(),
            worker_seq: vec![0; k],
            telemetry: (0..k)
                .map(|_| WorkerTelemetry {
                    window: AccuracyWindow::default(),
                    sentinel: DriftSentinel::new(sentinel_config),
                })
                .collect(),
            base_updates,
            base_accuracy,
            base_sentinel,
            fault_plan: plan,
            options,
        }
    }

    pub(crate) fn options(&self) -> &EngineOptions {
        &self.options
    }

    pub(crate) fn config(&self) -> &AmfConfig {
        &self.config
    }

    pub(crate) fn submitted(&self) -> u64 {
        self.submitted
    }

    pub(crate) fn processed(&self) -> u64 {
        self.applied
    }

    pub(crate) fn is_degraded(&self) -> bool {
        self.degraded
    }

    pub(crate) fn fault_events(&self) -> Vec<FaultEvent> {
        self.faults.clone()
    }

    pub(crate) fn fault_stats(&self) -> FaultStats {
        FaultStats {
            worker_panics: self.faults.len() as u64,
            injected_panics: self.faults.iter().filter(|f| f.injected).count() as u64,
            respawns: self.respawns,
            jobs_replayed: self.replayed,
            samples_lost: self.lost,
            abandoned_workers: 0,
        }
    }

    pub(crate) fn ensure_user(&mut self, user: usize) {
        self.num_users = self.num_users.max(user + 1);
        self.densify();
    }

    pub(crate) fn ensure_service(&mut self, service: usize) {
        self.num_services = self.num_services.max(service + 1);
        self.densify();
    }

    pub(crate) fn feed_batch<I>(&mut self, samples: I)
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        for (user, service, raw) in samples {
            self.num_users = self.num_users.max(user + 1);
            self.num_services = self.num_services.max(service + 1);
            self.pending.push((user, service, raw));
            self.submitted += 1;
            if self.pending.len() >= self.options.relaxed_batch {
                self.flush();
            }
        }
    }

    /// Relaxed admission is synchronous (the flush applies the batch before
    /// returning), so there is never queue pressure to shed against.
    pub(crate) fn feed_batch_shedding<I>(&mut self, samples: I) -> FeedOutcome
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        let before = self.submitted;
        self.feed_batch(samples);
        FeedOutcome {
            queued: self.submitted - before,
            shed: 0,
        }
    }

    pub(crate) fn drain(&mut self) {
        self.flush();
    }

    pub(crate) fn snapshot(&mut self) -> AmfModel {
        self.flush();
        let users = self.users.to_factor_slab();
        let services = self.services.to_factor_slab();
        let mut window = self.base_accuracy.clone();
        let mut sentinel = self.base_sentinel.clone();
        for telemetry in &self.telemetry {
            window.absorb(&telemetry.window);
            sentinel.merge_counts(&telemetry.sentinel);
        }
        AmfModel::restore_parts(
            self.config,
            self.transform,
            users,
            services,
            self.base_updates + self.applied,
            window,
            sentinel,
        )
    }

    pub(crate) fn into_model(mut self) -> AmfModel {
        self.snapshot()
    }

    /// Materializes fresh entities up to the watermarks (owner-only; always
    /// called while no workers are running, so `&mut` growth is safe).
    fn densify(&mut self) {
        while self.users.len() < self.num_users {
            let id = self.users.len();
            self.users
                .push_state(&EntityState::fresh(&self.config, EntityKind::User, id));
        }
        while self.services.len() < self.num_services {
            let id = self.services.len();
            self.services
                .push_state(&EntityState::fresh(&self.config, EntityKind::Service, id));
        }
    }

    /// Applies the buffered micro-batch with one scoped fan-out: partition
    /// by `user % K`, spawn `K` workers over the shared slabs, fan in. Dead
    /// workers are resumed from their progress watermark, bounded by the
    /// respawn budget.
    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.pending);
        self.densify();
        let k = self.options.shards;
        let mut parts: Vec<Vec<(usize, usize, f64)>> = (0..k).map(|_| Vec::new()).collect();
        for &sample in &batch {
            parts[sample.0 % k].push(sample);
        }
        let metrics = crate::obs::engine_metrics();
        metrics
            .chunks_dispatched
            .add(parts.iter().filter(|p| !p.is_empty()).count() as u64);
        metrics.jobs_dispatched.add(batch.len() as u64);

        // Per-worker progress through its partition; persists across resume
        // rounds, published by the worker *after* each sample applies.
        let progress: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(0)).collect();
        let mut rounds = 0u32;
        loop {
            let deaths = self.run_round(&parts, &progress);
            if deaths.is_empty() {
                break;
            }
            let metrics = crate::obs::engine_metrics();
            for death in deaths {
                metrics.worker_panics.inc();
                qos_obs::global()
                    .trace()
                    .event("engine_worker_panic", death.message.clone());
                // The sample in flight at death re-applies on resume:
                // at-least-once, counted as a replay.
                if (progress[death.worker].load(Ordering::Acquire) as usize)
                    < parts[death.worker].len()
                {
                    self.replayed += 1;
                    metrics.jobs_replayed.inc();
                }
                self.faults.push(death);
            }
            rounds += 1;
            if rounds > self.options.max_respawns {
                // Give up on the remainder rather than looping forever on a
                // worker that keeps dying.
                self.degraded = true;
                break;
            }
            self.respawns += 1;
            metrics.respawns.inc();
        }

        let applied_now: u64 = progress.iter().map(|p| p.load(Ordering::Acquire)).sum();
        let lost_now = batch.len() as u64 - applied_now;
        if lost_now > 0 {
            self.lost += lost_now;
            crate::obs::engine_metrics().samples_lost.add(lost_now);
        }
        self.applied += applied_now;
        for (w, part) in parts.iter().enumerate() {
            self.worker_seq[w] += part.len() as u64;
        }
    }

    /// One fan-out round: spawns a scoped worker per unfinished partition,
    /// joins them all, and returns any deaths (empty = round complete).
    fn run_round(
        &mut self,
        parts: &[Vec<(usize, usize, f64)>],
        progress: &[AtomicU64],
    ) -> Vec<FaultEvent> {
        let users = &self.users;
        let services = &self.services;
        let config = &self.config;
        let transform = &self.transform;
        let plan = self.fault_plan.as_deref();
        let worker_seq = &self.worker_seq;
        let dim = config.dimension;
        let mut deaths = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(parts.len());
            for ((w, part), telemetry) in parts.iter().enumerate().zip(self.telemetry.iter_mut()) {
                if part.is_empty() || progress[w].load(Ordering::Acquire) as usize >= part.len() {
                    continue;
                }
                let progress = &progress[w];
                let seq_base = worker_seq[w];
                handles.push(scope.spawn(move || {
                    let caught = catch_unwind(AssertUnwindSafe(|| {
                        let mut ubuf = vec![0.0; dim];
                        let mut sbuf = vec![0.0; dim];
                        let start = progress.load(Ordering::Acquire) as usize;
                        for (idx, &(user, service, raw)) in part.iter().enumerate().skip(start) {
                            let seq = seq_base + idx as u64;
                            if let Some(plan) = plan {
                                plan.crash_point(w, seq, KillPhase::Before);
                            }
                            let (outcome, e_user, e_service) = apply_relaxed(
                                config, transform, users, services, user, service, raw, plan, w,
                                seq, &mut ubuf, &mut sbuf,
                            );
                            telemetry.push(&outcome, e_user, e_service);
                            progress.store(idx as u64 + 1, Ordering::Release);
                        }
                    }));
                    caught.err().map(|payload| {
                        let injected = payload.downcast_ref::<InjectedCrash>();
                        let message = if let Some(crash) = injected {
                            format!("injected {:?} kill at job {}", crash.phase, crash.at_job)
                        } else if let Some(text) = payload.downcast_ref::<&str>() {
                            (*text).to_string()
                        } else if let Some(text) = payload.downcast_ref::<String>() {
                            text.clone()
                        } else {
                            "relaxed worker panicked".to_string()
                        };
                        FaultEvent {
                            worker: w,
                            at_job: progress.load(Ordering::Acquire),
                            injected: injected.is_some(),
                            message,
                        }
                    })
                }));
            }
            for handle in handles {
                if let Some(death) = handle
                    .join()
                    .expect("relaxed worker closures catch their own panics")
                {
                    deaths.push(death);
                }
            }
        });
        deaths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fresh_slab(dim: usize, entities: usize) -> AtomicSlab {
        let config = AmfConfig::response_time();
        let mut slab = AtomicSlab::new(dim);
        for id in 0..entities {
            let mut state = EntityState::fresh(&config, EntityKind::User, id);
            state.factors.truncate(dim);
            while state.factors.len() < dim {
                state.factors.push(0.1);
            }
            slab.push_state(&state);
        }
        slab
    }

    #[test]
    fn claim_excludes_and_releases() {
        let slab = fresh_slab(4, 2);
        let claim = slab.claim(0);
        // Entity 1 stays claimable while 0 is held.
        drop(slab.claim(1));
        drop(claim);
        // Entity 0 claimable again after release.
        drop(slab.claim(0));
    }

    #[test]
    fn claim_releases_on_panic_unwind() {
        let slab = std::sync::Arc::new(fresh_slab(4, 1));
        let inner = std::sync::Arc::clone(&slab);
        let result = std::thread::spawn(move || {
            let _claim = inner.claim(0);
            panic!("scripted");
        })
        .join();
        assert!(result.is_err());
        // The drop guard must have released the epoch during unwind.
        drop(slab.claim(0));
    }

    #[test]
    fn claimed_increments_never_lose_updates() {
        // The no-lost-update core property at the word level: N threads
        // each perform M read-modify-write cycles on the same entity under
        // its claim; every increment must survive.
        let slab = std::sync::Arc::new(fresh_slab(4, 1));
        slab.store_entity(0, &[0.0; 4], ErrorTracker::from_error(0.0));
        let threads = 4;
        let increments = 500;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let slab = std::sync::Arc::clone(&slab);
            handles.push(std::thread::spawn(move || {
                let mut buf = [0.0; 4];
                for _ in 0..increments {
                    let _claim = slab.claim(0);
                    let tracker = slab.load_entity(0, &mut buf);
                    for v in &mut buf {
                        *v += 1.0;
                    }
                    slab.store_entity(0, &buf, tracker);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let mut buf = [0.0; 4];
        slab.load_entity(0, &mut buf);
        let expected = (threads * increments) as f64;
        assert_eq!(buf, [expected; 4]);
    }

    proptest! {
        // Satellite property: no torn reads under concurrent readers.
        // Writers keep every component of an entity equal to a single value
        // (claim → write all lanes to v); seqlock readers must never observe
        // a mixed-value vector, at any dimension.
        #[test]
        fn concurrent_readers_never_observe_torn_entities(
            dim in 1usize..=16,
            writer_rounds in 20usize..80,
        ) {
            let slab = std::sync::Arc::new(fresh_slab(dim, 2));
            slab.store_entity(0, &vec![0.0; dim], ErrorTracker::from_error(0.0));
            let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));

            let writer = {
                let slab = std::sync::Arc::clone(&slab);
                std::thread::spawn(move || {
                    for round in 1..=writer_rounds {
                        let _claim = slab.claim(0);
                        let value = round as f64;
                        slab.store_entity(
                            0,
                            &vec![value; dim],
                            ErrorTracker::from_error(value),
                        );
                    }
                })
            };
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let slab = std::sync::Arc::clone(&slab);
                    let stop = std::sync::Arc::clone(&stop);
                    std::thread::spawn(move || {
                        let mut buf = vec![0.0; dim];
                        let mut observed = 0usize;
                        // At least one read even if the writer already
                        // finished (single-core schedulers often run the
                        // whole writer before a reader gets a slice).
                        loop {
                            let tracker = slab.read_consistent(0, &mut buf);
                            // A consistent snapshot has all lanes equal to
                            // the tracker's value — any mix is a torn read.
                            for &lane in &buf {
                                assert_eq!(
                                    lane.to_bits(),
                                    buf[0].to_bits(),
                                    "torn vector: {buf:?}"
                                );
                            }
                            assert_eq!(tracker.error().to_bits(), buf[0].to_bits());
                            observed += 1;
                            if stop.load(std::sync::atomic::Ordering::Acquire) {
                                break;
                            }
                        }
                        observed
                    })
                })
                .collect();
            writer.join().unwrap();
            stop.store(true, std::sync::atomic::Ordering::Release);
            for reader in readers {
                let observed = reader.join().unwrap();
                prop_assert!(observed > 0, "reader made no observations");
            }
            let mut buf = vec![0.0; dim];
            slab.load_entity(0, &mut buf);
            prop_assert_eq!(buf[0], writer_rounds as f64);
        }
    }
}
