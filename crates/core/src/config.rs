//! AMF hyperparameters (the paper's Section V-C settings as defaults).

use crate::AmfError;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Which per-sample loss the SGD updates minimize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossKind {
    /// The paper's relative loss `((r − g)/r)²` (Eq. 6) — errors on small QoS
    /// values matter as much as errors on large ones.
    Relative,
    /// Plain squared loss `(r − g)²` (Eq. 5), kept for the loss ablation —
    /// this is what conventional MF minimizes.
    Squared,
}

/// All AMF hyperparameters.
///
/// Defaults follow the paper's experiment section: `d = 10`,
/// `λ_u = λ_s = 0.001`, `β = 0.3`, `η = 0.8`, `α = −0.007` for response time
/// (−0.05 for throughput), and a 15-minute expiry interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AmfConfig {
    /// Latent dimensionality `d`.
    pub dimension: usize,
    /// Regularization `λ_u` for user feature vectors.
    pub lambda_user: f64,
    /// Regularization `λ_s` for service feature vectors.
    pub lambda_service: f64,
    /// EMA weight `β` for the error trackers (Eq. 13–14).
    pub beta: f64,
    /// Learning rate `η`.
    pub learning_rate: f64,
    /// Box–Cox parameter `α`.
    pub alpha: f64,
    /// Minimum raw QoS value `R_min`.
    pub r_min: f64,
    /// Maximum raw QoS value `R_max`.
    pub r_max: f64,
    /// Observations older than this are expired and dropped from replay
    /// (Algorithm 1 line 12; paper uses 15 minutes).
    pub expiry: Duration,
    /// Std-dev of the random feature-vector initialization.
    pub init_sigma: f64,
    /// Whether adaptive weights (Eq. 12–17) are applied. Disabling reduces
    /// AMF to plain online MF with a fixed step — the adaptive-weights
    /// ablation.
    pub adaptive_weights: bool,
    /// Loss variant (relative per the paper, or squared for the ablation).
    pub loss: LossKind,
    /// RNG seed for feature initialization and replay sampling.
    pub seed: u64,
}

impl AmfConfig {
    /// The paper's response-time configuration (`α = −0.007`, RT ∈ [0, 20] s).
    pub fn response_time() -> Self {
        Self {
            dimension: 10,
            lambda_user: 0.001,
            lambda_service: 0.001,
            beta: 0.3,
            learning_rate: 0.8,
            alpha: -0.007,
            r_min: 0.0,
            r_max: 20.0,
            expiry: Duration::from_secs(15 * 60),
            init_sigma: 0.1,
            adaptive_weights: true,
            loss: LossKind::Relative,
            seed: 42,
        }
    }

    /// The paper's throughput configuration (`α = −0.05`, TP ∈ [0, 7000] kbps).
    pub fn throughput() -> Self {
        Self {
            alpha: -0.05,
            r_max: 7000.0,
            ..Self::response_time()
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with `α = 1` — the "AMF(α=1)" configuration of Fig. 11
    /// where the Box–Cox transform degenerates to linear normalization.
    pub fn with_linear_transform(mut self) -> Self {
        self.alpha = 1.0;
        self
    }

    /// Validates all hyperparameters.
    ///
    /// # Errors
    ///
    /// Returns [`AmfError::InvalidConfig`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), AmfError> {
        let bad = |msg: &str| Err(AmfError::InvalidConfig(msg.to_string()));
        if self.dimension == 0 {
            return bad("dimension must be positive");
        }
        if self.lambda_user.is_nan()
            || self.lambda_user < 0.0
            || self.lambda_service.is_nan()
            || self.lambda_service < 0.0
        {
            return bad("regularization must be non-negative");
        }
        if !(0.0..=1.0).contains(&self.beta) {
            return bad("beta must be in [0, 1]");
        }
        if self.learning_rate.is_nan() || self.learning_rate <= 0.0 {
            return bad("learning_rate must be positive");
        }
        if !self.alpha.is_finite() {
            return bad("alpha must be finite");
        }
        if self.r_min.is_nan()
            || self.r_max.is_nan()
            || self.r_min < 0.0
            || self.r_min >= self.r_max
        {
            return bad("QoS range must satisfy 0 <= r_min < r_max");
        }
        if self.expiry.is_zero() {
            return bad("expiry must be positive");
        }
        if self.init_sigma.is_nan() || self.init_sigma <= 0.0 {
            return bad("init_sigma must be positive");
        }
        Ok(())
    }
}

impl Default for AmfConfig {
    /// The paper's response-time configuration.
    fn default() -> Self {
        Self::response_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = AmfConfig::response_time();
        assert_eq!(c.dimension, 10);
        assert_eq!(c.lambda_user, 0.001);
        assert_eq!(c.beta, 0.3);
        assert_eq!(c.learning_rate, 0.8);
        assert_eq!(c.alpha, -0.007);
        assert_eq!(c.expiry, Duration::from_secs(900));
        c.validate().unwrap();
    }

    #[test]
    fn throughput_overrides() {
        let c = AmfConfig::throughput();
        assert_eq!(c.alpha, -0.05);
        assert_eq!(c.r_max, 7000.0);
        assert_eq!(c.dimension, 10);
        c.validate().unwrap();
    }

    #[test]
    fn linear_transform_sets_alpha_one() {
        let c = AmfConfig::response_time().with_linear_transform();
        assert_eq!(c.alpha, 1.0);
    }

    #[test]
    fn default_is_response_time() {
        assert_eq!(AmfConfig::default(), AmfConfig::response_time());
    }

    #[test]
    fn validation_rejects_bad_values() {
        type Mutation = Box<dyn Fn(&mut AmfConfig)>;
        let cases: Vec<Mutation> = vec![
            Box::new(|c| c.dimension = 0),
            Box::new(|c| c.lambda_user = -1.0),
            Box::new(|c| c.lambda_service = f64::NAN),
            Box::new(|c| c.beta = 1.5),
            Box::new(|c| c.learning_rate = 0.0),
            Box::new(|c| c.alpha = f64::INFINITY),
            Box::new(|c| c.r_min = 25.0),
            Box::new(|c| c.expiry = Duration::ZERO),
            Box::new(|c| c.init_sigma = 0.0),
        ];
        for mutate in cases {
            let mut c = AmfConfig::response_time();
            mutate(&mut c);
            assert!(c.validate().is_err(), "mutation should invalidate: {c:?}");
        }
    }

    #[test]
    fn with_seed() {
        assert_eq!(AmfConfig::response_time().with_seed(7).seed, 7);
    }
}
