//! Cached handles into the process-global `qos-obs` registry for amf-core's
//! static instrumentation (model, guard, engine).
//!
//! Each subsystem registers its metrics exactly once (first touch, behind a
//! `OnceLock`) and records through the cached `Arc` handles afterwards —
//! plain relaxed atomics, no locks, no allocation. The per-sample `observe`
//! path additionally *samples* its timing (one in [`OBSERVE_SAMPLE_MASK`]+1
//! calls) because two `Instant::now` reads per sample would cost more than
//! the ~70 ns update they'd be measuring; see DESIGN.md §11 for the overhead
//! accounting.

use qos_obs::{Counter, Gauge, Histogram};
use std::sync::{Arc, OnceLock};

use crate::guard::RejectReason;

/// `observe` timing fires when `updates & MASK == 0`: every 256th sample.
/// Must stay ≤ the warm-up budget of `tests/alloc_free_hot_path.rs` (1000
/// samples) so the one-time registration allocation lands in warm-up.
pub(crate) const OBSERVE_SAMPLE_MASK: u64 = 0xFF;

/// Windowed-accuracy gauges refresh when `updates & MASK == 0`: every
/// 4096th sample. The refresh runs a median select over the 512-sample
/// window (~1.5 µs), so it must be rarer than the timing sample above to
/// stay inside the hot path's 5% overhead budget; serving-layer snapshots
/// refresh the gauges directly so scrapes never see stale values.
pub(crate) const ACCURACY_GAUGE_MASK: u64 = 0xFFF;

/// Model-side metrics (sequential `observe` path).
pub(crate) struct ModelMetrics {
    /// Latency of one sampled `observe` call, ns.
    pub observe_ns: Arc<Histogram>,
    /// How many observes were timing-sampled (total observes ≈ this × 256).
    pub observes_sampled: Arc<Counter>,
    /// EMA error tracker of the last sampled user (paper's `e_u`, Eq. 12).
    pub e_u: Arc<Gauge>,
    /// EMA error tracker of the last sampled service (`e_s`, Eq. 13).
    pub e_s: Arc<Gauge>,
    /// Windowed median relative error over the model's accuracy window
    /// (refreshed every [`ACCURACY_GAUGE_MASK`]+1 updates and at snapshot).
    pub mre_w: Arc<Gauge>,
    /// Windowed NMAE over the same window, same refresh cadence.
    pub nmae_w: Arc<Gauge>,
    /// 1.0 while the drift sentinel considers the error distribution
    /// stable, 0.0 after a recent alarm.
    pub drift_healthy: Arc<Gauge>,
    /// User-side Page–Hinkley alarms.
    pub drift_alarms_user: Arc<Counter>,
    /// Service-side Page–Hinkley alarms.
    pub drift_alarms_service: Arc<Counter>,
}

pub(crate) fn model_metrics() -> &'static ModelMetrics {
    static METRICS: OnceLock<ModelMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = qos_obs::global();
        ModelMetrics {
            observe_ns: reg.histogram("model.observe_ns"),
            observes_sampled: reg.counter("model.observes_sampled"),
            e_u: reg.gauge("model.e_u"),
            e_s: reg.gauge("model.e_s"),
            mre_w: reg.gauge("model.mre_w"),
            nmae_w: reg.gauge("model.nmae_w"),
            drift_healthy: reg.gauge("model.drift_healthy"),
            drift_alarms_user: reg.counter_labeled("model.drift_alarms", "user"),
            drift_alarms_service: reg.counter_labeled("model.drift_alarms", "service"),
        }
    })
}

/// Guard-side admission verdict counters (one per [`RejectReason`] plus
/// accepted), mirroring `GuardStats` onto the global registry so a process
/// snapshot sees admission health without reaching into a service instance.
pub(crate) struct GuardMetrics {
    pub admitted: Arc<Counter>,
    not_finite: Arc<Counter>,
    non_positive: Arc<Counter>,
    out_of_range: Arc<Counter>,
    outlier: Arc<Counter>,
}

impl GuardMetrics {
    /// The counter for one reject verdict.
    pub fn rejected(&self, reason: RejectReason) -> &Counter {
        match reason {
            RejectReason::NotFinite => &self.not_finite,
            RejectReason::NonPositive => &self.non_positive,
            RejectReason::OutOfRange => &self.out_of_range,
            RejectReason::Outlier => &self.outlier,
        }
    }
}

pub(crate) fn guard_metrics() -> &'static GuardMetrics {
    static METRICS: OnceLock<GuardMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = qos_obs::global();
        GuardMetrics {
            admitted: reg.counter("guard.admitted"),
            not_finite: reg.counter_labeled("guard.rejected", RejectReason::NotFinite.label()),
            non_positive: reg.counter_labeled("guard.rejected", RejectReason::NonPositive.label()),
            out_of_range: reg.counter_labeled("guard.rejected", RejectReason::OutOfRange.label()),
            outlier: reg.counter_labeled("guard.rejected", RejectReason::Outlier.label()),
        }
    })
}

/// Engine-side dispatcher/worker counters. Dispatch-side increments happen
/// per *chunk* (already amortized); worker-side chunk timing costs two
/// `Instant::now` reads per chunk of up to `chunk_size` samples.
pub(crate) struct EngineMetrics {
    pub chunks_dispatched: Arc<Counter>,
    pub jobs_dispatched: Arc<Counter>,
    pub queue_full: Arc<Counter>,
    pub worker_panics: Arc<Counter>,
    pub respawns: Arc<Counter>,
    pub jobs_replayed: Arc<Counter>,
    pub samples_shed: Arc<Counter>,
    pub samples_lost: Arc<Counter>,
    pub workers_abandoned: Arc<Counter>,
    /// Chunks parked dispatcher-side waiting for worker queues (set each
    /// pump — a live queue-depth signal).
    pub outbox_depth: Arc<Gauge>,
    /// High-watermark of `outbox_depth` over the engine's lifetime.
    pub outbox_depth_hwm: Arc<Gauge>,
    /// Load imbalance across shards: max per-shard applied jobs divided by
    /// the mean (1.0 = perfectly balanced; refreshed each pump).
    pub shard_imbalance: Arc<Gauge>,
}

pub(crate) fn engine_metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = qos_obs::global();
        EngineMetrics {
            chunks_dispatched: reg.counter("engine.chunks_dispatched"),
            jobs_dispatched: reg.counter("engine.jobs_dispatched"),
            queue_full: reg.counter("engine.queue_full"),
            worker_panics: reg.counter("engine.worker_panics"),
            respawns: reg.counter("engine.respawns"),
            jobs_replayed: reg.counter("engine.jobs_replayed"),
            samples_shed: reg.counter("engine.samples_shed"),
            samples_lost: reg.counter("engine.samples_lost"),
            workers_abandoned: reg.counter("engine.workers_abandoned"),
            outbox_depth: reg.gauge("engine.outbox_depth"),
            outbox_depth_hwm: reg.gauge("engine.outbox_depth_hwm"),
            shard_imbalance: reg.gauge("engine.shard_imbalance"),
        }
    })
}
