//! The AMF model state: feature vectors, error trackers, and the data
//! transform.

use crate::config::AmfConfig;
use crate::online::{sgd_step, UpdateOutcome};
use crate::weights::ErrorTracker;
use crate::AmfError;
use qos_linalg::random::normal_vec;
use qos_transform::QosTransform;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One user's or service's state: its latent feature vector and its EMA
/// error tracker.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct EntityState {
    pub(crate) factors: Vec<f64>,
    pub(crate) tracker: ErrorTracker,
}

/// Which side of the factorization an entity belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EntityKind {
    /// A user (row of the QoS matrix).
    User,
    /// A service (column of the QoS matrix).
    Service,
}

/// Seed for one entity's feature-vector initialization.
///
/// Derived from the model seed and the entity's `(kind, id)` alone — *not*
/// from registration order — so that any two components that materialize the
/// same entity (the sequential [`AmfModel`], a [`crate::engine::ShardedEngine`]
/// worker, a restored checkpoint registering fresh ids) produce bit-identical
/// factors. This is what makes sequential-vs-sharded parity well defined.
pub(crate) fn entity_seed(model_seed: u64, kind: EntityKind, id: usize) -> u64 {
    let tag: u64 = match kind {
        EntityKind::User => 0x75,    // 'u'
        EntityKind::Service => 0x73, // 's'
    };
    // SplitMix64-style finalizer over the packed inputs.
    let mut z = model_seed
        .wrapping_add(tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add((id as u64).wrapping_mul(0xD134_2543_DE82_EF95));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl EntityState {
    /// Deterministic fresh state for `(kind, id)` under `config`.
    pub(crate) fn fresh(config: &AmfConfig, kind: EntityKind, id: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(entity_seed(config.seed, kind, id));
        Self {
            factors: normal_vec(&mut rng, config.dimension, 0.0, config.init_sigma),
            tracker: ErrorTracker::new(),
        }
    }
}

/// The online AMF model (paper Section IV-C).
///
/// Users and services are identified by dense indices and registered lazily:
/// the first observation mentioning an id initializes its feature vector
/// randomly and its error tracker at the maximum (Algorithm 1 lines 5–7) —
/// this is how the model "scales to new users and services without
/// retraining the whole model".
///
/// # Examples
///
/// ```
/// use amf_core::{AmfConfig, AmfModel};
///
/// let mut model = AmfModel::new(AmfConfig::response_time())?;
/// model.observe(0, 0, 1.4);
/// model.observe(1, 0, 1.6);
/// assert_eq!(model.num_users(), 2);
/// assert_eq!(model.num_services(), 1);
/// assert!(model.predict(0, 0).is_some());
/// assert!(model.predict(5, 0).is_none()); // unknown user
/// # Ok::<(), amf_core::AmfError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AmfModel {
    config: AmfConfig,
    transform: QosTransform,
    users: Vec<EntityState>,
    services: Vec<EntityState>,
    updates: u64,
}

impl AmfModel {
    /// Creates an empty model.
    ///
    /// # Errors
    ///
    /// Returns [`AmfError::InvalidConfig`] for invalid hyperparameters or
    /// [`AmfError::Transform`] when the transform cannot be built.
    pub fn new(config: AmfConfig) -> Result<Self, AmfError> {
        config.validate()?;
        let transform = QosTransform::new(config.alpha, config.r_min, config.r_max)?;
        Ok(Self {
            transform,
            users: Vec::new(),
            services: Vec::new(),
            updates: 0,
            config,
        })
    }

    /// The model's hyperparameters.
    pub fn config(&self) -> &AmfConfig {
        &self.config
    }

    /// The data transform (forward/backward maps between raw QoS and the
    /// normalized training domain).
    pub fn transform(&self) -> &QosTransform {
        &self.transform
    }

    /// Number of registered users.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Number of registered services.
    pub fn num_services(&self) -> usize {
        self.services.len()
    }

    /// Total number of online updates applied.
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// Registers users up to and including `user` (no-op when present).
    pub fn ensure_user(&mut self, user: usize) {
        while self.users.len() <= user {
            let e = EntityState::fresh(&self.config, EntityKind::User, self.users.len());
            self.users.push(e);
        }
    }

    /// Registers services up to and including `service` (no-op when present).
    pub fn ensure_service(&mut self, service: usize) {
        while self.services.len() <= service {
            let e = EntityState::fresh(&self.config, EntityKind::Service, self.services.len());
            self.services.push(e);
        }
    }

    /// Registers a brand-new user and returns its id.
    pub fn add_user(&mut self) -> usize {
        let id = self.users.len();
        self.ensure_user(id);
        id
    }

    /// Registers a brand-new service and returns its id.
    pub fn add_service(&mut self) -> usize {
        let id = self.services.len();
        self.ensure_service(id);
        id
    }

    /// Whether `user` is registered.
    pub fn has_user(&self, user: usize) -> bool {
        user < self.users.len()
    }

    /// Whether `service` is registered.
    pub fn has_service(&self, service: usize) -> bool {
        service < self.services.len()
    }

    /// Applies one online update for the observed raw QoS value `raw` between
    /// `user` and `service` (the `OnlineUpdate` function of Algorithm 1).
    /// Unknown ids are registered first.
    pub fn observe(&mut self, user: usize, service: usize, raw: f64) -> UpdateOutcome {
        self.ensure_user(user);
        self.ensure_service(service);
        let outcome = apply_observation(
            &self.config,
            &self.transform,
            &mut self.users[user],
            &mut self.services[service],
            raw,
        );
        self.updates += 1;
        outcome
    }

    /// Predicts the raw QoS value for `(user, service)`, or `None` when
    /// either id has never been observed (the model has no feature vector
    /// for it).
    pub fn predict(&self, user: usize, service: usize) -> Option<f64> {
        let u = self.users.get(user)?;
        let s = self.services.get(service)?;
        let x = qos_linalg::vector::dot(&u.factors, &s.factors);
        Some(self.transform.prediction_to_raw(x))
    }

    /// Like [`AmfModel::predict`] but substituting `fallback` for unknown ids.
    pub fn predict_or(&self, user: usize, service: usize, fallback: f64) -> f64 {
        self.predict(user, service).unwrap_or(fallback)
    }

    /// Current relative error the model would incur on `(user, service,
    /// raw)`, *without* updating anything — used for convergence monitoring.
    pub fn evaluate_sample(&self, user: usize, service: usize, raw: f64) -> Option<f64> {
        let u = self.users.get(user)?;
        let s = self.services.get(service)?;
        let r = self.transform.to_normalized(raw);
        let g = qos_transform::sigmoid(qos_linalg::vector::dot(&u.factors, &s.factors));
        Some(crate::weights::sample_relative_error(r, g))
    }

    /// EMA error of a user, or `None` when unregistered.
    pub fn user_error(&self, user: usize) -> Option<f64> {
        self.users.get(user).map(|e| e.tracker.error())
    }

    /// EMA error of a service, or `None` when unregistered.
    pub fn service_error(&self, service: usize) -> Option<f64> {
        self.services.get(service).map(|e| e.tracker.error())
    }

    /// A user's feature vector, or `None` when unregistered.
    pub fn user_factors(&self, user: usize) -> Option<&[f64]> {
        self.users.get(user).map(|e| e.factors.as_slice())
    }

    /// A service's feature vector, or `None` when unregistered.
    pub fn service_factors(&self, service: usize) -> Option<&[f64]> {
        self.services.get(service).map(|e| e.factors.as_slice())
    }

    /// Restores entity state from persisted data (see [`crate::persistence`]).
    pub(crate) fn restore(
        config: AmfConfig,
        users: Vec<EntityState>,
        services: Vec<EntityState>,
        updates: u64,
    ) -> Result<Self, AmfError> {
        let mut model = Self::new(config)?;
        model.users = users;
        model.services = services;
        model.updates = updates;
        Ok(model)
    }

    /// Reassembles a model from parts whose config/transform pair was already
    /// validated together (the engine's snapshot path) — infallible, so
    /// assembling a snapshot can never panic or error at runtime.
    pub(crate) fn restore_parts(
        config: AmfConfig,
        transform: QosTransform,
        users: Vec<EntityState>,
        services: Vec<EntityState>,
        updates: u64,
    ) -> Self {
        Self {
            config,
            transform,
            users,
            services,
            updates,
        }
    }

    pub(crate) fn entities(&self) -> (&[EntityState], &[EntityState]) {
        (&self.users, &self.services)
    }

    pub(crate) fn into_entities(self) -> (Vec<EntityState>, Vec<EntityState>) {
        (self.users, self.services)
    }
}

/// Applies one full online update — transform, SGD step (Eq. 16–17), and the
/// two tracker EMA updates (Algorithm 1 lines 21–23) — to a user/service
/// state pair.
///
/// This is the *only* per-sample mutation in the crate: [`AmfModel::observe`]
/// and every [`crate::engine::ShardedEngine`] worker funnel through it, which
/// is what makes sequential and sharded execution comparable update-for-update.
pub(crate) fn apply_observation(
    config: &AmfConfig,
    transform: &QosTransform,
    user: &mut EntityState,
    service: &mut EntityState,
    raw: f64,
) -> UpdateOutcome {
    let r = transform.to_normalized(raw);
    let e_user = user.tracker.error();
    let e_service = service.tracker.error();
    let outcome = sgd_step(
        config,
        &mut user.factors,
        &mut service.factors,
        r,
        e_user,
        e_service,
    );
    // Algorithm 1 lines 22–23: update the trackers with this sample's error,
    // weighted by each side's adaptive weight.
    user.tracker
        .update(outcome.sample_error, config.beta, outcome.w_user);
    service
        .tracker
        .update(outcome.sample_error, config.beta, outcome.w_service);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AmfModel {
        AmfModel::new(AmfConfig::response_time()).unwrap()
    }

    #[test]
    fn starts_empty() {
        let m = model();
        assert_eq!(m.num_users(), 0);
        assert_eq!(m.num_services(), 0);
        assert_eq!(m.update_count(), 0);
        assert_eq!(m.predict(0, 0), None);
    }

    #[test]
    fn observe_registers_lazily() {
        let mut m = model();
        m.observe(3, 7, 1.5);
        assert_eq!(m.num_users(), 4);
        assert_eq!(m.num_services(), 8);
        assert!(m.has_user(3));
        assert!(!m.has_user(4));
        assert_eq!(m.update_count(), 1);
    }

    #[test]
    fn new_entities_start_maximally_uncertain() {
        let mut m = model();
        m.ensure_user(0);
        assert_eq!(m.user_error(0), Some(1.0));
        m.ensure_service(2);
        assert_eq!(m.service_error(2), Some(1.0));
        assert_eq!(m.user_error(99), None);
    }

    #[test]
    fn repeated_observation_converges_to_value() {
        let mut m = model();
        for _ in 0..300 {
            m.observe(0, 0, 2.5);
        }
        let pred = m.predict(0, 0).unwrap();
        assert!(
            (pred - 2.5).abs() / 2.5 < 0.1,
            "predicted {pred}, expected ~2.5"
        );
        // Error tracker should have dropped far below its initial 1.0.
        assert!(m.user_error(0).unwrap() < 0.1);
    }

    #[test]
    fn learns_low_rank_structure_across_pairs() {
        // Ground truth: rank-1 in the transformed domain. After training on
        // most pairs, a held-out pair should be predicted reasonably.
        let mut m = model();
        let user_base = [0.5, 1.0, 2.0, 4.0];
        let service_mult = [1.0, 1.5, 0.7, 2.0];
        let truth = |u: usize, s: usize| user_base[u] * service_mult[s];
        let mut rng_order: Vec<(usize, usize)> = (0..4)
            .flat_map(|u| (0..4).map(move |s| (u, s)))
            .filter(|&(u, s)| !(u == 3 && s == 3))
            .collect();
        for pass in 0..400 {
            // cheap deterministic shuffle
            rng_order.rotate_left(pass % 15);
            for &(u, s) in &rng_order {
                m.observe(u, s, truth(u, s));
            }
        }
        let pred = m.predict(3, 3).unwrap();
        let actual = truth(3, 3);
        let rel = (pred - actual).abs() / actual;
        assert!(rel < 0.5, "held-out prediction {pred} vs {actual}");
    }

    #[test]
    fn predict_or_fallback() {
        let m = model();
        assert_eq!(m.predict_or(0, 0, 9.9), 9.9);
    }

    #[test]
    fn evaluate_sample_does_not_mutate() {
        let mut m = model();
        m.observe(0, 0, 1.0);
        let before = m.user_factors(0).unwrap().to_vec();
        let err = m.evaluate_sample(0, 0, 1.0).unwrap();
        assert!(err.is_finite());
        assert_eq!(m.user_factors(0).unwrap(), before.as_slice());
        assert_eq!(m.evaluate_sample(9, 0, 1.0), None);
    }

    #[test]
    fn add_user_and_service_return_sequential_ids() {
        let mut m = model();
        assert_eq!(m.add_user(), 0);
        assert_eq!(m.add_user(), 1);
        assert_eq!(m.add_service(), 0);
        assert_eq!(m.user_factors(1).unwrap().len(), 10);
    }

    #[test]
    fn initializations_are_random_but_seeded() {
        let mut a = model();
        let mut b = model();
        a.ensure_user(1);
        b.ensure_user(1);
        assert_eq!(a.user_factors(0), b.user_factors(0));
        assert_ne!(a.user_factors(0), a.user_factors(1));

        let mut c = AmfModel::new(AmfConfig::response_time().with_seed(7)).unwrap();
        c.ensure_user(0);
        assert_ne!(a.user_factors(0), c.user_factors(0));
    }

    #[test]
    fn predictions_stay_in_configured_range() {
        let mut m = model();
        for i in 0..50 {
            m.observe(i % 3, i % 5, 0.1 + (i % 7) as f64);
        }
        for u in 0..3 {
            for s in 0..5 {
                let p = m.predict(u, s).unwrap();
                assert!((0.0..=20.0).contains(&p), "prediction {p} out of range");
            }
        }
    }

    #[test]
    fn invalid_config_rejected() {
        let mut bad = AmfConfig::response_time();
        bad.dimension = 0;
        assert!(matches!(
            AmfModel::new(bad),
            Err(AmfError::InvalidConfig(_))
        ));
    }

    #[test]
    fn throughput_config_works() {
        let mut m = AmfModel::new(AmfConfig::throughput()).unwrap();
        for _ in 0..200 {
            m.observe(0, 0, 150.0);
        }
        let pred = m.predict(0, 0).unwrap();
        assert!(
            (pred - 150.0).abs() / 150.0 < 0.2,
            "predicted {pred}, expected ~150"
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// No observation sequence — whatever its values, including ones
            /// outside the configured range — can drive predictions outside
            /// [R_min floor, R_max], produce non-finite factors, or push an
            /// error tracker out of [0, ∞).
            #[test]
            fn model_invariants_hold_under_arbitrary_streams(
                samples in proptest::collection::vec(
                    (0usize..6, 0usize..8, -5.0..50.0f64),
                    1..120
                )
            ) {
                let mut m = AmfModel::new(AmfConfig::response_time()).unwrap();
                for (u, s, v) in samples {
                    let outcome = m.observe(u, s, v);
                    prop_assert!(outcome.sample_error.is_finite());
                    prop_assert!(outcome.sample_error >= 0.0);
                    prop_assert!((0.0..=1.0).contains(&outcome.w_user));
                    prop_assert!((outcome.w_user + outcome.w_service - 1.0).abs() < 1e-9);
                }
                for u in 0..m.num_users() {
                    prop_assert!(m.user_error(u).unwrap() >= 0.0);
                    prop_assert!(m.user_factors(u).unwrap().iter().all(|f| f.is_finite()));
                    for s in 0..m.num_services() {
                        let p = m.predict(u, s).unwrap();
                        prop_assert!(
                            (0.0..=20.0).contains(&p),
                            "prediction {p} escaped the configured range"
                        );
                    }
                }
            }

            /// Update count equals the number of observations, and entity
            /// counts equal the largest ids seen plus one.
            #[test]
            fn bookkeeping_is_exact(
                samples in proptest::collection::vec(
                    (0usize..10, 0usize..10, 0.1..10.0f64),
                    1..60
                )
            ) {
                let mut m = AmfModel::new(AmfConfig::response_time()).unwrap();
                let max_u = samples.iter().map(|s| s.0).max().unwrap();
                let max_s = samples.iter().map(|s| s.1).max().unwrap();
                let n = samples.len() as u64;
                for (u, s, v) in samples {
                    m.observe(u, s, v);
                }
                prop_assert_eq!(m.update_count(), n);
                prop_assert_eq!(m.num_users(), max_u + 1);
                prop_assert_eq!(m.num_services(), max_s + 1);
            }

            /// Persistence round-trips arbitrary trained models exactly.
            #[test]
            fn persistence_roundtrip_exact(
                samples in proptest::collection::vec(
                    (0usize..5, 0usize..5, 0.1..19.0f64),
                    1..40
                ),
                seed in 0u64..1000
            ) {
                let mut m = AmfModel::new(AmfConfig::response_time().with_seed(seed)).unwrap();
                for (u, s, v) in samples {
                    m.observe(u, s, v);
                }
                let mut buffer = Vec::new();
                crate::persistence::save(&m, &mut buffer).unwrap();
                let restored = crate::persistence::load(&buffer[..]).unwrap();
                for u in 0..m.num_users() {
                    for s in 0..m.num_services() {
                        let a = m.predict(u, s).unwrap();
                        let b = restored.predict(u, s).unwrap();
                        prop_assert!((a - b).abs() < 1e-9);
                    }
                }
            }
        }
    }
}
