//! The AMF model state: feature vectors, error trackers, and the data
//! transform.

use crate::config::AmfConfig;
use crate::online::{sgd_step, UpdateOutcome};
use crate::stream::{AccuracyWindow, DriftSentinel, WindowedAccuracy};
use crate::weights::ErrorTracker;
use crate::AmfError;
use qos_linalg::random::normal_vec;
use qos_transform::QosTransform;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One user's or service's state: its latent feature vector and its EMA
/// error tracker.
///
/// This is the *interchange* representation (persistence load, entity
/// initialization). Live storage is the contiguous [`FactorSlab`]; an
/// `EntityState` is only materialized at the edges.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct EntityState {
    pub(crate) factors: Vec<f64>,
    pub(crate) tracker: ErrorTracker,
}

/// Contiguous arena for one side's entity state: entity `i`'s feature vector
/// occupies `factors[i*dim..(i+1)*dim]` and its EMA tracker `trackers[i]`.
///
/// Replaces the former `Vec<EntityState>` (one heap `Vec<f64>` per entity):
/// the per-sample hot path loses a dependent pointer chase per entity, and
/// the batch ranking kernel can stream one user vector against the whole
/// service side as a single flat slice. `dim` is fixed at construction —
/// the model's dimension never changes after [`AmfModel::new`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FactorSlab {
    dim: usize,
    factors: Vec<f64>,
    trackers: Vec<ErrorTracker>,
}

impl FactorSlab {
    pub(crate) fn new(dim: usize) -> Self {
        Self {
            dim,
            factors: Vec::new(),
            trackers: Vec::new(),
        }
    }

    pub(crate) fn with_capacity(dim: usize, entities: usize) -> Self {
        Self {
            dim,
            factors: Vec::with_capacity(dim * entities),
            trackers: Vec::with_capacity(entities),
        }
    }

    /// Number of entities (not floats) stored.
    pub(crate) fn len(&self) -> usize {
        self.trackers.len()
    }

    /// The whole arena as one flat slice — the ranking kernel's input.
    pub(crate) fn flat(&self) -> &[f64] {
        &self.factors
    }

    pub(crate) fn factors(&self, i: usize) -> &[f64] {
        &self.factors[i * self.dim..(i + 1) * self.dim]
    }

    /// `factors(i)` for a possibly-unregistered id.
    pub(crate) fn try_factors(&self, i: usize) -> Option<&[f64]> {
        if i < self.len() {
            Some(self.factors(i))
        } else {
            None
        }
    }

    pub(crate) fn tracker(&self, i: usize) -> &ErrorTracker {
        &self.trackers[i]
    }

    /// Simultaneous mutable access to one entity's factors and tracker
    /// (distinct backing vectors, so the split borrow is free).
    pub(crate) fn entity_mut(&mut self, i: usize) -> (&mut [f64], &mut ErrorTracker) {
        (
            &mut self.factors[i * self.dim..(i + 1) * self.dim],
            &mut self.trackers[i],
        )
    }

    /// Appends an entity by copying a `dim`-length factor slice.
    pub(crate) fn push_copied(&mut self, factors: &[f64], tracker: ErrorTracker) {
        debug_assert_eq!(factors.len(), self.dim);
        self.factors.extend_from_slice(factors);
        self.trackers.push(tracker);
    }

    pub(crate) fn push_state(&mut self, state: EntityState) {
        self.push_copied(&state.factors, state.tracker);
    }

    /// Appends the deterministic fresh state for `(kind, id)`.
    pub(crate) fn push_fresh(&mut self, config: &AmfConfig, kind: EntityKind, id: usize) {
        self.push_state(EntityState::fresh(config, kind, id));
    }

    pub(crate) fn from_states(dim: usize, states: Vec<EntityState>) -> Self {
        let mut slab = Self::with_capacity(dim, states.len());
        for state in states {
            slab.push_state(state);
        }
        slab
    }
}

/// Which side of the factorization an entity belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EntityKind {
    /// A user (row of the QoS matrix).
    User,
    /// A service (column of the QoS matrix).
    Service,
}

/// Seed for one entity's feature-vector initialization.
///
/// Derived from the model seed and the entity's `(kind, id)` alone — *not*
/// from registration order — so that any two components that materialize the
/// same entity (the sequential [`AmfModel`], a [`crate::engine::ShardedEngine`]
/// worker, a restored checkpoint registering fresh ids) produce bit-identical
/// factors. This is what makes sequential-vs-sharded parity well defined.
pub(crate) fn entity_seed(model_seed: u64, kind: EntityKind, id: usize) -> u64 {
    let tag: u64 = match kind {
        EntityKind::User => 0x75,    // 'u'
        EntityKind::Service => 0x73, // 's'
    };
    // SplitMix64-style finalizer over the packed inputs.
    let mut z = model_seed
        .wrapping_add(tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add((id as u64).wrapping_mul(0xD134_2543_DE82_EF95));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl EntityState {
    /// Deterministic fresh state for `(kind, id)` under `config`.
    pub(crate) fn fresh(config: &AmfConfig, kind: EntityKind, id: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(entity_seed(config.seed, kind, id));
        Self {
            factors: normal_vec(&mut rng, config.dimension, 0.0, config.init_sigma),
            tracker: ErrorTracker::new(),
        }
    }
}

/// The online AMF model (paper Section IV-C).
///
/// Users and services are identified by dense indices and registered lazily:
/// the first observation mentioning an id initializes its feature vector
/// randomly and its error tracker at the maximum (Algorithm 1 lines 5–7) —
/// this is how the model "scales to new users and services without
/// retraining the whole model".
///
/// # Examples
///
/// ```
/// use amf_core::{AmfConfig, AmfModel};
///
/// let mut model = AmfModel::new(AmfConfig::response_time())?;
/// model.observe(0, 0, 1.4);
/// model.observe(1, 0, 1.6);
/// assert_eq!(model.num_users(), 2);
/// assert_eq!(model.num_services(), 1);
/// assert!(model.predict(0, 0).is_some());
/// assert!(model.predict(5, 0).is_none()); // unknown user
/// # Ok::<(), amf_core::AmfError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AmfModel {
    config: AmfConfig,
    transform: QosTransform,
    users: FactorSlab,
    services: FactorSlab,
    updates: u64,
    /// Sliding window over recent per-sample errors (windowed MRE/NMAE).
    accuracy: AccuracyWindow,
    /// Page–Hinkley drift detector over the EMA error trackers.
    sentinel: DriftSentinel,
}

impl AmfModel {
    /// Creates an empty model.
    ///
    /// # Errors
    ///
    /// Returns [`AmfError::InvalidConfig`] for invalid hyperparameters or
    /// [`AmfError::Transform`] when the transform cannot be built.
    pub fn new(config: AmfConfig) -> Result<Self, AmfError> {
        config.validate()?;
        let transform = QosTransform::new(config.alpha, config.r_min, config.r_max)?;
        Ok(Self {
            transform,
            users: FactorSlab::new(config.dimension),
            services: FactorSlab::new(config.dimension),
            updates: 0,
            accuracy: AccuracyWindow::default(),
            sentinel: DriftSentinel::default(),
            config,
        })
    }

    /// The model's hyperparameters.
    pub fn config(&self) -> &AmfConfig {
        &self.config
    }

    /// The data transform (forward/backward maps between raw QoS and the
    /// normalized training domain).
    pub fn transform(&self) -> &QosTransform {
        &self.transform
    }

    /// Number of registered users.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Number of registered services.
    pub fn num_services(&self) -> usize {
        self.services.len()
    }

    /// Total number of online updates applied.
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// Registers users up to and including `user` (no-op when present).
    pub fn ensure_user(&mut self, user: usize) {
        while self.users.len() <= user {
            self.users
                .push_fresh(&self.config, EntityKind::User, self.users.len());
        }
    }

    /// Registers services up to and including `service` (no-op when present).
    pub fn ensure_service(&mut self, service: usize) {
        while self.services.len() <= service {
            self.services
                .push_fresh(&self.config, EntityKind::Service, self.services.len());
        }
    }

    /// Registers a brand-new user and returns its id.
    pub fn add_user(&mut self) -> usize {
        let id = self.users.len();
        self.ensure_user(id);
        id
    }

    /// Registers a brand-new service and returns its id.
    pub fn add_service(&mut self) -> usize {
        let id = self.services.len();
        self.ensure_service(id);
        id
    }

    /// Whether `user` is registered.
    pub fn has_user(&self, user: usize) -> bool {
        user < self.users.len()
    }

    /// Whether `service` is registered.
    pub fn has_service(&self, service: usize) -> bool {
        service < self.services.len()
    }

    /// Applies one online update for the observed raw QoS value `raw` between
    /// `user` and `service` (the `OnlineUpdate` function of Algorithm 1).
    /// Unknown ids are registered first.
    pub fn observe(&mut self, user: usize, service: usize, raw: f64) -> UpdateOutcome {
        // Sampled instrumentation: timing every call would cost two clock
        // reads per ~70 ns update, so only one in 256 observes is measured
        // (and the error-tracker gauges refreshed). The sampled branch's
        // metric handles live behind a OnceLock whose one-time registration
        // fires on the very first observe — inside the warm-up window of the
        // zero-alloc hot-path test.
        let timed = self.updates & crate::obs::OBSERVE_SAMPLE_MASK == 0;
        let started = timed.then(std::time::Instant::now);
        self.ensure_user(user);
        self.ensure_service(service);
        let (user_factors, user_tracker) = self.users.entity_mut(user);
        let (service_factors, service_tracker) = self.services.entity_mut(service);
        let outcome = apply_observation(
            &self.config,
            &self.transform,
            user_factors,
            user_tracker,
            service_factors,
            service_tracker,
            raw,
        );
        self.updates += 1;
        // Streaming telemetry: three ring stores plus a strided sentinel
        // tick, all into pre-allocated state — the zero-alloc observe
        // guarantee (tests/alloc_free_hot_path.rs) covers this code.
        self.accuracy
            .push(outcome.r, outcome.g, outcome.sample_error);
        let verdict = self.sentinel.observe(
            self.users.tracker(user).error(),
            self.services.tracker(service).error(),
        );
        if verdict.any() {
            let metrics = crate::obs::model_metrics();
            if verdict.user_alarm {
                metrics.drift_alarms_user.inc();
            }
            if verdict.service_alarm {
                metrics.drift_alarms_service.inc();
            }
            metrics.drift_healthy.set(0.0);
            qos_obs::global().trace().event("drift_alarm", "");
        }
        if self.updates & crate::obs::ACCURACY_GAUGE_MASK == 0 {
            self.publish_accuracy_gauges();
        }
        if let Some(started) = started {
            let metrics = crate::obs::model_metrics();
            metrics.observe_ns.record_duration(started.elapsed());
            metrics.observes_sampled.inc();
            metrics.e_u.set(self.users.tracker(user).error());
            metrics.e_s.set(self.services.tracker(service).error());
        }
        outcome
    }

    /// Predicts the raw QoS value for `(user, service)`, or `None` when
    /// either id has never been observed (the model has no feature vector
    /// for it).
    pub fn predict(&self, user: usize, service: usize) -> Option<f64> {
        let u = self.users.try_factors(user)?;
        let s = self.services.try_factors(service)?;
        let x = qos_linalg::vector::dot(u, s);
        Some(self.transform.prediction_to_raw(x))
    }

    /// Batch prediction: the raw QoS values for one user against a list of
    /// services, or `None` when the user or any listed service is
    /// unregistered.
    ///
    /// Read-only fast path: uses the unrolled slab dot, which reassociates
    /// additions relative to [`AmfModel::predict`]'s sequential dot — results
    /// can differ in the last ulps (never feeds training state).
    pub fn predict_row(&self, user: usize, services: &[usize]) -> Option<Vec<f64>> {
        let query = self.users.try_factors(user)?;
        let mut out = Vec::with_capacity(services.len());
        for &service in services {
            let row = self.services.try_factors(service)?;
            let x = qos_linalg::slab::dot_unrolled4(query, row);
            out.push(self.transform.prediction_to_raw(x));
        }
        Some(out)
    }

    /// The adaptation framework's candidate-selection query: the `k`
    /// best-QoS services for `user`, as `(service id, predicted raw value)`
    /// ascending — for lower-is-better metrics like response time the first
    /// entry is the best candidate.
    ///
    /// Streams the user's vector against the contiguous service slab
    /// (unrolled dot, one flat pass) and selects top-k with a bounded heap
    /// on the *raw scores*: the transform chain `sigmoid` → inverse Box–Cox
    /// is monotone increasing, so score order is prediction order, and the
    /// expensive inverse transform (`powf`) runs only on the `k` winners.
    /// Ties are broken by service id. Returns an empty vector for an
    /// unregistered user or `k == 0`.
    pub fn rank_candidates(&self, user: usize, k: usize) -> Vec<(usize, f64)> {
        let Some(query) = self.users.try_factors(user) else {
            return Vec::new();
        };
        if k == 0 || self.services.len() == 0 {
            return Vec::new();
        }
        let mut scores = Vec::new();
        qos_linalg::slab::scores_into(
            query,
            self.services.flat(),
            self.config.dimension,
            &mut scores,
        );
        qos_linalg::slab::top_k_ascending(&scores, k)
            .into_iter()
            .map(|(service, x)| (service, self.transform.prediction_to_raw(x)))
            .collect()
    }

    /// Like [`AmfModel::predict`] but substituting `fallback` for unknown ids.
    pub fn predict_or(&self, user: usize, service: usize, fallback: f64) -> f64 {
        self.predict(user, service).unwrap_or(fallback)
    }

    /// Current relative error the model would incur on `(user, service,
    /// raw)`, *without* updating anything — used for convergence monitoring.
    pub fn evaluate_sample(&self, user: usize, service: usize, raw: f64) -> Option<f64> {
        let u = self.users.try_factors(user)?;
        let s = self.services.try_factors(service)?;
        let r = self.transform.to_normalized(raw);
        let g = qos_transform::sigmoid(qos_linalg::vector::dot(u, s));
        Some(crate::weights::sample_relative_error(r, g))
    }

    /// Point-in-time windowed accuracy: MRE and NMAE over the sliding
    /// window of recent samples (the live analogue of the paper's Fig. 7
    /// accuracy-over-time curves).
    pub fn windowed_accuracy(&self) -> WindowedAccuracy {
        WindowedAccuracy {
            mre: self.accuracy.mre(),
            nmae: self.accuracy.nmae(),
            window_len: self.accuracy.len(),
            samples: self.accuracy.total(),
        }
    }

    /// The model's drift sentinel (alarm counts, health).
    pub fn drift_sentinel(&self) -> &DriftSentinel {
        &self.sentinel
    }

    /// Resets the drift sentinel — detector state and alarm counters — so a
    /// new scenario or regime run starts with a clean drift baseline instead
    /// of inheriting alarms merged in from previous shard runs. See
    /// [`DriftSentinel::reset`].
    pub fn reset_drift_sentinel(&mut self) {
        self.sentinel.reset();
    }

    /// Refreshes the windowed-accuracy and drift-health gauges on the
    /// global registry from current state. Runs automatically every
    /// `ACCURACY_GAUGE_MASK + 1` updates; serving-layer snapshot paths call
    /// it directly so scrapes never read stale gauges. Allocation-free
    /// (median select over the pre-allocated scratch).
    pub fn publish_accuracy_gauges(&mut self) {
        let metrics = crate::obs::model_metrics();
        if let Some(mre) = self.accuracy.mre_refresh() {
            metrics.mre_w.set(mre);
        }
        if let Some(nmae) = self.accuracy.nmae() {
            metrics.nmae_w.set(nmae);
        }
        metrics
            .drift_healthy
            .set(if self.sentinel.healthy() { 1.0 } else { 0.0 });
    }

    /// EMA error of a user, or `None` when unregistered.
    pub fn user_error(&self, user: usize) -> Option<f64> {
        (user < self.users.len()).then(|| self.users.tracker(user).error())
    }

    /// EMA error of a service, or `None` when unregistered.
    pub fn service_error(&self, service: usize) -> Option<f64> {
        (service < self.services.len()).then(|| self.services.tracker(service).error())
    }

    /// A user's feature vector, or `None` when unregistered.
    pub fn user_factors(&self, user: usize) -> Option<&[f64]> {
        self.users.try_factors(user)
    }

    /// A service's feature vector, or `None` when unregistered.
    pub fn service_factors(&self, service: usize) -> Option<&[f64]> {
        self.services.try_factors(service)
    }

    /// Restores entity state from persisted data (see [`crate::persistence`]).
    pub(crate) fn restore(
        config: AmfConfig,
        users: Vec<EntityState>,
        services: Vec<EntityState>,
        updates: u64,
    ) -> Result<Self, AmfError> {
        let mut model = Self::new(config)?;
        model.users = FactorSlab::from_states(config.dimension, users);
        model.services = FactorSlab::from_states(config.dimension, services);
        model.updates = updates;
        Ok(model)
    }

    /// Reassembles a model from parts whose config/transform pair was already
    /// validated together (the engine's snapshot path) — infallible, so
    /// assembling a snapshot can never panic or error at runtime.
    pub(crate) fn restore_parts(
        config: AmfConfig,
        transform: QosTransform,
        users: FactorSlab,
        services: FactorSlab,
        updates: u64,
        accuracy: AccuracyWindow,
        sentinel: DriftSentinel,
    ) -> Self {
        Self {
            config,
            transform,
            users,
            services,
            updates,
            accuracy,
            sentinel,
        }
    }

    /// Disassembles the model for the engine's sharded execution: factor
    /// slabs plus the streaming-telemetry state, which the engine carries as
    /// its merge base so windowed accuracy stays continuous across
    /// sequential → sharded → sequential transitions.
    pub(crate) fn into_parts(self) -> (FactorSlab, FactorSlab, AccuracyWindow, DriftSentinel) {
        (self.users, self.services, self.accuracy, self.sentinel)
    }
}

/// Applies one full online update — transform, SGD step (Eq. 16–17), and the
/// two tracker EMA updates (Algorithm 1 lines 21–23) — to a user/service
/// state pair, given as disjoint slab borrows.
///
/// This is the *only* per-sample mutation in the crate: [`AmfModel::observe`]
/// and every [`crate::engine::ShardedEngine`] worker funnel through it, which
/// is what makes sequential and sharded execution comparable update-for-update.
/// No allocation happens here — the factors are in-place slab slices and the
/// trackers are plain `Copy` cells.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_observation(
    config: &AmfConfig,
    transform: &QosTransform,
    user_factors: &mut [f64],
    user_tracker: &mut ErrorTracker,
    service_factors: &mut [f64],
    service_tracker: &mut ErrorTracker,
    raw: f64,
) -> UpdateOutcome {
    let r = transform.to_normalized(raw);
    let e_user = user_tracker.error();
    let e_service = service_tracker.error();
    let outcome = sgd_step(config, user_factors, service_factors, r, e_user, e_service);
    // Algorithm 1 lines 22–23: update the trackers with this sample's error,
    // weighted by each side's adaptive weight.
    user_tracker.update(outcome.sample_error, config.beta, outcome.w_user);
    service_tracker.update(outcome.sample_error, config.beta, outcome.w_service);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AmfModel {
        AmfModel::new(AmfConfig::response_time()).unwrap()
    }

    #[test]
    fn starts_empty() {
        let m = model();
        assert_eq!(m.num_users(), 0);
        assert_eq!(m.num_services(), 0);
        assert_eq!(m.update_count(), 0);
        assert_eq!(m.predict(0, 0), None);
    }

    #[test]
    fn observe_registers_lazily() {
        let mut m = model();
        m.observe(3, 7, 1.5);
        assert_eq!(m.num_users(), 4);
        assert_eq!(m.num_services(), 8);
        assert!(m.has_user(3));
        assert!(!m.has_user(4));
        assert_eq!(m.update_count(), 1);
    }

    #[test]
    fn new_entities_start_maximally_uncertain() {
        let mut m = model();
        m.ensure_user(0);
        assert_eq!(m.user_error(0), Some(1.0));
        m.ensure_service(2);
        assert_eq!(m.service_error(2), Some(1.0));
        assert_eq!(m.user_error(99), None);
    }

    #[test]
    fn repeated_observation_converges_to_value() {
        let mut m = model();
        for _ in 0..300 {
            m.observe(0, 0, 2.5);
        }
        let pred = m.predict(0, 0).unwrap();
        assert!(
            (pred - 2.5).abs() / 2.5 < 0.1,
            "predicted {pred}, expected ~2.5"
        );
        // Error tracker should have dropped far below its initial 1.0.
        assert!(m.user_error(0).unwrap() < 0.1);
    }

    #[test]
    fn learns_low_rank_structure_across_pairs() {
        // Ground truth: rank-1 in the transformed domain. After training on
        // most pairs, a held-out pair should be predicted reasonably.
        let mut m = model();
        let user_base = [0.5, 1.0, 2.0, 4.0];
        let service_mult = [1.0, 1.5, 0.7, 2.0];
        let truth = |u: usize, s: usize| user_base[u] * service_mult[s];
        let mut rng_order: Vec<(usize, usize)> = (0..4)
            .flat_map(|u| (0..4).map(move |s| (u, s)))
            .filter(|&(u, s)| !(u == 3 && s == 3))
            .collect();
        for pass in 0..400 {
            // cheap deterministic shuffle
            rng_order.rotate_left(pass % 15);
            for &(u, s) in &rng_order {
                m.observe(u, s, truth(u, s));
            }
        }
        let pred = m.predict(3, 3).unwrap();
        let actual = truth(3, 3);
        let rel = (pred - actual).abs() / actual;
        assert!(rel < 0.5, "held-out prediction {pred} vs {actual}");
    }

    #[test]
    fn predict_or_fallback() {
        let m = model();
        assert_eq!(m.predict_or(0, 0, 9.9), 9.9);
    }

    /// Trains a model over `users × services` with a deterministic stream.
    fn trained(users: usize, services: usize, samples: usize) -> AmfModel {
        let mut m = model();
        let mut state = 0xDEAD_BEEF_u64;
        for _ in 0..samples {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 33) as usize % users;
            let s = (state >> 17) as usize % services;
            let v = 0.2 + ((state >> 11) as f64 / (1u64 << 53) as f64) * 8.0;
            m.observe(u, s, v);
        }
        m
    }

    #[test]
    fn rank_candidates_agrees_with_naive_argsort_of_predict() {
        let m = trained(12, 120, 6_000);
        for user in 0..12 {
            for k in [1usize, 3, 10, 120, 500] {
                // The oracle: argsort every per-pair prediction, ties by id.
                let mut naive: Vec<(usize, f64)> = (0..m.num_services())
                    .map(|s| (s, m.predict(user, s).unwrap()))
                    .collect();
                naive.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                naive.truncate(k);

                let ranked = m.rank_candidates(user, k);
                assert_eq!(
                    ranked.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
                    naive.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
                    "user {user}, k {k}"
                );
                // Values go through the unrolled dot, so allow ulp-level
                // drift relative to the sequential per-pair path.
                for (&(_, got), &(_, want)) in ranked.iter().zip(&naive) {
                    assert!(
                        (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                        "user {user}, k {k}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn rank_candidates_degenerate_inputs() {
        let m = trained(3, 8, 200);
        assert_eq!(m.rank_candidates(99, 5), vec![]);
        assert_eq!(m.rank_candidates(0, 0), vec![]);
        assert_eq!(m.rank_candidates(0, 8).len(), 8);
        assert_eq!(m.rank_candidates(0, 999).len(), 8);
        let empty = model();
        assert_eq!(empty.rank_candidates(0, 3), vec![]);
    }

    #[test]
    fn rank_candidates_returns_ascending_predictions() {
        let m = trained(5, 40, 2_000);
        let ranked = m.rank_candidates(2, 10);
        assert_eq!(ranked.len(), 10);
        for pair in ranked.windows(2) {
            assert!(pair[0].1 <= pair[1].1, "not ascending: {pair:?}");
        }
    }

    #[test]
    fn rank_candidates_nan_free_under_degraded_entries() {
        // A degraded slab: a handful of trained services driven to the
        // extremes of the admissible range, plus a long tail of cold
        // services that were registered but never observed (their factors
        // are the fresh random init, their trackers at maximum error).
        let mut m = model();
        for i in 0..200 {
            m.observe(0, i % 4, if i % 2 == 0 { 0.011 } else { 19.9 });
        }
        m.ensure_service(63);
        m.ensure_user(2);

        for user in 0..m.num_users() {
            for k in [1usize, 5, 64, 1000] {
                let ranked = m.rank_candidates(user, k);
                assert_eq!(ranked.len(), k.min(64));
                for &(service, value) in &ranked {
                    assert!(
                        value.is_finite(),
                        "user {user}, k {k}, service {service}: {value}"
                    );
                    assert!(
                        (0.0..=20.0).contains(&value),
                        "user {user}, k {k}, service {service}: {value} escaped range"
                    );
                }
            }
        }
    }

    #[test]
    fn predict_row_matches_predict() {
        let m = trained(4, 30, 1_500);
        let ids: Vec<usize> = (0..30).rev().collect();
        let row = m.predict_row(1, &ids).unwrap();
        for (&s, &got) in ids.iter().zip(&row) {
            let want = m.predict(1, s).unwrap();
            assert!((got - want).abs() <= 1e-9 * want.abs().max(1.0));
        }
        assert_eq!(m.predict_row(99, &[0]), None);
        assert_eq!(m.predict_row(1, &[999]), None);
        assert_eq!(m.predict_row(1, &[]), Some(vec![]));
    }

    #[test]
    fn evaluate_sample_does_not_mutate() {
        let mut m = model();
        m.observe(0, 0, 1.0);
        let before = m.user_factors(0).unwrap().to_vec();
        let err = m.evaluate_sample(0, 0, 1.0).unwrap();
        assert!(err.is_finite());
        assert_eq!(m.user_factors(0).unwrap(), before.as_slice());
        assert_eq!(m.evaluate_sample(9, 0, 1.0), None);
    }

    #[test]
    fn add_user_and_service_return_sequential_ids() {
        let mut m = model();
        assert_eq!(m.add_user(), 0);
        assert_eq!(m.add_user(), 1);
        assert_eq!(m.add_service(), 0);
        assert_eq!(m.user_factors(1).unwrap().len(), 10);
    }

    #[test]
    fn initializations_are_random_but_seeded() {
        let mut a = model();
        let mut b = model();
        a.ensure_user(1);
        b.ensure_user(1);
        assert_eq!(a.user_factors(0), b.user_factors(0));
        assert_ne!(a.user_factors(0), a.user_factors(1));

        let mut c = AmfModel::new(AmfConfig::response_time().with_seed(7)).unwrap();
        c.ensure_user(0);
        assert_ne!(a.user_factors(0), c.user_factors(0));
    }

    #[test]
    fn predictions_stay_in_configured_range() {
        let mut m = model();
        for i in 0..50 {
            m.observe(i % 3, i % 5, 0.1 + (i % 7) as f64);
        }
        for u in 0..3 {
            for s in 0..5 {
                let p = m.predict(u, s).unwrap();
                assert!((0.0..=20.0).contains(&p), "prediction {p} out of range");
            }
        }
    }

    #[test]
    fn invalid_config_rejected() {
        let mut bad = AmfConfig::response_time();
        bad.dimension = 0;
        assert!(matches!(
            AmfModel::new(bad),
            Err(AmfError::InvalidConfig(_))
        ));
    }

    #[test]
    fn throughput_config_works() {
        let mut m = AmfModel::new(AmfConfig::throughput()).unwrap();
        for _ in 0..200 {
            m.observe(0, 0, 150.0);
        }
        let pred = m.predict(0, 0).unwrap();
        assert!(
            (pred - 150.0).abs() / 150.0 < 0.2,
            "predicted {pred}, expected ~150"
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// No observation sequence — whatever its values, including ones
            /// outside the configured range — can drive predictions outside
            /// [R_min floor, R_max], produce non-finite factors, or push an
            /// error tracker out of [0, ∞).
            #[test]
            fn model_invariants_hold_under_arbitrary_streams(
                samples in proptest::collection::vec(
                    (0usize..6, 0usize..8, -5.0..50.0f64),
                    1..120
                )
            ) {
                let mut m = AmfModel::new(AmfConfig::response_time()).unwrap();
                for (u, s, v) in samples {
                    let outcome = m.observe(u, s, v);
                    prop_assert!(outcome.sample_error.is_finite());
                    prop_assert!(outcome.sample_error >= 0.0);
                    prop_assert!((0.0..=1.0).contains(&outcome.w_user));
                    prop_assert!((outcome.w_user + outcome.w_service - 1.0).abs() < 1e-9);
                }
                for u in 0..m.num_users() {
                    prop_assert!(m.user_error(u).unwrap() >= 0.0);
                    prop_assert!(m.user_factors(u).unwrap().iter().all(|f| f.is_finite()));
                    for s in 0..m.num_services() {
                        let p = m.predict(u, s).unwrap();
                        prop_assert!(
                            (0.0..=20.0).contains(&p),
                            "prediction {p} escaped the configured range"
                        );
                    }
                }
            }

            /// Update count equals the number of observations, and entity
            /// counts equal the largest ids seen plus one.
            #[test]
            fn bookkeeping_is_exact(
                samples in proptest::collection::vec(
                    (0usize..10, 0usize..10, 0.1..10.0f64),
                    1..60
                )
            ) {
                let mut m = AmfModel::new(AmfConfig::response_time()).unwrap();
                let max_u = samples.iter().map(|s| s.0).max().unwrap();
                let max_s = samples.iter().map(|s| s.1).max().unwrap();
                let n = samples.len() as u64;
                for (u, s, v) in samples {
                    m.observe(u, s, v);
                }
                prop_assert_eq!(m.update_count(), n);
                prop_assert_eq!(m.num_users(), max_u + 1);
                prop_assert_eq!(m.num_services(), max_s + 1);
            }

            /// Persistence round-trips arbitrary trained models exactly.
            #[test]
            fn persistence_roundtrip_exact(
                samples in proptest::collection::vec(
                    (0usize..5, 0usize..5, 0.1..19.0f64),
                    1..40
                ),
                seed in 0u64..1000
            ) {
                let mut m = AmfModel::new(AmfConfig::response_time().with_seed(seed)).unwrap();
                for (u, s, v) in samples {
                    m.observe(u, s, v);
                }
                let mut buffer = Vec::new();
                crate::persistence::save(&m, &mut buffer).unwrap();
                let restored = crate::persistence::load(&buffer[..]).unwrap();
                for u in 0..m.num_users() {
                    for s in 0..m.num_services() {
                        let a = m.predict(u, s).unwrap();
                        let b = restored.predict(u, s).unwrap();
                        prop_assert!((a - b).abs() < 1e-9);
                    }
                }
            }

            /// The batch ranking kernel selects the same services as a naive
            /// argsort of per-pair `predict`, on arbitrary random slabs: any
            /// training stream (including streams that leave most services
            /// cold) and any `k` relative to the service count.
            #[test]
            fn rank_candidates_agrees_with_naive_on_random_slabs(
                samples in proptest::collection::vec(
                    (0usize..6, 0usize..40, 0.1..18.0f64),
                    1..120
                ),
                seed in 0u64..1000,
                k in 0usize..50
            ) {
                let mut m = AmfModel::new(
                    AmfConfig::response_time().with_seed(seed)
                ).unwrap();
                for &(u, s, v) in &samples {
                    m.observe(u, s, v);
                }
                // Cold tail: registered but never observed, so the slab
                // mixes trained and fresh factor vectors.
                m.ensure_service(m.num_services() + 3);
                for user in 0..m.num_users() {
                    let mut naive: Vec<(usize, f64)> = (0..m.num_services())
                        .map(|s| (s, m.predict(user, s).unwrap()))
                        .collect();
                    naive.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                    naive.truncate(k);

                    let ranked = m.rank_candidates(user, k);
                    prop_assert_eq!(
                        ranked.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
                        naive.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
                        "user {}, k {}", user, k
                    );
                    for &(_, value) in &ranked {
                        prop_assert!(value.is_finite());
                    }
                }
            }
        }
    }
}
