//! Saving and loading AMF models as a plain-text format.
//!
//! The QoS prediction *service* of the paper's framework is long-running;
//! being able to checkpoint and restore the model across restarts is part of
//! making it operable. The format is a simple line-oriented text layout (no
//! extra dependencies):
//!
//! ```text
//! AMF1
//! config <dimension> <lambda_u> <lambda_s> <beta> <eta> <alpha> <r_min> <r_max> <expiry_secs> <init_sigma> <adaptive 0|1> <loss R|S> <seed>
//! counts <users> <services> <updates>
//! user <err> <f_0> ... <f_d-1>      (one per user, in id order)
//! service <err> <f_0> ... <f_d-1>   (one per service, in id order)
//! ```

use crate::config::{AmfConfig, LossKind};
use crate::model::{AmfModel, EntityState};
use crate::weights::ErrorTracker;
use crate::AmfError;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::time::Duration;

const MAGIC: &str = "AMF1";

/// Serializes a model to a writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn save<W: Write>(model: &AmfModel, writer: W) -> Result<(), AmfError> {
    let mut w = BufWriter::new(writer);
    let c = model.config();
    writeln!(w, "{MAGIC}")?;
    writeln!(
        w,
        "config {} {} {} {} {} {} {} {} {} {} {} {} {}",
        c.dimension,
        c.lambda_user,
        c.lambda_service,
        c.beta,
        c.learning_rate,
        c.alpha,
        c.r_min,
        c.r_max,
        c.expiry.as_secs(),
        c.init_sigma,
        u8::from(c.adaptive_weights),
        match c.loss {
            LossKind::Relative => "R",
            LossKind::Squared => "S",
        },
        c.seed,
    )?;
    writeln!(
        w,
        "counts {} {} {}",
        model.num_users(),
        model.num_services(),
        model.update_count()
    )?;
    type EntityRow = fn(&AmfModel, usize) -> Option<(f64, &[f64])>;
    let rows: [(&str, usize, EntityRow); 2] = [
        ("user", model.num_users(), |m, i| {
            Some((m.user_error(i)?, m.user_factors(i)?))
        }),
        ("service", model.num_services(), |m, i| {
            Some((m.service_error(i)?, m.service_factors(i)?))
        }),
    ];
    for (kind, count, row) in rows {
        for i in 0..count {
            // Registered ids below the count always resolve.
            let Some((error, factors)) = row(model, i) else {
                continue;
            };
            write!(w, "{kind} {error}")?;
            for f in factors {
                write!(w, " {f}")?;
            }
            writeln!(w)?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Deserializes a model from a reader.
///
/// # Errors
///
/// Returns [`AmfError::Corrupt`] for malformed content and propagates I/O
/// and configuration errors.
pub fn load<R: Read>(reader: R) -> Result<AmfModel, AmfError> {
    let mut lines = BufReader::new(reader).lines().enumerate();
    let corrupt = |line: usize, message: &str| AmfError::Corrupt {
        line: line + 1,
        message: message.to_string(),
    };

    let (n, magic) = lines
        .next()
        .ok_or_else(|| corrupt(0, "empty file"))
        .and_then(|(n, r)| r.map(|l| (n, l)).map_err(AmfError::from))?;
    if magic.trim() != MAGIC {
        return Err(corrupt(n, "bad magic header"));
    }

    let (n, config_line) = lines
        .next()
        .ok_or_else(|| corrupt(1, "missing config line"))
        .and_then(|(n, r)| r.map(|l| (n, l)).map_err(AmfError::from))?;
    let parts: Vec<&str> = config_line.split_whitespace().collect();
    if parts.len() != 14 || parts[0] != "config" {
        return Err(corrupt(n, "malformed config line"));
    }
    let parse_f = |idx: usize| -> Result<f64, AmfError> {
        parts[idx]
            .parse()
            .map_err(|_| corrupt(n, "bad config number"))
    };
    let config = AmfConfig {
        dimension: parts[1].parse().map_err(|_| corrupt(n, "bad dimension"))?,
        lambda_user: parse_f(2)?,
        lambda_service: parse_f(3)?,
        beta: parse_f(4)?,
        learning_rate: parse_f(5)?,
        alpha: parse_f(6)?,
        r_min: parse_f(7)?,
        r_max: parse_f(8)?,
        expiry: Duration::from_secs(parts[9].parse().map_err(|_| corrupt(n, "bad expiry"))?),
        init_sigma: parse_f(10)?,
        adaptive_weights: parts[11] == "1",
        loss: match parts[12] {
            "R" => LossKind::Relative,
            "S" => LossKind::Squared,
            _ => return Err(corrupt(n, "bad loss kind")),
        },
        seed: parts[13].parse().map_err(|_| corrupt(n, "bad seed"))?,
    };

    let (n, counts_line) = lines
        .next()
        .ok_or_else(|| corrupt(2, "missing counts line"))
        .and_then(|(n, r)| r.map(|l| (n, l)).map_err(AmfError::from))?;
    let parts: Vec<&str> = counts_line.split_whitespace().collect();
    if parts.len() != 4 || parts[0] != "counts" {
        return Err(corrupt(n, "malformed counts line"));
    }
    let num_users: usize = parts[1].parse().map_err(|_| corrupt(n, "bad user count"))?;
    let num_services: usize = parts[2]
        .parse()
        .map_err(|_| corrupt(n, "bad service count"))?;
    let updates: u64 = parts[3]
        .parse()
        .map_err(|_| corrupt(n, "bad update count"))?;

    let mut read_entities = |kind: &str, count: usize| -> Result<Vec<EntityState>, AmfError> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let (n, line) = lines
                .next()
                .ok_or_else(|| corrupt(usize::MAX - 1, "unexpected end of file"))
                .and_then(|(n, r)| r.map(|l| (n, l)).map_err(AmfError::from))?;
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() != config.dimension + 2 || parts[0] != kind {
                return Err(corrupt(n, "malformed entity line"));
            }
            let error: f64 = parts[1].parse().map_err(|_| corrupt(n, "bad error"))?;
            let factors: Result<Vec<f64>, _> = parts[2..].iter().map(|p| p.parse()).collect();
            out.push(EntityState {
                factors: factors.map_err(|_| corrupt(n, "bad factor"))?,
                tracker: ErrorTracker::from_error(error),
            });
        }
        Ok(out)
    };

    let users = read_entities("user", num_users)?;
    let services = read_entities("service", num_services)?;
    AmfModel::restore(config, users, services, updates)
}

/// Saves a model to a file path.
///
/// # Errors
///
/// Propagates file-creation and [`save`] errors.
pub fn save_file<P: AsRef<Path>>(model: &AmfModel, path: P) -> Result<(), AmfError> {
    save(model, std::fs::File::create(path)?)
}

/// Loads a model from a file path.
///
/// # Errors
///
/// Propagates file-open and [`load`] errors.
pub fn load_file<P: AsRef<Path>>(path: P) -> Result<AmfModel, AmfError> {
    load(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained_model() -> AmfModel {
        let mut m = AmfModel::new(AmfConfig::response_time()).unwrap();
        for k in 0..200 {
            m.observe(k % 3, k % 4, 0.5 + (k % 5) as f64);
        }
        m
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let model = trained_model();
        let mut buf = Vec::new();
        save(&model, &mut buf).unwrap();
        let restored = load(&buf[..]).unwrap();
        assert_eq!(restored.num_users(), model.num_users());
        assert_eq!(restored.num_services(), model.num_services());
        assert_eq!(restored.update_count(), model.update_count());
        for u in 0..3 {
            for s in 0..4 {
                let a = model.predict(u, s).unwrap();
                let b = restored.predict(u, s).unwrap();
                assert!((a - b).abs() < 1e-9, "({u},{s}): {a} vs {b}");
            }
        }
        assert_eq!(restored.user_error(0), model.user_error(0));
        assert_eq!(restored.config(), model.config());
    }

    #[test]
    fn roundtrip_continues_training() {
        // A restored model must keep learning (fresh RNG state, intact
        // trackers).
        let model = trained_model();
        let mut buf = Vec::new();
        save(&model, &mut buf).unwrap();
        let mut restored = load(&buf[..]).unwrap();
        let before = restored.predict(0, 0).unwrap();
        for _ in 0..300 {
            restored.observe(0, 0, 3.0);
        }
        let after = restored.predict(0, 0).unwrap();
        assert!((after - 3.0).abs() < (before - 3.0).abs() + 1e-9);
        // New entities after restore must not clone old initializations.
        restored.ensure_user(10);
        assert_ne!(restored.user_factors(10), restored.user_factors(0));
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(
            load("NOPE\n".as_bytes()),
            Err(AmfError::Corrupt { line: 1, .. })
        ));
        assert!(load("".as_bytes()).is_err());
    }

    #[test]
    fn rejects_truncated_file() {
        let model = trained_model();
        let mut buf = Vec::new();
        save(&model, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let truncated: String = text.lines().take(4).collect::<Vec<_>>().join("\n");
        assert!(load(truncated.as_bytes()).is_err());
    }

    #[test]
    fn rejects_corrupt_numbers() {
        let model = trained_model();
        let mut buf = Vec::new();
        save(&model, &mut buf).unwrap();
        let text = String::from_utf8(buf)
            .unwrap()
            .replace("counts 3", "counts x");
        assert!(matches!(text, ref t if load(t.as_bytes()).is_err()));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("amf_persistence_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.amf");
        let model = trained_model();
        save_file(&model, &path).unwrap();
        let restored = load_file(&path).unwrap();
        assert_eq!(restored.num_users(), model.num_users());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn loss_kinds_roundtrip() {
        for loss in [LossKind::Relative, LossKind::Squared] {
            let mut config = AmfConfig::response_time();
            config.loss = loss;
            config.adaptive_weights = loss == LossKind::Relative;
            let model = AmfModel::new(config).unwrap();
            let mut buf = Vec::new();
            save(&model, &mut buf).unwrap();
            let restored = load(&buf[..]).unwrap();
            assert_eq!(restored.config().loss, loss);
            assert_eq!(restored.config().adaptive_weights, config.adaptive_weights);
        }
    }
}
