//! Operational diagnostics for a live AMF model.
//!
//! The paper's prediction service runs unattended; an operator needs to see
//! whether the model is healthy without ground truth to evaluate against.
//! [`ModelDiagnostics`] summarizes the observable internals: the error
//! trackers (how converged the population is — high EMA errors mean cold or
//! churned entities), and factor-vector norms (runaway norms indicate
//! divergence, near-zero norms indicate dead entities).

use crate::model::AmfModel;
use qos_linalg::stats;
use serde::{Deserialize, Serialize};

/// Summary of one entity population (users, or services).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopulationDiagnostics {
    /// Number of registered entities.
    pub count: usize,
    /// Mean EMA error across the population.
    pub mean_error: f64,
    /// Median EMA error.
    pub median_error: f64,
    /// Worst EMA error.
    pub max_error: f64,
    /// Fraction with EMA error below `converged_threshold`.
    pub converged_fraction: f64,
    /// Mean L2 norm of the factor vectors.
    pub mean_norm: f64,
    /// Largest L2 norm (divergence indicator).
    pub max_norm: f64,
}

/// Full model health snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelDiagnostics {
    /// User-side summary.
    pub users: PopulationDiagnostics,
    /// Service-side summary.
    pub services: PopulationDiagnostics,
    /// Total online updates applied.
    pub updates: u64,
    /// The threshold used for `converged_fraction`.
    pub converged_threshold: f64,
}

/// Default EMA-error threshold under which an entity counts as converged.
pub const DEFAULT_CONVERGED_THRESHOLD: f64 = 0.3;

fn summarize(errors: &[f64], norms: &[f64], converged_threshold: f64) -> PopulationDiagnostics {
    let count = errors.len();
    if count == 0 {
        return PopulationDiagnostics {
            count: 0,
            mean_error: f64::NAN,
            median_error: f64::NAN,
            max_error: f64::NAN,
            converged_fraction: f64::NAN,
            mean_norm: f64::NAN,
            max_norm: f64::NAN,
        };
    }
    let converged = errors.iter().filter(|&&e| e < converged_threshold).count();
    PopulationDiagnostics {
        count,
        mean_error: stats::mean(errors).expect("non-empty"),
        median_error: stats::median(errors).expect("non-empty"),
        max_error: stats::max(errors).expect("non-empty"),
        converged_fraction: converged as f64 / count as f64,
        mean_norm: stats::mean(norms).expect("non-empty"),
        max_norm: stats::max(norms).expect("non-empty"),
    }
}

impl ModelDiagnostics {
    /// Computes a snapshot with the default convergence threshold.
    pub fn of(model: &AmfModel) -> Self {
        Self::with_threshold(model, DEFAULT_CONVERGED_THRESHOLD)
    }

    /// Computes a snapshot counting entities with EMA error below
    /// `converged_threshold` as converged.
    pub fn with_threshold(model: &AmfModel, converged_threshold: f64) -> Self {
        let user_errors: Vec<f64> = (0..model.num_users())
            .filter_map(|u| model.user_error(u))
            .collect();
        let user_norms: Vec<f64> = (0..model.num_users())
            .filter_map(|u| model.user_factors(u))
            .map(qos_linalg::vector::norm2)
            .collect();
        let service_errors: Vec<f64> = (0..model.num_services())
            .filter_map(|s| model.service_error(s))
            .collect();
        let service_norms: Vec<f64> = (0..model.num_services())
            .filter_map(|s| model.service_factors(s))
            .map(qos_linalg::vector::norm2)
            .collect();
        Self {
            users: summarize(&user_errors, &user_norms, converged_threshold),
            services: summarize(&service_errors, &service_norms, converged_threshold),
            updates: model.update_count(),
            converged_threshold,
        }
    }

    /// A quick health verdict: `true` when no factor norm has run away and
    /// at least one entity exists.
    pub fn looks_healthy(&self, norm_limit: f64) -> bool {
        self.users.count > 0
            && self.services.count > 0
            && self.users.max_norm < norm_limit
            && self.services.max_norm < norm_limit
    }
}

impl std::fmt::Display for ModelDiagnostics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "updates: {}", self.updates)?;
        for (name, p) in [("users", &self.users), ("services", &self.services)] {
            writeln!(
                f,
                "{name}: {} registered, error mean/median/max {:.3}/{:.3}/{:.3}, \
                 {:.0}% converged (<{:.2}), norm mean/max {:.3}/{:.3}",
                p.count,
                p.mean_error,
                p.median_error,
                p.max_error,
                p.converged_fraction * 100.0,
                self.converged_threshold,
                p.mean_norm,
                p.max_norm,
            )?;
        }
        Ok(())
    }
}

/// Number of bins in the per-service reject-rate histogram.
pub const QUARANTINE_HISTOGRAM_BINS: usize = 10;

/// Ingestion-quarantine health snapshot, built from a
/// [`SampleGuard`](crate::guard::SampleGuard) after (or during) a stream.
///
/// The reject-rate histogram answers the operator question the raw counters
/// cannot: *is garbage spread thinly across the fleet, or concentrated on a
/// few misbehaving services?* A healthy stream puts every service in the
/// first bin; a spike in the last bins names services whose QoS feed is
/// broken (and whose predictions should be treated with suspicion).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantineDiagnostics {
    /// The guard's aggregate admission counters.
    pub stats: crate::guard::GuardStats,
    /// Services that had at least one sample screened.
    pub services_seen: usize,
    /// Services with at least one reject.
    pub services_with_rejects: usize,
    /// Histogram of per-service reject rates over `[0, 1]`, in
    /// [`QUARANTINE_HISTOGRAM_BINS`] equal bins (bin 0 = cleanest). One
    /// count per service seen.
    pub reject_rate_histogram: Vec<u64>,
    /// The worst offenders: `(service, rejects, seen)` sorted by reject
    /// count descending, capped at ten entries.
    pub worst_services: Vec<(usize, u64, u64)>,
    /// Samples currently retained in the bounded quarantine log.
    pub quarantine_len: usize,
}

impl QuarantineDiagnostics {
    /// Summarizes a guard's quarantine state.
    pub fn of(guard: &crate::guard::SampleGuard) -> Self {
        let seen = guard.per_service_seen();
        let rejects = guard.per_service_rejects();
        let mut histogram = qos_linalg::histogram::Histogram::new(
            0.0,
            1.0 + f64::EPSILON, // keep rate 1.0 inside the last bin
            QUARANTINE_HISTOGRAM_BINS,
        );
        let mut worst: Vec<(usize, u64, u64)> = Vec::new();
        for (&service, &count) in seen {
            let rejected = rejects.get(&service).copied().unwrap_or(0);
            if let Some(h) = histogram.as_mut() {
                h.add(rejected as f64 / count.max(1) as f64);
            }
            if rejected > 0 {
                worst.push((service, rejected, count));
            }
        }
        let services_with_rejects = worst.len();
        worst.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        worst.truncate(10);
        Self {
            stats: guard.stats(),
            services_seen: seen.len(),
            services_with_rejects,
            reject_rate_histogram: histogram
                .map(|h| h.counts().to_vec())
                .unwrap_or_else(|| vec![0; QUARANTINE_HISTOGRAM_BINS]),
            worst_services: worst,
            quarantine_len: guard.quarantine_len(),
        }
    }
}

impl std::fmt::Display for QuarantineDiagnostics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "screened: {} accepted, {} rejected ({:.2}% — {} not-finite, {} non-positive, \
             {} out-of-range, {} outlier), quarantine holds {}",
            self.stats.accepted,
            self.stats.rejected(),
            self.stats.reject_rate() * 100.0,
            self.stats.not_finite,
            self.stats.non_positive,
            self.stats.out_of_range,
            self.stats.outlier,
            self.quarantine_len,
        )?;
        writeln!(
            f,
            "services: {} seen, {} with rejects",
            self.services_seen, self.services_with_rejects
        )?;
        write!(f, "reject-rate histogram [0..1]:")?;
        for count in &self.reject_rate_histogram {
            write!(f, " {count}")?;
        }
        writeln!(f)?;
        for &(service, rejected, seen) in &self.worst_services {
            writeln!(f, "  service {service}: {rejected}/{seen} rejected")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AmfConfig;

    fn trained_model(updates: usize) -> AmfModel {
        let mut m = AmfModel::new(AmfConfig::response_time()).unwrap();
        for k in 0..updates {
            m.observe(k % 4, k % 6, 0.5 + (k % 3) as f64);
        }
        m
    }

    #[test]
    fn empty_model_is_all_nan_counts_zero() {
        let m = AmfModel::new(AmfConfig::response_time()).unwrap();
        let d = ModelDiagnostics::of(&m);
        assert_eq!(d.users.count, 0);
        assert!(d.users.mean_error.is_nan());
        assert!(!d.looks_healthy(10.0));
    }

    #[test]
    fn trained_model_reports_population() {
        let m = trained_model(600);
        let d = ModelDiagnostics::of(&m);
        assert_eq!(d.users.count, 4);
        assert_eq!(d.services.count, 6);
        assert_eq!(d.updates, 600);
        assert!(d.users.mean_error.is_finite());
        assert!(d.users.max_error >= d.users.median_error);
        assert!(d.users.mean_norm > 0.0);
    }

    #[test]
    fn convergence_fraction_grows_with_training() {
        let early = ModelDiagnostics::of(&trained_model(20));
        let late = ModelDiagnostics::of(&trained_model(2000));
        assert!(
            late.users.converged_fraction >= early.users.converged_fraction,
            "training should converge entities: {} -> {}",
            early.users.converged_fraction,
            late.users.converged_fraction
        );
        assert!(late.users.converged_fraction > 0.5);
    }

    #[test]
    fn health_check_flags_runaway_norms() {
        let m = trained_model(200);
        let d = ModelDiagnostics::of(&m);
        assert!(d.looks_healthy(10.0));
        assert!(!d.looks_healthy(1e-6));
    }

    #[test]
    fn threshold_changes_converged_fraction() {
        let m = trained_model(500);
        let strict = ModelDiagnostics::with_threshold(&m, 1e-9);
        let lax = ModelDiagnostics::with_threshold(&m, 10.0);
        assert_eq!(strict.users.converged_fraction, 0.0);
        assert_eq!(lax.users.converged_fraction, 1.0);
    }

    #[test]
    fn display_mentions_both_populations() {
        let text = ModelDiagnostics::of(&trained_model(100)).to_string();
        assert!(text.contains("users:"));
        assert!(text.contains("services:"));
        assert!(text.contains("converged"));
    }

    #[test]
    fn quarantine_histogram_separates_clean_and_dirty_services() {
        let mut guard = crate::guard::SampleGuard::new(crate::guard::GuardConfig::default());
        // Service 0: all clean. Service 1: half garbage.
        for _ in 0..20 {
            let _ = guard.admit(0, 0, 1.0);
        }
        for k in 0..20 {
            let v = if k % 2 == 0 { 1.0 } else { f64::NAN };
            let _ = guard.admit(0, 1, v);
        }
        let d = QuarantineDiagnostics::of(&guard);
        assert_eq!(d.services_seen, 2);
        assert_eq!(d.services_with_rejects, 1);
        assert_eq!(d.stats.accepted, 30);
        assert_eq!(d.stats.not_finite, 10);
        assert_eq!(d.reject_rate_histogram.iter().sum::<u64>(), 2);
        // Clean service lands in bin 0; the 50%-garbage one in the middle
        // (the epsilon-widened range puts rate 0.5 just under the 5th edge).
        assert_eq!(d.reject_rate_histogram[0], 1);
        assert_eq!(d.reject_rate_histogram[4], 1);
        assert_eq!(d.worst_services, vec![(1, 10, 20)]);
        let text = d.to_string();
        assert!(text.contains("histogram"));
        assert!(text.contains("service 1: 10/20"));
    }

    #[test]
    fn quarantine_diagnostics_of_untouched_guard_is_empty() {
        let guard = crate::guard::SampleGuard::new(crate::guard::GuardConfig::default());
        let d = QuarantineDiagnostics::of(&guard);
        assert_eq!(d.services_seen, 0);
        assert_eq!(d.stats.seen(), 0);
        assert_eq!(d.reject_rate_histogram.iter().sum::<u64>(), 0);
        assert!(d.worst_services.is_empty());
    }
}
