//! Operational diagnostics for a live AMF model.
//!
//! The paper's prediction service runs unattended; an operator needs to see
//! whether the model is healthy without ground truth to evaluate against.
//! [`ModelDiagnostics`] summarizes the observable internals: the error
//! trackers (how converged the population is — high EMA errors mean cold or
//! churned entities), and factor-vector norms (runaway norms indicate
//! divergence, near-zero norms indicate dead entities).

use crate::model::AmfModel;
use qos_linalg::stats;
use serde::{Deserialize, Serialize};

/// Summary of one entity population (users, or services).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopulationDiagnostics {
    /// Number of registered entities.
    pub count: usize,
    /// Mean EMA error across the population.
    pub mean_error: f64,
    /// Median EMA error.
    pub median_error: f64,
    /// Worst EMA error.
    pub max_error: f64,
    /// Fraction with EMA error below `converged_threshold`.
    pub converged_fraction: f64,
    /// Mean L2 norm of the factor vectors.
    pub mean_norm: f64,
    /// Largest L2 norm (divergence indicator).
    pub max_norm: f64,
}

/// Full model health snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelDiagnostics {
    /// User-side summary.
    pub users: PopulationDiagnostics,
    /// Service-side summary.
    pub services: PopulationDiagnostics,
    /// Total online updates applied.
    pub updates: u64,
    /// The threshold used for `converged_fraction`.
    pub converged_threshold: f64,
}

/// Default EMA-error threshold under which an entity counts as converged.
pub const DEFAULT_CONVERGED_THRESHOLD: f64 = 0.3;

fn summarize(errors: &[f64], norms: &[f64], converged_threshold: f64) -> PopulationDiagnostics {
    let count = errors.len();
    if count == 0 {
        return PopulationDiagnostics {
            count: 0,
            mean_error: f64::NAN,
            median_error: f64::NAN,
            max_error: f64::NAN,
            converged_fraction: f64::NAN,
            mean_norm: f64::NAN,
            max_norm: f64::NAN,
        };
    }
    let converged = errors.iter().filter(|&&e| e < converged_threshold).count();
    PopulationDiagnostics {
        count,
        mean_error: stats::mean(errors).expect("non-empty"),
        median_error: stats::median(errors).expect("non-empty"),
        max_error: stats::max(errors).expect("non-empty"),
        converged_fraction: converged as f64 / count as f64,
        mean_norm: stats::mean(norms).expect("non-empty"),
        max_norm: stats::max(norms).expect("non-empty"),
    }
}

impl ModelDiagnostics {
    /// Computes a snapshot with the default convergence threshold.
    pub fn of(model: &AmfModel) -> Self {
        Self::with_threshold(model, DEFAULT_CONVERGED_THRESHOLD)
    }

    /// Computes a snapshot counting entities with EMA error below
    /// `converged_threshold` as converged.
    pub fn with_threshold(model: &AmfModel, converged_threshold: f64) -> Self {
        let user_errors: Vec<f64> = (0..model.num_users())
            .filter_map(|u| model.user_error(u))
            .collect();
        let user_norms: Vec<f64> = (0..model.num_users())
            .filter_map(|u| model.user_factors(u))
            .map(qos_linalg::vector::norm2)
            .collect();
        let service_errors: Vec<f64> = (0..model.num_services())
            .filter_map(|s| model.service_error(s))
            .collect();
        let service_norms: Vec<f64> = (0..model.num_services())
            .filter_map(|s| model.service_factors(s))
            .map(qos_linalg::vector::norm2)
            .collect();
        Self {
            users: summarize(&user_errors, &user_norms, converged_threshold),
            services: summarize(&service_errors, &service_norms, converged_threshold),
            updates: model.update_count(),
            converged_threshold,
        }
    }

    /// A quick health verdict: `true` when no factor norm has run away and
    /// at least one entity exists.
    pub fn looks_healthy(&self, norm_limit: f64) -> bool {
        self.users.count > 0
            && self.services.count > 0
            && self.users.max_norm < norm_limit
            && self.services.max_norm < norm_limit
    }
}

impl std::fmt::Display for ModelDiagnostics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "updates: {}", self.updates)?;
        for (name, p) in [("users", &self.users), ("services", &self.services)] {
            writeln!(
                f,
                "{name}: {} registered, error mean/median/max {:.3}/{:.3}/{:.3}, \
                 {:.0}% converged (<{:.2}), norm mean/max {:.3}/{:.3}",
                p.count,
                p.mean_error,
                p.median_error,
                p.max_error,
                p.converged_fraction * 100.0,
                self.converged_threshold,
                p.mean_norm,
                p.max_norm,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AmfConfig;

    fn trained_model(updates: usize) -> AmfModel {
        let mut m = AmfModel::new(AmfConfig::response_time()).unwrap();
        for k in 0..updates {
            m.observe(k % 4, k % 6, 0.5 + (k % 3) as f64);
        }
        m
    }

    #[test]
    fn empty_model_is_all_nan_counts_zero() {
        let m = AmfModel::new(AmfConfig::response_time()).unwrap();
        let d = ModelDiagnostics::of(&m);
        assert_eq!(d.users.count, 0);
        assert!(d.users.mean_error.is_nan());
        assert!(!d.looks_healthy(10.0));
    }

    #[test]
    fn trained_model_reports_population() {
        let m = trained_model(600);
        let d = ModelDiagnostics::of(&m);
        assert_eq!(d.users.count, 4);
        assert_eq!(d.services.count, 6);
        assert_eq!(d.updates, 600);
        assert!(d.users.mean_error.is_finite());
        assert!(d.users.max_error >= d.users.median_error);
        assert!(d.users.mean_norm > 0.0);
    }

    #[test]
    fn convergence_fraction_grows_with_training() {
        let early = ModelDiagnostics::of(&trained_model(20));
        let late = ModelDiagnostics::of(&trained_model(2000));
        assert!(
            late.users.converged_fraction >= early.users.converged_fraction,
            "training should converge entities: {} -> {}",
            early.users.converged_fraction,
            late.users.converged_fraction
        );
        assert!(late.users.converged_fraction > 0.5);
    }

    #[test]
    fn health_check_flags_runaway_norms() {
        let m = trained_model(200);
        let d = ModelDiagnostics::of(&m);
        assert!(d.looks_healthy(10.0));
        assert!(!d.looks_healthy(1e-6));
    }

    #[test]
    fn threshold_changes_converged_fraction() {
        let m = trained_model(500);
        let strict = ModelDiagnostics::with_threshold(&m, 1e-9);
        let lax = ModelDiagnostics::with_threshold(&m, 10.0);
        assert_eq!(strict.users.converged_fraction, 0.0);
        assert_eq!(lax.users.converged_fraction, 1.0);
    }

    #[test]
    fn display_mentions_both_populations() {
        let text = ModelDiagnostics::of(&trained_model(100)).to_string();
        assert!(text.contains("users:"));
        assert!(text.contains("services:"));
        assert!(text.contains("converged"));
    }
}
