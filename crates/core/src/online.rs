//! The per-sample SGD update (paper Eq. 16–17; the `OnlineUpdate` function of
//! Algorithm 1).
//!
//! Given one observed sample with normalized value `r` and the current
//! feature vectors `U_i`, `S_j`, the update is:
//!
//! ```text
//! U_i ← U_i − η·w_u·((g − r)·g′·S_j / r² + λ_u·U_i)
//! S_j ← S_j − η·w_s·((g − r)·g′·U_i / r² + λ_s·S_j)
//! ```
//!
//! where `g = sigmoid(U_i^T S_j)`, `g′` its derivative, and `(w_u, w_s)` the
//! adaptive weights of Eq. 12. Both vectors are updated *simultaneously*
//! (the gradients are computed before either vector moves), as the paper
//! specifies in Algorithm 1 line 24.

use crate::config::{AmfConfig, LossKind};
use qos_transform::sigmoid;

/// Floor applied to normalized values `r` wherever they appear in a
/// denominator (`1/r²` in the gradient, `1/r` in the error): the relative
/// loss is undefined at `r = 0`, which corresponds to a raw value at `R_min`.
pub const NORMALIZED_FLOOR: f64 = 1e-2;

/// Clamp on the per-sample gradient coefficient `(g − r)·g′ / r²`.
///
/// With a well-tuned Box–Cox transform, normalized values are mid-range and
/// the coefficient stays well under 1. With a *poor* transform (e.g. the
/// `α = 1` ablation on skewed data) most `r` sit near the floor and the
/// `1/r²` factor can reach 10⁴. Clipping keeps the ablation configurations
/// trainable without affecting the paper's operating point.
pub const GRADIENT_CLIP: f64 = 5.0;

/// Clamp on each factor component's per-update step.
///
/// The two vectors multiply each other's gradients (`ΔU ∝ S`, `ΔS ∝ U`), so
/// once a mis-scaled loss makes them large, every update makes them larger —
/// a runaway that drives the inner product deep into sigmoid saturation,
/// where `g′` underflows and the pair freezes at a degenerate prediction.
/// Bounding the per-component step breaks the feedback loop; the paper's
/// operating point takes steps an order of magnitude below this bound.
pub const STEP_CLIP: f64 = 0.05;

/// Inputs/outputs of one online update, exposed for inspection and tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateOutcome {
    /// Normalized actual `r` the step was fed (after the Box–Cox transform).
    pub r: f64,
    /// Model output `g(U_i^T S_j)` *before* the update.
    pub g: f64,
    /// Per-sample relative error `|r − g| / r` before the update (Eq. 15).
    pub sample_error: f64,
    /// Adaptive weight applied to the user side.
    pub w_user: f64,
    /// Adaptive weight applied to the service side.
    pub w_service: f64,
}

/// Applies one SGD step for the sample `(U_i, S_j, r)` in place.
///
/// `e_user` / `e_service` are the *current* EMA errors of the two entities
/// (the caller updates the trackers with the returned
/// [`UpdateOutcome::sample_error`] — the paper computes weights from the
/// trackers first, Algorithm 1 lines 21–23, then updates them).
pub fn sgd_step(
    config: &AmfConfig,
    user_factors: &mut [f64],
    service_factors: &mut [f64],
    r: f64,
    e_user: f64,
    e_service: f64,
) -> UpdateOutcome {
    debug_assert_eq!(user_factors.len(), service_factors.len());
    // Specialize for the paper's operating dimension: with `d` known at
    // compile time the dot chain and update loop fully unroll (no
    // loop-carried branches, no slice-length checks). Unrolling preserves
    // the per-element operation order exactly, so results stay bit-for-bit
    // identical to the dynamic-length path — the bitwise property test
    // below covers both. Measured on the bench workload, this fully
    // unrolled form also beats the four-wide lane kernel at d = 10, so it
    // stays the first choice at the default dimension.
    if let (Ok(u), Ok(s)) = (
        <&mut [f64; 10]>::try_from(&mut *user_factors),
        <&mut [f64; 10]>::try_from(&mut *service_factors),
    ) {
        return sgd_step_fixed::<10>(config, u, s, r, e_user, e_service);
    }
    // Runtime dispatch for non-default dimensions: hosts with 256-bit
    // vector units take the f64x4 lane kernel. All kernels are bit-for-bit
    // identical (the lane ops are the same scalar IEEE operations, the dot
    // stays a sequential fold), so the dispatch decision affects throughput
    // only — bitwise parity between sequential, sharded, and SIMD-enabled
    // runs is preserved. The property tests below pin lane-vs-scalar and
    // lane-vs-reference agreement.
    if qos_linalg::simd::f64x4_runtime() {
        return sgd_step_lanes(config, user_factors, service_factors, r, e_user, e_service);
    }
    sgd_step_dyn(config, user_factors, service_factors, r, e_user, e_service)
}

fn sgd_step_fixed<const D: usize>(
    config: &AmfConfig,
    user_factors: &mut [f64; D],
    service_factors: &mut [f64; D],
    r: f64,
    e_user: f64,
    e_service: f64,
) -> UpdateOutcome {
    sgd_step_dyn(config, user_factors, service_factors, r, e_user, e_service)
}

#[inline(always)]
fn sgd_step_dyn(
    config: &AmfConfig,
    user_factors: &mut [f64],
    service_factors: &mut [f64],
    r: f64,
    e_user: f64,
    e_service: f64,
) -> UpdateOutcome {
    let r_safe = r.max(NORMALIZED_FLOOR);

    // Fused scalar path. Every floating-point operation below happens in the
    // same order as the original two-kernel formulation (`vector::dot` then
    // `sigmoid`/`sigmoid_derivative` then the update loop), which is what the
    // bitwise sequential-vs-sharded parity suite pins down:
    // * the dot accumulates left-to-right from 0.0, exactly like
    //   `vector::dot`'s sequential fold;
    // * `g · (1 − g)` is the identity `sigmoid_derivative` computes
    //   internally, just without re-evaluating `exp` — same inputs, same
    //   operations, one transcendental instead of two.
    // The `#[cfg(test)] reference` module keeps the original formulation and
    // a property test asserts bit-for-bit agreement.
    let mut x = 0.0;
    for (uk, sk) in user_factors.iter().zip(service_factors.iter()) {
        x += uk * sk;
    }
    let g = sigmoid(x);
    let gp = g * (1.0 - g);
    let sample_error = (r - g).abs() / r_safe;

    let (w_user, w_service) = if config.adaptive_weights {
        crate::weights::adaptive_weights(e_user, e_service)
    } else {
        // Ablation: fixed, symmetric full-step weights.
        (1.0, 1.0)
    };

    // Gradient common coefficient: (g − r)·g′ / r² for the paper's relative
    // loss, or (g − r)·g′ for the squared-loss ablation. Clipped to avoid
    // the saturation trap (see [`GRADIENT_CLIP`]).
    let coef = match config.loss {
        LossKind::Relative => (g - r) * gp / (r_safe * r_safe),
        LossKind::Squared => (g - r) * gp,
    }
    .clamp(-GRADIENT_CLIP, GRADIENT_CLIP);

    let eta = config.learning_rate;
    let (eta_user, eta_service) = (eta * w_user, eta * w_service);
    let (lam_user, lam_service) = (config.lambda_user, config.lambda_service);
    for (u, s) in user_factors.iter_mut().zip(service_factors.iter_mut()) {
        let (uk, sk) = (*u, *s);
        let du = (eta_user * (coef * sk + lam_user * uk)).clamp(-STEP_CLIP, STEP_CLIP);
        let ds = (eta_service * (coef * uk + lam_service * sk)).clamp(-STEP_CLIP, STEP_CLIP);
        *u = uk - du;
        *s = sk - ds;
    }

    UpdateOutcome {
        r,
        g,
        sample_error,
        w_user,
        w_service,
    }
}

/// f64x4 lane variant of the fused kernel.
///
/// The dot product stays a sequential scalar fold — its left-to-right
/// accumulation order *is* the bitwise contract — but the element-wise
/// update loop is lane-parallel: each component's step reads only that
/// component of the two vectors, so processing four components per
/// iteration with [`F64x4`] performs the identical per-component IEEE
/// operations (multiply is commutative at the bit level, clamp is
/// per-lane `f64::clamp`, and nothing is contracted into an FMA). The
/// `lane_kernel_*` property tests pin bitwise agreement with both the
/// scalar fused kernel and the pre-fusion reference across dimensions.
fn sgd_step_lanes(
    config: &AmfConfig,
    user_factors: &mut [f64],
    service_factors: &mut [f64],
    r: f64,
    e_user: f64,
    e_service: f64,
) -> UpdateOutcome {
    use qos_linalg::simd::F64x4;

    let r_safe = r.max(NORMALIZED_FLOOR);

    let mut x = 0.0;
    for (uk, sk) in user_factors.iter().zip(service_factors.iter()) {
        x += uk * sk;
    }
    let g = sigmoid(x);
    let gp = g * (1.0 - g);
    let sample_error = (r - g).abs() / r_safe;

    let (w_user, w_service) = if config.adaptive_weights {
        crate::weights::adaptive_weights(e_user, e_service)
    } else {
        (1.0, 1.0)
    };

    let coef = match config.loss {
        LossKind::Relative => (g - r) * gp / (r_safe * r_safe),
        LossKind::Squared => (g - r) * gp,
    }
    .clamp(-GRADIENT_CLIP, GRADIENT_CLIP);

    let eta = config.learning_rate;
    let (eta_user, eta_service) = (eta * w_user, eta * w_service);
    let (lam_user, lam_service) = (config.lambda_user, config.lambda_service);

    let dim = user_factors.len();
    let lanes_end = dim - dim % 4;
    let v_coef = F64x4::splat(coef);
    let v_eta_user = F64x4::splat(eta_user);
    let v_eta_service = F64x4::splat(eta_service);
    let v_lam_user = F64x4::splat(lam_user);
    let v_lam_service = F64x4::splat(lam_service);
    let mut k = 0;
    while k < lanes_end {
        let vu = F64x4::load(&user_factors[k..]);
        let vs = F64x4::load(&service_factors[k..]);
        // Per lane: du = (eta_user · (coef·sk + lam_user·uk)).clamp(…) —
        // the same three multiplies, one add, one clamp as the scalar loop.
        let du = v_eta_user
            .mul(v_coef.mul(vs).add(v_lam_user.mul(vu)))
            .clamp(-STEP_CLIP, STEP_CLIP);
        let ds = v_eta_service
            .mul(v_coef.mul(vu).add(v_lam_service.mul(vs)))
            .clamp(-STEP_CLIP, STEP_CLIP);
        vu.sub(du).store(&mut user_factors[k..]);
        vs.sub(ds).store(&mut service_factors[k..]);
        k += 4;
    }
    for (u, s) in user_factors[lanes_end..]
        .iter_mut()
        .zip(service_factors[lanes_end..].iter_mut())
    {
        let (uk, sk) = (*u, *s);
        let du = (eta_user * (coef * sk + lam_user * uk)).clamp(-STEP_CLIP, STEP_CLIP);
        let ds = (eta_service * (coef * uk + lam_service * sk)).clamp(-STEP_CLIP, STEP_CLIP);
        *u = uk - du;
        *s = sk - ds;
    }

    UpdateOutcome {
        r,
        g,
        sample_error,
        w_user,
        w_service,
    }
}

/// The pre-fusion scalar formulation, kept verbatim as the bitwise oracle
/// for the fused kernel (see the property tests below).
#[cfg(test)]
pub(crate) mod reference {
    use super::*;
    use qos_transform::{sigmoid, sigmoid_derivative};

    /// Original two-kernel `sgd_step`: library dot, separate
    /// `sigmoid_derivative` evaluation, un-hoisted update loop.
    pub(crate) fn sgd_step(
        config: &AmfConfig,
        user_factors: &mut [f64],
        service_factors: &mut [f64],
        r: f64,
        e_user: f64,
        e_service: f64,
    ) -> UpdateOutcome {
        let r_safe = r.max(NORMALIZED_FLOOR);

        let x = qos_linalg::vector::dot(user_factors, service_factors);
        let g = sigmoid(x);
        let gp = sigmoid_derivative(x);
        let sample_error = (r - g).abs() / r_safe;

        let (w_user, w_service) = if config.adaptive_weights {
            crate::weights::adaptive_weights(e_user, e_service)
        } else {
            (1.0, 1.0)
        };

        let coef = match config.loss {
            LossKind::Relative => (g - r) * gp / (r_safe * r_safe),
            LossKind::Squared => (g - r) * gp,
        }
        .clamp(-GRADIENT_CLIP, GRADIENT_CLIP);

        let eta = config.learning_rate;
        for k in 0..user_factors.len() {
            let (uk, sk) = (user_factors[k], service_factors[k]);
            let du =
                (eta * w_user * (coef * sk + config.lambda_user * uk)).clamp(-STEP_CLIP, STEP_CLIP);
            let ds = (eta * w_service * (coef * uk + config.lambda_service * sk))
                .clamp(-STEP_CLIP, STEP_CLIP);
            user_factors[k] = uk - du;
            service_factors[k] = sk - ds;
        }

        UpdateOutcome {
            r,
            g,
            sample_error,
            w_user,
            w_service,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AmfConfig;
    use qos_transform::sigmoid_derivative;

    fn config() -> AmfConfig {
        AmfConfig::response_time()
    }

    #[test]
    fn update_reduces_error_on_repeat() {
        let cfg = config();
        // Asymmetric init: exactly anti-parallel vectors sit on a saddle of
        // the symmetric update (u_k = -s_k is invariant), which random
        // initialization never produces.
        let mut u: Vec<f64> = (0..10).map(|k| 0.05 + 0.01 * k as f64).collect();
        let mut s: Vec<f64> = (0..10).map(|k| -0.05 + 0.012 * k as f64).collect();
        let r = 0.7;
        let first = sgd_step(&cfg, &mut u, &mut s, r, 1.0, 1.0);
        for _ in 0..200 {
            sgd_step(&cfg, &mut u, &mut s, r, 1.0, 1.0);
        }
        let last = sgd_step(&cfg, &mut u, &mut s, r, 1.0, 1.0);
        assert!(
            last.sample_error < first.sample_error / 5.0,
            "error {} -> {}",
            first.sample_error,
            last.sample_error
        );
        assert!((sigmoid(qos_linalg::vector::dot(&u, &s)) - r).abs() < 0.05);
    }

    #[test]
    fn simultaneous_update_uses_pre_step_vectors() {
        // If S_j were updated before computing U_i's gradient the result
        // would differ; verify the user step depends only on the original
        // service vector by replaying it manually.
        let cfg = config();
        let u0 = vec![0.1, -0.2, 0.3];
        let s0 = vec![0.2, 0.1, -0.1];
        let mut cfg3 = cfg;
        cfg3.dimension = 3;
        let mut u = u0.clone();
        let mut s = s0.clone();
        let r = 0.4;
        sgd_step(&cfg3, &mut u, &mut s, r, 0.5, 0.5);

        // Manual replay.
        let x = qos_linalg::vector::dot(&u0, &s0);
        let g = sigmoid(x);
        let gp = sigmoid_derivative(x);
        let coef = (g - r) * gp / (r * r);
        let (wu, ws) = crate::weights::adaptive_weights(0.5, 0.5);
        for k in 0..3 {
            let expect_u =
                u0[k] - cfg3.learning_rate * wu * (coef * s0[k] + cfg3.lambda_user * u0[k]);
            let expect_s =
                s0[k] - cfg3.learning_rate * ws * (coef * u0[k] + cfg3.lambda_service * s0[k]);
            assert!((u[k] - expect_u).abs() < 1e-12);
            assert!((s[k] - expect_s).abs() < 1e-12);
        }
    }

    #[test]
    fn adaptive_weights_shift_burden_to_inaccurate_side() {
        let cfg = config();
        let u0 = vec![0.1; 10];
        let s0 = vec![0.1; 10];
        // New user (error 1.0), converged service (error 0.01).
        let mut u = u0.clone();
        let mut s = s0.clone();
        let out = sgd_step(&cfg, &mut u, &mut s, 0.9, 1.0, 0.01);
        assert!(out.w_user > 0.98);
        let user_move = qos_linalg::vector::distance_sq(&u, &u0);
        let service_move = qos_linalg::vector::distance_sq(&s, &s0);
        assert!(
            user_move > 50.0 * service_move,
            "user moved {user_move}, service moved {service_move}"
        );
    }

    #[test]
    fn disabled_adaptive_weights_gives_full_steps() {
        let mut cfg = config();
        cfg.adaptive_weights = false;
        let mut u = vec![0.1; 10];
        let mut s = vec![0.1; 10];
        let out = sgd_step(&cfg, &mut u, &mut s, 0.9, 1.0, 0.01);
        assert_eq!(out.w_user, 1.0);
        assert_eq!(out.w_service, 1.0);
    }

    #[test]
    fn squared_loss_takes_smaller_steps_on_small_r() {
        // For r near the floor, the relative loss amplifies the gradient by
        // 1/r^2; the squared loss does not.
        let u0 = vec![0.1; 10];
        let s0 = vec![0.1; 10];
        let r = 0.05;

        let mut cfg_rel = config();
        cfg_rel.loss = LossKind::Relative;
        let mut u_rel = u0.clone();
        let mut s_rel = s0.clone();
        sgd_step(&cfg_rel, &mut u_rel, &mut s_rel, r, 0.5, 0.5);

        let mut cfg_sq = config();
        cfg_sq.loss = LossKind::Squared;
        let mut u_sq = u0.clone();
        let mut s_sq = s0.clone();
        sgd_step(&cfg_sq, &mut u_sq, &mut s_sq, r, 0.5, 0.5);

        let move_rel = qos_linalg::vector::distance_sq(&u_rel, &u0);
        let move_sq = qos_linalg::vector::distance_sq(&u_sq, &u0);
        assert!(move_rel > move_sq * 10.0);
    }

    #[test]
    fn perfect_prediction_only_regularizes() {
        let cfg = config();
        // Force g == r by picking r = sigmoid(x) for the given vectors.
        let mut u = vec![0.2; 10];
        let mut s = vec![0.3; 10];
        let r = sigmoid(qos_linalg::vector::dot(&u, &s));
        let before_u = u.clone();
        let out = sgd_step(&cfg, &mut u, &mut s, r, 0.5, 0.5);
        assert_eq!(out.sample_error, 0.0);
        // Only the tiny regularization pull remains.
        for (after, before) in u.iter().zip(&before_u) {
            let shrink = before - after;
            assert!(shrink.abs() <= cfg.learning_rate * cfg.lambda_user * before.abs() + 1e-12);
        }
    }

    #[test]
    fn zero_r_does_not_produce_nan() {
        let cfg = config();
        let mut u = vec![0.1; 10];
        let mut s = vec![0.1; 10];
        let out = sgd_step(&cfg, &mut u, &mut s, 0.0, 1.0, 1.0);
        assert!(out.sample_error.is_finite());
        assert!(u.iter().all(|v| v.is_finite()));
        assert!(s.iter().all(|v| v.is_finite()));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        fn random_factors(rng: &mut StdRng, dim: usize, magnitude: f64) -> Vec<f64> {
            (0..dim)
                .map(|_| (rng.random::<f64>() * 2.0 - 1.0) * magnitude)
                .collect()
        }

        proptest! {
            #[test]
            fn step_is_always_finite_and_bounded(
                r in 0.0..1.0f64,
                log_mag in -6.0..2.0f64,
                e_user in 0.0..1.0f64,
                e_service in 0.0..1.0f64,
                seed in 0u64..1u64 << 32,
            ) {
                // Factor magnitudes up to 10² drive the inner product deep
                // into sigmoid saturation (g' underflows); magnitudes near
                // 10⁻⁶ exercise the regularization-only regime. In every
                // case the clamps must keep the update finite and each
                // component's move inside STEP_CLIP.
                for loss in [LossKind::Relative, LossKind::Squared] {
                    let mut cfg = config();
                    cfg.loss = loss;
                    let mut rng = StdRng::seed_from_u64(seed);
                    let magnitude = 10f64.powf(log_mag);
                    let mut u = random_factors(&mut rng, cfg.dimension, magnitude);
                    let mut s = random_factors(&mut rng, cfg.dimension, magnitude);
                    let (before_u, before_s) = (u.clone(), s.clone());
                    let out = sgd_step(&cfg, &mut u, &mut s, r, e_user, e_service);
                    prop_assert!(out.g.is_finite());
                    prop_assert!(out.sample_error.is_finite());
                    prop_assert!(out.sample_error >= 0.0);
                    // Adaptive weights are a convex split of the step.
                    prop_assert!(out.w_user >= 0.0 && out.w_service >= 0.0);
                    prop_assert!((out.w_user + out.w_service - 1.0).abs() < 1e-12);
                    for k in 0..cfg.dimension {
                        prop_assert!(u[k].is_finite() && s[k].is_finite());
                        prop_assert!((u[k] - before_u[k]).abs() <= STEP_CLIP + 1e-15);
                        prop_assert!((s[k] - before_s[k]).abs() <= STEP_CLIP + 1e-15);
                    }
                }
            }

            #[test]
            fn fused_step_is_bitwise_identical_to_reference(
                samples in proptest::collection::vec(
                    (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64),
                    1..40
                ),
                log_mag in -4.0..1.0f64,
                seed in 0u64..1u64 << 32,
            ) {
                // Chains of updates on the same pair, so any drift between
                // the fused kernel and the pre-fusion oracle compounds and
                // cannot hide. Exercises both losses and both weight modes.
                for (loss, adaptive) in [
                    (LossKind::Relative, true),
                    (LossKind::Relative, false),
                    (LossKind::Squared, true),
                ] {
                    let mut cfg = config();
                    cfg.loss = loss;
                    cfg.adaptive_weights = adaptive;
                    let mut rng = StdRng::seed_from_u64(seed);
                    let magnitude = 10f64.powf(log_mag);
                    let mut u = random_factors(&mut rng, cfg.dimension, magnitude);
                    let mut s = random_factors(&mut rng, cfg.dimension, magnitude);
                    let mut u_ref = u.clone();
                    let mut s_ref = s.clone();
                    for &(r, e_user, e_service) in &samples {
                        let fused = sgd_step(&cfg, &mut u, &mut s, r, e_user, e_service);
                        let oracle = reference::sgd_step(
                            &cfg, &mut u_ref, &mut s_ref, r, e_user, e_service,
                        );
                        prop_assert_eq!(fused, oracle);
                        for k in 0..cfg.dimension {
                            prop_assert_eq!(u[k].to_bits(), u_ref[k].to_bits());
                            prop_assert_eq!(s[k].to_bits(), s_ref[k].to_bits());
                        }
                    }
                }
            }

            #[test]
            fn lane_kernel_is_bitwise_identical_across_dims(
                dim in 1usize..=24,
                samples in proptest::collection::vec(
                    (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64),
                    1..32
                ),
                log_mag in -4.0..1.0f64,
                seed in 0u64..1u64 << 32,
            ) {
                // The SIMD dispatch must be invisible: regardless of the
                // vector dimension (full f64x4 lanes, scalar tail, or
                // shorter-than-a-lane), chained lane-kernel updates must
                // match both the scalar fused kernel and the pre-fusion
                // reference bit for bit.
                for (loss, adaptive) in [
                    (LossKind::Relative, true),
                    (LossKind::Relative, false),
                    (LossKind::Squared, true),
                ] {
                    let mut cfg = config();
                    cfg.dimension = dim;
                    cfg.loss = loss;
                    cfg.adaptive_weights = adaptive;
                    let mut rng = StdRng::seed_from_u64(seed);
                    let magnitude = 10f64.powf(log_mag);
                    let mut u = random_factors(&mut rng, dim, magnitude);
                    let mut s = random_factors(&mut rng, dim, magnitude);
                    let mut u_scalar = u.clone();
                    let mut s_scalar = s.clone();
                    let mut u_ref = u.clone();
                    let mut s_ref = s.clone();
                    for &(r, e_user, e_service) in &samples {
                        let lanes = sgd_step_lanes(&cfg, &mut u, &mut s, r, e_user, e_service);
                        let scalar = sgd_step_dyn(
                            &cfg, &mut u_scalar, &mut s_scalar, r, e_user, e_service,
                        );
                        let oracle = reference::sgd_step(
                            &cfg, &mut u_ref, &mut s_ref, r, e_user, e_service,
                        );
                        prop_assert_eq!(lanes, scalar);
                        prop_assert_eq!(lanes, oracle);
                        for k in 0..dim {
                            prop_assert_eq!(u[k].to_bits(), u_scalar[k].to_bits());
                            prop_assert_eq!(s[k].to_bits(), s_scalar[k].to_bits());
                            prop_assert_eq!(u[k].to_bits(), u_ref[k].to_bits());
                            prop_assert_eq!(s[k].to_bits(), s_ref[k].to_bits());
                        }
                    }
                }
            }

            #[test]
            fn floor_region_never_blows_up(
                r in 0.0..NORMALIZED_FLOOR,
                seed in 0u64..1u64 << 32,
            ) {
                // Everything at or below NORMALIZED_FLOOR shares the floored
                // denominator: the error is |r − g|/FLOOR exactly, never inf.
                let cfg = config();
                let mut rng = StdRng::seed_from_u64(seed);
                let mut u = random_factors(&mut rng, cfg.dimension, 0.3);
                let mut s = random_factors(&mut rng, cfg.dimension, 0.3);
                let out = sgd_step(&cfg, &mut u, &mut s, r, 1.0, 1.0);
                prop_assert!(out.sample_error.is_finite());
                prop_assert!(
                    (out.sample_error - (r - out.g).abs() / NORMALIZED_FLOOR).abs() < 1e-12
                );
                prop_assert!(u.iter().chain(s.iter()).all(|v| v.is_finite()));
            }

            #[test]
            fn saturated_sigmoid_still_updates_finitely(
                sign in proptest::bool::ANY,
                seed in 0u64..1u64 << 32,
            ) {
                // A pair frozen deep in saturation (|x| ≈ 400, g' == 0):
                // the update degenerates to pure regularization and stays
                // finite — no NaN from 0·inf, no runaway from 1/r².
                let cfg = config();
                let mut rng = StdRng::seed_from_u64(seed);
                let direction = if sign { 1.0 } else { -1.0 };
                let mut u = vec![direction * 20.0; cfg.dimension];
                let mut s: Vec<f64> =
                    (0..cfg.dimension).map(|_| 2.0 + rng.random::<f64>()).collect();
                let out = sgd_step(&cfg, &mut u, &mut s, 0.5, 1.0, 1.0);
                // Fully saturated: within an ulp of 1, or a denormal-scale
                // positive on the negative tail.
                prop_assert!(out.g < 1e-100 || out.g > 1.0 - 1e-12);
                prop_assert!(out.sample_error.is_finite());
                prop_assert!(u.iter().chain(s.iter()).all(|v| v.is_finite()));
            }
        }
    }
}
