//! Adaptive Matrix Factorization (AMF) — the primary contribution of
//! *"Towards Online, Accurate, and Scalable QoS Prediction for Runtime
//! Service Adaptation"* (ICDCS 2014).
//!
//! AMF estimates the QoS a user would observe on a *candidate* service it has
//! never invoked, by factorizing the sparse user–service QoS matrix — but
//! unlike offline matrix factorization it is:
//!
//! * **online** — every observed sample `(t, u, s, R)` updates only the two
//!   feature vectors it touches (stochastic gradient descent, Eq. 8–9), so
//!   the model ingests a live QoS stream without retraining;
//! * **accurate** — QoS values are de-skewed by a Box–Cox transform and
//!   normalized (Eq. 3–4), and the loss is *relative* error (Eq. 6), which is
//!   what matters when response times span three orders of magnitude;
//! * **scalable** — per-user and per-service **adaptive weights** derived from
//!   exponential-moving-average error trackers (Eq. 12–15) let new users and
//!   services converge quickly without disturbing already-converged ones
//!   (Eq. 16–17), so the model is robust under churn.
//!
//! The crate is organized around [`AmfModel`] (feature vectors + error
//! trackers + transform), [`AmfTrainer`] (Algorithm 1: the continuous loop
//! that mixes newly observed samples with replayed live samples and discards
//! expired ones via [`ObservationStore`]), and [`AmfConfig`] (all
//! hyperparameters, with the paper's defaults).
//!
//! # Examples
//!
//! ```
//! use amf_core::{AmfConfig, AmfModel};
//!
//! // Response-time model with the paper's hyperparameters.
//! let mut model = AmfModel::new(AmfConfig::response_time())?;
//!
//! // Observe a few QoS samples (user, service, seconds).
//! for (u, s, rt) in [(0, 0, 1.4), (0, 2, 1.1), (1, 1, 0.3), (1, 0, 1.3)] {
//!     model.observe(u, s, rt);
//! }
//!
//! // Predict an unobserved pair.
//! let estimate = model.predict(1, 2).expect("both ids are known");
//! assert!((0.0..=20.0).contains(&estimate));
//! # Ok::<(), amf_core::AmfError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod diagnostics;
pub mod engine;
pub mod expiry;
pub mod fault;
pub mod guard;
pub mod model;
pub(crate) mod obs;
pub mod online;
pub mod persistence;
pub(crate) mod relaxed;
pub mod stream;
pub mod trainer;
pub mod weights;

pub use config::{AmfConfig, LossKind};
pub use diagnostics::{ModelDiagnostics, QuarantineDiagnostics};
pub use engine::{
    Consistency, EngineOptions, FaultEvent, FaultStats, FeedOutcome, ShardedEngine, ShedPolicy,
};
pub use expiry::ObservationStore;
pub use fault::{FaultContext, FaultPlan, KillPhase, NetFault};
pub use guard::{GuardConfig, GuardStats, QuarantinedSample, RejectReason, SampleGuard};
pub use model::AmfModel;
pub use stream::{
    AccuracyWindow, DriftConfig, DriftSentinel, DriftVerdict, PageHinkley, WindowedAccuracy,
    ACCURACY_WINDOW,
};
pub use trainer::{AmfTrainer, TrainReport};
pub use weights::ErrorTracker;

/// Error type for AMF configuration and persistence.
#[derive(Debug)]
pub enum AmfError {
    /// A hyperparameter was outside its valid domain.
    InvalidConfig(String),
    /// The data transform could not be constructed.
    Transform(qos_transform::TransformError),
    /// Persistence I/O failed.
    Io(std::io::Error),
    /// A persisted model file was malformed.
    Corrupt {
        /// 1-based line of the failure.
        line: usize,
        /// Explanation.
        message: String,
    },
}

impl std::fmt::Display for AmfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AmfError::InvalidConfig(msg) => write!(f, "invalid AMF config: {msg}"),
            AmfError::Transform(e) => write!(f, "transform error: {e}"),
            AmfError::Io(e) => write!(f, "io error: {e}"),
            AmfError::Corrupt { line, message } => {
                write!(f, "corrupt model file at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for AmfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AmfError::Transform(e) => Some(e),
            AmfError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<qos_transform::TransformError> for AmfError {
    fn from(e: qos_transform::TransformError) -> Self {
        AmfError::Transform(e)
    }
}

impl From<std::io::Error> for AmfError {
    fn from(e: std::io::Error) -> Self {
        AmfError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(AmfError::InvalidConfig("x".into())
            .to_string()
            .contains("invalid"));
        let e = AmfError::Corrupt {
            line: 2,
            message: "bad".into(),
        };
        assert!(e.to_string().contains("line 2"));
        let e: AmfError = qos_transform::TransformError::EmptyInput.into();
        assert!(e.to_string().contains("transform"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AmfError>();
    }
}
