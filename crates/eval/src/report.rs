//! Plain-text report rendering: aligned tables and series dumps that mirror
//! the paper's tables and figure data.

/// A simple left-padded text table builder.
///
/// # Examples
///
/// ```
/// use qos_eval::report::TextTable;
///
/// let mut t = TextTable::new(vec!["Approach".into(), "MRE".into()]);
/// t.row(vec!["AMF".into(), "0.478".into()]);
/// let text = t.render();
/// assert!(text.contains("Approach"));
/// assert!(text.contains("AMF"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Self {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let all_rows = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all_rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let format_row = |row: &[String]| -> String {
            (0..cols)
                .map(|i| {
                    let cell = row.get(i).map(String::as_str).unwrap_or("");
                    format!("{cell:<width$}", width = widths[i])
                })
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = String::new();
        out.push_str(&format_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format_row(row));
            out.push('\n');
        }
        out
    }
}

/// Renders an `(x, y)` series as two aligned columns — the figure-data dump
/// format used by the benches (one file per paper figure).
pub fn render_series(x_label: &str, y_label: &str, points: &[(f64, f64)]) -> String {
    let mut t = TextTable::new(vec![x_label.to_string(), y_label.to_string()]);
    for &(x, y) in points {
        t.row(vec![format!("{x:.4}"), format!("{y:.6}")]);
    }
    t.render()
}

/// Renders a multi-series figure: one x column and one y column per series.
///
/// # Panics
///
/// Panics if the series have different lengths.
pub fn render_multi_series(x_label: &str, x: &[f64], series: &[(&str, Vec<f64>)]) -> String {
    let mut header = vec![x_label.to_string()];
    for (name, ys) in series {
        assert_eq!(ys.len(), x.len(), "series {name} length mismatch");
        header.push((*name).to_string());
    }
    let mut t = TextTable::new(header);
    for (i, &xv) in x.iter().enumerate() {
        let mut row = vec![format!("{xv:.4}")];
        for (_, ys) in series {
            row.push(format!("{:.6}", ys[i]));
        }
        t.row(row);
    }
    t.render()
}

/// Writes a report to `<workspace>/target/reports/<name>` (creating
/// directories), returning the path. Used by benches so every regenerated
/// artifact lands in a predictable place regardless of the invoking
/// package's working directory (Criterion runs benches with the package dir
/// as CWD).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_report(name: &str, content: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = workspace_root().join("target").join("reports");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    std::fs::write(&path, content)?;
    Ok(path)
}

/// Walks up from the current directory to the outermost directory whose
/// `Cargo.toml` declares `[workspace]`; falls back to the current directory.
fn workspace_root() -> std::path::PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    let mut found = None;
    let mut dir: &std::path::Path = &cwd;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(content) = std::fs::read_to_string(&manifest) {
            if content.contains("[workspace]") {
                found = Some(dir.to_path_buf());
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => break,
        }
    }
    found.unwrap_or(cwd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(vec!["a".into(), "long-header".into()]);
        t.row(vec!["wide-cell".into(), "x".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // Columns align: "long-header" starts at the same offset in both rows.
        let header_offset = lines[0].find("long-header").unwrap();
        let cell_offset = lines[2].find('x').unwrap();
        assert_eq!(header_offset, cell_offset);
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(vec!["a".into(), "b".into(), "c".into()]);
        t.row(vec!["1".into()]);
        let text = t.render();
        assert!(text.contains('1'));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn series_rendering() {
        let text = render_series("x", "y", &[(1.0, 2.0), (3.0, 4.0)]);
        assert!(text.contains("1.0000"));
        assert!(text.contains("4.000000"));
    }

    #[test]
    fn multi_series_rendering() {
        let x = vec![0.1, 0.2];
        let text = render_multi_series(
            "density",
            &x,
            &[("PMF", vec![0.5, 0.4]), ("AMF", vec![0.3, 0.2])],
        );
        assert!(text.contains("PMF"));
        assert!(text.contains("AMF"));
        assert!(text.contains("0.2000"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn multi_series_rejects_ragged() {
        render_multi_series("x", &[1.0], &[("s", vec![1.0, 2.0])]);
    }

    #[test]
    fn write_report_creates_file() {
        let path = write_report("test_report.txt", "hello").unwrap();
        assert!(path.exists());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "hello");
        std::fs::remove_file(path).unwrap();
    }
}
