//! Unified training/prediction interface over all compared approaches.

use amf_core::trainer::ReplayOptions;
use amf_core::{AmfConfig, AmfTrainer, LossKind};
use qos_baselines::{
    Ipcc, NeighborhoodConfig, Nimf, NimfConfig, Pmf, PmfConfig, QosPredictor, SvdImpute,
    SvdImputeConfig, Uipcc, UipccConfig, Upcc,
};
use qos_dataset::sampling::{randomized_entries, MatrixSplit};
use qos_dataset::Attribute;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// The approaches compared in the paper's Table I, plus the AMF variants used
/// by the ablation figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Approach {
    /// User-based CF.
    Upcc,
    /// Item-based CF.
    Ipcc,
    /// Hybrid CF.
    Uipcc,
    /// Probabilistic matrix factorization (offline).
    Pmf,
    /// Neighborhood-integrated MF (extension; the paper's reference \[23\]).
    Nimf,
    /// Iterative SVD imputation (extension; spectral matrix completion).
    SvdImpute,
    /// Adaptive matrix factorization (the paper's approach).
    Amf,
    /// AMF with `α = 1` — transformation ablation (Fig. 11).
    AmfLinear,
    /// AMF without adaptive weights — weights ablation.
    AmfFixedWeights,
    /// AMF with squared instead of relative loss — loss ablation.
    AmfSquaredLoss,
}

impl Approach {
    /// Table I's comparison set, in the paper's row order.
    pub const PAPER_SET: [Approach; 5] = [
        Approach::Upcc,
        Approach::Ipcc,
        Approach::Uipcc,
        Approach::Pmf,
        Approach::Amf,
    ];

    /// Display name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Approach::Upcc => "UPCC",
            Approach::Ipcc => "IPCC",
            Approach::Uipcc => "UIPCC",
            Approach::Pmf => "PMF",
            Approach::Nimf => "NIMF",
            Approach::SvdImpute => "SVD-impute",
            Approach::Amf => "AMF",
            Approach::AmfLinear => "AMF(a=1)",
            Approach::AmfFixedWeights => "AMF(fixed-w)",
            Approach::AmfSquaredLoss => "AMF(sq-loss)",
        }
    }

    /// Whether this is an AMF variant (trains online).
    pub fn is_amf(&self) -> bool {
        matches!(
            self,
            Approach::Amf
                | Approach::AmfLinear
                | Approach::AmfFixedWeights
                | Approach::AmfSquaredLoss
        )
    }

    /// The AMF configuration for this variant and attribute (paper
    /// hyperparameters), or `None` for non-AMF approaches.
    pub fn amf_config(&self, attr: Attribute, seed: u64) -> Option<AmfConfig> {
        let base = match attr {
            Attribute::ResponseTime => AmfConfig::response_time(),
            Attribute::Throughput => AmfConfig::throughput(),
        }
        .with_seed(seed);
        match self {
            Approach::Amf => Some(base),
            Approach::AmfLinear => Some(base.with_linear_transform()),
            Approach::AmfFixedWeights => Some(AmfConfig {
                adaptive_weights: false,
                ..base
            }),
            Approach::AmfSquaredLoss => Some(AmfConfig {
                loss: LossKind::Squared,
                ..base
            }),
            _ => None,
        }
    }

    /// Trains this approach on a slice split. `slice_start`/`interval` give
    /// the slice's time window (used to timestamp AMF's training stream).
    pub fn train(
        &self,
        split: &MatrixSplit,
        attr: Attribute,
        seed: u64,
        slice_start: u64,
        interval: u64,
    ) -> TrainedPredictor {
        let start = Instant::now();
        match self {
            Approach::Upcc => {
                let model = Upcc::train(&split.train, NeighborhoodConfig::default())
                    .expect("non-empty training split");
                TrainedPredictor::baseline(Box::new(model), start.elapsed())
            }
            Approach::Ipcc => {
                let model = Ipcc::train(&split.train, NeighborhoodConfig::default())
                    .expect("non-empty training split");
                TrainedPredictor::baseline(Box::new(model), start.elapsed())
            }
            Approach::Uipcc => {
                let model = Uipcc::train(&split.train, UipccConfig::default())
                    .expect("non-empty training split");
                TrainedPredictor::baseline(Box::new(model), start.elapsed())
            }
            Approach::Pmf => {
                let config = PmfConfig {
                    seed,
                    ..PmfConfig::default()
                };
                let (model, _) =
                    Pmf::train(&split.train, config).expect("non-empty training split");
                TrainedPredictor::baseline(Box::new(model), start.elapsed())
            }
            Approach::Nimf => {
                let config = NimfConfig {
                    seed,
                    ..NimfConfig::default()
                };
                let (model, _) =
                    Nimf::train(&split.train, config).expect("non-empty training split");
                TrainedPredictor::baseline(Box::new(model), start.elapsed())
            }
            Approach::SvdImpute => {
                let config = SvdImputeConfig {
                    seed,
                    ..SvdImputeConfig::default()
                };
                let model =
                    SvdImpute::train(&split.train, config).expect("non-empty training split");
                TrainedPredictor::baseline(Box::new(model), start.elapsed())
            }
            amf_variant => {
                let config = amf_variant
                    .amf_config(attr, seed)
                    .expect("is_amf variants have configs");
                let mut trainer = AmfTrainer::new(config).expect("paper config is valid");
                train_amf_on_split(&mut trainer, split, slice_start, interval, seed);
                let fallback = split.train.mean().unwrap_or(1.0);
                TrainedPredictor::Amf {
                    trainer: Box::new(trainer),
                    fallback,
                    train_time: start.elapsed(),
                }
            }
        }
    }
}

/// Feeds a slice's observed entries into an AMF trainer as a randomized,
/// timestamped stream and replays to convergence (the paper's accuracy
/// protocol). Returns the replay report.
pub fn train_amf_on_split(
    trainer: &mut AmfTrainer,
    split: &MatrixSplit,
    slice_start: u64,
    interval: u64,
    seed: u64,
) -> amf_core::TrainReport {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let entries = randomized_entries(&split.train, &mut rng);
    let n = entries.len().max(1) as u64;
    let samples = entries.iter().enumerate().map(|(k, e)| {
        (
            e.row,
            e.col,
            slice_start + (k as u64 * interval) / n,
            e.value,
        )
    });
    trainer.train_slice(samples, replay_options_for(entries.len()))
}

/// Replay stopping criteria scaled to the training-set size: the convergence
/// window is roughly one pass over the data.
pub fn replay_options_for(nnz: usize) -> ReplayOptions {
    ReplayOptions {
        max_iterations: (nnz.saturating_mul(40)).clamp(20_000, 4_000_000),
        min_iterations: (nnz.saturating_mul(6)).clamp(10_000, 1_000_000),
        window: nnz.clamp(500, 50_000),
        // Training error keeps creeping down ~0.1%/epoch long after test
        // accuracy has plateaued (memorization); stop once per-epoch
        // improvement drops below 0.4% twice in a row.
        tolerance: 4e-3,
        patience: 2,
    }
}

/// A trained model of any approach, with a uniform prediction interface.
pub enum TrainedPredictor {
    /// A trained offline baseline.
    Baseline {
        /// The model.
        model: Box<dyn QosPredictor>,
        /// Wall-clock training time.
        train_time: Duration,
    },
    /// A trained AMF variant.
    Amf {
        /// The trainer (owns the model).
        trainer: Box<AmfTrainer>,
        /// Fallback prediction for unregistered ids (train-set mean).
        fallback: f64,
        /// Wall-clock training time.
        train_time: Duration,
    },
}

impl TrainedPredictor {
    fn baseline(model: Box<dyn QosPredictor>, train_time: Duration) -> Self {
        TrainedPredictor::Baseline { model, train_time }
    }

    /// Predicts one pair.
    pub fn predict(&self, user: usize, service: usize) -> f64 {
        match self {
            TrainedPredictor::Baseline { model, .. } => model.predict(user, service),
            TrainedPredictor::Amf {
                trainer, fallback, ..
            } => trainer.model().predict_or(user, service, *fallback),
        }
    }

    /// Predicts every test entry of a split, in order.
    pub fn predict_split(&self, split: &MatrixSplit) -> Vec<f64> {
        split
            .test
            .iter()
            .map(|e| self.predict(e.row, e.col))
            .collect()
    }

    /// Wall-clock training time.
    pub fn train_time(&self) -> Duration {
        match self {
            TrainedPredictor::Baseline { train_time, .. }
            | TrainedPredictor::Amf { train_time, .. } => *train_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_dataset::sampling::split_matrix;
    use qos_dataset::{DatasetConfig, QosDataset};

    fn split(seed: u64) -> MatrixSplit {
        let ds = QosDataset::generate(&DatasetConfig {
            users: 20,
            services: 40,
            ..DatasetConfig::small()
        });
        let m = ds.slice_matrix(Attribute::ResponseTime, 0);
        let mut rng = StdRng::seed_from_u64(seed);
        split_matrix(&m, 0.3, &mut rng)
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Approach::Upcc.name(), "UPCC");
        assert_eq!(Approach::Amf.name(), "AMF");
        assert_eq!(Approach::PAPER_SET.len(), 5);
        assert_eq!(Approach::PAPER_SET[4], Approach::Amf);
    }

    #[test]
    fn amf_config_variants() {
        let rt = Approach::Amf
            .amf_config(Attribute::ResponseTime, 1)
            .unwrap();
        assert_eq!(rt.alpha, -0.007);
        let tp = Approach::Amf.amf_config(Attribute::Throughput, 1).unwrap();
        assert_eq!(tp.alpha, -0.05);
        let lin = Approach::AmfLinear
            .amf_config(Attribute::ResponseTime, 1)
            .unwrap();
        assert_eq!(lin.alpha, 1.0);
        let fixed = Approach::AmfFixedWeights
            .amf_config(Attribute::ResponseTime, 1)
            .unwrap();
        assert!(!fixed.adaptive_weights);
        let sq = Approach::AmfSquaredLoss
            .amf_config(Attribute::ResponseTime, 1)
            .unwrap();
        assert_eq!(sq.loss, LossKind::Squared);
        assert!(Approach::Pmf
            .amf_config(Attribute::ResponseTime, 1)
            .is_none());
    }

    #[test]
    fn every_approach_trains_and_predicts() {
        let split = split(1);
        for approach in [
            Approach::Upcc,
            Approach::Ipcc,
            Approach::Uipcc,
            Approach::Pmf,
            Approach::Amf,
        ] {
            let trained = approach.train(&split, Attribute::ResponseTime, 1, 0, 900);
            let preds = trained.predict_split(&split);
            assert_eq!(preds.len(), split.test.len());
            assert!(
                preds.iter().all(|p| p.is_finite()),
                "{} produced non-finite predictions",
                approach.name()
            );
            assert!(trained.train_time() > Duration::ZERO);
        }
    }

    #[test]
    fn amf_beats_nothing_sanity() {
        // AMF predictions should correlate positively with the truth.
        let split = split(2);
        let trained = Approach::Amf.train(&split, Attribute::ResponseTime, 2, 0, 900);
        let preds = trained.predict_split(&split);
        let actual = split.test_actuals();
        let r = qos_linalg::correlation::pearson(&actual, &preds).unwrap();
        assert!(r > 0.2, "correlation with truth too low: {r}");
    }

    #[test]
    fn replay_options_scale_with_nnz() {
        let small = replay_options_for(10);
        assert_eq!(small.max_iterations, 20_000);
        assert_eq!(small.min_iterations, 10_000);
        assert_eq!(small.window, 500);
        let big = replay_options_for(1_000_000);
        assert_eq!(big.max_iterations, 4_000_000);
        assert_eq!(big.min_iterations, 1_000_000);
        assert_eq!(big.window, 50_000);
        let mid = replay_options_for(10_000);
        assert_eq!(mid.max_iterations, 400_000);
        assert_eq!(mid.min_iterations, 60_000);
        assert_eq!(mid.window, 10_000);
    }

    #[test]
    fn is_amf_flags() {
        assert!(Approach::Amf.is_amf());
        assert!(Approach::AmfLinear.is_amf());
        assert!(!Approach::Pmf.is_amf());
        assert!(!Approach::Uipcc.is_amf());
    }
}
