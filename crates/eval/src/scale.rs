//! Experiment scaling: paper-scale vs CI-scale runs of the same code.

use qos_dataset::DatasetConfig;
use serde::{Deserialize, Serialize};

/// Dimensions and repetition counts for one experiment campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale {
    /// Number of users in the generated dataset.
    pub users: usize,
    /// Number of services.
    pub services: usize,
    /// Number of time slices.
    pub time_slices: usize,
    /// Repetitions per configuration (the paper runs 20 with different
    /// seeds).
    pub repetitions: usize,
    /// Base RNG seed; repetition `k` uses `seed + k`.
    pub seed: u64,
}

impl Scale {
    /// The paper's full scale: 142 × 4500 × 64, 20 repetitions.
    pub fn full() -> Self {
        Self {
            users: 142,
            services: 4500,
            time_slices: 64,
            repetitions: 20,
            seed: 2014,
        }
    }

    /// A medium scale: full user count, reduced services/slices/reps.
    /// Regenerates every paper shape in minutes rather than hours.
    pub fn medium() -> Self {
        Self {
            users: 142,
            services: 800,
            time_slices: 16,
            repetitions: 3,
            seed: 2014,
        }
    }

    /// CI scale: seconds per experiment.
    pub fn small() -> Self {
        Self {
            users: 30,
            services: 100,
            time_slices: 8,
            repetitions: 2,
            seed: 2014,
        }
    }

    /// Reads `AMF_SCALE` from the environment (`full` | `medium` | `small`),
    /// defaulting to [`Scale::small`].
    pub fn from_env() -> Self {
        match std::env::var("AMF_SCALE").as_deref() {
            Ok("full") => Self::full(),
            Ok("medium") => Self::medium(),
            _ => Self::small(),
        }
    }

    /// Dataset configuration at this scale (paper-calibrated attribute
    /// models, region counts capped by entity counts).
    pub fn dataset_config(&self) -> DatasetConfig {
        let base = DatasetConfig::paper_scale();
        DatasetConfig {
            users: self.users,
            services: self.services,
            time_slices: self.time_slices,
            user_regions: base.user_regions.min(self.users),
            service_regions: base.service_regions.min(self.services),
            seed: self.seed,
            ..base
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matches_paper() {
        let s = Scale::full();
        assert_eq!((s.users, s.services, s.time_slices), (142, 4500, 64));
        assert_eq!(s.repetitions, 20);
    }

    #[test]
    fn dataset_config_caps_regions() {
        let s = Scale {
            users: 5,
            services: 10,
            time_slices: 2,
            repetitions: 1,
            seed: 1,
        };
        let c = s.dataset_config();
        assert!(c.user_regions <= 5);
        assert!(c.service_regions <= 10);
        c.validate().unwrap();
    }

    #[test]
    fn small_and_medium_are_valid() {
        Scale::small().dataset_config().validate().unwrap();
        Scale::medium().dataset_config().validate().unwrap();
    }

    #[test]
    fn from_env_defaults_to_small() {
        // Cannot mutate the environment safely in parallel tests; just check
        // the default path when the var is unset or unrecognized.
        if std::env::var("AMF_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::small());
        }
    }
}
