//! Fig. 11 — impact of the data transformation: PMF vs AMF(α=1) vs AMF,
//! MRE across densities.
//!
//! Separates the two accuracy ingredients: AMF(α=1) keeps the relative loss
//! but disables Box–Cox (linear normalization only); full AMF adds the
//! tuned α. The paper finds both steps matter.

use crate::methods::Approach;
use crate::report::render_multi_series;
use crate::Scale;
use qos_dataset::Attribute;

/// Fig. 11 result for both attributes.
#[derive(Debug, Clone)]
pub struct Fig11Result {
    /// Densities (x-axis).
    pub densities: Vec<f64>,
    /// Per attribute: `(attribute name, MRE per approach per density)` where
    /// approaches are `[PMF, AMF(α=1), AMF]`.
    pub curves: Vec<(String, Vec<Vec<f64>>)>,
}

/// The compared approaches, in the paper's legend order.
pub const APPROACHES: [Approach; 3] = [Approach::Pmf, Approach::AmfLinear, Approach::Amf];

/// Runs the transformation ablation over the Table I density grid.
pub fn run(scale: &Scale) -> Fig11Result {
    run_with(scale, &super::TABLE1_DENSITIES)
}

/// Parameterized variant (reduced density grids for quick checks).
pub fn run_with(scale: &Scale, densities: &[f64]) -> Fig11Result {
    let mut curves = Vec::new();
    for attr in [Attribute::ResponseTime, Attribute::Throughput] {
        let result = super::table1::run_with(scale, densities, &APPROACHES, &[attr]);
        let table = &result.tables[0];
        let mres: Vec<Vec<f64>> = table
            .summaries
            .iter()
            .map(|col| col.iter().map(|s| s.mre).collect())
            .collect();
        curves.push((attr.short_name().to_string(), mres));
    }
    Fig11Result {
        densities: densities.to_vec(),
        curves,
    }
}

impl Fig11Result {
    /// Renders one multi-series block per attribute.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (attr, mres) in &self.curves {
            out.push_str(&format!("# Fig 11 ({attr}): MRE vs matrix density\n"));
            let series: Vec<(&str, Vec<f64>)> = APPROACHES
                .iter()
                .zip(mres)
                .map(|(a, ys)| (a.name(), ys.clone()))
                .collect();
            out.push_str(&render_multi_series("density", &self.densities, &series));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> Fig11Result {
        run_with(
            &Scale {
                users: 60,
                services: 150,
                time_slices: 2,
                repetitions: 1,
                seed: 3,
            },
            &[0.15, 0.35],
        )
    }

    #[test]
    fn shapes() {
        let r = result();
        assert_eq!(r.densities.len(), 2);
        assert_eq!(r.curves.len(), 2);
        for (_, mres) in &r.curves {
            assert_eq!(mres.len(), 3);
            assert_eq!(mres[0].len(), 2);
        }
    }

    #[test]
    fn full_amf_beats_pmf_on_mre() {
        // The figure's core ordering: AMF <= PMF on MRE at every density.
        let r = result();
        for (attr, mres) in &r.curves {
            for (d_idx, &density) in r.densities.iter().enumerate() {
                let pmf = mres[0][d_idx];
                let amf = mres[2][d_idx];
                assert!(
                    amf <= pmf * 1.05,
                    "{attr} density {density}: AMF MRE {amf} vs PMF {pmf}"
                );
            }
        }
    }

    #[test]
    fn boxcox_helps_over_linear() {
        // AMF with tuned alpha should generally beat AMF(α=1); allow slack
        // at this small scale but require it on average.
        let r = result();
        for (attr, mres) in &r.curves {
            let linear_mean: f64 = mres[1].iter().sum::<f64>() / mres[1].len() as f64;
            let full_mean: f64 = mres[2].iter().sum::<f64>() / mres[2].len() as f64;
            assert!(
                full_mean <= linear_mean * 1.02,
                "{attr}: AMF mean MRE {full_mean} vs AMF(a=1) {linear_mean}"
            );
        }
    }

    #[test]
    fn render_has_legend() {
        let text = result().render();
        assert!(text.contains("PMF"));
        assert!(text.contains("AMF(a=1)"));
        assert!(text.contains("Fig 11 (RT)"));
        assert!(text.contains("Fig 11 (TP)"));
    }
}
