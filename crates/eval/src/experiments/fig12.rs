//! Fig. 12 — impact of matrix density on AMF accuracy (5%–50%, step 5%).
//!
//! "The error decreases dramatically with the increase of matrix density
//! when the QoS matrix is excessively sparse" — the overfitting-to-sparsity
//! effect.

use crate::methods::Approach;
use crate::report::render_multi_series;
use crate::Scale;
use qos_dataset::Attribute;
use qos_metrics::AccuracySummary;

/// Fig. 12 result.
#[derive(Debug, Clone)]
pub struct Fig12Result {
    /// Densities (x-axis).
    pub densities: Vec<f64>,
    /// Per attribute: AMF summary per density.
    pub curves: Vec<(String, Vec<AccuracySummary>)>,
}

/// Runs AMF across the Fig. 12 density grid for both attributes.
pub fn run(scale: &Scale) -> Fig12Result {
    run_with(
        scale,
        &super::FIG12_DENSITIES,
        &[Attribute::ResponseTime, Attribute::Throughput],
    )
}

/// Parameterized variant.
pub fn run_with(scale: &Scale, densities: &[f64], attributes: &[Attribute]) -> Fig12Result {
    let mut curves = Vec::new();
    for &attr in attributes {
        let result = super::table1::run_with(scale, densities, &[Approach::Amf], &[attr]);
        curves.push((
            attr.short_name().to_string(),
            result.tables[0].summaries[0].clone(),
        ));
    }
    Fig12Result {
        densities: densities.to_vec(),
        curves,
    }
}

impl Fig12Result {
    /// Renders MAE/MRE/NPRE series per attribute.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (attr, summaries) in &self.curves {
            out.push_str(&format!("# Fig 12 ({attr}): AMF error vs matrix density\n"));
            let series = vec![
                ("MAE", summaries.iter().map(|s| s.mae).collect::<Vec<_>>()),
                ("MRE", summaries.iter().map(|s| s.mre).collect()),
                ("NPRE", summaries.iter().map(|s| s.npre).collect()),
            ];
            let named: Vec<(&str, Vec<f64>)> = series;
            out.push_str(&render_multi_series("density", &self.densities, &named));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> Fig12Result {
        run_with(
            &Scale {
                users: 60,
                services: 150,
                time_slices: 2,
                repetitions: 1,
                seed: 9,
            },
            &[0.05, 0.25, 0.50],
            &[Attribute::ResponseTime],
        )
    }

    #[test]
    fn grid_shape() {
        let r = result();
        assert_eq!(r.densities.len(), 3);
        assert_eq!(r.curves.len(), 1);
        assert_eq!(r.curves[0].1.len(), 3);
    }

    #[test]
    fn sparse_end_is_worse_than_dense_end() {
        // The figure's shape: error at 5% clearly above error at 50%.
        let r = result();
        for (attr, summaries) in &r.curves {
            let sparse = summaries.first().unwrap().mre;
            let dense = summaries.last().unwrap().mre;
            assert!(
                sparse > dense,
                "{attr}: MRE at 5% ({sparse}) should exceed MRE at 50% ({dense})"
            );
        }
    }

    #[test]
    fn npre_dominates_mre_everywhere() {
        let r = result();
        for (_, summaries) in &r.curves {
            for s in summaries {
                assert!(s.npre >= s.mre);
            }
        }
    }

    #[test]
    fn render_has_three_metrics() {
        let text = result().render();
        for needle in ["MAE", "MRE", "NPRE", "density"] {
            assert!(text.contains(needle));
        }
    }
}
