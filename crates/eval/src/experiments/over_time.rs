//! E-SUPP — accuracy over all time slices (the paper's supplementary
//! report: "the full results over all the time slices").
//!
//! Table I evaluates the first time slice only. This experiment walks every
//! slice: AMF tracks the drifting QoS *online* (one persistent model, warm
//! starts), while UIPCC and PMF are retrained from scratch per slice. It
//! verifies the claim implicit in Fig. 13: AMF's incremental updates do not
//! trade accuracy away — it stays at least as accurate as the offline
//! baselines on every slice while doing far less work.

use crate::methods::{train_amf_on_split, Approach};
use crate::report::render_multi_series;
use crate::Scale;
use amf_core::{AmfConfig, AmfTrainer};
use qos_dataset::sampling::split_matrix;
use qos_dataset::Attribute;
use qos_metrics::AccuracySummary;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-slice accuracy of the compared approaches.
#[derive(Debug, Clone)]
pub struct OverTimeResult {
    /// Density used.
    pub density: f64,
    /// Per-slice MRE of warm-started online AMF.
    pub amf: Vec<AccuracySummary>,
    /// Per-slice MRE of UIPCC retrained per slice.
    pub uipcc: Vec<AccuracySummary>,
    /// Per-slice MRE of PMF retrained per slice.
    pub pmf: Vec<AccuracySummary>,
}

/// Runs the over-time protocol at density 10% across the scale's slices.
pub fn run(scale: &Scale) -> OverTimeResult {
    run_with(scale, 0.10, scale.time_slices)
}

/// Parameterized variant.
pub fn run_with(scale: &Scale, density: f64, slices: usize) -> OverTimeResult {
    let dataset = super::dataset_for(scale);
    let interval = dataset.config().slice_interval_secs;
    let slices = slices.min(dataset.time_slices());
    let attr = Attribute::ResponseTime;

    let mut amf_trainer = AmfTrainer::new(AmfConfig::response_time().with_seed(scale.seed))
        .expect("paper config is valid");

    let mut amf = Vec::with_capacity(slices);
    let mut uipcc = Vec::with_capacity(slices);
    let mut pmf = Vec::with_capacity(slices);

    for slice in 0..slices {
        let matrix = dataset.slice_matrix(attr, slice);
        let mut rng = StdRng::seed_from_u64(scale.seed.wrapping_add(slice as u64 * 31));
        let split = split_matrix(&matrix, density, &mut rng);
        let actual = split.test_actuals();
        let slice_start = dataset.slice_start_time(slice);

        // AMF: keep the same model, feed this slice's stream.
        train_amf_on_split(&mut amf_trainer, &split, slice_start, interval, scale.seed);
        let fallback = split.train.mean().unwrap_or(1.0);
        let predicted: Vec<f64> = split
            .test
            .iter()
            .map(|e| amf_trainer.model().predict_or(e.row, e.col, fallback))
            .collect();
        amf.push(AccuracySummary::evaluate(&actual, &predicted).expect("non-empty test"));

        // Baselines: full retrain on this slice.
        for (approach, bucket) in [(Approach::Uipcc, &mut uipcc), (Approach::Pmf, &mut pmf)] {
            let trained = approach.train(&split, attr, scale.seed, slice_start, interval);
            let predicted = trained.predict_split(&split);
            bucket.push(AccuracySummary::evaluate(&actual, &predicted).expect("non-empty test"));
        }
    }

    OverTimeResult {
        density,
        amf,
        uipcc,
        pmf,
    }
}

impl OverTimeResult {
    /// Mean MRE across slices for `(AMF, UIPCC, PMF)`.
    pub fn mean_mres(&self) -> (f64, f64, f64) {
        let mean = |v: &[AccuracySummary]| v.iter().map(|s| s.mre).sum::<f64>() / v.len() as f64;
        (mean(&self.amf), mean(&self.uipcc), mean(&self.pmf))
    }

    /// Renders the per-slice MRE series.
    pub fn render(&self) -> String {
        let x: Vec<f64> = (0..self.amf.len()).map(|t| t as f64).collect();
        let mre = |v: &[AccuracySummary]| v.iter().map(|s| s.mre).collect::<Vec<_>>();
        let mut out = format!(
            "# E-SUPP (density {:.0}%): MRE per time slice (AMF online vs baselines retrained)\n",
            self.density * 100.0
        );
        out.push_str(&render_multi_series(
            "time_slice",
            &x,
            &[
                ("AMF", mre(&self.amf)),
                ("UIPCC", mre(&self.uipcc)),
                ("PMF", mre(&self.pmf)),
            ],
        ));
        let (a, u, p) = self.mean_mres();
        out.push_str(&format!(
            "\n# mean MRE over slices: AMF {a:.3}, UIPCC {u:.3}, PMF {p:.3}\n"
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> OverTimeResult {
        run_with(
            &Scale {
                users: 60,
                services: 150,
                time_slices: 4,
                repetitions: 1,
                seed: 29,
            },
            0.15,
            4,
        )
    }

    #[test]
    fn one_summary_per_slice_per_approach() {
        let r = result();
        assert_eq!(r.amf.len(), 4);
        assert_eq!(r.uipcc.len(), 4);
        assert_eq!(r.pmf.len(), 4);
    }

    #[test]
    fn amf_stays_competitive_across_slices() {
        // The supplementary claim: online AMF is at least as accurate as the
        // per-slice-retrained baselines, on average over the run.
        let r = result();
        let (amf, uipcc, pmf) = r.mean_mres();
        assert!(amf <= uipcc * 1.05, "AMF mean MRE {amf} vs UIPCC {uipcc}");
        assert!(amf <= pmf * 1.05, "AMF mean MRE {amf} vs PMF {pmf}");
    }

    #[test]
    fn no_accuracy_collapse_over_time() {
        // Warm-started AMF must not degrade as slices pass.
        let r = result();
        let first = r.amf[0].mre;
        let last = r.amf.last().unwrap().mre;
        assert!(
            last <= first * 1.3,
            "AMF drifted: slice-0 MRE {first} -> last {last}"
        );
    }

    #[test]
    fn render_lists_all_series() {
        let text = result().render();
        for needle in ["AMF", "UIPCC", "PMF", "mean MRE over slices"] {
            assert!(text.contains(needle));
        }
    }
}
