//! One module per paper artifact (table/figure), plus ablations.
//!
//! Every experiment is a pure function of a [`crate::Scale`]: it generates
//! the synthetic dataset at that scale, runs the paper's protocol, and
//! returns a typed result whose `render()` reproduces the table/figure data
//! as text. Benches write these artifacts under `target/reports/`.

pub mod ablation;
pub mod adaptation;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig2;
pub mod fig6;
pub mod fig7_8;
pub mod fig9;
pub mod over_time;
pub mod table1;

use crate::Scale;
use qos_dataset::QosDataset;

/// Generates the dataset for a scale (shared by all experiments).
pub fn dataset_for(scale: &Scale) -> QosDataset {
    QosDataset::generate(&scale.dataset_config())
}

/// The paper's Table I density grid (10%–50% step 10%).
pub const TABLE1_DENSITIES: [f64; 5] = [0.10, 0.20, 0.30, 0.40, 0.50];

/// The paper's Fig. 12 density grid (5%–50% step 5%).
pub const FIG12_DENSITIES: [f64; 10] = [0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_for_matches_scale() {
        let scale = Scale::small();
        let ds = dataset_for(&scale);
        assert_eq!(ds.users(), scale.users);
        assert_eq!(ds.services(), scale.services);
    }

    #[test]
    fn density_grids_match_paper() {
        assert_eq!(TABLE1_DENSITIES.len(), 5);
        assert_eq!(FIG12_DENSITIES.len(), 10);
        assert!((FIG12_DENSITIES[0] - 0.05).abs() < 1e-12);
        assert!((TABLE1_DENSITIES[4] - 0.5).abs() < 1e-12);
    }
}
