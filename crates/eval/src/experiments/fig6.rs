//! Fig. 6 — the dataset statistics table.

use crate::Scale;
use qos_dataset::DatasetStatistics;

/// Runs the experiment: generates the dataset and computes the statistics
/// table over a couple of slices.
pub fn run(scale: &Scale) -> DatasetStatistics {
    let dataset = super::dataset_for(scale);
    let sample_slices = scale.time_slices.min(2);
    DatasetStatistics::compute(&dataset, sample_slices)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_reflect_scale() {
        let stats = run(&Scale::small());
        assert_eq!(stats.users, Scale::small().users);
        assert_eq!(stats.services, Scale::small().services);
        assert_eq!(stats.slice_interval_secs, 900);
    }

    #[test]
    fn table_renders_paper_rows() {
        let table = run(&Scale::small()).to_table();
        for needle in [
            "#Users",
            "#Services",
            "#Time slices",
            "RT range",
            "TP average",
        ] {
            assert!(table.contains(needle), "missing row {needle}");
        }
    }

    #[test]
    fn rt_and_tp_within_paper_ranges() {
        let stats = run(&Scale::small());
        assert!(stats.response_time.max <= 20.0);
        assert!(stats.throughput.max <= 7000.0);
        assert!(stats.response_time.mean > 0.0);
    }
}
